% Fixed: the inliner substituted a read-only formal's identifier actual
% into the callee body without a copy even when that identifier was
% never assigned, delaying the `Undefined` error from the call site
% into the middle of the spliced body (or past it entirely). Direct
% substitution now requires the actual to be definitely assigned.
% entry: f0
% arg: scalar 1.0
function r = f0(p0)
if (p0 > 2.0)
  g = 3.0;
end
r = f1(g);
function r = f1(a)
m(2.0, 2.0) = 7.0;
r = a + m(1.0, 1.0);
