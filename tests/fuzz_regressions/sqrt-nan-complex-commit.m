% Fixed: the scalar-math fast path compiled sqrt of a maybe-negative
% real scalar into a complex register, committing the result to the
% complex class statically; sqrt(NaN) and sqrt(4) are real values at
% runtime, so every compiled mode disagreed with the interpreter's
% value-based dispatch. The fast path now only fires for operands the
% inference already types complex.
% entry: f0
% arg: scalar NaN
function r = f0(p0)
v0 = p0;
r = sqrt(v0);
