% Fixed: `colon` with a NaN endpoint or step computed a garbage extent
% instead of the empty 1x0 row vector MATLAB produces, so modes
% diverged between an allocation failure and a value.
% entry: f0
% arg: scalar NaN
function r = f0(x)
v = (1.0 : x);
s = 0.0;
for k = (1.0 : x)
  s = s + k;
end
r = numel(v) + s;
