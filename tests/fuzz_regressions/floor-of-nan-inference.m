% Fixed: floor/ceil/round/fix of a Real operand were typed Int, but
% floor(NaN) is NaN, which no Int admits — a soundness violation. A
% NaN value carries the bottom range, so a finite inferred range is no
% evidence against it; the result is Int only when the operand's
% intrinsic already excludes NaN.
% entry: f0
% arg: scalar NaN
function r = f0(x)
r = floor(x);
