% Fixed: reading an undefined name raised `Undefined` from the
% interpreter but `Raised` from every compiled mode — the engine
% re-wrapped the compiler's RuntimeError into Raised, collapsing the
% error class.
% entry: f0
% arg: scalar 1.0
function r = f0(x)
r = qq0;
