% Fixed: complex-typed compiled code computed `x .^ y` for purely real
% operands as exp(y*ln(x)), one ulp off the interpreter's real-dispatch
% f64 pow: `3 .^ 1` came out 3.0000000000000004 in spec mode, whose
% coarser speculated ranges cannot prove the base non-negative and so
% type the power complex. Complex pow now takes the real path exactly
% when the interpreter's value dispatch would.
% entry: f0
% arg: scalar 3.0
function r = f0(p1)
r = (p1 .^ (2.0 ~= p1));
