% Fixed: Range::powi saturated exponents beyond i32 range
% (`x .^ 1e10` was analyzed as `x .^ 2147483647`, a different
% function); it now widens to ⊤ instead.
% entry: f0
% arg: scalar 2.0
function r = f0(x)
r = x .^ 10000000000.0;
