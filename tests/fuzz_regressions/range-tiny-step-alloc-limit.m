% Fixed: a denormal step (0 : 1e-300 : 1) overflowed the range extent
% computation (u64 wrap in inference, unbounded allocation at runtime);
% every mode now raises the same AllocLimit error class.
% entry: f0
% arg: scalar 1e-300
function r = f0(x)
r = (0.0 : x : 1.0);
