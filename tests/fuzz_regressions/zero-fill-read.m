% Fixed: a store that grows (or vivifies) an array fills the elements
% it does not write with 0.0, but the inferred range only joined the
% stored value — reading back a fill element then violated the type
% soundness contract (runtime 0 outside inferred <5,5>).
% entry: f0
% arg: scalar 1.0
function r = f0(x)
m(5.0) = 5.0;
r = m(2.0);
