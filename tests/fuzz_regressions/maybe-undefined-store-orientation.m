% Fixed: a variable assigned only inside a dead `if` branch is unbound
% when the linear store runs, so the store vivifies a 1×7 *row* vector
% — but inference joined the branch's 3×1 column type and predicted a
% 7×1 column, a shape the runtime value is not subsumed by. A linear
% store into a base that may be empty (or unbound on some path) now
% joins the fresh-row alternative into its shape bounds.
% Found by the aliasing fuzzing grammar (seed 1974).
% entry: f0
% arg: matrix 3x1 -2.5 7.0 3.0
% arg: matrix 3x2 3.0 -1.0 -2.5 1.0 3.0 3.0
function r = f0(p0, p1)
if 0.0
  a0 = p0;
end
a0(7.0) = 0.0;
p0(12.0) = floor(0.0);
r = a0;
