% Fixed: an empty matrix was typed with a ⊤ value range, which is not
% subsumed by inferred types whose range has been narrowed (here
% `<0,inf>` via `abs`), tripping the soundness oracle on a vacuously
% safe value. Empty values now carry a ⊥ range.
% entry: f0
% arg: scalar 0.0
function r = f0(x)
r = (3.0 : abs(x));
