% Fixed: the inferred shape of `a * b` ignored the scalar-broadcast
% alternative when an operand was only possibly scalar: a 4x4 matrix
% times a join of 1x1 and 4x1 was typed 4x1, but at runtime the scalar
% case scales the matrix and produces 4x4 — a soundness violation.
% The gemm, `/` and `\` rules now join the broadcast alternatives.
% entry: f0
% arg: scalar 1.0
function r = f0(p0)
if (p0 > 0.0)
  m = 2.0;
else
  m = zeros(4.0, 1.0);
end
r = (eye(4.0) * m);
