% Fixed: subtracting one logical from another was inferred `bool` with
% limits <-1,1>, but arithmetic on logicals yields numeric values at
% runtime (`false - true` is the integral double -1, which no bool
% admits). Arithmetic intrinsic joins now promote bool to int.
% Found by the aliasing fuzzing grammar (seed 5609).
% entry: f0
% arg: scalar 0.001
function r = f0(p0)
v2 = 0.0;
a0 = p0;
r = ((10.0 <= eye(3.0)) - (v2 < rand(1.0)));
