% Fixed: compiled modes dropped the logical class when a relational
% result flowed through scalar F registers — element loads from a
% logical array, `~`, short-circuit results and scalar comparisons all
% came back double where the interpreter kept logical. Bool-carrying
% F registers now record the class and re-box through FToSlotBool.
% entry: f0
% arg: scalar 2.0
function r = f0(p0)
v = ([1.0 2.0 3.0] ~= p0);
w = v;
w(2.0) = (p0 > 1.0);
r = w(3.0);
