% Fixed: a variable first indexed-stored *inside* a loop was typed at
% the store site with the back-edge's min-shape (the loop-entry join
% treated unbound ⊥ as an identity), so codegen removed the store
% check and the first iteration refused to auto-vivify, raising
% `Undefined("slot …")` where the interpreter succeeds.
% entry: f0
% arg: scalar 1.0
function r = f0(x)
for k = 1.0 : 4.0
  m(5.0) = 5.0;
end
r = m(5.0);
