% Fixed: splicing an inlined callee body hoisted it ahead of earlier
% operands of the containing expression, so when an earlier operand
% failed first under the interpreter (here a bad subscript), compiled
% modes raised the callee body's error instead. Fallible earlier
% operands are now hoisted into sequencing temporaries ahead of the
% splice, preserving left-to-right evaluation.
% entry: f0
% arg: scalar 1.0
function r = f0(p0)
v1 = 0.0;
r = (v1(v1, v1) >= f2(p0));
function r = f2(a)
m(6.0, 4.0) = 6.0;
r = a + 1.0;
