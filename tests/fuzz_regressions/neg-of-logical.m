% Fixed: the inference calculator typed `-logical` as Bool, but the
% runtime negation of a logical produces a double (`-true` is -1.0),
% which Bool does not admit — a type-soundness violation in every
% compiled mode.
% entry: f0
% arg: scalar 3.0
function r = f0(p0)
r = -(p0 > 1.0);
