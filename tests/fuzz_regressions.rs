//! Replay the checked-in differential-fuzzer regression corpus.
//!
//! Every file in `tests/fuzz_regressions/` is a minimized reproducer of
//! a divergence (or soundness violation) the fuzzer once found. Each
//! must now run cleanly — bitwise-identical results or identical error
//! classes across the interpreter, mcc, JIT, speculative, warm-cache,
//! and FALCON configurations. See `tests/README.md` for the corpus
//! format and how to add new entries.

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_regressions")
}

#[test]
fn corpus_is_non_empty() {
    let n = std::fs::read_dir(corpus_dir())
        .expect("tests/fuzz_regressions/ exists")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|x| x == "m"))
        })
        .count();
    assert!(n > 0, "the regression corpus must contain reproducers");
}

#[test]
fn every_corpus_case_agrees_across_all_modes() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/fuzz_regressions/ exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "m"))
        .collect();
    paths.sort();
    let mut bad = Vec::new();
    for p in &paths {
        match majic_fuzz::replay_file(p) {
            Ok(report) if report.is_clean() => {}
            Ok(report) => {
                let divs: Vec<String> =
                    report.divergences.iter().map(ToString::to_string).collect();
                bad.push(format!("{}:\n  {}", p.display(), divs.join("\n  ")));
            }
            Err(e) => bad.push(format!("{}: {e}", p.display())),
        }
    }
    assert!(
        bad.is_empty(),
        "{} corpus case(s) regressed:\n{}",
        bad.len(),
        bad.join("\n")
    );
}
