//! Differential testing: the compiled modes must agree with the
//! interpreter on randomly generated straight-line scalar programs and on
//! a set of adversarial snippets. This is the repository's safety claim
//! exercised in bulk — "a wrong guess … never affects program
//! correctness".

use majic::{ExecMode, Majic, Value};
use proptest::prelude::*;

fn run(mode: ExecMode, src: &str, func: &str, args: &[f64]) -> Result<f64, String> {
    let mut m = Majic::with_mode(mode);
    m.load_source(src).map_err(|e| e.to_string())?;
    if mode == ExecMode::Spec {
        m.speculate_all();
    }
    let argv: Vec<Value> = args.iter().map(|&v| Value::scalar(v)).collect();
    let out = m.call(func, &argv, 1).map_err(|e| e.to_string())?;
    out[0].to_scalar().map_err(|e| e.to_string())
}

fn agree(src: &str, func: &str, args: &[f64]) {
    let reference = run(ExecMode::Interpret, src, func, args);
    for mode in [ExecMode::Mcc, ExecMode::Jit, ExecMode::Spec, ExecMode::Falcon] {
        let got = run(mode, src, func, args);
        match (&reference, &got) {
            (Ok(a), Ok(b)) => {
                let close = a == b
                    || (a - b).abs() <= 1e-9 * a.abs().max(1.0)
                    || (a.is_nan() && b.is_nan());
                assert!(close, "{mode:?}: {b} vs interpreter {a}\n{src}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{mode:?} disagreement: interp {a:?}, compiled {b:?}\n{src}"),
        }
    }
}

/// A tiny expression generator over two scalar parameters.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            Just("x".to_owned()),
            Just("y".to_owned()),
            (-5i32..20).prop_map(|k| format!("{k}")),
            (1u32..5).prop_map(|k| format!("{k}.5")),
        ]
        .boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            4 => (sub.clone(), sub.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("/")
            ]).prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            1 => sub.clone().prop_map(|a| format!("(-{a})")),
            1 => sub.clone().prop_map(|a| format!("abs({a})")),
            1 => sub.clone().prop_map(|a| format!("floor({a})")),
            1 => sub.clone().prop_map(|a| format!("({a})^2")),
            1 => (sub.clone(), sub).prop_map(|(a, b)| format!("max({a}, {b})")),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_scalar_expressions_agree(e in arb_expr(3), x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let src = format!("function r = probe(x, y)\nr = {e};\n");
        agree(&src, "probe", &[x, y]);
    }

    #[test]
    fn random_loops_agree(
        n in 1u32..20,
        add in -3i32..4,
        thresh in 0i32..15,
    ) {
        let src = format!(
            "function s = lp(n)\ns = 0;\nfor k = 1:n\n if k > {thresh}\n  s = s + k * {add};\n else\n  s = s - 1;\n end\nend\n"
        );
        agree(&src, "lp", &[f64::from(n)]);
    }

    #[test]
    fn random_array_programs_agree(n in 1u32..15, stride in 1u32..4) {
        let src = format!(
            "function s = ap(n)\nv = zeros(1, n);\nfor k = 1:n\n v(k) = k * {stride};\nend\ns = sum(v) + v(1) + v(n);\n"
        );
        agree(&src, "ap", &[f64::from(n)]);
    }
}

#[test]
fn division_by_zero_agrees() {
    agree("function r = dz(x, y)\nr = x / y;\n", "dz", &[1.0, 0.0]);
    agree("function r = dz(x, y)\nr = x / y;\n", "dz", &[0.0, 0.0]);
}

#[test]
fn negative_sqrt_agrees() {
    // Result is complex; compare |.| via abs.
    agree(
        "function r = ns(x, y)\nr = abs(sqrt(x) + y);\n",
        "ns",
        &[-4.0, 1.0],
    );
}

#[test]
fn empty_range_loops_agree() {
    agree(
        "function s = er(n)\ns = 0;\nfor k = 1:n\n s = s + 1;\nend\n",
        "er",
        &[0.0],
    );
    agree(
        "function s = er2(n)\ns = 5;\nfor k = 3:n\n s = s + k;\nend\n",
        "er2",
        &[2.0],
    );
}

#[test]
fn fractional_steps_agree() {
    agree(
        "function s = fs(n)\ns = 0;\nfor t = 0:0.1:n\n s = s + t;\nend\n",
        "fs",
        &[1.0],
    );
}

#[test]
fn descending_ranges_agree() {
    agree(
        "function s = dr(n)\ns = 0;\nfor k = n:-1:1\n s = s + k * k;\nend\n",
        "dr",
        &[7.0],
    );
}

#[test]
fn nested_breaks_agree() {
    agree(
        "function s = nb(n)\ns = 0;\nfor i = 1:n\n for j = 1:n\n  if j > i\n   break\n  end\n  s = s + 1;\n end\n if s > 40\n  break\n end\nend\n",
        "nb",
        &[10.0],
    );
}

#[test]
fn continue_agrees() {
    agree(
        "function s = ct(n)\ns = 0;\nfor k = 1:n\n if mod(k, 3) == 0\n  continue\n end\n s = s + k;\nend\n",
        "ct",
        &[20.0],
    );
}

#[test]
fn shadowed_builtin_agrees() {
    agree(
        "function r = sh(x)\npi = x;\nr = pi * 2;\n",
        "sh",
        &[5.0],
    );
}

#[test]
fn ambiguous_symbol_agrees() {
    // Paper Figure 2 (left): `i` ambiguous between √−1 and a variable.
    agree(
        "function r = amb(n)\nk = 0;\nwhile k < n\n z = i;\n i = z + 1;\n k = k + 1;\nend\nr = abs(i) + abs(z);\n",
        "amb",
        &[3.0],
    );
}

#[test]
fn vector_growth_orientation_agrees() {
    agree(
        "function r = vg(n)\nv = [1 2];\nv(n) = 9;\n[rr, cc] = size(v);\nr = rr * 1000 + cc;\n",
        "vg",
        &[6.0],
    );
    agree(
        "function r = cg(n)\nv = [1; 2];\nv(n) = 9;\n[rr, cc] = size(v);\nr = rr * 1000 + cc;\n",
        "cg",
        &[6.0],
    );
}

#[test]
fn matrix_linear_growth_errors_agree() {
    agree(
        "function r = mg(n)\nA = [1 2; 3 4];\nA(n) = 7;\nr = A(n);\n",
        "mg",
        &[9.0], // error in both worlds
    );
    agree(
        "function r = mg2(n)\nA = [1 2; 3 4];\nA(n) = 7;\nr = A(n);\n",
        "mg2",
        &[3.0], // in-bounds linear write works in both worlds
    );
}

#[test]
fn two_d_growth_agrees() {
    agree(
        "function r = g2(n)\nB(2, n) = 5;\n[rr, cc] = size(B);\nr = rr * 100 + cc + B(2, n);\n",
        "g2",
        &[4.0],
    );
}

#[test]
fn logical_operators_agree() {
    for (x, y) in [(0.0, 0.0), (1.0, 0.0), (0.0, 2.0), (3.0, 4.0)] {
        agree(
            "function r = lg(x, y)\nr = (x & y) * 100 + (x | y) * 10 + (~x);\n",
            "lg",
            &[x, y],
        );
        agree(
            "function r = sc(x, y)\nif x > 0 && y > 0\n r = 1;\nelseif x > 0 || y > 0\n r = 2;\nelse\n r = 3;\nend\n",
            "sc",
            &[x, y],
        );
    }
}

#[test]
fn integer_overflowing_powers_agree() {
    agree("function r = pw(x, y)\nr = x ^ y;\n", "pw", &[2.0, 40.0]);
    agree("function r = pw2(x, y)\nr = x ^ y;\n", "pw2", &[-2.0, 3.0]);
}
