//! Differential testing: the compiled modes must agree with the
//! interpreter on randomly generated straight-line scalar programs and on
//! a set of adversarial snippets. This is the repository's safety claim
//! exercised in bulk — "a wrong guess … never affects program
//! correctness".

use majic::{ExecMode, Majic, Value};
use majic_testkit::{forall, Rng};

fn run(mode: ExecMode, src: &str, func: &str, args: &[f64]) -> Result<f64, String> {
    let mut m = Majic::with_mode(mode);
    m.load_source(src).map_err(|e| e.to_string())?;
    if mode == ExecMode::Spec {
        m.speculate_all();
    }
    let argv: Vec<Value> = args.iter().map(|&v| Value::scalar(v)).collect();
    let out = m.call(func, &argv, 1).map_err(|e| e.to_string())?;
    out[0].to_scalar().map_err(|e| e.to_string())
}

fn agree(src: &str, func: &str, args: &[f64]) {
    let reference = run(ExecMode::Interpret, src, func, args);
    for mode in [
        ExecMode::Mcc,
        ExecMode::Jit,
        ExecMode::Spec,
        ExecMode::Falcon,
    ] {
        let got = run(mode, src, func, args);
        match (&reference, &got) {
            (Ok(a), Ok(b)) => {
                let close = a == b
                    || (a - b).abs() <= 1e-9 * a.abs().max(1.0)
                    || (a.is_nan() && b.is_nan());
                assert!(close, "{mode:?}: {b} vs interpreter {a}\n{src}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{mode:?} disagreement: interp {a:?}, compiled {b:?}\n{src}"),
        }
    }
}

/// A tiny expression generator over two scalar parameters.
fn arb_expr(rng: &mut Rng, depth: u32) -> String {
    if depth == 0 {
        match rng.below(4) {
            0 => "x".to_owned(),
            1 => "y".to_owned(),
            2 => format!("{}", rng.range_i64(-5, 20)),
            _ => format!("{}.5", rng.range_u64(1, 5)),
        }
    } else {
        match rng.weighted(&[4, 1, 1, 1, 1, 1]) {
            0 => {
                let a = arb_expr(rng, depth - 1);
                let b = arb_expr(rng, depth - 1);
                let op = rng.choose(&["+", "-", "*", "/"]);
                format!("({a} {op} {b})")
            }
            1 => format!("(-{})", arb_expr(rng, depth - 1)),
            2 => format!("abs({})", arb_expr(rng, depth - 1)),
            3 => format!("floor({})", arb_expr(rng, depth - 1)),
            4 => format!("({})^2", arb_expr(rng, depth - 1)),
            _ => {
                let a = arb_expr(rng, depth - 1);
                let b = arb_expr(rng, depth - 1);
                format!("max({a}, {b})")
            }
        }
    }
}

#[test]
fn random_scalar_expressions_agree() {
    forall("cross_mode/random_scalar_expressions", 48, |rng| {
        let e = arb_expr(rng, 3);
        let x = rng.range_f64(-10.0, 10.0);
        let y = rng.range_f64(-10.0, 10.0);
        let src = format!("function r = probe(x, y)\nr = {e};\n");
        agree(&src, "probe", &[x, y]);
    });
}

#[test]
fn random_loops_agree() {
    forall("cross_mode/random_loops", 48, |rng| {
        let n = rng.range_u64(1, 20);
        let add = rng.range_i64(-3, 4);
        let thresh = rng.range_i64(0, 15);
        let src = format!(
            "function s = lp(n)\ns = 0;\nfor k = 1:n\n if k > {thresh}\n  s = s + k * {add};\n else\n  s = s - 1;\n end\nend\n"
        );
        agree(&src, "lp", &[n as f64]);
    });
}

#[test]
fn random_array_programs_agree() {
    forall("cross_mode/random_array_programs", 48, |rng| {
        let n = rng.range_u64(1, 15);
        let stride = rng.range_u64(1, 4);
        let src = format!(
            "function s = ap(n)\nv = zeros(1, n);\nfor k = 1:n\n v(k) = k * {stride};\nend\ns = sum(v) + v(1) + v(n);\n"
        );
        agree(&src, "ap", &[n as f64]);
    });
}

#[test]
fn division_by_zero_agrees() {
    agree("function r = dz(x, y)\nr = x / y;\n", "dz", &[1.0, 0.0]);
    agree("function r = dz(x, y)\nr = x / y;\n", "dz", &[0.0, 0.0]);
}

#[test]
fn negative_sqrt_agrees() {
    // Result is complex; compare |.| via abs.
    agree(
        "function r = ns(x, y)\nr = abs(sqrt(x) + y);\n",
        "ns",
        &[-4.0, 1.0],
    );
}

#[test]
fn empty_range_loops_agree() {
    agree(
        "function s = er(n)\ns = 0;\nfor k = 1:n\n s = s + 1;\nend\n",
        "er",
        &[0.0],
    );
    agree(
        "function s = er2(n)\ns = 5;\nfor k = 3:n\n s = s + k;\nend\n",
        "er2",
        &[2.0],
    );
}

#[test]
fn fractional_steps_agree() {
    agree(
        "function s = fs(n)\ns = 0;\nfor t = 0:0.1:n\n s = s + t;\nend\n",
        "fs",
        &[1.0],
    );
}

#[test]
fn descending_ranges_agree() {
    agree(
        "function s = dr(n)\ns = 0;\nfor k = n:-1:1\n s = s + k * k;\nend\n",
        "dr",
        &[7.0],
    );
}

#[test]
fn nested_breaks_agree() {
    agree(
        "function s = nb(n)\ns = 0;\nfor i = 1:n\n for j = 1:n\n  if j > i\n   break\n  end\n  s = s + 1;\n end\n if s > 40\n  break\n end\nend\n",
        "nb",
        &[10.0],
    );
}

#[test]
fn continue_agrees() {
    agree(
        "function s = ct(n)\ns = 0;\nfor k = 1:n\n if mod(k, 3) == 0\n  continue\n end\n s = s + k;\nend\n",
        "ct",
        &[20.0],
    );
}

#[test]
fn shadowed_builtin_agrees() {
    agree("function r = sh(x)\npi = x;\nr = pi * 2;\n", "sh", &[5.0]);
}

#[test]
fn ambiguous_symbol_agrees() {
    // Paper Figure 2 (left): `i` ambiguous between √−1 and a variable.
    agree(
        "function r = amb(n)\nk = 0;\nwhile k < n\n z = i;\n i = z + 1;\n k = k + 1;\nend\nr = abs(i) + abs(z);\n",
        "amb",
        &[3.0],
    );
}

#[test]
fn vector_growth_orientation_agrees() {
    agree(
        "function r = vg(n)\nv = [1 2];\nv(n) = 9;\n[rr, cc] = size(v);\nr = rr * 1000 + cc;\n",
        "vg",
        &[6.0],
    );
    agree(
        "function r = cg(n)\nv = [1; 2];\nv(n) = 9;\n[rr, cc] = size(v);\nr = rr * 1000 + cc;\n",
        "cg",
        &[6.0],
    );
}

#[test]
fn matrix_linear_growth_errors_agree() {
    agree(
        "function r = mg(n)\nA = [1 2; 3 4];\nA(n) = 7;\nr = A(n);\n",
        "mg",
        &[9.0], // error in both worlds
    );
    agree(
        "function r = mg2(n)\nA = [1 2; 3 4];\nA(n) = 7;\nr = A(n);\n",
        "mg2",
        &[3.0], // in-bounds linear write works in both worlds
    );
}

#[test]
fn two_d_growth_agrees() {
    agree(
        "function r = g2(n)\nB(2, n) = 5;\n[rr, cc] = size(B);\nr = rr * 100 + cc + B(2, n);\n",
        "g2",
        &[4.0],
    );
}

#[test]
fn logical_operators_agree() {
    for (x, y) in [(0.0, 0.0), (1.0, 0.0), (0.0, 2.0), (3.0, 4.0)] {
        agree(
            "function r = lg(x, y)\nr = (x & y) * 100 + (x | y) * 10 + (~x);\n",
            "lg",
            &[x, y],
        );
        agree(
            "function r = sc(x, y)\nif x > 0 && y > 0\n r = 1;\nelseif x > 0 || y > 0\n r = 2;\nelse\n r = 3;\nend\n",
            "sc",
            &[x, y],
        );
    }
}

#[test]
fn integer_overflowing_powers_agree() {
    agree("function r = pw(x, y)\nr = x ^ y;\n", "pw", &[2.0, 40.0]);
    agree("function r = pw2(x, y)\nr = x ^ y;\n", "pw2", &[-2.0, 3.0]);
}

#[test]
fn complex_prod_agrees_and_is_the_true_product() {
    // Regression: the runtime's complex reduction once hardcoded the
    // `sum` accumulator, so `prod` of a complex vector returned 1 + Σz
    // instead of Πz — in every execution mode, since they all share the
    // builtin library. (1 + 2i)·3i = -6 + 3i.
    let src = "function r = p()\nz = [1 + 2i, 3i];\nr = prod(z);\n";
    for mode in [
        ExecMode::Interpret,
        ExecMode::Mcc,
        ExecMode::Jit,
        ExecMode::Spec,
        ExecMode::Falcon,
    ] {
        let mut m = Majic::with_mode(mode);
        m.load_source(src).unwrap();
        if mode == ExecMode::Spec {
            m.speculate_all();
        }
        let out = m.call("p", &[], 1).unwrap();
        match &out[0] {
            Value::Complex(z) => {
                assert!(z.is_scalar(), "{mode:?}: expected scalar, got {z:?}");
                let z = z.first();
                assert_eq!((z.re, z.im), (-6.0, 3.0), "{mode:?}");
            }
            other => panic!("{mode:?}: expected complex scalar, got {other:?}"),
        }
    }
}

#[test]
fn complex_sum_agrees_across_modes() {
    // The sibling of the prod regression: sum must keep its meaning
    // through the shared reduction helper. (1 + 2i) + 3i = 1 + 5i.
    let src = "function r = s()\nz = [1 + 2i, 3i];\nr = sum(z);\n";
    for mode in [
        ExecMode::Interpret,
        ExecMode::Mcc,
        ExecMode::Jit,
        ExecMode::Spec,
        ExecMode::Falcon,
    ] {
        let mut m = Majic::with_mode(mode);
        m.load_source(src).unwrap();
        if mode == ExecMode::Spec {
            m.speculate_all();
        }
        let out = m.call("s", &[], 1).unwrap();
        match &out[0] {
            Value::Complex(z) => {
                let z = z.first();
                assert_eq!((z.re, z.im), (1.0, 5.0), "{mode:?}");
            }
            other => panic!("{mode:?}: expected complex scalar, got {other:?}"),
        }
    }
}
