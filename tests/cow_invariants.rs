//! Property tests for the copy-on-write value representation.
//!
//! The runtime's matrices share their buffers (`x = y` is O(1)) and
//! every mutation site is uniqueness-aware: a uniquely-owned buffer is
//! written in place, a shared one is snapshotted first. These tests pin
//! the three invariants that make that safe and fast:
//!
//! 1. **Snapshot isolation** — after `x = y; y(i) = c`, `x` is
//!    bitwise-unchanged, in every execution mode.
//! 2. **Copy elision** — a uniquely-owned buffer is never copied on a
//!    store (asserted through the `runtime.matrix.deep_copy` counter).
//! 3. **Shared growth safety** — growing a shared, oversized buffer
//!    within its allocation neither re-layouts nor copies; the alias
//!    keeps observing its original extent and contents.
//!
//! The deep-copy counter is process-global, so every test here takes
//! one lock: a concurrently-running test mutating a shared matrix would
//! otherwise bleed into a delta measurement.

use majic::diff::{run_case, value_bits_eq, DiffCase};
use majic::{ExecMode, Majic};
use majic_runtime::ops::{self, Subscript};
use majic_runtime::{Matrix, Value};
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn deep_copies() -> u64 {
    majic_trace::counter("runtime.matrix.deep_copy").get()
}

#[test]
fn alias_snapshot_isolation_in_every_mode() {
    let _g = serial();
    // NaN and -0.0 in the argument make "bitwise-unchanged" a real
    // claim, not just value equality.
    let arg = Value::Real(Matrix::from_vec(1, 3, vec![1.5, f64::NAN, -0.0]));
    let case = DiffCase {
        source: "function r = f(a)\nx = a;\ny = x;\ny(2) = 99;\nr = x;\n".to_owned(),
        entry: "f".to_owned(),
        args: vec![arg.clone()],
        nargout: 1,
    };
    let report = run_case(&case);
    assert!(report.is_clean(), "{:?}", report.divergences);
    for outcome in &report.outcomes {
        let out = &outcome.result.as_ref().expect("runs cleanly")[0];
        assert!(
            value_bits_eq(out, &arg),
            "{}: mutating the alias leaked into x: {out:?}",
            outcome.label
        );
    }
}

#[test]
fn unique_buffer_is_never_copied_on_store() {
    let _g = serial();
    let before = deep_copies();
    let mut m: Matrix<f64> = Matrix::zeros(32, 32);
    let p = m.data_ptr();
    for k in 0..m.numel() {
        m.set_linear(k, k as f64);
    }
    // The same holds one level up, through the Value store entry point
    // the interpreter and VM use.
    let mut v = Value::Real(m);
    ops::index_set(
        &mut v,
        &[Subscript::Index(Value::scalar(7.0))],
        &Value::scalar(-1.0),
        false,
    )
    .expect("in-bounds store");
    assert_eq!(
        deep_copies() - before,
        0,
        "a uniquely-owned buffer must never be copied on store"
    );
    let Value::Real(m) = v else { unreachable!() };
    assert_eq!(m.data_ptr(), p, "the allocation never moved");
}

#[test]
fn shared_buffer_store_takes_exactly_one_snapshot() {
    let _g = serial();
    let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
    let mut y = x.clone();
    let before = deep_copies();
    y.set_linear(1, 99.0);
    assert_eq!(deep_copies() - before, 1, "first store snapshots once");
    assert_eq!(x.to_contiguous(), vec![1.0, 2.0, 3.0, 4.0]);
    // y is uniquely owned now: further stores are free.
    y.set_linear(2, 98.0);
    y.set_linear(3, 97.0);
    assert_eq!(deep_copies() - before, 1, "later stores write in place");
}

#[test]
fn shared_oversized_growth_never_reallocates_in_place() {
    let _g = serial();
    // Oversize a vector so the allocation has slack, then alias it.
    let mut x: Matrix<f64> = Matrix::zeros(10, 1);
    x.grow(11, 1, true);
    assert!(x.has_slack());
    let y = x.clone();
    let p = x.data_ptr();
    let before = deep_copies();
    // Growth within the allocation only bumps x's logical extent: no
    // re-layout, no copy, and the shared buffer is never written.
    x.grow(12, 1, true);
    assert_eq!(deep_copies() - before, 0);
    assert_eq!(x.data_ptr(), p);
    assert!(x.shares_buffer_with(&y));
    assert_eq!((y.rows(), y.cols()), (11, 1));
    // The first store into the grown region snapshots x; y keeps the
    // original allocation and its all-zero contents.
    x.set(11, 0, 5.0);
    assert_eq!(deep_copies() - before, 1);
    assert!(!x.shares_buffer_with(&y));
    assert_eq!(y.data_ptr(), p);
    assert!(y.iter().all(|&v| v == 0.0));
}

/// The acceptance claim behind `figure_copyelision`: a compiled (and an
/// interpreted) element-update loop over a uniquely-owned array records
/// zero deep copies end to end.
#[test]
fn engine_update_loop_records_zero_deep_copies() {
    let _g = serial();
    let source = "function r = f(n)\na = zeros(1, n);\nfor k = 1:n\na(k) = k;\nend\nr = sum(a);\n";
    for mode in [ExecMode::Interpret, ExecMode::Jit] {
        let mut session = Majic::with_mode(mode);
        session.load_source(source).expect("parses");
        // Warm up first: compilation itself is not under test.
        session
            .call("f", &[Value::scalar(8.0)], 1)
            .expect("warm-up call");
        let before = deep_copies();
        let out = session
            .call("f", &[Value::scalar(512.0)], 1)
            .expect("update loop runs");
        assert_eq!(out[0], Value::scalar(512.0 * 513.0 / 2.0));
        assert_eq!(
            deep_copies() - before,
            0,
            "{mode:?}: the uniquely-owned update loop must not deep-copy"
        );
    }
}
