//! End-to-end integration tests: MATLAB source through parsing,
//! disambiguation, inference, code generation, and VM execution, in
//! every engine mode.

use majic::{ExecMode, Majic, Value};

const MODES: [ExecMode; 5] = [
    ExecMode::Interpret,
    ExecMode::Mcc,
    ExecMode::Jit,
    ExecMode::Spec,
    ExecMode::Falcon,
];

fn scalar(v: &Value) -> f64 {
    v.to_scalar().unwrap()
}

fn run_all_modes(src: &str, func: &str, args: &[f64], expect: f64) {
    for mode in MODES {
        let mut m = Majic::with_mode(mode);
        m.load_source(src).unwrap();
        if mode == ExecMode::Spec {
            m.speculate_all();
        }
        let argv: Vec<Value> = args.iter().map(|&v| Value::scalar(v)).collect();
        let out = m
            .call(func, &argv, 1)
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        let got = scalar(&out[0]);
        assert!(
            (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
            "{mode:?}: {func}{args:?} = {got}, expected {expect}"
        );
    }
}

#[test]
fn poly_from_the_paper() {
    // Figure 3's running example.
    let src = "function p = poly(x)\np = x.^5 + 3*x + 2;\n";
    run_all_modes(src, "poly", &[3.0], 254.0);
    run_all_modes(src, "poly", &[2.5], 2.5f64.powi(5) + 3.0 * 2.5 + 2.0);
}

#[test]
fn scalar_loops() {
    let src = "function s = sumsq(n)\ns = 0;\nfor k = 1:n\n s = s + k*k;\nend\n";
    run_all_modes(src, "sumsq", &[100.0], 338350.0);
}

#[test]
fn while_loops_and_conditionals() {
    let src = "function c = collatz(n)\nc = 0;\nwhile n > 1\n if mod(n, 2) == 0\n  n = n / 2;\n else\n  n = 3*n + 1;\n end\n c = c + 1;\nend\n";
    run_all_modes(src, "collatz", &[27.0], 111.0);
}

#[test]
fn array_fill_and_sum() {
    let src = "function s = fillsum(n)\nA = zeros(1, n);\nfor k = 1:n\n A(k) = k * 2;\nend\ns = 0;\nfor k = 1:n\n s = s + A(k);\nend\n";
    run_all_modes(src, "fillsum", &[50.0], 2550.0);
}

#[test]
fn two_dimensional_arrays() {
    let src = "function s = grid2(n)\nA = zeros(n, n);\nfor i = 1:n\n for j = 1:n\n  A(i, j) = i * 10 + j;\n end\nend\ns = A(1, 1) + A(n, n) + A(2, 3);\n";
    run_all_modes(src, "grid2", &[5.0], 11.0 + 55.0 + 23.0);
}

#[test]
fn growing_arrays() {
    let src = "function n = grow(k)\nv(1) = 1;\nfor i = 2:k\n v(i) = v(i-1) + 1;\nend\nn = length(v) + v(k);\n";
    run_all_modes(src, "grow", &[30.0], 60.0);
}

#[test]
fn recursion() {
    let src = "function f = fib(n)\nif n < 2\n f = n;\n return\nend\nf = fib(n-1) + fib(n-2);\n";
    run_all_modes(src, "fib", &[15.0], 610.0);
}

#[test]
fn mutual_calls_and_inlining() {
    let src = "function y = outer(x)\ny = helper(x) + helper(x + 1);\nfunction z = helper(a)\nz = a * a;\n";
    run_all_modes(src, "outer", &[3.0], 9.0 + 16.0);
}

#[test]
fn multiple_outputs() {
    let src = "function [s, p] = sumprod(a, b)\ns = a + b;\np = a * b;\n";
    for mode in MODES {
        let mut m = Majic::with_mode(mode);
        m.load_source(src).unwrap();
        let out = m
            .call("sumprod", &[Value::scalar(3.0), Value::scalar(4.0)], 2)
            .unwrap();
        assert_eq!(scalar(&out[0]), 7.0, "{mode:?}");
        assert_eq!(scalar(&out[1]), 12.0, "{mode:?}");
    }
}

#[test]
fn complex_arithmetic() {
    // |(1+2i)^2| = |(-3+4i)| = 5
    let src = "function m = cmag(a, b)\nz = a + b*i;\nw = z * z;\nm = abs(w);\n";
    run_all_modes(src, "cmag", &[1.0, 2.0], 5.0);
}

#[test]
fn builtin_vectors() {
    let src = "function s = vsum(n)\nv = 1:n;\ns = sum(v) + max(v) - min(v);\n";
    run_all_modes(src, "vsum", &[10.0], 55.0 + 10.0 - 1.0);
}

#[test]
fn matrix_algebra() {
    // Solve a small linear system: x = A\b with A = [4 3; 6 3].
    let src = "function y = solve2()\nA = [4 3; 6 3];\nb = [10; 12];\nx = A \\ b;\ny = x(1) * 100 + x(2);\n";
    run_all_modes(src, "solve2", &[], 102.0);
}

#[test]
fn matrix_vector_products() {
    let src = "function r = mv(n)\nA = eye(n) * 2;\nx = ones(n, 1);\ny = A * x;\nr = sum(y);\n";
    run_all_modes(src, "mv", &[6.0], 12.0);
}

#[test]
fn gemv_shaped_expression() {
    // a*x + b*(C*y): the dgemv fusion path.
    let src = "function r = axpy(n)\nC = eye(n);\ny = ones(n, 1);\nx = ones(n, 1);\nz = 2*x + 3*(C*y);\nr = sum(z);\n";
    run_all_modes(src, "axpy", &[4.0], 20.0);
}

#[test]
fn small_vector_unrolling_semantics() {
    let src = "function s = smallvec(k)\na = [1 2 3];\nb = [10 20 30];\nc = a + b * k;\ns = c(1) + c(2) + c(3);\n";
    run_all_modes(src, "smallvec", &[2.0], 21.0 + 42.0 + 63.0);
}

#[test]
fn transpose_and_slices() {
    let src = "function s = tsl(n)\nA = zeros(n, n);\nfor i = 1:n\n for j = 1:n\n  A(i, j) = i + j;\n end\nend\nB = A';\nrow = B(1, :);\ns = sum(row);\n";
    // B(1,:) = A(:,1)' = (1+1, 2+1, ..., n+1)
    run_all_modes(src, "tsl", &[5.0], (2..=6).sum::<i32>() as f64);
}

#[test]
fn end_subscripts() {
    let src = "function y = lastelem(n)\nv = 1:n;\ny = v(end) + v(end - 1);\n";
    run_all_modes(src, "lastelem", &[10.0], 19.0);
}

#[test]
fn strings_and_output() {
    for mode in MODES {
        let mut m = Majic::with_mode(mode);
        m.load_source("function greet()\ndisp('hello world');\n")
            .unwrap();
        m.call("greet", &[], 0).unwrap();
        assert_eq!(m.take_printed(), "hello world\n", "{mode:?}");
    }
}

#[test]
fn runtime_errors_are_equivalent() {
    let src = "function y = oob(n)\nv = 1:5;\ny = v(n);\n";
    for mode in MODES {
        let mut m = Majic::with_mode(mode);
        m.load_source(src).unwrap();
        // In-range works.
        let ok = m.call("oob", &[Value::scalar(3.0)], 1).unwrap();
        assert_eq!(scalar(&ok[0]), 3.0);
        // Out of range errors in every mode (the subscript check must
        // never be *incorrectly* removed).
        assert!(m.call("oob", &[Value::scalar(9.0)], 1).is_err(), "{mode:?}");
        assert!(m.call("oob", &[Value::scalar(0.0)], 1).is_err(), "{mode:?}");
    }
}

#[test]
fn globals_fall_back_to_interpreter() {
    let src = "function bump()\nglobal counter\ncounter = counter + 1;\n";
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source(src).unwrap();
    m.eval("global counter\ncounter = 0;").unwrap();
    m.eval("bump();\nbump();").unwrap();
    assert_eq!(scalar(m.var("counter").unwrap()), 2.0);
}

#[test]
fn repository_reuses_compiled_code() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source("function y = f(x)\ny = x + 1;\n").unwrap();
    m.call("f", &[Value::scalar(1.0)], 1).unwrap();
    let after_first = m.repository().version_count("f");
    // Same signature: the locator must hit.
    m.call("f", &[Value::scalar(1.0)], 1).unwrap();
    assert_eq!(m.repository().version_count("f"), after_first);
    assert!(m.repository().stats().hits >= 1);
}

#[test]
fn repository_specializes_per_signature() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source("function y = g(x)\ny = x * 2;\n").unwrap();
    m.call("g", &[Value::scalar(1.0)], 1).unwrap();
    // Different intrinsic: a complex argument needs new code.
    let z = Value::complex_scalar(majic_runtime::Complex::new(1.0, 1.0));
    let out = m.call("g", &[z], 1).unwrap();
    match &out[0] {
        Value::Complex(c) => {
            assert_eq!(c.first().re, 2.0);
            assert_eq!(c.first().im, 2.0);
        }
        other => panic!("expected complex, got {other:?}"),
    }
    assert!(m.repository().version_count("g") >= 2);
}

#[test]
fn signature_widening_caps_recursive_explosion() {
    let src = "function f = fib(n)\nif n < 2\n f = n;\n return\nend\nf = fib(n-1) + fib(n-2);\n";
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.options.inline = false; // force one call per recursion level
    m.load_source(src).unwrap();
    m.call("fib", &[Value::scalar(18.0)], 1).unwrap();
    assert!(
        m.repository().version_count("fib") <= 4,
        "widening must cap versions, got {}",
        m.repository().version_count("fib")
    );
}

#[test]
fn spec_mode_falls_back_to_jit_on_bad_guess() {
    // The speculator guesses `n` integer scalar (colon hint). Calling
    // with a *matrix* defeats the guess; the JIT must kick in and the
    // result must still be right (guess failures cost time, never
    // correctness).
    let src = "function s = total(n)\ns = 0;\nfor k = 1:n\n s = s + k;\nend\n";
    let mut m = Majic::with_mode(ExecMode::Spec);
    m.load_source(src).unwrap();
    m.speculate_all();
    assert_eq!(m.repository().version_count("total"), 1);
    let out = m.call("total", &[Value::scalar(10.0)], 1).unwrap();
    assert_eq!(scalar(&out[0]), 55.0);
    // 1:n with a matrix n uses only the first element — exercised via
    // the interpreter for reference.
    let mat = Value::Real(majic_runtime::Matrix::from_rows(vec![vec![4.0, 9.0]]));
    let out = m.call("total", &[mat], 1).unwrap();
    assert_eq!(scalar(&out[0]), 10.0);
    // The miss must have JIT-compiled an extra version.
    assert!(m.repository().version_count("total") >= 2);
}

#[test]
fn eval_defers_calls_to_the_repository() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source("function y = sq(x)\ny = x * x;\n").unwrap();
    m.eval("a = sq(7);").unwrap();
    assert_eq!(scalar(m.var("a").unwrap()), 49.0);
    assert!(m.repository().version_count("sq") >= 1);
}

#[test]
fn phase_times_accumulate() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source("function s = work(n)\ns = 0;\nfor k = 1:n\n s = s + sqrt(k);\nend\n")
        .unwrap();
    m.call("work", &[Value::scalar(1000.0)], 1).unwrap();
    assert!(m.times.execution.as_nanos() > 0);
    assert!(m.times.inference.as_nanos() > 0);
    assert!(m.times.codegen.as_nanos() > 0);
    m.reset_times();
    assert_eq!(m.times.total().as_nanos(), 0);
}

#[test]
fn rand_streams_match_across_modes() {
    // Identical LCG streams: interpreted and compiled runs of `rand`
    // must agree bit-for-bit.
    let src = "function s = randsum(n)\ns = 0;\nfor k = 1:n\n s = s + rand;\nend\n";
    let mut reference = None;
    for mode in MODES {
        let mut m = Majic::with_mode(mode);
        m.load_source(src).unwrap();
        let out = m.call("randsum", &[Value::scalar(10.0)], 1).unwrap();
        let v = scalar(&out[0]);
        match reference {
            None => reference = Some(v),
            Some(r) => assert_eq!(r, v, "{mode:?} diverged"),
        }
    }
}
