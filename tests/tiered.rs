//! Tier-transition coverage for profile-guided recompilation.
//!
//! A JIT-compiled (tier-0) version carries execution counters; crossing
//! the hotness threshold enqueues a background recompile that re-runs
//! inference with the observed signature through the optimizing
//! pipeline and publishes the result as tier-1. These tests pin the
//! promotion policy: it fires at the threshold and not below, the
//! promoted code is preferred on dispatch but never changes results,
//! tier-1 entries survive a persistent-cache round trip, and a call the
//! tier-1 version does not admit falls back to tier-0 compilation.

use majic::{ExecMode, Majic, Value};

/// A loop-heavy function: one call of `hot(n)` contributes ~`n` loop
/// back-edges to the hotness score on top of the per-call weight.
fn loop_source(name: &str) -> String {
    format!("function s = {name}(n)\ns = 0;\nfor i = 1:n\ns = s + i * i;\nend\n")
}

fn scalar(out: &[Value]) -> f64 {
    out[0].to_scalar().expect("scalar result")
}

#[test]
fn promotion_fires_at_threshold() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.set_audit_enabled(true);
    m.options.tier.threshold = 1;
    m.load_source(&loop_source("tier_hot")).unwrap();

    let first = scalar(&m.call("tier_hot", &[200.0f64.into()], 1).unwrap());
    m.background().wait();
    let stats = m
        .background()
        .stats()
        .tier
        .expect("promotion started the tier pool");
    assert_eq!(stats.published, 1, "one hot version, one tier-1 publish");
    assert_eq!(m.repository().tier_versions(), [1, 1]);

    // The next call dispatches the tier-1 version — bitwise the same.
    let again = scalar(&m.call("tier_hot", &[200.0f64.into()], 1).unwrap());
    assert_eq!(first.to_bits(), again.to_bits());
    let repo_stats = m.repository().stats();
    assert!(repo_stats.tier1_hits >= 1, "tier-1 never dispatched");

    // The audit log attributes the background compile to hot promotion.
    let why = m.explain("tier_hot");
    assert!(
        why.records.iter().any(|r| r.trigger == "recompile_hot"),
        "no recompile_hot record:\n{}",
        why.report
    );
    assert!(
        why.records
            .iter()
            .any(|r| r.trigger == "recompile_hot" && r.tier == Some(1)),
        "recompile_hot record missing tier 1:\n{}",
        why.report
    );
}

#[test]
fn no_promotion_below_threshold() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    // One call of hot(50) scores ~16 + 50 ≪ the default 10_000.
    m.load_source(&loop_source("tier_cold")).unwrap();
    m.call("tier_cold", &[50.0f64.into()], 1).unwrap();
    m.background().wait();
    assert!(
        m.background().stats().tier.is_none(),
        "tier pool started while cold"
    );
    assert_eq!(m.repository().tier_versions(), [1, 0]);
}

#[test]
fn promotion_disabled_by_options() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.options.tier.enabled = false;
    m.options.tier.threshold = 1;
    m.load_source(&loop_source("tier_off")).unwrap();
    m.call("tier_off", &[200.0f64.into()], 1).unwrap();
    m.background().wait();
    assert!(m.background().stats().tier.is_none());
    assert_eq!(m.repository().tier_versions(), [1, 0]);
}

#[test]
fn tier1_survives_cache_round_trip() {
    let dir = std::env::temp_dir().join(format!("majic-tiered-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("repo.majiccache");
    let src = loop_source("tier_warm");

    // Session 1: get hot, promote, flush tier-0 + tier-1 to disk.
    let first = {
        let mut m = Majic::with_mode(ExecMode::Jit);
        m.options.tier.threshold = 1;
        m.attach_cache(&path);
        m.load_source(&src).unwrap();
        let out = scalar(&m.call("tier_warm", &[150.0f64.into()], 1).unwrap());
        m.background().wait();
        assert_eq!(m.repository().tier_versions(), [1, 1]);
        out
    }; // drop saves the cache

    // Session 2: the tier-1 entry installs warm — no recompilation, no
    // re-promotion needed — and is preferred on dispatch.
    let mut m = Majic::with_mode(ExecMode::Jit);
    let report = m.attach_cache(&path);
    assert_eq!(report.loaded, 2, "both tiers were persisted");
    m.load_source(&src).unwrap();
    assert_eq!(
        m.repository().tier_versions(),
        [1, 1],
        "tier metadata lost across the cache round trip"
    );
    let warm = scalar(&m.call("tier_warm", &[150.0f64.into()], 1).unwrap());
    assert_eq!(first.to_bits(), warm.to_bits());
    assert!(m.repository().stats().tier1_hits >= 1);
    assert!(
        m.background().stats().tier.is_none(),
        "warm tier-1 re-promoted"
    );

    drop(m);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn redefinition_during_promotion_never_publishes_stale() {
    // A hot-promotion job compiles from the registry snapshot taken at
    // enqueue time. If the function is redefined while the job is in
    // flight, the worker's publish must be dropped (the repository's
    // generation check): old-source tier-1 code outranking the fresh
    // tier-0 version would silently return results from the previous
    // definition. Redefinition and promotion are interleaved with no
    // drain between them to maximize the in-flight overlap; every call
    // must answer from the *current* source no matter which way each
    // race resolves.
    fn source(c: u32) -> String {
        format!("function s = tier_race(n)\ns = {c};\nfor i = 1:n\ns = s + {c} * i;\nend\n")
    }
    let expected = |c: u32| f64::from(c) * (1.0 + 5050.0); // n = 100

    let mut m = Majic::with_mode(ExecMode::Jit);
    m.options.tier.threshold = 1; // every first call promotes
    for round in 0..20u32 {
        let c = round % 3 + 1;
        m.load_source(&source(c)).unwrap();
        // First call: fresh tier-0 JIT of the current source, hot at
        // once, promotion enqueued while the previous round's job may
        // still be compiling the old source.
        let first = scalar(&m.call("tier_race", &[100.0f64.into()], 1).unwrap());
        assert_eq!(first, expected(c), "round {round}: stale code dispatched");
        // Second call may pick up this round's tier-1 publish.
        let second = scalar(&m.call("tier_race", &[100.0f64.into()], 1).unwrap());
        assert_eq!(
            second,
            expected(c),
            "round {round}: stale tier-1 dispatched"
        );
    }
    m.background().wait();
    // Every drained job either published current-source code, was
    // dropped as stale, or failed — and dispatch still answers from the
    // last definition.
    let stats = m.background().stats().tier.expect("promotions ran");
    assert_eq!(stats.completed(), stats.enqueued);
    let last = scalar(&m.call("tier_race", &[100.0f64.into()], 1).unwrap());
    assert_eq!(last, expected(19 % 3 + 1));
}

#[test]
fn unseen_signature_falls_back_to_tier0() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.options.tier.threshold = 1;
    // The loop result depends on the argument, so a wrong dispatch
    // would be visible in the output.
    m.load_source(&loop_source("tier_fallback")).unwrap();
    m.call("tier_fallback", &[300.0f64.into()], 1).unwrap();
    m.background().wait();
    assert_eq!(m.repository().tier_versions(), [1, 1]);

    // Both existing versions were compiled for the constant signature
    // of 300.0; an argument outside that range is not admitted by the
    // tier-1 version, so dispatch must fall back to a fresh tier-0
    // compile — and still agree with the interpreter bit for bit.
    let compiled = scalar(&m.call("tier_fallback", &[77.0f64.into()], 1).unwrap());
    let mut interp = Majic::with_mode(ExecMode::Interpret);
    interp.load_source(&loop_source("tier_fallback")).unwrap();
    let reference = scalar(&interp.call("tier_fallback", &[77.0f64.into()], 1).unwrap());
    assert_eq!(compiled.to_bits(), reference.to_bits());
    let [t0, _t1] = m.repository().tier_versions();
    assert!(t0 >= 2, "no tier-0 fallback version was compiled");
}
