//! End-to-end warm-start tests: the persistent repository cache through
//! the full engine — populate in one session, reload in the next, and
//! every failure mode (corruption, truncation, version skew, fingerprint
//! skew, changed source) degrades to a correct cold start.

use majic::{ExecMode, Majic, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const POLY: &str = "function p = poly(x)\np = x.^5 + 3*x + 2;\n";
const POLY_V2: &str = "function p = poly(x)\np = x.^5 + 3*x + 7;\n";

struct TempFile {
    dir: PathBuf,
    path: PathBuf,
}

impl TempFile {
    fn new() -> TempFile {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "majic-warmstart-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.majiccache");
        TempFile { dir, path }
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn jit() -> Majic {
    Majic::with_mode(ExecMode::Jit)
}

fn call1(m: &mut Majic, f: &str, x: f64) -> f64 {
    m.call(f, &[Value::scalar(x)], 1).unwrap()[0]
        .to_scalar()
        .unwrap()
}

/// Compile `src` in a throwaway session and flush it to `path`.
fn populate(path: &std::path::Path, src: &str, f: &str, x: f64) -> f64 {
    let mut m = jit();
    m.attach_cache(path);
    m.load_source(src).unwrap();
    let r = call1(&mut m, f, x);
    let written = m.save_cache().unwrap();
    assert!(written > 0, "populate session wrote nothing");
    r
}

#[test]
fn warm_session_skips_compilation_and_matches_cold() {
    let t = TempFile::new();
    let cold = populate(&t.path, POLY, "poly", 3.0);

    let mut m = jit();
    let report = m.attach_cache(&t.path);
    assert!(report.loaded >= 1, "{report:?}");
    m.load_source(POLY).unwrap();
    let report = m.cache_report();
    assert!(report.installed >= 1, "{report:?}");
    assert_eq!(report.rejected_source_hash, 0, "{report:?}");

    let warm = call1(&mut m, "poly", 3.0);
    assert_eq!(warm.to_bits(), cold.to_bits(), "warm result differs");
    // The call was answered by the repository's signature check alone:
    // nothing was selected, optimized, or register-allocated.
    assert_eq!(
        m.times.codegen,
        Duration::ZERO,
        "warm first call still compiled: {:?}",
        m.times
    );
}

#[test]
fn changed_source_is_rejected_and_recompiled() {
    let t = TempFile::new();
    populate(&t.path, POLY, "poly", 3.0); // 3^5 + 9 + 2 = 254

    // Same function name, different body. The cached version must NOT
    // run; the fresh source must.
    let mut m = jit();
    m.attach_cache(&t.path);
    m.load_source(POLY_V2).unwrap();
    let report = m.cache_report();
    assert_eq!(report.installed, 0, "{report:?}");
    assert!(report.rejected_source_hash >= 1, "{report:?}");
    assert_eq!(call1(&mut m, "poly", 3.0), 259.0); // v2: +7, not +2
}

#[test]
fn garbage_file_is_a_cold_start() {
    let t = TempFile::new();
    std::fs::write(&t.path, b"this is not a majic cache at all").unwrap();
    let mut m = jit();
    let report = m.attach_cache(&t.path);
    assert_eq!(report.loaded, 0);
    assert_eq!(report.rejected_version, 1, "{report:?}");
    m.load_source(POLY).unwrap();
    assert_eq!(call1(&mut m, "poly", 3.0), 254.0);
}

#[test]
fn container_version_skew_is_a_cold_start() {
    let t = TempFile::new();
    populate(&t.path, POLY, "poly", 3.0);
    let mut bytes = std::fs::read(&t.path).unwrap();
    bytes[8] ^= 0xFF; // first byte of the little-endian format version
    std::fs::write(&t.path, &bytes).unwrap();

    let mut m = jit();
    let report = m.attach_cache(&t.path);
    assert_eq!(
        (report.loaded, report.rejected_version),
        (0, 1),
        "{report:?}"
    );
    m.load_source(POLY).unwrap();
    assert_eq!(call1(&mut m, "poly", 3.0), 254.0);
}

#[test]
fn build_fingerprint_skew_is_a_cold_start() {
    let t = TempFile::new();
    populate(&t.path, POLY, "poly", 3.0);
    // The fingerprint string starts right after the 12-byte header and
    // its 4-byte length; flipping its first character simulates a cache
    // written by a different compiler build.
    let mut bytes = std::fs::read(&t.path).unwrap();
    bytes[16] ^= 0x20;
    std::fs::write(&t.path, &bytes).unwrap();

    let mut m = jit();
    let report = m.attach_cache(&t.path);
    assert_eq!(
        (report.loaded, report.rejected_fingerprint),
        (0, 1),
        "{report:?}"
    );
    m.load_source(POLY).unwrap();
    assert_eq!(call1(&mut m, "poly", 3.0), 254.0);
}

#[test]
fn truncation_at_every_length_degrades_to_a_correct_cold_start() {
    let t = TempFile::new();
    populate(&t.path, POLY, "poly", 3.0);
    let full = std::fs::read(&t.path).unwrap();
    // A crash can cut the file anywhere (atomic rename makes this
    // unreachable in practice; the reader must survive it anyway).
    for n in 0..full.len() {
        std::fs::write(&t.path, &full[..n]).unwrap();
        let mut m = jit();
        m.attach_cache(&t.path);
        m.load_source(POLY).unwrap();
        assert_eq!(call1(&mut m, "poly", 3.0), 254.0, "truncated at {n}");
    }
}

#[test]
fn stale_temp_file_from_a_killed_writer_is_harmless() {
    let t = TempFile::new();
    // Simulate a writer killed mid-write: a partial temp file next to
    // the (absent) real one.
    let tmp = t.dir.join("repo.majiccache.tmp");
    std::fs::write(&tmp, b"half-writ").unwrap();

    let mut m = jit();
    let report = m.attach_cache(&t.path);
    assert_eq!(report, Default::default(), "tmp file leaked into load");
    m.load_source(POLY).unwrap();
    assert_eq!(call1(&mut m, "poly", 3.0), 254.0);
    m.save_cache().unwrap();
    assert!(!tmp.exists(), "save left the stale temp file behind");

    // And the save that replaced it produced a loadable cache.
    let mut m = jit();
    let report = m.attach_cache(&t.path);
    assert!(report.loaded >= 1, "{report:?}");
}

#[test]
fn drop_flushes_the_cache() {
    let t = TempFile::new();
    {
        let mut m = jit();
        m.attach_cache(&t.path);
        m.load_source(POLY).unwrap();
        assert_eq!(call1(&mut m, "poly", 3.0), 254.0);
        // No explicit save_cache: Drop must flush.
    }
    assert!(t.path.exists(), "drop did not write the cache");

    let mut m = jit();
    m.attach_cache(&t.path);
    m.load_source(POLY).unwrap();
    assert!(m.cache_report().installed >= 1, "{:?}", m.cache_report());
    assert_eq!(call1(&mut m, "poly", 3.0), 254.0);
}

#[test]
fn unloaded_functions_survive_a_save() {
    let t = TempFile::new();
    populate(&t.path, POLY, "poly", 3.0);

    // A session that never loads `poly` but saves: poly's entry must be
    // carried over, not dropped.
    {
        let mut m = jit();
        m.attach_cache(&t.path);
        m.load_source("function y = other(x)\ny = x + 1;\n")
            .unwrap();
        assert_eq!(call1(&mut m, "other", 1.0), 2.0);
        m.save_cache().unwrap();
    }

    let mut m = jit();
    m.attach_cache(&t.path);
    m.load_source(POLY).unwrap();
    assert!(
        m.cache_report().installed >= 1,
        "carried-over entry was lost: {:?}",
        m.cache_report()
    );
    assert_eq!(call1(&mut m, "poly", 3.0), 254.0);
}
