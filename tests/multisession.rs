//! Concurrent-session semantics of the shared [`CompilerService`]:
//! cross-session code sharing, session-local redefinition, bitwise
//! parity with solo sessions under interleaved call/redefine stress,
//! the deprecated single-pool helpers' parity with the [`Background`]
//! handle, and per-service audit enablement.

use majic::{CompilerService, Majic, Value};
use std::collections::HashMap;

const SESSIONS: usize = 4;
const ROUNDS: usize = 3;
const CALLS_PER_ROUND: usize = 3;

/// A per-(session, round) redefinition of the same function name: the
/// accumulation loop makes compilation worthwhile and any stale
/// dispatch (an old `c`) produce a visibly different value.
fn variant_src(c: u64) -> String {
    format!(
        "function y = msf(x)\n\
         s = 0;\n\
         for k = 1:40\n\
         s = s + x * {c} + k;\n\
         end\n\
         y = s;\n"
    )
}

/// The function every session loads with identical source — the
/// cross-session sharing case.
const COMMON_SRC: &str = "function y = mscommon(x)\n\
                          s = 1;\n\
                          for k = 1:25\n\
                          s = s + x / k;\n\
                          end\n\
                          y = s;\n";

fn coeff(session: usize, round: usize) -> u64 {
    (session as u64 + 1) * 100 + round as u64
}

fn args_for(call: usize) -> Vec<Value> {
    vec![Value::scalar(1.5 + call as f64 * 0.25)]
}

fn bits_of(out: &[Value]) -> u64 {
    out[0].to_scalar().expect("scalar result").to_bits()
}

/// Interleaved call/redefine from four concurrent sessions: every call
/// must be bitwise-identical to the same (variant, argument) evaluated
/// by a solo single-session engine — which rules out both stale
/// executions (an old variant's code answering after a redefinition)
/// and cross-session leakage (another session's same-named variant
/// answering here). The identical `mscommon` source must be shared:
/// compiled once, dispatched by everyone.
#[test]
fn concurrent_sessions_match_solo_bitwise() {
    // Solo ground truth, one fresh engine per (session, round).
    let mut expected: HashMap<(usize, usize, usize), u64> = HashMap::new();
    let mut expected_common: HashMap<usize, u64> = HashMap::new();
    for session in 0..SESSIONS {
        for round in 0..ROUNDS {
            let mut solo = Majic::new();
            solo.load_source(&variant_src(coeff(session, round)))
                .unwrap();
            for call in 0..CALLS_PER_ROUND {
                let out = solo.call("msf", &args_for(call), 1).unwrap();
                expected.insert((session, round, call), bits_of(&out));
            }
        }
    }
    {
        let mut solo = Majic::new();
        solo.load_source(COMMON_SRC).unwrap();
        for call in 0..CALLS_PER_ROUND {
            let out = solo.call("mscommon", &args_for(call), 1).unwrap();
            expected_common.insert(call, bits_of(&out));
        }
    }

    let service = CompilerService::new();
    let expected = &expected;
    let expected_common = &expected_common;
    std::thread::scope(|scope| {
        for session in 0..SESSIONS {
            let service = &service;
            scope.spawn(move || {
                let mut s = service.session();
                s.load_source(COMMON_SRC).unwrap();
                for round in 0..ROUNDS {
                    // Redefine `msf` (round 0 is the initial definition)
                    // while the other sessions keep calling their own.
                    s.load_source(&variant_src(coeff(session, round))).unwrap();
                    for call in 0..CALLS_PER_ROUND {
                        let out = s.call("msf", &args_for(call), 1).unwrap();
                        assert_eq!(
                            bits_of(&out),
                            expected[&(session, round, call)],
                            "session {session} round {round} call {call}: \
                             result differs from the solo engine"
                        );
                        let out = s.call("mscommon", &args_for(call), 1).unwrap();
                        assert_eq!(
                            bits_of(&out),
                            expected_common[&call],
                            "session {session}: shared function diverged from solo"
                        );
                    }
                }
            });
        }
    });

    let stats = service.repository().stats();
    assert!(
        stats.shared_hits > 0,
        "identical-source sessions never shared a compiled version \
         (stats: {stats:?})"
    );
}

/// A session's redefinition must not disturb a neighbor mid-stream,
/// and dropping a session must leave its namespaces warm for the next
/// session on the same source.
#[test]
fn redefinition_and_reuse_across_session_lifetimes() {
    let service = CompilerService::new();
    let src = variant_src(7);
    let expected = {
        let mut solo = Majic::new();
        solo.load_source(&src).unwrap();
        bits_of(&solo.call("msf", &args_for(0), 1).unwrap())
    };
    {
        let mut a = service.session();
        a.load_source(&src).unwrap();
        assert_eq!(bits_of(&a.call("msf", &args_for(0), 1).unwrap()), expected);
        let mut b = service.session();
        b.load_source(&variant_src(9)).unwrap(); // different definition
        b.call("msf", &args_for(0), 1).unwrap();
        // A is unaffected by B's same-named function.
        assert_eq!(bits_of(&a.call("msf", &args_for(0), 1).unwrap()), expected);
    } // both sessions drop; compiled versions stay
    let misses_before = service.repository().stats().misses;
    let mut c = service.session();
    c.load_source(&src).unwrap();
    assert_eq!(bits_of(&c.call("msf", &args_for(0), 1).unwrap()), expected);
    assert_eq!(
        service.repository().stats().misses,
        misses_before,
        "the successor session should dispatch the kept version, not recompile"
    );
}

/// The deprecated per-pool helpers must agree with the [`Background`]
/// handle that replaces them — same pools, same numbers.
#[test]
#[allow(deprecated)]
fn deprecated_helpers_match_background_handle() {
    let mut m = Majic::new();
    m.load_source("function y = mspar_a(x)\ny = x * 3;\n")
        .unwrap();
    m.load_source("function y = mspar_b(x)\ny = x + 4;\n")
        .unwrap();
    m.speculate_background(1);
    m.spec_wait(); // old wait…
    m.background().wait(); // …and new wait; both must return with the queue drained

    let old = m.spec_stats().expect("speculation pool is running");
    let new = m.background().stats().spec.expect("same pool, new API");
    assert_eq!(old.enqueued, new.enqueued);
    assert_eq!(old.published, new.published);
    assert_eq!(old.failed, new.failed);
    assert_eq!(old.stale, new.stale);
    assert_eq!(old.enqueued, 2, "both functions queued");

    assert!(m.tier_stats().is_none(), "no promotion happened");
    assert!(m.background().stats().tier.is_none());
    assert!(m.finish_tiering().is_none());

    let finished = m.finish_speculation().expect("pool was running");
    assert_eq!(finished.enqueued, old.enqueued);
    assert!(
        m.background().stats().spec.is_none(),
        "finish_speculation must tear down the same pool background().finish() would"
    );
    assert!(m.spec_stats().is_none());
}

/// Audit enablement is per service: compilations of a service with
/// auditing off must leave no records even while another service's
/// auditing keeps the process-wide recorder on.
#[test]
fn audit_enablement_is_per_service() {
    let loud = CompilerService::new();
    let quiet = CompilerService::new();
    loud.set_audit(true);
    assert!(loud.audit_enabled());
    assert!(!quiet.audit_enabled());

    let mut sl = loud.session();
    let mut sq = quiet.session();
    sl.load_source("function y = msaud_loud(x)\ny = x + 1;\n")
        .unwrap();
    sq.load_source("function y = msaud_quiet(x)\ny = x + 2;\n")
        .unwrap();
    sl.call("msaud_loud", &[Value::scalar(1.0)], 1).unwrap();
    sq.call("msaud_quiet", &[Value::scalar(1.0)], 1).unwrap();

    let loud_records = majic_trace::audit::records_for("msaud_loud");
    assert!(!loud_records.is_empty(), "audited service left no records");
    assert_eq!(
        loud_records[0].session,
        Some(sl.id()),
        "records must say which session compiled"
    );
    assert!(
        majic_trace::audit::records_for("msaud_quiet").is_empty(),
        "a service with auditing off polluted the process recorder"
    );

    // Turning the last interested service off releases the recorder.
    loud.set_audit(false);
    assert!(!loud.audit_enabled());
}
