//! End-to-end tests for the compilation audit log and `Majic::explain`
//! (`docs/EXPLAIN_FORMAT.md`): drive real programs through the engine
//! and assert that the explanation answers the questions it promises —
//! which variables inference widened and why, what the inliner decided
//! at each call site, how the persistent cache treated the session, and
//! that the machine-readable JSON form round-trips through a parser.
//!
//! The audit store is process-global (like tracing), so this file is its
//! own test binary and every test uses function names unique to it; the
//! tests never call `audit::reset()`, which would race with each other.

use majic::{ExecMode, Majic, RepoCache, Value};
use majic_testkit::json::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir {
    dir: PathBuf,
}

impl TempDir {
    fn new() -> TempDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "majic-explain-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir { dir }
    }

    fn file(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn jit() -> Majic {
    let m = Majic::with_mode(ExecMode::Jit);
    m.set_audit_enabled(true);
    m
}

fn call1(m: &mut Majic, f: &str, x: f64) -> f64 {
    m.call(f, &[Value::scalar(x)], 1).unwrap()[0]
        .to_scalar()
        .unwrap()
}

/// A fib-style loop: the accumulators' value ranges grow every
/// iteration, so the inference fixpoint cannot converge under its
/// iteration cap without widening them — exactly the event the audit
/// log must surface with a variable name and a reason.
#[test]
fn explain_reports_inference_widenings() {
    let mut m = jit();
    m.load_source(
        "function f = exwfib(n)\n\
         a = 0;\n\
         b = 1;\n\
         for i = 1:n\n\
         t = a + b;\n\
         a = b;\n\
         b = t;\n\
         end\n\
         f = a;\n",
    )
    .unwrap();
    assert_eq!(call1(&mut m, "exwfib", 10.0), 55.0);

    let ex = m.explain("exwfib");
    assert_eq!(ex.function, "exwfib");
    let rec = ex
        .records
        .iter()
        .find(|r| r.trigger == "first_call")
        .expect("no first_call record for exwfib");
    assert!(
        rec.outcome.starts_with("published"),
        "unexpected outcome: {}",
        rec.outcome
    );
    assert!(
        !rec.widenings.is_empty(),
        "fib-style loop inferred without widening?\n{}",
        ex.report
    );
    for w in &rec.widenings {
        assert!(!w.variable.is_empty(), "widening lost its variable name");
        assert!(!w.reason.is_empty(), "widening lost its reason");
        assert_ne!(w.from, w.to, "widening that changed nothing: {w:?}");
    }
    // The fib accumulators are what keeps moving.
    let vars: Vec<&str> = rec.widenings.iter().map(|w| w.variable.as_str()).collect();
    assert!(
        vars.iter().any(|v| ["a", "b", "t"].contains(v)),
        "widened variables {vars:?} do not include a fib accumulator"
    );
    assert!(
        ex.report.contains("widen "),
        "report does not render widenings:\n{}",
        ex.report
    );
    // Codegen shape rides along on the same record.
    let cg = rec
        .codegen
        .expect("published record without codegen summary");
    assert!(cg.instructions > 0);
}

/// Inliner verdicts: a small helper is inlined (with the positive
/// reason), and a self-recursive callee is refused at the expansion
/// depth limit (with that reason).
#[test]
fn explain_reports_inliner_verdicts_with_reasons() {
    let mut m = jit();
    m.load_source("function y = exhelp(x)\ny = x + 1;\n")
        .unwrap();
    m.load_source("function z = exmain(x)\nz = exhelp(x) * 2;\n")
        .unwrap();
    m.load_source(
        "function r = exrec(n)\n\
         if n <= 1\n\
         r = 1;\n\
         else\n\
         r = n * exrec(n - 1);\n\
         end\n",
    )
    .unwrap();
    assert_eq!(call1(&mut m, "exmain", 3.0), 8.0);
    assert_eq!(call1(&mut m, "exrec", 5.0), 120.0);

    let ex = m.explain("exmain");
    let rec = ex.records.first().expect("no record for exmain");
    let v = rec
        .inlining
        .iter()
        .find(|v| v.callee == "exhelp")
        .expect("no inline verdict for exhelp");
    assert!(v.inlined, "one-statement helper not inlined: {}", v.reason);
    assert!(
        v.reason.contains("statement"),
        "positive verdict lost its reason: {}",
        v.reason
    );
    assert!(
        ex.report.contains("inline"),
        "report does not render inliner verdicts:\n{}",
        ex.report
    );

    let ex = m.explain("exrec");
    let rec = ex.records.first().expect("no record for exrec");
    let refusal = rec
        .inlining
        .iter()
        .find(|v| !v.inlined)
        .expect("recursive expansion was never refused");
    assert_eq!(refusal.callee, "exrec");
    assert!(
        refusal.reason.contains("recursive"),
        "refusal carries the wrong reason: {}",
        refusal.reason
    );
}

/// An IR-version bump (simulated by a cache written under a different
/// build fingerprint) must show up in the explanation as the
/// `cache.reject.fingerprint` bucket, with the session degrading to a
/// clean cold start.
#[test]
fn explain_reports_cache_reject_bucket_after_ir_bump() {
    let t = TempDir::new();
    let path = t.file("stale.majiccache");
    // A cache written by "another build": same container format, but the
    // fingerprint an IR/wire/version bump would change.
    RepoCache::new(&path, "majic-0.0.0/ir0/wire0")
        .save(&[])
        .unwrap();

    let mut m = jit();
    let report = m.attach_cache(&path);
    assert_eq!(report.rejected_fingerprint, 1, "{report:?}");

    m.load_source("function y = exstale(x)\ny = 2 * x;\n")
        .unwrap();
    assert_eq!(call1(&mut m, "exstale", 4.0), 8.0);

    let ex = m.explain("exstale");
    let reject = ex
        .events
        .iter()
        .find(|e| e.kind == "cache.reject.fingerprint")
        .expect("fingerprint rejection left no session event");
    assert!(
        reject.detail.contains("different compiler build"),
        "reject event lost its why: {}",
        reject.detail
    );
    // The cold start still compiled the function the ordinary way.
    assert!(ex.records.iter().any(|r| r.trigger == "first_call"));
    assert!(
        ex.report.contains("cache.reject.fingerprint"),
        "report does not surface the reject bucket:\n{}",
        ex.report
    );
    // Session-wide view agrees.
    assert!(m.explain_stats().contains("cache.reject.fingerprint"));
}

/// Warm hits and source-hash rejects are attributed per function.
#[test]
fn explain_reports_warm_cache_interactions() {
    let t = TempDir::new();
    let path = t.file("warm.majiccache");
    {
        let mut m = jit();
        m.attach_cache(&path);
        m.load_source("function y = exwarm(x)\ny = x - 1;\n")
            .unwrap();
        assert_eq!(call1(&mut m, "exwarm", 3.0), 2.0);
        assert!(m.save_cache().unwrap() > 0);
    }

    // Warm session: the cached version installs without compiling.
    let mut m = jit();
    m.attach_cache(&path);
    m.load_source("function y = exwarm(x)\ny = x - 1;\n")
        .unwrap();
    let ex = m.explain("exwarm");
    let warm = ex
        .records
        .iter()
        .find(|r| r.trigger == "warm_cache")
        .expect("warm install left no record");
    assert!(
        warm.outcome.contains("persistent cache"),
        "{}",
        warm.outcome
    );
    assert_eq!(warm.compile_ns, 0, "a warm hit compiled something");

    // Changed source: the same cache is now refused for this function.
    let mut m = jit();
    m.attach_cache(&path);
    m.load_source("function y = exwarm(x)\ny = x - 2;\n")
        .unwrap();
    let ex = m.explain("exwarm");
    let reject = ex
        .events
        .iter()
        .find(|e| e.kind == "cache.reject.source_hash" && e.function == "exwarm")
        .expect("source-hash rejection left no session event");
    assert!(
        reject.detail.contains("source changed"),
        "{}",
        reject.detail
    );
}

/// Speculative compilation records carry the spec trigger, and the
/// background variant records how long the job waited in the queue.
#[test]
fn explain_reports_speculative_triggers() {
    let mut m = jit();
    m.load_source("function y = exspec(x)\ny = x * x;\n")
        .unwrap();
    m.speculate_all();
    let ex = m.explain("exspec");
    assert!(
        ex.records.iter().any(|r| r.trigger == "spec_sync"),
        "synchronous speculation left no record:\n{}",
        ex.report
    );

    let mut m = jit();
    m.load_source("function y = exspecbg(x)\ny = x * x;\n")
        .unwrap();
    m.speculate_background(1);
    m.background().wait();
    let ex = m.explain("exspecbg");
    let rec = ex
        .records
        .iter()
        .find(|r| r.trigger == "spec_worker")
        .expect("background speculation left no record");
    assert!(
        rec.queue_wait_ns.is_some(),
        "spec-worker record lost its queue wait"
    );
}

/// The machine-readable form (`MAJIC_EXPLAIN=json:…` writes exactly
/// this) parses with a real JSON parser and carries the same facts as
/// the in-process API.
#[test]
fn audit_json_parses_and_matches_records() {
    let mut m = jit();
    m.load_source(
        "function f = exjson(n)\n\
         s = 0;\n\
         for i = 1:n\n\
         s = s + i;\n\
         end\n\
         f = s;\n",
    )
    .unwrap();
    assert_eq!(call1(&mut m, "exjson", 4.0), 10.0);

    let snap = majic_trace::audit::snapshot();
    let doc =
        Json::parse(&majic_trace::audit::audit_json(&snap)).expect("audit JSON does not parse");
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .expect("no records array");
    let rec = records
        .iter()
        .find(|r| r.get("function").and_then(Json::as_str) == Some("exjson"))
        .expect("exjson record missing from JSON");
    assert_eq!(
        rec.get("trigger").and_then(Json::as_str),
        Some("first_call")
    );
    assert!(rec
        .get("outcome")
        .and_then(Json::as_str)
        .unwrap()
        .starts_with("published"));
    let widenings = rec
        .get("widenings")
        .and_then(Json::as_arr)
        .expect("record lost its widenings array");
    assert!(
        !widenings.is_empty(),
        "accumulator loop widened nothing in JSON"
    );
    assert!(widenings[0]
        .get("variable")
        .and_then(Json::as_str)
        .is_some());
    assert!(widenings[0].get("reason").and_then(Json::as_str).is_some());
    assert!(rec
        .get("codegen")
        .and_then(|c| c.get("instructions"))
        .is_some());
    doc.get("events")
        .and_then(Json::as_arr)
        .expect("no events array");
    assert!(doc.get("evicted_records").and_then(Json::as_f64).is_some());
}
