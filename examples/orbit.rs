//! The paper's `orbec` workload as an API example: Euler–Cromer
//! integration of a one-body orbit, comparing interpreted and
//! speculatively compiled execution of the same MATLAB source.
//!
//! Run with `cargo run --release --example orbit`.

use majic::{ExecMode, Majic, Value};
use std::time::Instant;

/// Small-fixed-vector style (the paper's "array benchmarks" category).
/// The `dt <= 0` guard is natural defensive MATLAB — and it is also what
/// lets the speculator guess `dt` is a real scalar (relational-operand
/// hint, §2.5). Without it, `dt` would be guessed complex and the
/// speculative code would be safe but slow: the paper's "more insidious
/// failure … perfectly safe to execute, but suboptimal".
const ORBIT: &str = "\
function e = orbit(nstep, dt)
if dt <= 0
  error('dt must be positive');
end
r = [1 0];
v = [0 2*pi];
gm = 4*pi*pi;
e = 0;
for k = 1:nstep
  d = sqrt(r(1)*r(1) + r(2)*r(2));
  a = -gm / (d*d*d);
  v(1) = v(1) + dt * a * r(1);
  v(2) = v(2) + dt * a * r(2);
  r(1) = r(1) + dt * v(1);
  r(2) = r(2) + dt * v(2);
end
e = 0.5*(v(1)*v(1) + v(2)*v(2)) - gm / sqrt(r(1)*r(1) + r(2)*r(2));
";

fn main() {
    let steps = Value::scalar(60_000.0);
    let dt = Value::scalar(0.0001);

    let mut interp = Majic::with_mode(ExecMode::Interpret);
    interp.load_source(ORBIT).expect("valid source");
    let t = Instant::now();
    let e_i = interp
        .call("orbit", &[steps.clone(), dt.clone()], 1)
        .expect("interpreted");
    let t_interp = t.elapsed();

    // Speculative mode: the repository compiles ahead of time from type
    // hints (subscripts ⇒ real arrays, colon bounds ⇒ integer scalars);
    // by the time we call, optimized code is already waiting.
    let mut spec = Majic::with_mode(ExecMode::Spec);
    spec.load_source(ORBIT).expect("valid source");
    let hidden = spec.speculate_all();
    let t = Instant::now();
    let e_s = spec.call("orbit", &[steps, dt], 1).expect("speculative");
    let t_spec = t.elapsed();

    println!("orbit energy (interpreted):  {}", e_i[0]);
    println!("orbit energy (speculative):  {}", e_s[0]);
    println!(
        "interpreter {t_interp:?}  vs  speculative {t_spec:?}  (plus {hidden:?} hidden ahead-of-time compile)"
    );
    println!(
        "speedup: {:.1}x",
        t_interp.as_secs_f64() / t_spec.as_secs_f64()
    );
}
