//! A minimal interactive MaJIC prompt: type MATLAB statements, define
//! functions with `function …` blocks pasted as one line using `;`, and
//! watch the repository fill up.
//!
//! Run with `cargo run --release --example repl`, then try:
//!
//! ```text
//! >> x = 2 + 3 * 4
//! >> v = 1:10; s = sum(v)
//! >> .mode jit
//! >> \explain poly
//! >> .quit
//! ```

use majic::{ExecMode, Majic};
use std::io::{BufRead, Write};

fn main() {
    // The repl always runs with the compilation audit log on: it is the
    // interactive consumer `\explain` and `\stats` read from, and the
    // flight recorder is bounded + cheap enough to leave recording.
    let mut session = Majic::with_mode(ExecMode::Jit);
    session.set_audit_enabled(true);
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    println!("MaJIC interactive session — .help for commands");
    print!(">> ");
    out.flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        match trimmed {
            ".quit" | ".exit" => break,
            ".help" => {
                println!(".mode interp|mcc|jit|spec|falcon   switch execution mode");
                println!(".repo                               repository statistics");
                println!("\\explain <fn>                       why does <fn> run the way it does?");
                println!("\\stats                              session-wide compilation audit");
                println!(".quit                               leave");
            }
            "\\stats" => {
                print!("{}", session.explain_stats());
                let stats = session.repository().stats();
                println!(
                    "tiers: {} tier-0 versions ({} hits), {} tier-1 versions ({} hits)",
                    stats.tier0_versions, stats.tier0_hits, stats.tier1_versions, stats.tier1_hits
                );
            }
            ".repo" => {
                let stats = session.repository().stats();
                println!(
                    "function locator: {} hits, {} misses ({:.0}% hit rate), {} inserts, {} invalidations",
                    stats.hits,
                    stats.misses,
                    100.0 * stats.hit_rate(),
                    stats.inserts,
                    stats.invalidations
                );
                println!(
                    "tiers: {} tier-0 versions ({} hits), {} tier-1 versions ({} hits)",
                    stats.tier0_versions, stats.tier0_hits, stats.tier1_versions, stats.tier1_hits
                );
            }
            _ if trimmed.starts_with("\\explain") => match trimmed.split_whitespace().nth(1) {
                Some(name) => print!("{}", session.explain(name).report),
                None => println!("usage: \\explain <function>"),
            },
            _ if trimmed.starts_with(".mode") => {
                let mode = match trimmed.split_whitespace().nth(1) {
                    Some("interp") => Some(ExecMode::Interpret),
                    Some("mcc") => Some(ExecMode::Mcc),
                    Some("jit") => Some(ExecMode::Jit),
                    Some("spec") => Some(ExecMode::Spec),
                    Some("falcon") => Some(ExecMode::Falcon),
                    _ => None,
                };
                match mode {
                    Some(mode) => {
                        session.options.mode = mode;
                        if mode == ExecMode::Spec {
                            session.speculate_all();
                        }
                        println!("mode set to {mode:?}");
                    }
                    None => println!("unknown mode"),
                }
            }
            "" => {}
            src if src.starts_with("function") => {
                if let Err(e) = session.load_source(&src.replace(';', "\n")) {
                    println!("error: {e}");
                }
            }
            src => {
                if let Err(e) = session.eval(src) {
                    println!("error: {e}");
                }
                let printed = session.take_printed();
                if !printed.is_empty() {
                    print!("{printed}");
                }
            }
        }
        print!(">> ");
        out.flush().ok();
    }
}
