//! Quick start: load a MATLAB function, call it in every execution mode,
//! and look at the compiled-code repository.
//!
//! Run with `cargo run --release --example quickstart`.

use majic::{ExecMode, Majic, Value};
use std::time::Instant;

const POLY: &str = "function p = poly(x)\np = x.^5 + 3*x + 2;\n";

const SUMSQ: &str = "function s = sumsq(n)\ns = 0;\nfor k = 1:n\n s = s + k * k;\nend\n";

fn main() {
    // A JIT session: functions compile on first call, specialized to the
    // invocation's exact type signature.
    let mut session = Majic::with_mode(ExecMode::Jit);
    session.load_source(POLY).expect("valid source");
    session.load_source(SUMSQ).expect("valid source");

    let out = session
        .call("poly", &[Value::scalar(3.0)], 1)
        .expect("poly(3)");
    println!("poly(3) = {}", out[0]);

    // Call again with a different intrinsic type: the repository
    // compiles a second version rather than reusing the integer one.
    let out = session
        .call("poly", &[Value::scalar(2.5)], 1)
        .expect("poly(2.5)");
    println!("poly(2.5) = {}", out[0]);
    println!(
        "repository now holds {} versions of poly",
        session.repository().version_count("poly")
    );

    // Compare the interpreter against the JIT on a scalar loop.
    let n = Value::scalar(300_000.0);
    let mut interp = Majic::with_mode(ExecMode::Interpret);
    interp.load_source(SUMSQ).expect("valid source");
    let t = Instant::now();
    let a = interp
        .call("sumsq", std::slice::from_ref(&n), 1)
        .expect("interpreted");
    let t_interp = t.elapsed();

    let t = Instant::now();
    let b = session.call("sumsq", &[n], 1).expect("compiled");
    let t_jit = t.elapsed();
    assert_eq!(a[0], b[0]);

    println!(
        "sumsq(300000): interpreter {:?}, JIT {:?} (compile time included) — speedup {:.1}x",
        t_interp,
        t_jit,
        t_interp.as_secs_f64() / t_jit.as_secs_f64()
    );

    // The REPL face of the same engine.
    session.eval("y = poly(4);").expect("eval");
    println!("eval: y = {}", session.var("y").expect("bound"));
}
