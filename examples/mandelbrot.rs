//! The paper's `mandel` workload as an API example: a Mandelbrot set
//! rendered by MATLAB code running on the MaJIC JIT, printed as ASCII.
//!
//! Run with `cargo run --release --example mandelbrot`.

use majic::{ExecMode, Majic, Value};

/// Complex-arithmetic Mandelbrot iteration in MATLAB (the `i` builtin is
/// exactly the speculation hazard §3.6 describes).
const MANDEL: &str = "\
function M = mandel(n, maxit)
M = zeros(n, n);
for r = 1:n
  for c = 1:n
    x0 = -2.1 + 2.6 * (c - 1) / (n - 1);
    y0 = -1.2 + 2.4 * (r - 1) / (n - 1);
    z = 0 + 0*i;
    z0 = x0 + y0*i;
    k = 0;
    while k < maxit & abs(z) < 2
      z = z*z + z0;
      k = k + 1;
    end
    M(r, c) = k;
  end
end
";

fn main() {
    let mut session = Majic::with_mode(ExecMode::Jit);
    session.load_source(MANDEL).expect("valid source");

    let n = 36;
    let maxit = 40.0;
    let out = session
        .call(
            "mandel",
            &[Value::scalar(f64::from(n)), Value::scalar(maxit)],
            1,
        )
        .expect("mandel");
    let m = out[0].to_real_matrix().expect("real counts");

    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for r in 0..m.rows() {
        let mut line = String::with_capacity(2 * m.cols());
        for c in 0..m.cols() {
            let k = m.get(r, c);
            let shade = if k >= maxit {
                '@'
            } else {
                shades[(k as usize * (shades.len() - 1)) / maxit as usize]
            };
            line.push(shade);
            line.push(shade);
        }
        println!("{line}");
    }
    println!(
        "\ncompiled with JIT: inference {:?}, codegen {:?}, execution {:?}",
        session.times.inference, session.times.codegen, session.times.execution
    );
}
