//! The MaJIC virtual machine.
//!
//! Plays the role of `vcode` in the paper: compiled MATLAB functions
//! become RISC-like register code executed by a tight dispatch loop over
//! fixed register files. Two pieces live here:
//!
//! * [`allocate`] — the **linear-scan register allocator** of Poletto &
//!   Sarkar, re-implemented from the `tcc` design exactly as the paper
//!   did ("we … re-implemented the register allocator used by tcc").
//!   Virtual registers get physical `F`/`C` registers; excess intervals
//!   spill, with reloads through reserved scratch registers. The
//!   spill-everything mode reproduces Figure 7's "no regalloc" bars
//!   ("roughly equivalent to compiling with the -g flag").
//! * [`execute`] — the executor: a program-counter loop over flattened
//!   instructions. Scalar arithmetic runs on raw `f64`/complex register
//!   files; polymorphic operations fall back to the generic runtime
//!   library, exactly mirroring the paper's generated-code tiers
//!   (Figure 3).

mod exec;
mod regalloc;

pub use exec::{execute, Dispatcher, Executable, NoDispatch, CALL_HOTNESS_WEIGHT};
pub use regalloc::{allocate, RegAllocMode};
