//! The vcode executor: a program-counter dispatch loop over flattened
//! register code.

use majic_ir::{
    serial, CBinOp, CUnOp, CmpOp, FBinOp, FUnOp, Function, GenOp, Inst, Operand, Reg, Slot,
    Terminator, VarBinding,
};
use majic_runtime::builtins::{Builtin, CallCtx};
use majic_runtime::ops::{self, Cmp, Subscript};
use majic_runtime::{linalg, Complex, Matrix, RuntimeError, RuntimeResult, Value};
use majic_types::wire::{Reader, WireError, WireResult, Writer};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::regalloc::{NUM_C_REGS, NUM_F_REGS};

/// Resolves user-function calls made by compiled code. The engine
/// implements this by consulting the code repository (compiling on a
/// miss); tests can use [`NoDispatch`].
pub trait Dispatcher {
    /// Call `name` with `args`, producing `nargout` outputs.
    ///
    /// # Errors
    ///
    /// Propagates callee errors; unknown names are
    /// [`RuntimeError::Undefined`].
    fn call_user(
        &mut self,
        name: &str,
        args: &[Value],
        nargout: usize,
        ctx: &mut CallCtx,
    ) -> RuntimeResult<Vec<Value>>;
}

/// A dispatcher that knows no functions.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDispatch;

impl Dispatcher for NoDispatch {
    fn call_user(
        &mut self,
        name: &str,
        _args: &[Value],
        _nargout: usize,
        _ctx: &mut CallCtx,
    ) -> RuntimeResult<Vec<Value>> {
        Err(RuntimeError::Undefined(name.to_owned()))
    }
}

/// One step of flattened code.
#[derive(Clone, Debug)]
enum Step {
    I(Inst),
    Jump(u32),
    /// Jump to `target` when the condition register is zero; fall
    /// through otherwise.
    BranchZero {
        cond: Reg,
        target: u32,
    },
    Ret,
}

/// Weight of one invocation relative to one loop back-edge in
/// [`Executable::hotness`]. A call does a fixed amount of work
/// (argument binding, machine setup) while a back-edge stands for one
/// loop iteration; weighting calls keeps call-dominated recursive
/// functions and iteration-dominated loop kernels on one scale, the
/// classic invocations + back-edges counter of adaptive JITs.
pub const CALL_HOTNESS_WEIGHT: u64 = 16;

/// Always-on execution counters shared by every thread running one
/// compiled version (the `Executable` itself is shared via `Arc`).
///
/// These feed the engine's tiered-recompilation policy: the dispatch
/// layer reads [`Executable::hotness`] after a call returns and promotes
/// versions that cross its threshold. The counting discipline keeps the
/// hot loop cheap: one relaxed increment per invocation, plus one local
/// (non-atomic) accumulation per loop back-edge that is flushed once
/// when the invocation leaves `run_loop`.
#[derive(Debug, Default)]
struct ExecCounters {
    /// Completed and in-progress invocations.
    calls: AtomicU64,
    /// Backward jumps taken (one per loop iteration).
    backedges: AtomicU64,
}

impl Clone for ExecCounters {
    /// Cloning snapshots the current counts: a cloned executable is
    /// still "the same code" for hotness purposes.
    fn clone(&self) -> ExecCounters {
        ExecCounters {
            calls: AtomicU64::new(self.calls.load(Ordering::Relaxed)),
            backedges: AtomicU64::new(self.backedges.load(Ordering::Relaxed)),
        }
    }
}

/// Executable (flattened, register-allocated) code for one compiled
/// function version.
#[derive(Clone, Debug)]
pub struct Executable {
    /// Function name (diagnostics).
    pub name: String,
    steps: Vec<Step>,
    f_spill: u32,
    c_spill: u32,
    slots: u32,
    params: Vec<VarBinding>,
    outputs: Vec<VarBinding>,
    /// Execution profile (not serialized: decoded code starts cold).
    counters: ExecCounters,
}

impl Executable {
    /// Flatten an already register-allocated [`Function`].
    pub fn new(f: &Function, f_spill: u32, c_spill: u32) -> Executable {
        // Layout: per block, all insts, then Jump/Branch(+Jump)/Ret.
        let mut offsets = Vec::with_capacity(f.blocks.len());
        let mut pc = 0u32;
        for b in &f.blocks {
            offsets.push(pc);
            pc += b.insts.len() as u32;
            pc += match b.term {
                Terminator::Jump(_) | Terminator::Return => 1,
                Terminator::Branch { .. } => 2,
            };
        }
        let mut steps = Vec::with_capacity(pc as usize);
        for b in &f.blocks {
            steps.extend(b.insts.iter().cloned().map(Step::I));
            match &b.term {
                Terminator::Jump(t) => steps.push(Step::Jump(offsets[t.index()])),
                Terminator::Return => steps.push(Step::Ret),
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    steps.push(Step::BranchZero {
                        cond: *cond,
                        target: offsets[else_bb.index()],
                    });
                    steps.push(Step::Jump(offsets[then_bb.index()]));
                }
            }
        }
        Executable {
            name: f.name.clone(),
            steps,
            f_spill,
            c_spill,
            slots: f.slots,
            params: f.params.clone(),
            outputs: f.outputs.clone(),
            counters: ExecCounters::default(),
        }
    }

    /// Number of flattened steps (diagnostics / benches).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Execution counts so far: `(invocations, loop back-edges)`.
    ///
    /// Both are monotone (only [`Executable::new`]/`decode` start at
    /// zero) and shared across every thread running this version.
    pub fn exec_counts(&self) -> (u64, u64) {
        (
            self.counters.calls.load(Ordering::Relaxed),
            self.counters.backedges.load(Ordering::Relaxed),
        )
    }

    /// The hotness score driving tiered recompilation:
    /// `invocations × CALL_HOTNESS_WEIGHT + loop back-edges`.
    pub fn hotness(&self) -> u64 {
        let (calls, backedges) = self.exec_counts();
        calls
            .saturating_mul(CALL_HOTNESS_WEIGHT)
            .saturating_add(backedges)
    }

    /// Serialize into the canonical binary form used by the on-disk
    /// repository cache (`docs/CACHE_FORMAT.md`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.name);
        w.u32(self.f_spill);
        w.u32(self.c_spill);
        w.u32(self.slots);
        w.u32(self.params.len() as u32);
        for p in &self.params {
            serial::encode_binding(&mut w, *p);
        }
        w.u32(self.outputs.len() as u32);
        for o in &self.outputs {
            serial::encode_binding(&mut w, *o);
        }
        w.u32(self.steps.len() as u32);
        for s in &self.steps {
            match s {
                Step::I(i) => {
                    w.u8(0);
                    serial::encode_inst(&mut w, i);
                }
                Step::Jump(t) => {
                    w.u8(1);
                    w.u32(*t);
                }
                Step::BranchZero { cond, target } => {
                    w.u8(2);
                    w.u32(cond.0);
                    w.u32(*target);
                }
                Step::Ret => w.u8(3),
            }
        }
        w.into_bytes()
    }

    /// Deserialize an [`Executable`] and **validate** it.
    ///
    /// The executor's hot loop uses unchecked register-file and
    /// program-counter accesses that are sound only for code produced by
    /// our own flattener. Decoded bytes are untrusted (a cache file may be
    /// corrupt in ways its checksum cannot see, e.g. written by a buggy
    /// build with a matching fingerprint), so after structural decoding
    /// every register, spill, slot, and jump reference is bounds-checked
    /// here. A failed check is a [`WireError`] — the cache loader treats
    /// it like any other corruption and falls back to a cold compile.
    ///
    /// # Errors
    ///
    /// Any truncation, bad tag, trailing bytes, or out-of-bounds
    /// reference.
    pub fn decode(bytes: &[u8]) -> WireResult<Executable> {
        let mut r = Reader::new(bytes);
        let name = r.str()?;
        let f_spill = r.u32()?;
        let c_spill = r.u32()?;
        let slots = r.u32()?;
        let np = r.seq_len(1)?;
        let mut params = Vec::with_capacity(np);
        for _ in 0..np {
            params.push(serial::decode_binding(&mut r)?);
        }
        let no = r.seq_len(1)?;
        let mut outputs = Vec::with_capacity(no);
        for _ in 0..no {
            outputs.push(serial::decode_binding(&mut r)?);
        }
        let ns = r.seq_len(1)?;
        let mut steps = Vec::with_capacity(ns);
        for _ in 0..ns {
            steps.push(match r.u8()? {
                0 => Step::I(serial::decode_inst(&mut r)?),
                1 => Step::Jump(r.u32()?),
                2 => Step::BranchZero {
                    cond: Reg(r.u32()?),
                    target: r.u32()?,
                },
                3 => Step::Ret,
                _ => return Err(WireError::new("step tag")),
            });
        }
        if !r.is_empty() {
            return Err(WireError::new("trailing bytes after executable"));
        }
        let exe = Executable {
            name,
            steps,
            f_spill,
            c_spill,
            slots,
            params,
            outputs,
            counters: ExecCounters::default(),
        };
        exe.validate()?;
        Ok(exe)
    }

    /// Bounds-check every reference in the decoded program (see
    /// [`Executable::decode`]). Sound code never trips these.
    fn validate(&self) -> WireResult<()> {
        let v = Validator {
            f_spill: self.f_spill,
            c_spill: self.c_spill,
            slots: self.slots,
        };
        for b in self.params.iter().chain(&self.outputs) {
            v.binding(*b)?;
        }
        // `run_loop` advances the pc with unchecked reads; a program that
        // can fall through its final step would walk off the end. The
        // flattener always ends blocks with an explicit terminator, so
        // require the same of decoded code: the last step must be an
        // unconditional control transfer.
        match self.steps.last() {
            Some(Step::Ret) | Some(Step::Jump(_)) => {}
            _ => return Err(WireError::new("executable must end in ret or jump")),
        }
        for s in &self.steps {
            match s {
                Step::Ret => {}
                Step::Jump(t) => v.target(*t, self.steps.len())?,
                Step::BranchZero { cond, target } => {
                    v.f_reg(*cond)?;
                    v.target(*target, self.steps.len())?;
                }
                Step::I(i) => v.inst(i)?,
            }
        }
        Ok(())
    }
}

/// Bounds context for [`Executable::validate`].
struct Validator {
    f_spill: u32,
    c_spill: u32,
    slots: u32,
}

impl Validator {
    fn f_reg(&self, r: Reg) -> WireResult<()> {
        (r.0 < NUM_F_REGS)
            .then_some(())
            .ok_or(WireError::new("f register out of range"))
    }

    fn c_reg(&self, r: Reg) -> WireResult<()> {
        (r.0 < NUM_C_REGS)
            .then_some(())
            .ok_or(WireError::new("c register out of range"))
    }

    fn f_sp(&self, s: u32) -> WireResult<()> {
        (s < self.f_spill)
            .then_some(())
            .ok_or(WireError::new("f spill out of range"))
    }

    fn c_sp(&self, s: u32) -> WireResult<()> {
        (s < self.c_spill)
            .then_some(())
            .ok_or(WireError::new("c spill out of range"))
    }

    fn slot(&self, s: Slot) -> WireResult<()> {
        (s.0 < self.slots)
            .then_some(())
            .ok_or(WireError::new("slot out of range"))
    }

    fn target(&self, t: u32, len: usize) -> WireResult<()> {
        ((t as usize) < len)
            .then_some(())
            .ok_or(WireError::new("jump target out of range"))
    }

    fn binding(&self, b: VarBinding) -> WireResult<()> {
        match b {
            VarBinding::F(r) => self.f_reg(r),
            VarBinding::C(r) => self.c_reg(r),
            VarBinding::Slot(s) => self.slot(s),
            VarBinding::FSpill(s) => self.f_sp(s),
            VarBinding::CSpill(s) => self.c_sp(s),
        }
    }

    fn operand(&self, a: &Operand) -> WireResult<()> {
        match a {
            Operand::Slot(s) => self.slot(*s),
            Operand::F(r) => self.f_reg(*r),
            Operand::C(r) => self.c_reg(*r),
            Operand::FSpill(s) => self.f_sp(*s),
            Operand::CSpill(s) => self.c_sp(*s),
            Operand::Str(_) | Operand::Colon => Ok(()),
        }
    }

    fn inst(&self, i: &Inst) -> WireResult<()> {
        match i {
            Inst::FConst { d, .. } => self.f_reg(*d),
            Inst::FMov { d, s } => self.f_reg(*d).and(self.f_reg(*s)),
            Inst::FBin { d, a, b, .. } | Inst::FCmp { d, a, b, .. } => {
                self.f_reg(*d).and(self.f_reg(*a)).and(self.f_reg(*b))
            }
            Inst::FUn { d, s, .. } => self.f_reg(*d).and(self.f_reg(*s)),
            Inst::FSpillLoad { d, slot } => self.f_reg(*d).and(self.f_sp(*slot)),
            Inst::FSpillStore { slot, s } => self.f_sp(*slot).and(self.f_reg(*s)),
            Inst::CConst { d, .. } => self.c_reg(*d),
            Inst::CMov { d, s } | Inst::CUn { d, s, .. } => self.c_reg(*d).and(self.c_reg(*s)),
            Inst::CBin { d, a, b, .. } => self.c_reg(*d).and(self.c_reg(*a)).and(self.c_reg(*b)),
            Inst::CAbs { d, s } | Inst::CPart { d, s, .. } => self.f_reg(*d).and(self.c_reg(*s)),
            Inst::CMake { d, re, im } => self.c_reg(*d).and(self.f_reg(*re)).and(self.f_reg(*im)),
            Inst::CSpillLoad { d, slot } => self.c_reg(*d).and(self.c_sp(*slot)),
            Inst::CSpillStore { slot, s } => self.c_sp(*slot).and(self.c_reg(*s)),
            Inst::ALoadF { d, arr, i, j, .. } => self
                .f_reg(*d)
                .and(self.slot(*arr))
                .and(self.f_reg(*i))
                .and(j.map_or(Ok(()), |j| self.f_reg(j))),
            Inst::ALoadC { d, arr, i, j, .. } => self
                .c_reg(*d)
                .and(self.slot(*arr))
                .and(self.f_reg(*i))
                .and(j.map_or(Ok(()), |j| self.f_reg(j))),
            Inst::AStoreF {
                arr, i, j, v: val, ..
            } => self
                .slot(*arr)
                .and(self.f_reg(*i))
                .and(j.map_or(Ok(()), |j| self.f_reg(j)))
                .and(self.f_reg(*val)),
            Inst::AStoreC {
                arr, i, j, v: val, ..
            } => self
                .slot(*arr)
                .and(self.f_reg(*i))
                .and(j.map_or(Ok(()), |j| self.f_reg(j)))
                .and(self.c_reg(*val)),
            Inst::ALoadConstF { d, arr, .. } => self.f_reg(*d).and(self.slot(*arr)),
            Inst::AStoreConstF { arr, v, .. } => self.slot(*arr).and(self.f_reg(*v)),
            Inst::FToSlot { slot, s } | Inst::FToSlotBool { slot, s } => {
                self.slot(*slot).and(self.f_reg(*s))
            }
            Inst::SlotToF { d, slot } | Inst::TruthF { d, slot } => {
                self.f_reg(*d).and(self.slot(*slot))
            }
            Inst::CToSlot { slot, s } => self.slot(*slot).and(self.c_reg(*s)),
            Inst::SlotToC { d, slot } => self.c_reg(*d).and(self.slot(*slot)),
            Inst::SlotMov { d, s } | Inst::SlotTake { d, s } => self.slot(*d).and(self.slot(*s)),
            Inst::ExtentF { d, arr, .. } => self.f_reg(*d).and(self.slot(*arr)),
            Inst::ErrUndefined(_) => Ok(()),
            Inst::Gen { op, dsts, args } => {
                for d in dsts {
                    self.slot(*d)?;
                }
                for a in args {
                    self.operand(a)?;
                }
                // `exec_gen` indexes some operand lists directly; enforce
                // the minimum arity each op assumes so corrupt code errors
                // here instead of panicking there.
                let (min_args, min_dsts) = match op {
                    GenOp::Binary(_) => (2, 0),
                    GenOp::Unary(_) | GenOp::Transpose(_) => (1, 0),
                    GenOp::IndexGet | GenOp::ResolveAmbiguous(_) | GenOp::Display(_) => (1, 0),
                    GenOp::IndexSet { .. } => (2, 0),
                    GenOp::Gemv => (5, 0),
                    GenOp::EnsureReal { .. } => (0, 1),
                    _ => (0, 0),
                };
                if args.len() < min_args || dsts.len() < min_dsts {
                    return Err(WireError::new("genop arity"));
                }
                Ok(())
            }
        }
    }
}

struct Machine {
    f: Vec<f64>,
    c: Vec<Complex>,
    fspill: Vec<f64>,
    cspill: Vec<Complex>,
    slots: Vec<Option<Value>>,
}

impl Machine {
    /// Read an `F` register. Register numbers come from the allocator and
    /// are always inside the fixed register file.
    #[inline(always)]
    fn rf(&self, r: Reg) -> f64 {
        debug_assert!(r.index() < self.f.len());
        // SAFETY: the register allocator only emits numbers < NUM_F_REGS,
        // and `f` is allocated with exactly that length.
        unsafe { *self.f.get_unchecked(r.index()) }
    }

    /// Write an `F` register.
    #[inline(always)]
    fn wf(&mut self, r: Reg, v: f64) {
        debug_assert!(r.index() < self.f.len());
        // SAFETY: as for `rf`.
        unsafe {
            *self.f.get_unchecked_mut(r.index()) = v;
        }
    }
}

#[inline]
fn check_index(x: f64) -> RuntimeResult<usize> {
    if x < 1.0 || x.fract() != 0.0 || !x.is_finite() {
        return Err(RuntimeError::BadSubscript(format!("{x}")));
    }
    Ok(x as usize - 1)
}

#[inline]
fn linear_rc(k: usize, rows: usize) -> (usize, usize) {
    if rows == 0 {
        (0, 0)
    } else {
        (k % rows, k / rows)
    }
}

fn undefined(slot: Slot) -> RuntimeError {
    RuntimeError::Undefined(format!("slot {slot}"))
}

/// Execute compiled code, producing the first `nargout` outputs (at
/// least one when the function has any).
///
/// # Errors
///
/// Propagates MATLAB runtime errors (bad subscripts, shape mismatches,
/// `error(...)` calls, …) and reports unassigned requested outputs.
pub fn execute(
    exe: &Executable,
    args: &[Value],
    nargout: usize,
    disp: &mut dyn Dispatcher,
    ctx: &mut CallCtx,
) -> RuntimeResult<Vec<Value>> {
    let mut m = Machine {
        f: vec![0.0; NUM_F_REGS as usize],
        c: vec![Complex::ZERO; NUM_C_REGS as usize],
        fspill: vec![0.0; exe.f_spill as usize],
        cspill: vec![Complex::ZERO; exe.c_spill as usize],
        slots: vec![None; exe.slots as usize],
    };

    // Bind parameters.
    for (k, b) in exe.params.iter().enumerate() {
        let arg = match args.get(k) {
            Some(a) => a,
            None => continue, // missing actuals stay undefined
        };
        match b {
            VarBinding::F(r) => m.f[r.index()] = arg.to_scalar()?,
            VarBinding::FSpill(s) => m.fspill[*s as usize] = arg.to_scalar()?,
            VarBinding::C(r) => m.c[r.index()] = to_complex_scalar(arg)?,
            VarBinding::CSpill(s) => m.cspill[*s as usize] = to_complex_scalar(arg)?,
            VarBinding::Slot(s) => m.slots[s.index()] = Some(arg.clone()),
        }
    }

    // Always-on hotness accounting (one relaxed increment per call; the
    // back-edge half is flushed by `run_loop` when the invocation ends).
    exe.counters.calls.fetch_add(1, Ordering::Relaxed);

    // Opt-in execution profiling: the disabled cost is one relaxed load
    // here plus a branch on a local per step inside `run_loop`.
    let mut prof = majic_trace::vm_profile_enabled().then(VmProfile::default);
    let run = run_loop(exe, &mut m, disp, ctx, prof.as_mut());
    if let Some(p) = prof {
        // Flush on the error path too: a profile of a crashing program
        // is exactly what the profiler is for.
        p.flush(&exe.name);
    }
    if let Err(e) = &run {
        // Audit which compiled function raised: by the time the error
        // surfaces to the session it has crossed dispatcher frames and
        // lost that attribution.
        majic_trace::audit::session_event("vm.error", || {
            (exe.name.clone(), format!("compiled code raised: {e}"))
        });
    }
    run?;

    // Collect the requested outputs.
    let wanted = nargout
        .max(usize::from(!exe.outputs.is_empty()))
        .min(exe.outputs.len());
    let mut outs = Vec::with_capacity(wanted);
    for b in exe.outputs.iter().take(wanted) {
        outs.push(match b {
            VarBinding::F(r) => Value::scalar(m.f[r.index()]),
            VarBinding::FSpill(s) => Value::scalar(m.fspill[*s as usize]),
            VarBinding::C(r) => Value::complex_scalar(m.c[r.index()]).normalized(),
            VarBinding::CSpill(s) => Value::complex_scalar(m.cspill[*s as usize]).normalized(),
            VarBinding::Slot(s) => m.slots[s.index()].clone().ok_or_else(|| {
                RuntimeError::Raised(format!("output argument of '{}' not assigned", exe.name))
            })?,
        });
    }
    Ok(outs)
}

fn run_loop(
    exe: &Executable,
    m: &mut Machine,
    disp: &mut dyn Dispatcher,
    ctx: &mut CallCtx,
    mut prof: Option<&mut VmProfile>,
) -> RuntimeResult<()> {
    let mut pc = 0usize;
    // Loop back-edges accumulate in a local and hit the shared counter
    // once per invocation (on every exit path, including errors), so the
    // per-iteration cost is a compare and a local add.
    let mut backedges = 0u64;
    let flush = |n: u64| {
        if n > 0 {
            exe.counters.backedges.fetch_add(n, Ordering::Relaxed);
        }
    };
    loop {
        debug_assert!(pc < exe.steps.len());
        // SAFETY: jump targets are produced by the flattener and always
        // point inside `steps`; straight-line fallthrough ends at `Ret`.
        match unsafe { exe.steps.get_unchecked(pc) } {
            Step::Ret => {
                flush(backedges);
                return Ok(());
            }
            Step::Jump(t) => {
                // A backward jump is a loop back-edge: the flattener
                // only emits non-forward targets to re-enter a loop
                // header.
                backedges += u64::from(*t as usize <= pc);
                pc = *t as usize;
                continue;
            }
            Step::BranchZero { cond, target } => {
                if let Some(p) = prof.as_deref_mut() {
                    p.branches += 1;
                }
                if m.rf(*cond) == 0.0 {
                    backedges += u64::from(*target as usize <= pc);
                    pc = *target as usize;
                    continue;
                }
            }
            Step::I(inst) => {
                if let Some(p) = prof.as_deref_mut() {
                    p.count(inst);
                }
                if let Err(e) = exec_inst(inst, m, disp, ctx) {
                    flush(backedges);
                    return Err(e);
                }
            }
        }
        pc += 1;
    }
}

/// Per-invocation instruction profile, flushed into the global trace
/// counters when the invocation finishes (`vm.inst.total`,
/// `vm.op.<opcode>`, `vm.call.builtin`, `vm.call.user`, `vm.branch`).
/// Kept invocation-local so the hot loop touches no shared state.
#[derive(Debug, Default)]
struct VmProfile {
    total: u64,
    branches: u64,
    builtin_calls: u64,
    user_calls: u64,
    by_op: std::collections::BTreeMap<&'static str, u64>,
}

impl VmProfile {
    fn count(&mut self, inst: &Inst) {
        self.total += 1;
        *self.by_op.entry(opcode_name(inst)).or_insert(0) += 1;
        match inst {
            Inst::Gen {
                op: GenOp::CallBuiltin(_),
                ..
            } => self.builtin_calls += 1,
            Inst::Gen {
                op: GenOp::CallUser(_),
                ..
            } => self.user_calls += 1,
            _ => {}
        }
    }

    fn flush(self, fn_name: &str) {
        majic_trace::counter("vm.inst.total").add(self.total);
        majic_trace::counter("vm.branch").add(self.branches);
        majic_trace::counter("vm.call.builtin").add(self.builtin_calls);
        majic_trace::counter("vm.call.user").add(self.user_calls);
        majic_trace::counter(&format!("vm.fn.{fn_name}")).inc();
        let mut name = String::with_capacity(32);
        for (op, n) in self.by_op {
            name.clear();
            name.push_str("vm.op.");
            name.push_str(op);
            majic_trace::counter(&name).add(n);
        }
    }
}

/// Stable profiling name of one instruction.
fn opcode_name(inst: &Inst) -> &'static str {
    match inst {
        Inst::FConst { .. } => "fconst",
        Inst::FMov { .. } => "fmov",
        Inst::FBin { .. } => "fbin",
        Inst::FUn { .. } => "fun",
        Inst::FCmp { .. } => "fcmp",
        Inst::FSpillLoad { .. } => "fspill_load",
        Inst::FSpillStore { .. } => "fspill_store",
        Inst::CConst { .. } => "cconst",
        Inst::CMov { .. } => "cmov",
        Inst::CBin { .. } => "cbin",
        Inst::CUn { .. } => "cun",
        Inst::CAbs { .. } => "cabs",
        Inst::CPart { .. } => "cpart",
        Inst::CMake { .. } => "cmake",
        Inst::CSpillLoad { .. } => "cspill_load",
        Inst::CSpillStore { .. } => "cspill_store",
        Inst::ALoadF { .. } => "aload_f",
        Inst::AStoreF { .. } => "astore_f",
        Inst::ALoadC { .. } => "aload_c",
        Inst::AStoreC { .. } => "astore_c",
        Inst::ALoadConstF { .. } => "aload_const_f",
        Inst::AStoreConstF { .. } => "astore_const_f",
        Inst::FToSlot { .. } => "f_to_slot",
        Inst::FToSlotBool { .. } => "f_to_slot_bool",
        Inst::SlotToF { .. } => "slot_to_f",
        Inst::CToSlot { .. } => "c_to_slot",
        Inst::SlotToC { .. } => "slot_to_c",
        Inst::SlotMov { .. } => "slot_mov",
        Inst::SlotTake { .. } => "slot_take",
        Inst::TruthF { .. } => "truth_f",
        Inst::ExtentF { .. } => "extent_f",
        Inst::ErrUndefined(_) => "err_undefined",
        Inst::Gen { op, .. } => match op {
            GenOp::Binary(_) => "gen.binary",
            GenOp::Unary(_) => "gen.unary",
            GenOp::Transpose(_) => "gen.transpose",
            GenOp::Range => "gen.range",
            GenOp::BuildMatrix { .. } => "gen.build_matrix",
            GenOp::IndexGet => "gen.index_get",
            GenOp::IndexSet { .. } => "gen.index_set",
            GenOp::CallBuiltin(_) => "gen.call_builtin",
            GenOp::CallUser(_) => "gen.call_user",
            GenOp::ResolveAmbiguous(_) => "gen.resolve_ambiguous",
            GenOp::Gemv => "gen.gemv",
            GenOp::AllocReal { .. } => "gen.alloc_real",
            GenOp::EnsureReal { .. } => "gen.ensure_real",
            GenOp::Display(_) => "gen.display",
        },
    }
}

fn to_complex_scalar(v: &Value) -> RuntimeResult<Complex> {
    match v {
        Value::Complex(m) if !m.is_empty() => Ok(m.first()),
        other => Ok(Complex::from(other.to_scalar()?)),
    }
}

#[inline]
fn fbin(op: FBinOp, a: f64, b: f64) -> f64 {
    match op {
        FBinOp::Add => a + b,
        FBinOp::Sub => a - b,
        FBinOp::Mul => a * b,
        FBinOp::Div => a / b,
        FBinOp::Pow => a.powf(b),
        FBinOp::Atan2 => a.atan2(b),
        FBinOp::Min => {
            if a.is_nan() || b < a {
                b
            } else {
                a
            }
        }
        FBinOp::Max => {
            if a.is_nan() || b > a {
                b
            } else {
                a
            }
        }
        FBinOp::Mod => {
            if b == 0.0 {
                a
            } else {
                a - (a / b).floor() * b
            }
        }
        FBinOp::Rem => {
            if b == 0.0 {
                f64::NAN
            } else {
                a - (a / b).trunc() * b
            }
        }
    }
}

#[inline]
fn fun(op: FUnOp, s: f64) -> f64 {
    match op {
        FUnOp::Neg => -s,
        FUnOp::Abs => s.abs(),
        FUnOp::Sqrt => s.sqrt(),
        FUnOp::Sin => s.sin(),
        FUnOp::Cos => s.cos(),
        FUnOp::Tan => s.tan(),
        FUnOp::Asin => s.asin(),
        FUnOp::Acos => s.acos(),
        FUnOp::Atan => s.atan(),
        FUnOp::Exp => s.exp(),
        FUnOp::Log => s.ln(),
        FUnOp::Log10 => s.log10(),
        FUnOp::Floor => s.floor(),
        FUnOp::Ceil => s.ceil(),
        FUnOp::Round => s.round(),
        FUnOp::Fix => s.trunc(),
        FUnOp::Sign => {
            if s > 0.0 {
                1.0
            } else if s < 0.0 {
                -1.0
            } else {
                0.0
            }
        }
        FUnOp::Not => {
            if s == 0.0 {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[inline]
fn cmp(op: CmpOp, a: f64, b: f64) -> f64 {
    let t = match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    };
    if t {
        1.0
    } else {
        0.0
    }
}

fn exec_inst(
    inst: &Inst,
    m: &mut Machine,
    disp: &mut dyn Dispatcher,
    ctx: &mut CallCtx,
) -> RuntimeResult<()> {
    match inst {
        Inst::FConst { d, v } => m.wf(*d, *v),
        Inst::FMov { d, s } => {
            let v = m.rf(*s);
            m.wf(*d, v);
        }
        Inst::FBin { op, d, a, b } => {
            let v = fbin(*op, m.rf(*a), m.rf(*b));
            m.wf(*d, v);
        }
        Inst::FUn { op, d, s } => {
            let v = fun(*op, m.rf(*s));
            m.wf(*d, v);
        }
        Inst::FCmp { op, d, a, b } => {
            let v = cmp(*op, m.rf(*a), m.rf(*b));
            m.wf(*d, v);
        }
        Inst::FSpillLoad { d, slot } => m.f[d.index()] = m.fspill[*slot as usize],
        Inst::FSpillStore { slot, s } => m.fspill[*slot as usize] = m.f[s.index()],

        Inst::CConst { d, re, im } => m.c[d.index()] = Complex::new(*re, *im),
        Inst::CMov { d, s } => m.c[d.index()] = m.c[s.index()],
        Inst::CBin { op, d, a, b } => {
            let (x, y) = (m.c[a.index()], m.c[b.index()]);
            m.c[d.index()] = match op {
                CBinOp::Add => x + y,
                CBinOp::Sub => x - y,
                CBinOp::Mul => x * y,
                CBinOp::Div => x / y,
                CBinOp::Pow => x.powc(y),
            };
        }
        Inst::CUn { op, d, s } => {
            let z = m.c[s.index()];
            m.c[d.index()] = match op {
                CUnOp::Neg => -z,
                CUnOp::Conj => z.conj(),
                CUnOp::Sqrt => z.sqrt(),
                CUnOp::Exp => z.exp(),
                CUnOp::Log => z.ln(),
                CUnOp::Sin => {
                    let iz = Complex::I * z;
                    (iz.exp() - (-iz).exp()) / Complex::new(0.0, 2.0)
                }
                CUnOp::Cos => {
                    let iz = Complex::I * z;
                    (iz.exp() + (-iz).exp()) / Complex::from(2.0)
                }
            };
        }
        Inst::CAbs { d, s } => m.f[d.index()] = m.c[s.index()].abs(),
        Inst::CPart { d, s, imag } => {
            let z = m.c[s.index()];
            m.f[d.index()] = if *imag { z.im } else { z.re };
        }
        Inst::CMake { d, re, im } => {
            m.c[d.index()] = Complex::new(m.f[re.index()], m.f[im.index()]);
        }
        Inst::CSpillLoad { d, slot } => m.c[d.index()] = m.cspill[*slot as usize],
        Inst::CSpillStore { slot, s } => m.cspill[*slot as usize] = m.c[s.index()],

        Inst::ALoadF {
            d,
            arr,
            i,
            j,
            checked,
        } => {
            let slot = m.slots[arr.index()]
                .as_ref()
                .ok_or_else(|| undefined(*arr))?;
            let mat = match slot {
                Value::Real(mat) => mat,
                other => {
                    // Inference proved "real matrix", but a generic path
                    // may have produced e.g. Bool; fall back gently.
                    let v = ops::index_get(
                        other,
                        &subs_from_regs(m.f[i.index()], j.map(|j| m.f[j.index()])),
                    )?;
                    m.f[d.index()] = v.to_scalar()?;
                    return Ok(());
                }
            };
            let (rows, cols) = (mat.rows(), mat.cols());
            let (r, c) = match j {
                None => {
                    if *checked {
                        let k = check_index(m.f[i.index()])?;
                        if k >= rows * cols {
                            return Err(RuntimeError::IndexOutOfBounds {
                                index: (k + 1).to_string(),
                                extent: (rows * cols).to_string(),
                            });
                        }
                        linear_rc(k, rows)
                    } else {
                        linear_rc(m.f[i.index()] as usize - 1, rows)
                    }
                }
                Some(j) => {
                    if *checked {
                        let r = check_index(m.f[i.index()])?;
                        let c = check_index(m.f[j.index()])?;
                        if r >= rows || c >= cols {
                            return Err(RuntimeError::IndexOutOfBounds {
                                index: format!("({}, {})", r + 1, c + 1),
                                extent: format!("{rows}x{cols}"),
                            });
                        }
                        (r, c)
                    } else {
                        (m.f[i.index()] as usize - 1, m.f[j.index()] as usize - 1)
                    }
                }
            };
            // SAFETY: checked paths validated above; unchecked paths were
            // proven in-bounds by type inference (subscript-check
            // removal, §2.4) and guarded by the repository's signature
            // check.
            m.f[d.index()] = unsafe { mat.get_unchecked(r, c) };
        }

        Inst::AStoreF {
            arr,
            i,
            j,
            v,
            checked,
            oversize,
        } => {
            let val = m.f[v.index()];
            let iv = m.f[i.index()];
            let jv = j.map(|j| m.f[j.index()]);
            let slot = &mut m.slots[arr.index()];
            if slot.is_none() {
                if !checked {
                    return Err(undefined(*arr));
                }
                *slot = Some(Value::Real(Matrix::zeros(0, 0)));
            }
            let value = slot.as_mut().expect("initialized above");
            if let Value::Real(mat) = value {
                let (rows, cols) = (mat.rows(), mat.cols());
                let in_bounds_rc: Option<(usize, usize)> = match jv {
                    None => {
                        if *checked {
                            let k = check_index(iv)?;
                            (k < rows * cols).then(|| linear_rc(k, rows))
                        } else {
                            Some(linear_rc(iv as usize - 1, rows))
                        }
                    }
                    Some(jv) => {
                        if *checked {
                            let r = check_index(iv)?;
                            let c = check_index(jv)?;
                            (r < rows && c < cols).then_some((r, c))
                        } else {
                            Some((iv as usize - 1, jv as usize - 1))
                        }
                    }
                };
                if let Some((r, c)) = in_bounds_rc {
                    // SAFETY: bounds established just above (or proven by
                    // inference on the unchecked path).
                    unsafe { mat.set_unchecked(r, c, val) };
                    return Ok(());
                }
            }
            // Growth (or non-real value): generic store path.
            let subs = subs_from_regs(iv, jv);
            ops::index_set(value, &subs, &Value::scalar(val), *oversize)?;
        }

        Inst::ALoadC {
            d,
            arr,
            i,
            j,
            checked,
        } => {
            let slot = m.slots[arr.index()]
                .as_ref()
                .ok_or_else(|| undefined(*arr))?;
            match slot {
                Value::Complex(mat) => {
                    let (rows, cols) = (mat.rows(), mat.cols());
                    let (r, c) = match j {
                        None => {
                            let k = if *checked {
                                let k = check_index(m.f[i.index()])?;
                                if k >= rows * cols {
                                    return Err(RuntimeError::IndexOutOfBounds {
                                        index: (k + 1).to_string(),
                                        extent: (rows * cols).to_string(),
                                    });
                                }
                                k
                            } else {
                                m.f[i.index()] as usize - 1
                            };
                            linear_rc(k, rows)
                        }
                        Some(j) => {
                            let (r, c) = if *checked {
                                let r = check_index(m.f[i.index()])?;
                                let c = check_index(m.f[j.index()])?;
                                if r >= rows || c >= cols {
                                    return Err(RuntimeError::IndexOutOfBounds {
                                        index: format!("({}, {})", r + 1, c + 1),
                                        extent: format!("{rows}x{cols}"),
                                    });
                                }
                                (r, c)
                            } else {
                                (m.f[i.index()] as usize - 1, m.f[j.index()] as usize - 1)
                            };
                            (r, c)
                        }
                    };
                    // SAFETY: as for ALoadF.
                    m.c[d.index()] = unsafe { mat.get_unchecked(r, c) };
                }
                other => {
                    let v = ops::index_get(
                        other,
                        &subs_from_regs(m.f[i.index()], j.map(|j| m.f[j.index()])),
                    )?;
                    m.c[d.index()] = to_complex_scalar(&v)?;
                }
            }
        }

        Inst::AStoreC {
            arr,
            i,
            j,
            v,
            checked: _,
            oversize,
        } => {
            let val = m.c[v.index()];
            let iv = m.f[i.index()];
            let jv = j.map(|j| m.f[j.index()]);
            let slot = &mut m.slots[arr.index()];
            if slot.is_none() {
                // Fresh arrays start real; the store below promotes when
                // the value is genuinely complex.
                *slot = Some(Value::Real(Matrix::zeros(0, 0)));
            }
            let value = slot.as_mut().expect("initialized above");
            let subs = subs_from_regs(iv, jv);
            // MATLAB stores values, not static types: a complex register
            // holding a purely real value stores as a real (keeping the
            // array real), exactly like the interpreter.
            let rhs = if val.im == 0.0 {
                Value::scalar(val.re)
            } else {
                Value::complex_scalar(val)
            };
            ops::index_set(value, &subs, &rhs, *oversize)?;
        }

        Inst::ALoadConstF { d, arr, lin } => {
            let slot = m.slots[arr.index()]
                .as_ref()
                .ok_or_else(|| undefined(*arr))?;
            match slot {
                Value::Real(mat) => {
                    let (r, c) = linear_rc(*lin as usize, mat.rows());
                    // SAFETY: exact-shape inference proved the extent.
                    m.f[d.index()] = unsafe { mat.get_unchecked(r, c) };
                }
                other => {
                    let v = ops::index_get(
                        other,
                        &[Subscript::Index(Value::scalar((*lin + 1) as f64))],
                    )?;
                    m.f[d.index()] = v.to_scalar()?;
                }
            }
        }
        Inst::AStoreConstF { arr, lin, v } => {
            let val = m.f[v.index()];
            let slot = m.slots[arr.index()]
                .as_mut()
                .ok_or_else(|| undefined(*arr))?;
            match slot {
                Value::Real(mat) => {
                    let (r, c) = linear_rc(*lin as usize, mat.rows());
                    // SAFETY: exact-shape inference proved the extent.
                    unsafe { mat.set_unchecked(r, c, val) };
                }
                other => {
                    ops::index_set(
                        other,
                        &[Subscript::Index(Value::scalar((*lin + 1) as f64))],
                        &Value::scalar(val),
                        false,
                    )?;
                }
            }
        }

        Inst::FToSlot { slot, s } => {
            m.slots[slot.index()] = Some(Value::scalar(m.f[s.index()]));
        }
        Inst::FToSlotBool { slot, s } => {
            m.slots[slot.index()] = Some(Value::bool_scalar(m.f[s.index()] != 0.0));
        }
        Inst::SlotToF { d, slot } => {
            let v = m.slots[slot.index()]
                .as_ref()
                .ok_or_else(|| undefined(*slot))?;
            m.f[d.index()] = v.to_scalar()?;
        }
        Inst::CToSlot { slot, s } => {
            m.slots[slot.index()] = Some(Value::complex_scalar(m.c[s.index()]).normalized());
        }
        Inst::SlotToC { d, slot } => {
            let v = m.slots[slot.index()]
                .as_ref()
                .ok_or_else(|| undefined(*slot))?;
            m.c[d.index()] = to_complex_scalar(v)?;
        }
        Inst::SlotMov { d, s } => {
            m.slots[d.index()] = m.slots[s.index()].clone();
        }
        Inst::SlotTake { d, s } => {
            // The source is a dead temporary: moving (rather than
            // cloning) keeps the destination the unique owner of its
            // buffer, so subsequent element stores stay in place.
            m.slots[d.index()] = m.slots[s.index()].take();
        }
        Inst::TruthF { d, slot } => {
            let v = m.slots[slot.index()]
                .as_ref()
                .ok_or_else(|| undefined(*slot))?;
            m.f[d.index()] = if v.is_true() { 1.0 } else { 0.0 };
        }
        Inst::ExtentF { d, arr, dim } => {
            let v = m.slots[arr.index()]
                .as_ref()
                .ok_or_else(|| undefined(*arr))?;
            let (r, c) = v.dims();
            m.f[d.index()] = match dim {
                0 => (r * c) as f64,
                1 => r as f64,
                _ => c as f64,
            };
        }
        Inst::Gen { op, dsts, args } => exec_gen(op, dsts, args, m, disp, ctx)?,
        Inst::ErrUndefined(name) => return Err(RuntimeError::Undefined(name.clone())),
    }
    Ok(())
}

fn subs_from_regs(i: f64, j: Option<f64>) -> Vec<Subscript> {
    match j {
        None => vec![Subscript::Index(Value::scalar(i))],
        Some(j) => vec![
            Subscript::Index(Value::scalar(i)),
            Subscript::Index(Value::scalar(j)),
        ],
    }
}

fn operand_value(a: &Operand, m: &Machine) -> RuntimeResult<Value> {
    Ok(match a {
        Operand::Slot(s) => m.slots[s.index()].clone().ok_or_else(|| undefined(*s))?,
        Operand::F(r) => Value::scalar(m.f[r.index()]),
        Operand::C(r) => Value::complex_scalar(m.c[r.index()]).normalized(),
        Operand::FSpill(s) => Value::scalar(m.fspill[*s as usize]),
        Operand::CSpill(s) => Value::complex_scalar(m.cspill[*s as usize]).normalized(),
        Operand::Str(s) => Value::Str(s.clone()),
        Operand::Colon => {
            return Err(RuntimeError::Raised(
                "':' outside an indexing operation".to_owned(),
            ))
        }
    })
}

fn operand_subscript(a: &Operand, m: &Machine) -> RuntimeResult<Subscript> {
    Ok(match a {
        Operand::Colon => Subscript::Colon,
        other => Subscript::Index(operand_value(other, m)?),
    })
}

fn store_results(
    dsts: &[Slot],
    mut vals: Vec<Value>,
    m: &mut Machine,
    what: &str,
) -> RuntimeResult<()> {
    if vals.len() < dsts.len() {
        return Err(RuntimeError::BadArity {
            name: what.to_owned(),
            detail: format!("{} outputs requested, {} produced", dsts.len(), vals.len()),
        });
    }
    for (k, d) in dsts.iter().enumerate().rev() {
        m.slots[d.index()] = Some(std::mem::replace(&mut vals[k], Value::empty()));
    }
    Ok(())
}

fn exec_gen(
    op: &GenOp,
    dsts: &[Slot],
    args: &[Operand],
    m: &mut Machine,
    disp: &mut dyn Dispatcher,
    ctx: &mut CallCtx,
) -> RuntimeResult<()> {
    match op {
        GenOp::Binary(name) => {
            let a = operand_value(&args[0], m)?;
            let b = operand_value(&args[1], m)?;
            let r = match *name {
                "+" => ops::add(&a, &b)?,
                "-" => ops::sub(&a, &b)?,
                "*" => ops::mul(&a, &b)?,
                "/" => ops::div(&a, &b)?,
                "\\" => ops::left_div(&a, &b)?,
                "^" => ops::pow(&a, &b)?,
                ".*" => ops::elem_mul(&a, &b)?,
                "./" => ops::elem_div(&a, &b)?,
                ".\\" => ops::elem_left_div(&a, &b)?,
                ".^" => ops::elem_pow(&a, &b)?,
                "<" => ops::compare(Cmp::Lt, &a, &b)?,
                "<=" => ops::compare(Cmp::Le, &a, &b)?,
                ">" => ops::compare(Cmp::Gt, &a, &b)?,
                ">=" => ops::compare(Cmp::Ge, &a, &b)?,
                "==" => ops::compare(Cmp::Eq, &a, &b)?,
                "~=" => ops::compare(Cmp::Ne, &a, &b)?,
                "&" => ops::logical(&a, &b, false)?,
                "|" => ops::logical(&a, &b, true)?,
                other => {
                    return Err(RuntimeError::Raised(format!(
                        "unknown generic operator '{other}'"
                    )))
                }
            };
            store_results(dsts, vec![r], m, name)
        }
        GenOp::Unary(name) => {
            let a = operand_value(&args[0], m)?;
            let r = match *name {
                "-" => ops::neg(&a)?,
                "~" => ops::not(&a)?,
                "+" => a,
                other => {
                    return Err(RuntimeError::Raised(format!(
                        "unknown generic unary '{other}'"
                    )))
                }
            };
            store_results(dsts, vec![r], m, name)
        }
        GenOp::Transpose(conj) => {
            let a = operand_value(&args[0], m)?;
            store_results(dsts, vec![ops::transpose(&a, *conj)?], m, "'")
        }
        GenOp::Range => {
            let r = match args.len() {
                2 => {
                    let a = operand_value(&args[0], m)?;
                    let b = operand_value(&args[1], m)?;
                    ops::range(&a, None, &b)?
                }
                3 => {
                    let a = operand_value(&args[0], m)?;
                    let s = operand_value(&args[1], m)?;
                    let b = operand_value(&args[2], m)?;
                    ops::range(&a, Some(&s), &b)?
                }
                n => return Err(RuntimeError::Raised(format!("range with {n} operands"))),
            };
            store_results(dsts, vec![r], m, ":")
        }
        GenOp::BuildMatrix { rows } => {
            let mut vals = Vec::new();
            let mut it = args.iter();
            for &n in rows {
                let mut row = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let a = it.next().ok_or_else(|| {
                        RuntimeError::Raised("malformed matrix literal".to_owned())
                    })?;
                    row.push(operand_value(a, m)?);
                }
                vals.push(row);
            }
            store_results(dsts, vec![ops::build_matrix(&vals)?], m, "[]")
        }
        GenOp::IndexGet => {
            let base = operand_value(&args[0], m)?;
            let subs: RuntimeResult<Vec<Subscript>> =
                args[1..].iter().map(|a| operand_subscript(a, m)).collect();
            store_results(dsts, vec![ops::index_get(&base, &subs?)?], m, "()")
        }
        GenOp::IndexSet { oversize } => {
            // args: base slot, subscripts…, value (last).
            let Operand::Slot(base_slot) = &args[0] else {
                return Err(RuntimeError::Raised(
                    "indexed store needs a slot base".to_owned(),
                ));
            };
            let rhs = operand_value(args.last().expect("value operand"), m)?;
            let subs: RuntimeResult<Vec<Subscript>> = args[1..args.len() - 1]
                .iter()
                .map(|a| operand_subscript(a, m))
                .collect();
            let subs = subs?;
            let mut base = m.slots[base_slot.index()]
                .take()
                .unwrap_or_else(Value::empty);
            let r = ops::index_set(&mut base, &subs, &rhs, *oversize);
            m.slots[base_slot.index()] = Some(base);
            r
        }
        GenOp::CallBuiltin(b) => {
            let vals: RuntimeResult<Vec<Value>> =
                args.iter().map(|a| operand_value(a, m)).collect();
            let outs = b.call(ctx, &vals?, dsts.len())?;
            store_results(dsts, outs, m, b.name())
        }
        GenOp::CallUser(name) => {
            let vals: RuntimeResult<Vec<Value>> =
                args.iter().map(|a| operand_value(a, m)).collect();
            let outs = disp.call_user(name, &vals?, dsts.len(), ctx)?;
            store_results(dsts, outs, m, name)
        }
        GenOp::ResolveAmbiguous(name) => {
            // Paper §2.1: ambiguous symbols are deferred to runtime — the
            // dynamic meaning is "variable if defined, else builtin, else
            // user function".
            if let Operand::Slot(s) = &args[0] {
                if let Some(v) = &m.slots[s.index()] {
                    let v = v.clone();
                    return store_results(dsts, vec![v], m, name);
                }
            }
            if let Some(b) = Builtin::lookup(name) {
                let outs = b.call(ctx, &[], dsts.len().max(1))?;
                return store_results(dsts, outs, m, name);
            }
            let outs = disp.call_user(name, &[], dsts.len().max(1), ctx)?;
            store_results(dsts, outs, m, name)
        }
        GenOp::Gemv => {
            // args: alpha, A, x, beta, y.
            let alpha = operand_value(&args[0], m)?.to_scalar()?;
            let a = operand_value(&args[1], m)?;
            let x = operand_value(&args[2], m)?;
            let beta = operand_value(&args[3], m)?.to_scalar()?;
            let y = operand_value(&args[4], m)?;
            // The fused fast path only fires when the shapes really are
            // the dgemv pattern (the selector's guess can be wrong when
            // shape inference was throttled); anything else — including a
            // fused-call failure — recomputes generically, which is
            // always semantically valid.
            let fused = match (&a, &x, &y) {
                (Value::Real(am), Value::Real(xm), Value::Real(ym))
                    if xm.cols() == 1 && ym.cols() == 1 && am.rows() == ym.rows() =>
                {
                    linalg::gemv_fused(alpha, am, &xm.to_contiguous(), beta, &ym.to_contiguous())
                        .ok()
                }
                _ => None,
            };
            let result = match fused {
                Some(out) => {
                    let n = out.len();
                    Value::Real(Matrix::from_vec(n, 1, out))
                }
                None => {
                    let ax = ops::mul(&a, &x)?;
                    let s1 = ops::elem_mul(&Value::scalar(alpha), &ax)?;
                    let s2 = ops::elem_mul(&Value::scalar(beta), &y)?;
                    ops::add(&s1, &s2)?
                }
            };
            store_results(dsts, vec![result], m, "dgemv")
        }
        GenOp::AllocReal { rows, cols } => {
            let v = Value::Real(Matrix::try_zeros(*rows as usize, *cols as usize)?);
            store_results(dsts, vec![v], m, "alloc")
        }
        GenOp::EnsureReal { rows, cols } => {
            let (r, c) = (*rows as usize, *cols as usize);
            let slot = &mut m.slots[dsts[0].index()];
            match slot {
                Some(Value::Real(mat)) if mat.rows() == r && mat.cols() == c => {}
                _ => *slot = Some(Value::Real(Matrix::try_zeros(r, c)?)),
            }
            Ok(())
        }
        GenOp::Display(name) => {
            let v = operand_value(&args[0], m)?;
            ctx.printed.push_str(&format!("{name} = {v}\n"));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::{allocate, RegAllocMode};
    use majic_ir::{Block, BlockId, FBinOp};

    fn run(f: &Function, args: &[Value]) -> RuntimeResult<Vec<Value>> {
        let mut f = f.clone();
        let (fs, cs) = allocate(&mut f, RegAllocMode::LinearScan);
        let exe = Executable::new(&f, fs, cs);
        execute(&exe, args, 1, &mut NoDispatch, &mut CallCtx::new())
    }

    /// `y = a + b` through F registers.
    #[test]
    fn scalar_add() {
        let f = Function {
            name: "add".into(),
            blocks: vec![Block {
                insts: vec![Inst::FBin {
                    op: FBinOp::Add,
                    d: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                }],
                term: Terminator::Return,
            }],
            f_regs: 3,
            params: vec![VarBinding::F(Reg(0)), VarBinding::F(Reg(1))],
            outputs: vec![VarBinding::F(Reg(2))],
            ..Function::default()
        };
        let out = run(&f, &[Value::scalar(2.0), Value::scalar(3.0)]).unwrap();
        assert_eq!(out, vec![Value::scalar(5.0)]);
    }

    /// Counted loop: sum 1..n.
    fn sum_loop() -> Function {
        // r0 = n (param), r1 = k, r2 = s, r3 = cond, r4 = one
        Function {
            name: "sum".into(),
            blocks: vec![
                // bb0: k = 1; s = 0; one = 1
                Block {
                    insts: vec![
                        Inst::FConst { d: Reg(1), v: 1.0 },
                        Inst::FConst { d: Reg(2), v: 0.0 },
                        Inst::FConst { d: Reg(4), v: 1.0 },
                    ],
                    term: Terminator::Jump(BlockId(1)),
                },
                // bb1: cond = k <= n
                Block {
                    insts: vec![Inst::FCmp {
                        op: CmpOp::Le,
                        d: Reg(3),
                        a: Reg(1),
                        b: Reg(0),
                    }],
                    term: Terminator::Branch {
                        cond: Reg(3),
                        then_bb: BlockId(2),
                        else_bb: BlockId(3),
                    },
                },
                // bb2: s += k; k += 1
                Block {
                    insts: vec![
                        Inst::FBin {
                            op: FBinOp::Add,
                            d: Reg(2),
                            a: Reg(2),
                            b: Reg(1),
                        },
                        Inst::FBin {
                            op: FBinOp::Add,
                            d: Reg(1),
                            a: Reg(1),
                            b: Reg(4),
                        },
                    ],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Terminator::Return,
                },
            ],
            f_regs: 5,
            params: vec![VarBinding::F(Reg(0))],
            outputs: vec![VarBinding::F(Reg(2))],
            ..Function::default()
        }
    }

    #[test]
    fn loops_and_branches() {
        let out = run(&sum_loop(), &[Value::scalar(100.0)]).unwrap();
        assert_eq!(out, vec![Value::scalar(5050.0)]);
    }

    #[test]
    fn spill_everything_is_slower_but_correct() {
        let mut f = sum_loop();
        let (fs, cs) = allocate(&mut f, RegAllocMode::SpillEverything);
        assert!(fs >= 5);
        let exe = Executable::new(&f, fs, cs);
        let out = execute(
            &exe,
            &[Value::scalar(100.0)],
            1,
            &mut NoDispatch,
            &mut CallCtx::new(),
        )
        .unwrap();
        assert_eq!(out, vec![Value::scalar(5050.0)]);
    }

    #[test]
    fn array_store_grows_and_load_reads() {
        // v(3) = 7 on an undefined slot, then y = v(3).
        let f = Function {
            name: "arr".into(),
            blocks: vec![Block {
                insts: vec![
                    Inst::FConst { d: Reg(0), v: 3.0 },
                    Inst::FConst { d: Reg(1), v: 7.0 },
                    Inst::AStoreF {
                        arr: Slot(0),
                        i: Reg(0),
                        j: None,
                        v: Reg(1),
                        checked: true,
                        oversize: false,
                    },
                    Inst::ALoadF {
                        d: Reg(2),
                        arr: Slot(0),
                        i: Reg(0),
                        j: None,
                        checked: true,
                    },
                ],
                term: Terminator::Return,
            }],
            f_regs: 3,
            slots: 1,
            outputs: vec![VarBinding::F(Reg(2))],
            ..Function::default()
        };
        let out = run(&f, &[]).unwrap();
        assert_eq!(out, vec![Value::scalar(7.0)]);
    }

    #[test]
    fn checked_load_rejects_out_of_bounds() {
        let f = Function {
            name: "oob".into(),
            blocks: vec![Block {
                insts: vec![
                    Inst::FConst { d: Reg(0), v: 5.0 },
                    Inst::ALoadF {
                        d: Reg(1),
                        arr: Slot(0),
                        i: Reg(0),
                        j: None,
                        checked: true,
                    },
                ],
                term: Terminator::Return,
            }],
            f_regs: 2,
            slots: 1,
            params: vec![VarBinding::Slot(Slot(0))],
            outputs: vec![VarBinding::F(Reg(1))],
            ..Function::default()
        };
        let arg = Value::Real(Matrix::from_rows(vec![vec![1.0, 2.0]]));
        assert!(matches!(
            run(&f, &[arg]),
            Err(RuntimeError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn generic_ops_round_trip() {
        // y = [1 2] + [10 20] via the generic path.
        let f = Function {
            name: "gen".into(),
            blocks: vec![Block {
                insts: vec![Inst::Gen {
                    op: GenOp::Binary("+"),
                    dsts: vec![Slot(2)],
                    args: vec![Operand::Slot(Slot(0)), Operand::Slot(Slot(1))],
                }],
                term: Terminator::Return,
            }],
            slots: 3,
            params: vec![VarBinding::Slot(Slot(0)), VarBinding::Slot(Slot(1))],
            outputs: vec![VarBinding::Slot(Slot(2))],
            ..Function::default()
        };
        let a = Value::Real(Matrix::from_rows(vec![vec![1.0, 2.0]]));
        let b = Value::Real(Matrix::from_rows(vec![vec![10.0, 20.0]]));
        let out = run(&f, &[a, b]).unwrap();
        assert_eq!(
            out[0],
            Value::Real(Matrix::from_rows(vec![vec![11.0, 22.0]]))
        );
    }

    #[test]
    fn complex_registers() {
        // y = (1+2i) * (3+4i) = -5 + 10i
        let f = Function {
            name: "cplx".into(),
            blocks: vec![Block {
                insts: vec![
                    Inst::CConst {
                        d: Reg(0),
                        re: 1.0,
                        im: 2.0,
                    },
                    Inst::CConst {
                        d: Reg(1),
                        re: 3.0,
                        im: 4.0,
                    },
                    Inst::CBin {
                        op: CBinOp::Mul,
                        d: Reg(2),
                        a: Reg(0),
                        b: Reg(1),
                    },
                ],
                term: Terminator::Return,
            }],
            c_regs: 3,
            outputs: vec![VarBinding::C(Reg(2))],
            ..Function::default()
        };
        let out = run(&f, &[]).unwrap();
        assert_eq!(out[0], Value::complex_scalar(Complex::new(-5.0, 10.0)));
    }

    /// Flatten `sum_loop`, encode, decode, and run the decoded copy: it
    /// must execute identically and re-encode to identical bytes.
    #[test]
    fn executable_round_trips_and_still_runs() {
        let mut f = sum_loop();
        let (fs, cs) = allocate(&mut f, RegAllocMode::LinearScan);
        let exe = Executable::new(&f, fs, cs);
        let bytes = exe.encode();
        let back = Executable::decode(&bytes).unwrap();
        assert_eq!(bytes, back.encode());
        let out = execute(
            &back,
            &[Value::scalar(100.0)],
            1,
            &mut NoDispatch,
            &mut CallCtx::new(),
        )
        .unwrap();
        assert_eq!(out, vec![Value::scalar(5050.0)]);
    }

    /// Decode rejects structurally valid programs with out-of-range
    /// references (the executor would hit UB on them).
    #[test]
    fn decode_rejects_out_of_range_code() {
        let mut f = sum_loop();
        let (fs, cs) = allocate(&mut f, RegAllocMode::LinearScan);
        let exe = Executable::new(&f, fs, cs);

        // Jump target beyond the program.
        let mut evil = exe.clone();
        evil.steps[3] = Step::Jump(evil.steps.len() as u32 + 7);
        assert!(Executable::decode(&evil.encode()).is_err());

        // Register beyond the fixed register file.
        let mut evil = exe.clone();
        evil.steps[0] = Step::I(Inst::FConst {
            d: Reg(NUM_F_REGS + 1),
            v: 0.0,
        });
        assert!(Executable::decode(&evil.encode()).is_err());

        // Program that can fall off the end.
        let mut evil = exe.clone();
        evil.steps.push(Step::I(Inst::FConst { d: Reg(0), v: 0.0 }));
        assert!(Executable::decode(&evil.encode()).is_err());

        // Truncation at every prefix is an error, never a panic.
        let bytes = exe.encode();
        for n in 0..bytes.len() {
            assert!(Executable::decode(&bytes[..n]).is_err());
        }
        // …and trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Executable::decode(&padded).is_err());
    }

    #[test]
    fn builtin_calls_from_compiled_code() {
        // y = zeros(2, 3); r = size(y, 1)
        let f = Function {
            name: "bt".into(),
            blocks: vec![Block {
                insts: vec![
                    Inst::FConst { d: Reg(0), v: 2.0 },
                    Inst::FConst { d: Reg(1), v: 3.0 },
                    Inst::Gen {
                        op: GenOp::CallBuiltin(Builtin::Zeros),
                        dsts: vec![Slot(0)],
                        args: vec![Operand::F(Reg(0)), Operand::F(Reg(1))],
                    },
                    Inst::ExtentF {
                        d: Reg(2),
                        arr: Slot(0),
                        dim: 2,
                    },
                ],
                term: Terminator::Return,
            }],
            f_regs: 3,
            slots: 1,
            outputs: vec![VarBinding::F(Reg(2))],
            ..Function::default()
        };
        let out = run(&f, &[]).unwrap();
        assert_eq!(out, vec![Value::scalar(3.0)]);
    }
}
