//! Linear-scan register allocation (Poletto & Sarkar, TOPLAS 1999).

use majic_ir::{Function, Inst, Reg, Terminator, VarBinding};
use std::collections::HashMap;

/// Physical `F` register-file size.
pub const NUM_F_REGS: u32 = 32;
/// Physical `C` register-file size.
pub const NUM_C_REGS: u32 = 16;
/// Scratch registers reserved per class for spill traffic.
const SCRATCH: u32 = 3;

/// Allocation mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegAllocMode {
    /// Normal linear scan.
    LinearScan,
    /// Spill every virtual register — Figure 7's "no regalloc" ablation
    /// ("forcing the linear-scan register allocator to spill every
    /// variable … roughly equivalent to compiling with the -g flag").
    SpillEverything,
}

#[derive(Clone, Copy, Debug)]
struct Interval {
    vreg: u32,
    start: u32,
    end: u32,
}

#[derive(Clone, Copy, Debug)]
enum Loc {
    Reg(u32),
    Spill(u32),
}

/// Rewrite `f` in place: virtual `F`/`C` registers become physical ones,
/// with spill loads/stores through scratch registers. Returns the spill
/// area sizes `(f_spill, c_spill)`.
pub fn allocate(f: &mut Function, mode: RegAllocMode) -> (u32, u32) {
    let _sp = majic_trace::Span::enter_with("regalloc", || vec![("fn", f.name.clone())]);
    let f_spill = allocate_class(f, Class::F, mode);
    let c_spill = allocate_class(f, Class::C, mode);
    f.f_regs = NUM_F_REGS;
    f.c_regs = NUM_C_REGS;
    (f_spill, c_spill)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    F,
    C,
}

/// Positions are instruction indices over the linearized block list,
/// ×2 so that spill code slots between them conceptually.
fn allocate_class(f: &mut Function, class: Class, mode: RegAllocMode) -> u32 {
    let vreg_count = match class {
        Class::F => f.f_regs,
        Class::C => f.c_regs,
    };
    if vreg_count == 0 {
        return 0;
    }
    let (num_regs, scratch_base) = match class {
        Class::F => (NUM_F_REGS - SCRATCH, NUM_F_REGS - SCRATCH),
        Class::C => (NUM_C_REGS - SCRATCH, NUM_C_REGS - SCRATCH),
    };

    // ---- build live intervals ----
    let mut first: HashMap<u32, u32> = HashMap::new();
    let mut last: HashMap<u32, u32> = HashMap::new();
    let touch = |r: Reg, pos: u32, first: &mut HashMap<u32, u32>, last: &mut HashMap<u32, u32>| {
        first.entry(r.0).or_insert(pos);
        let e = last.entry(r.0).or_insert(pos);
        if *e < pos {
            *e = pos;
        }
    };

    // Parameters are live from position 0.
    for b in &f.params {
        match (class, b) {
            (Class::F, VarBinding::F(r)) | (Class::C, VarBinding::C(r)) => {
                touch(*r, 0, &mut first, &mut last);
            }
            _ => {}
        }
    }

    let mut pos = 1u32;
    let mut block_ranges = Vec::with_capacity(f.blocks.len());
    for block in &f.blocks {
        let start = pos;
        for inst in &block.insts {
            for r in regs_of(inst, class) {
                touch(r, pos, &mut first, &mut last);
            }
            pos += 1;
        }
        if class == Class::F {
            if let Terminator::Branch { cond, .. } = &block.term {
                touch(*cond, pos, &mut first, &mut last);
            }
        }
        pos += 1;
        block_ranges.push((start, pos));
    }
    let end_pos = pos;

    // Outputs are live to the end.
    for b in &f.outputs {
        match (class, b) {
            (Class::F, VarBinding::F(r)) | (Class::C, VarBinding::C(r)) => {
                touch(*r, end_pos, &mut first, &mut last);
            }
            _ => {}
        }
    }

    // Loop extension: an interval that pokes into a loop extends over the
    // whole loop (live across the backedge).
    let loop_ranges: Vec<(u32, u32)> = f
        .loops
        .iter()
        .map(|lp| {
            let mut lo = u32::MAX;
            let mut hi = 0;
            for b in &lp.blocks {
                let (s, e) = block_ranges[b.index()];
                lo = lo.min(s);
                hi = hi.max(e);
            }
            (lo, hi)
        })
        .collect();

    let mut intervals: Vec<Interval> = first
        .iter()
        .map(|(&vreg, &s)| Interval {
            vreg,
            start: s,
            end: last[&vreg],
        })
        .collect();
    // Iterate: extension into one loop may overlap another.
    let mut changed = true;
    while changed {
        changed = false;
        for iv in &mut intervals {
            for &(lo, hi) in &loop_ranges {
                // Inclusive on both sides: a value whose last use is the
                // loop header's first instruction is still live around
                // the backedge.
                let overlaps = iv.start <= hi && iv.end >= lo;
                let inside = iv.start >= lo && iv.end <= hi;
                if overlaps && !inside && (iv.start > lo || iv.end < hi) {
                    let ns = iv.start.min(lo);
                    let ne = iv.end.max(hi);
                    if ns != iv.start || ne != iv.end {
                        iv.start = ns;
                        iv.end = ne;
                        changed = true;
                    }
                }
            }
        }
    }

    // ---- linear scan ----
    let mut assignment: HashMap<u32, Loc> = HashMap::new();
    let mut next_spill = 0u32;
    match mode {
        RegAllocMode::SpillEverything => {
            for iv in &intervals {
                assignment.insert(iv.vreg, Loc::Spill(next_spill));
                next_spill += 1;
            }
        }
        RegAllocMode::LinearScan => {
            intervals.sort_by_key(|iv| (iv.start, iv.end));
            let mut active: Vec<Interval> = Vec::new();
            let mut free: Vec<u32> = (0..num_regs).rev().collect();
            for iv in &intervals {
                // Expire old intervals.
                active.retain(|a| {
                    if a.end < iv.start {
                        if let Some(Loc::Reg(r)) = assignment.get(&a.vreg) {
                            free.push(*r);
                        }
                        false
                    } else {
                        true
                    }
                });
                if let Some(r) = free.pop() {
                    assignment.insert(iv.vreg, Loc::Reg(r));
                    active.push(*iv);
                } else {
                    // Spill the interval with the furthest end.
                    let (far_idx, far) = active
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, a)| a.end)
                        .map(|(i, a)| (i, *a))
                        .expect("active nonempty when out of registers");
                    if far.end > iv.end {
                        let r = match assignment[&far.vreg] {
                            Loc::Reg(r) => r,
                            Loc::Spill(_) => unreachable!("active holds registers"),
                        };
                        assignment.insert(far.vreg, Loc::Spill(next_spill));
                        next_spill += 1;
                        assignment.insert(iv.vreg, Loc::Reg(r));
                        active.remove(far_idx);
                        active.push(*iv);
                    } else {
                        assignment.insert(iv.vreg, Loc::Spill(next_spill));
                        next_spill += 1;
                    }
                }
            }
        }
    }

    // ---- rewrite ----
    let loc = |r: Reg| -> Loc { assignment.get(&r.0).copied().unwrap_or(Loc::Reg(0)) };
    for block in &mut f.blocks {
        let mut out: Vec<Inst> = Vec::with_capacity(block.insts.len());
        for mut inst in block.insts.drain(..) {
            // Generic ops may carry arbitrarily many scalar operands; the
            // spill area is addressed directly instead of going through
            // the (finite) scratch registers.
            if let Inst::Gen { args, .. } = &mut inst {
                for a in args.iter_mut() {
                    match (class, &a) {
                        (Class::F, majic_ir::Operand::F(r)) => match loc(*r) {
                            Loc::Reg(p) => *a = majic_ir::Operand::F(Reg(p)),
                            Loc::Spill(s) => *a = majic_ir::Operand::FSpill(s),
                        },
                        (Class::C, majic_ir::Operand::C(r)) => match loc(*r) {
                            Loc::Reg(p) => *a = majic_ir::Operand::C(Reg(p)),
                            Loc::Spill(s) => *a = majic_ir::Operand::CSpill(s),
                        },
                        _ => {}
                    }
                }
                out.push(inst);
                continue;
            }
            let mut scratch_used = 0u32;
            let sources = regs_of_mut(&mut inst, class, RegRole::Source);
            let mut loads: Vec<Inst> = Vec::new();
            for r in sources {
                match loc(*r) {
                    Loc::Reg(p) => *r = Reg(p),
                    Loc::Spill(slot) => {
                        // Re-use a scratch if this vreg was already loaded
                        // for this instruction.
                        let phys = scratch_base + scratch_used;
                        scratch_used = (scratch_used + 1) % SCRATCH;
                        loads.push(match class {
                            Class::F => Inst::FSpillLoad { d: Reg(phys), slot },
                            Class::C => Inst::CSpillLoad { d: Reg(phys), slot },
                        });
                        *r = Reg(phys);
                    }
                }
            }
            let mut stores: Vec<Inst> = Vec::new();
            for r in regs_of_mut(&mut inst, class, RegRole::Dest) {
                match loc(*r) {
                    Loc::Reg(p) => *r = Reg(p),
                    Loc::Spill(slot) => {
                        let phys = scratch_base + SCRATCH - 1; // last scratch for defs
                        stores.push(match class {
                            Class::F => Inst::FSpillStore { slot, s: Reg(phys) },
                            Class::C => Inst::CSpillStore { slot, s: Reg(phys) },
                        });
                        *r = Reg(phys);
                    }
                }
            }
            out.extend(loads);
            out.push(inst);
            out.extend(stores);
        }
        // Branch condition.
        if class == Class::F {
            if let Terminator::Branch { cond, .. } = &mut block.term {
                match loc(*cond) {
                    Loc::Reg(p) => *cond = Reg(p),
                    Loc::Spill(slot) => {
                        let phys = scratch_base;
                        out.push(Inst::FSpillLoad { d: Reg(phys), slot });
                        *cond = Reg(phys);
                    }
                }
            }
        }
        block.insts = out;
    }

    // Bindings.
    let map_binding = |b: &mut VarBinding| {
        let r = match (class, &b) {
            (Class::F, VarBinding::F(r)) | (Class::C, VarBinding::C(r)) => *r,
            _ => return,
        };
        match loc(r) {
            Loc::Reg(p) => {
                *b = match class {
                    Class::F => VarBinding::F(Reg(p)),
                    Class::C => VarBinding::C(Reg(p)),
                }
            }
            Loc::Spill(slot) => {
                *b = match class {
                    Class::F => VarBinding::FSpill(slot),
                    Class::C => VarBinding::CSpill(slot),
                }
            }
        }
    };
    for b in &mut f.params {
        map_binding(b);
    }
    for b in &mut f.outputs {
        map_binding(b);
    }

    next_spill
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RegRole {
    Source,
    Dest,
}

/// All register references of an instruction in the given class.
fn regs_of(inst: &Inst, class: Class) -> Vec<Reg> {
    let mut i = inst.clone();
    let mut v: Vec<Reg> = regs_of_mut(&mut i, class, RegRole::Source)
        .into_iter()
        .map(|r| *r)
        .collect();
    v.extend(
        regs_of_mut(&mut i, class, RegRole::Dest)
            .into_iter()
            .map(|r| *r),
    );
    v
}

/// Mutable references to the instruction's registers of one class/role.
fn regs_of_mut(inst: &mut Inst, class: Class, role: RegRole) -> Vec<&mut Reg> {
    use Inst::*;
    let src = role == RegRole::Source;
    let dst = role == RegRole::Dest;
    match class {
        Class::F => match inst {
            FConst { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            FMov { d, s } | FUn { d, s, .. } => {
                let mut v = Vec::new();
                if src {
                    v.push(s);
                }
                if dst {
                    v.push(d);
                }
                v
            }
            FBin { d, a, b, .. } | FCmp { d, a, b, .. } => {
                let mut v = Vec::new();
                if src {
                    v.push(a);
                    v.push(b);
                }
                if dst {
                    v.push(d);
                }
                v
            }
            CAbs { d, .. } | CPart { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            CMake { re, im, .. } => {
                if src {
                    vec![re, im]
                } else {
                    vec![]
                }
            }
            ALoadF { d, i, j, .. } => {
                let mut v = Vec::new();
                if src {
                    v.push(i);
                    if let Some(j) = j {
                        v.push(j);
                    }
                }
                if dst {
                    v.push(d);
                }
                v
            }
            ALoadC { i, j, .. } => {
                let mut v = Vec::new();
                if src {
                    v.push(i);
                    if let Some(j) = j {
                        v.push(j);
                    }
                }
                v
            }
            AStoreF { i, j, v: val, .. } => {
                let mut v = Vec::new();
                if src {
                    v.push(i);
                    if let Some(j) = j {
                        v.push(j);
                    }
                    v.push(val);
                }
                v
            }
            AStoreC { i, j, .. } => {
                let mut v = Vec::new();
                if src {
                    v.push(i);
                    if let Some(j) = j {
                        v.push(j);
                    }
                }
                v
            }
            ALoadConstF { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            AStoreConstF { v, .. } | FToSlot { s: v, .. } | FToSlotBool { s: v, .. } => {
                if src {
                    vec![v]
                } else {
                    vec![]
                }
            }
            SlotToF { d, .. } | TruthF { d, .. } | ExtentF { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            Gen { args, .. } => {
                if src {
                    args.iter_mut()
                        .filter_map(|a| match a {
                            majic_ir::Operand::F(r) => Some(r),
                            _ => None,
                        })
                        .collect()
                } else {
                    vec![]
                }
            }
            FSpillLoad { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            FSpillStore { s, .. } => {
                if src {
                    vec![s]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        },
        Class::C => match inst {
            CConst { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            CMov { d, s } | CUn { d, s, .. } => {
                let mut v = Vec::new();
                if src {
                    v.push(s);
                }
                if dst {
                    v.push(d);
                }
                v
            }
            CBin { d, a, b, .. } => {
                let mut v = Vec::new();
                if src {
                    v.push(a);
                    v.push(b);
                }
                if dst {
                    v.push(d);
                }
                v
            }
            CAbs { s, .. } | CPart { s, .. } => {
                if src {
                    vec![s]
                } else {
                    vec![]
                }
            }
            CMake { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            ALoadC { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            AStoreC { v, .. } | CToSlot { s: v, .. } => {
                if src {
                    vec![v]
                } else {
                    vec![]
                }
            }
            SlotToC { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            Gen { args, .. } => {
                if src {
                    args.iter_mut()
                        .filter_map(|a| match a {
                            majic_ir::Operand::C(r) => Some(r),
                            _ => None,
                        })
                        .collect()
                } else {
                    vec![]
                }
            }
            CSpillLoad { d, .. } => {
                if dst {
                    vec![d]
                } else {
                    vec![]
                }
            }
            CSpillStore { s, .. } => {
                if src {
                    vec![s]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majic_ir::{Block, FBinOp};

    /// Build a straight-line function with `n` simultaneously-live vregs.
    fn many_live(n: u32) -> Function {
        let mut insts = Vec::new();
        for k in 0..n {
            insts.push(Inst::FConst {
                d: Reg(k),
                v: k as f64,
            });
        }
        // One big sum keeps them all live to the end.
        let mut acc = Reg(n);
        insts.push(Inst::FMov { d: acc, s: Reg(0) });
        for k in 1..n {
            let next = Reg(n + k);
            insts.push(Inst::FBin {
                op: FBinOp::Add,
                d: next,
                a: acc,
                b: Reg(k),
            });
            acc = next;
        }
        Function {
            name: "t".into(),
            blocks: vec![Block {
                insts,
                term: Terminator::Return,
            }],
            f_regs: 2 * n,
            outputs: vec![VarBinding::F(acc)],
            ..Function::default()
        }
    }

    #[test]
    fn no_spills_when_pressure_is_low() {
        let mut f = many_live(5);
        let (fs, _) = allocate(&mut f, RegAllocMode::LinearScan);
        assert_eq!(fs, 0);
        // All register numbers now within the physical file.
        for b in &f.blocks {
            for i in &b.insts {
                if let Some(d) = i.f_dest() {
                    assert!(d.0 < NUM_F_REGS);
                }
            }
        }
    }

    #[test]
    fn spills_appear_under_pressure() {
        let mut f = many_live(64);
        let (fs, _) = allocate(&mut f, RegAllocMode::LinearScan);
        assert!(fs > 0, "64 live values must spill on a 32-register file");
        let spill_insts = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::FSpillLoad { .. } | Inst::FSpillStore { .. }))
            .count();
        assert!(spill_insts > 0);
    }

    #[test]
    fn spill_everything_spills_everything() {
        let mut f = many_live(4);
        let before = f.inst_count();
        let (fs, _) = allocate(&mut f, RegAllocMode::SpillEverything);
        assert!(fs >= 4);
        assert!(
            f.inst_count() > before * 2,
            "spill-everything must add heavy spill traffic"
        );
    }

    #[test]
    fn bindings_are_remapped() {
        let mut f = many_live(64);
        allocate(&mut f, RegAllocMode::LinearScan);
        match f.outputs[0] {
            VarBinding::F(r) => assert!(r.0 < NUM_F_REGS),
            VarBinding::FSpill(_) => {}
            other => panic!("unexpected binding {other:?}"),
        }
    }
}
