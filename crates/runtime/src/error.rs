//! Runtime errors.

use std::error::Error;
use std::fmt;

/// Result alias used throughout the runtime.
pub type RuntimeResult<T> = Result<T, RuntimeError>;

/// An error raised during MATLAB program execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// Array subscript out of bounds (read side).
    IndexOutOfBounds {
        /// The offending (1-based) subscript description.
        index: String,
        /// Extent of the indexed object.
        extent: String,
    },
    /// Subscripts must be positive integers.
    BadSubscript(String),
    /// Operand shapes do not agree.
    DimensionMismatch(String),
    /// Operation not defined for these operand types.
    TypeMismatch(String),
    /// Use of an undefined variable or function.
    Undefined(String),
    /// Wrong number of inputs/outputs to a function.
    BadArity {
        /// Function name.
        name: String,
        /// What was wrong.
        detail: String,
    },
    /// `error(...)` raised by user code, or another fatal condition.
    Raised(String),
    /// A requested array would exceed the per-matrix element-count
    /// ceiling (or overflow `usize`). Raised *before* allocating, so a
    /// hostile `zeros(1e300)` degrades to a catchable error instead of
    /// an abort — and, crucially, a wrapped `rows * cols` can never
    /// leave a small buffer behind large logical extents for the VM's
    /// unchecked-dispatch fast path to trust.
    AllocLimit {
        /// Human-readable requested extent (e.g. `"1000000x1000000"`).
        requested: String,
        /// The active ceiling in elements ([`crate::numel_limit`]).
        limit: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::IndexOutOfBounds { index, extent } => {
                write!(f, "index {index} out of bounds for size {extent}")
            }
            RuntimeError::BadSubscript(s) => {
                write!(f, "subscripts must be positive integers ({s})")
            }
            RuntimeError::DimensionMismatch(s) => write!(f, "matrix dimensions must agree: {s}"),
            RuntimeError::TypeMismatch(s) => write!(f, "invalid operand types: {s}"),
            RuntimeError::Undefined(s) => write!(f, "undefined function or variable '{s}'"),
            RuntimeError::BadArity { name, detail } => {
                write!(f, "bad call to '{name}': {detail}")
            }
            RuntimeError::Raised(s) => f.write_str(s),
            RuntimeError::AllocLimit { requested, limit } => {
                write!(
                    f,
                    "requested {requested} array exceeds the maximum element count ({limit})"
                )
            }
        }
    }
}

impl Error for RuntimeError {}
