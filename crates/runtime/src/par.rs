//! Size-gated data-parallel matrix kernels.
//!
//! MaJIC's thesis is that MATLAB programs live in matrix primitives, so
//! the runtime's kernels — not just the compiler — decide throughput.
//! This module gives the operator library in [`crate::ops`] and the
//! dense algebra in [`crate::linalg`] a shared, zero-dependency worker
//! pool: elementwise maps/zips and blocked matrix products are split
//! into disjoint output chunks once the work crosses a threshold, and
//! fall back to the ordinary sequential loops below it.
//!
//! # Determinism is a hard invariant
//!
//! Every output element is computed by the *exact same expression* as
//! the sequential path, and the blocked product reuses the sequential
//! per-column accumulation loop verbatim, so results are bitwise
//! identical for every thread count. The golden suites (all 16
//! benchmarks across `MAJIC_THREADS ∈ {0, 1, 4}`) enforce this — the
//! differential-fuzzing and golden oracles from earlier PRs keep their
//! teeth no matter how the pool is configured.
//!
//! # Configuration
//!
//! The participating thread count (the submitting thread plus pool
//! workers) comes from the `MAJIC_THREADS` environment variable on
//! first use, or [`set_threads`] / `EngineOptions::threads` at runtime.
//! `0` and `1` both mean "stay sequential". Malformed values warn once
//! on stderr and leave the kernels off, mirroring how `MAJIC_TRACE`
//! treats unknown modes.
//!
//! # Observability
//!
//! Each parallel dispatch bumps the `kernel.par.dispatch` counter and
//! records its chunk size in the `kernel.par.chunk_elems` histogram; an
//! op that crossed the size gate but could not be parallelized (e.g. a
//! non-contiguous operand) bumps `kernel.par.bypass` instead.

use crate::Matrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Default element-count gate: ops touching fewer elements than this
/// stay on the sequential path (the fork/join handshake costs far more
/// than a small loop saves).
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 16;

/// Largest accepted thread count; values beyond this are clamped (via
/// [`set_threads`]) or rejected (from the environment).
pub const MAX_THREADS: usize = 256;

/// Smallest chunk handed to a worker, in elements: keeps per-chunk
/// bookkeeping negligible next to the element loop.
const MIN_CHUNK_ELEMS: usize = 4 * 1024;

/// Chunks per participating thread: a little over-decomposition evens
/// out scheduling noise without shrinking chunks into overhead.
const CHUNKS_PER_THREAD: usize = 4;

/// Sentinel: thread count not yet initialized from the environment.
const THREADS_UNSET: usize = usize::MAX;

static THREADS: AtomicUsize = AtomicUsize::new(THREADS_UNSET);
static THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PAR_THRESHOLD);

/// Parse a `MAJIC_THREADS` value: a bare thread count in
/// `0..=`[`MAX_THREADS`]. `None` for anything else (floats, suffixes,
/// negatives, absurd counts).
pub fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n <= MAX_THREADS)
}

/// The configured number of participating threads (submitting thread
/// included). `0` and `1` both mean sequential execution. Initialized
/// on first use from `MAJIC_THREADS`; adjustable with [`set_threads`].
pub fn thread_count() -> usize {
    let v = THREADS.load(Ordering::Relaxed);
    if v != THREADS_UNSET {
        return v;
    }
    let init = match std::env::var("MAJIC_THREADS") {
        Ok(s) => match parse_threads(&s) {
            Some(n) => n,
            None => {
                if !s.trim().is_empty() {
                    eprintln!(
                        "majic-runtime: unrecognized MAJIC_THREADS {s:?} (expected an integer \
                         0..={MAX_THREADS}); parallel kernels stay off"
                    );
                }
                0
            }
        },
        Err(_) => 0,
    };
    THREADS.store(init, Ordering::Relaxed);
    init
}

/// Override the participating thread count (process-global). The pool
/// is resized eagerly: `n - 1` workers are kept alive between kernels,
/// and shrinking to `0`/`1` joins and discards them.
pub fn set_threads(n: usize) {
    let n = n.min(MAX_THREADS);
    THREADS.store(n, Ordering::Relaxed);
    let mut cell = pool_cell().lock().expect("kernel pool lock poisoned");
    let workers = n.saturating_sub(1);
    if cell.as_ref().map(KernelPool::workers) != Some(workers) {
        // Dropping the old pool joins its threads before the new one
        // (if any) spawns.
        *cell = None;
        if workers > 0 {
            *cell = Some(KernelPool::start(workers));
        }
    }
}

/// The active element-count gate below which kernels stay sequential.
pub fn threshold() -> usize {
    THRESHOLD.load(Ordering::Relaxed)
}

/// Override the size gate (process-global; test/bench hook — lowering
/// it forces small ops through the parallel path).
pub fn set_threshold(n: usize) {
    THRESHOLD.store(n.max(1), Ordering::Relaxed);
}

/// Should an op over `work` elements take the parallel path?
pub(crate) fn gate(work: usize) -> bool {
    work >= threshold() && thread_count() > 1
}

/// Chunk size (in elements) for an `n`-element elementwise kernel.
pub(crate) fn chunk_elems(n: usize) -> usize {
    let threads = thread_count().max(2);
    n.div_ceil(threads * CHUNKS_PER_THREAD).max(MIN_CHUNK_ELEMS)
}

/// Record a parallel dispatch: one counter bump plus the chunk size
/// into the log₂ histogram.
pub(crate) fn note_dispatch(chunk: usize) {
    majic_trace::counter("kernel.par.dispatch").inc();
    majic_trace::histogram("kernel.par.chunk_elems").record(chunk as u64);
}

/// Record an op that crossed the size gate but ran sequentially anyway
/// (non-contiguous operand, degenerate shape, ...).
pub(crate) fn note_bypass() {
    majic_trace::counter("kernel.par.bypass").inc();
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// Type-erased pointer to the current job's chunk closure. The pointee
/// is `Sync`, and [`run_chunks`] keeps the closure alive (and the
/// submitting thread parked) until every chunk has finished, so workers
/// may dereference it for the duration of the job.
#[derive(Clone, Copy)]
struct RawChunkFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are fine) and `run_chunks`
// guarantees it outlives every dereference; see `RawChunkFn` docs.
unsafe impl Send for RawChunkFn {}
// SAFETY: as above — the pointer is only ever dereferenced to a `Sync`
// closure that outlives the job.
unsafe impl Sync for RawChunkFn {}

/// One fork/join job: workers claim chunk indices from `next` until
/// exhausted; `pending` counts unfinished chunks and releases the
/// submitter when it reaches zero.
#[derive(Clone)]
struct ActiveJob {
    run: RawChunkFn,
    chunks: usize,
    next: Arc<AtomicUsize>,
    pending: Arc<AtomicUsize>,
    panicked: Arc<AtomicBool>,
}

/// The slot the submitter publishes jobs into. `seq` distinguishes a
/// new job from the still-installed previous one, so a worker that
/// finishes early does not re-enter the same job.
struct SlotState {
    job: Option<ActiveJob>,
    seq: u64,
    closed: bool,
}

struct PoolShared {
    slot: Mutex<SlotState>,
    /// Signaled when a new job lands (or the pool closes).
    work: Condvar,
    /// Signaled by the worker that finishes the last chunk.
    done: Condvar,
}

/// A persistent pool of kernel workers, following `SpecWorkerPool`'s
/// shutdown discipline: close the slot, wake everyone, join on drop.
struct KernelPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl KernelPool {
    fn start(workers: usize) -> KernelPool {
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(SlotState {
                job: None,
                seq: 0,
                closed: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("majic-kernel-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn kernel worker")
            })
            .collect();
        KernelPool { shared, handles }
    }

    fn workers(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for KernelPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("kernel pool lock poisoned");
            slot.closed = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("kernel pool lock poisoned");
            loop {
                if slot.closed {
                    return;
                }
                if slot.seq != seen {
                    seen = slot.seq;
                    if let Some(job) = slot.job.clone() {
                        break job;
                    }
                }
                slot = shared.work.wait(slot).expect("kernel pool lock poisoned");
            }
        };
        run_job(shared, &job);
    }
}

/// Claim and execute chunks of `job` until none remain. Called by every
/// worker and by the submitting thread itself (which always
/// participates instead of idling).
fn run_job(shared: &PoolShared, job: &ActiveJob) {
    loop {
        let chunk = job.next.fetch_add(1, Ordering::Relaxed);
        if chunk >= job.chunks {
            return;
        }
        // SAFETY: the submitter keeps the closure alive until `pending`
        // reaches zero, which cannot happen before this call returns.
        let f = unsafe { &*job.run.0 };
        if catch_unwind(AssertUnwindSafe(|| f(chunk))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk: take the slot lock before signaling so the
            // submitter cannot check `pending` and park between our
            // decrement and our notify.
            let _slot = shared.slot.lock().expect("kernel pool lock poisoned");
            shared.done.notify_all();
        }
    }
}

static POOL: OnceLock<Mutex<Option<KernelPool>>> = OnceLock::new();

fn pool_cell() -> &'static Mutex<Option<KernelPool>> {
    POOL.get_or_init(|| Mutex::new(None))
}

/// Run `f(0..chunks)` with chunks distributed over the kernel pool (the
/// calling thread participates). Falls back to a plain loop when the
/// pool is configured off or there is nothing to split. Panics from a
/// chunk are caught on the worker and re-raised here once every chunk
/// has finished, so the pool itself always survives.
pub(crate) fn run_chunks(chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    let threads = thread_count();
    if chunks <= 1 || threads <= 1 {
        for c in 0..chunks {
            f(c);
        }
        return;
    }
    // Holding the cell lock for the whole job serializes concurrent
    // submitters (each gets the full pool) and excludes `set_threads`
    // from swapping the pool mid-job.
    let mut cell = pool_cell().lock().expect("kernel pool lock poisoned");
    let workers = threads - 1;
    if cell.as_ref().map(KernelPool::workers) != Some(workers) {
        *cell = None;
        *cell = Some(KernelPool::start(workers));
    }
    let pool = cell.as_ref().expect("pool installed above");
    // SAFETY: lifetime erasure only — this function keeps `f` borrowed
    // (and this thread parked) until every chunk has completed, so the
    // erased pointer never outlives the pointee (see `RawChunkFn`).
    let run = RawChunkFn(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
    });
    let job = ActiveJob {
        run,
        chunks,
        next: Arc::new(AtomicUsize::new(0)),
        pending: Arc::new(AtomicUsize::new(chunks)),
        panicked: Arc::new(AtomicBool::new(false)),
    };
    {
        let mut slot = pool.shared.slot.lock().expect("kernel pool lock poisoned");
        slot.job = Some(job.clone());
        slot.seq += 1;
    }
    pool.shared.work.notify_all();
    // Work alongside the pool rather than idling.
    run_job(&pool.shared, &job);
    // Wait out stragglers, then retire the job from the slot.
    {
        let mut slot = pool.shared.slot.lock().expect("kernel pool lock poisoned");
        while job.pending.load(Ordering::Acquire) != 0 {
            slot = pool
                .shared
                .done
                .wait(slot)
                .expect("kernel pool lock poisoned");
        }
        slot.job = None;
    }
    if job.panicked.load(Ordering::Relaxed) {
        panic!("parallel kernel chunk panicked");
    }
}

/// Covariant send-through-closure wrapper for the output base pointer.
struct SendPtr<U>(*mut U);
// SAFETY: each chunk writes a disjoint range of the output buffer (see
// `for_each_chunk_mut`), so sharing the base pointer across workers
// creates no aliasing mutable access.
unsafe impl<U> Send for SendPtr<U> {}
// SAFETY: as above — disjoint ranges only.
unsafe impl<U> Sync for SendPtr<U> {}

/// Split `out` into `chunk`-element runs and invoke
/// `f(start_index, run)` for each, in parallel when the pool is on.
/// `f` must derive everything it writes from `start_index` alone so the
/// runs stay disjoint.
pub(crate) fn for_each_chunk_mut<U: Send>(
    out: &mut [U],
    chunk: usize,
    f: impl Fn(usize, &mut [U]) + Sync,
) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let chunks = n.div_ceil(chunk);
    let base = SendPtr(out.as_mut_ptr());
    // Borrow the wrapper, not the field: 2021-edition closures capture
    // disjoint fields, and a bare `*mut U` capture would not be `Sync`.
    let base = &base;
    run_chunks(chunks, &|c: usize| {
        let start = c * chunk;
        let len = chunk.min(n - start);
        // SAFETY: chunk index `c` is handed out exactly once, so the
        // `[start, start + len)` ranges are pairwise disjoint and within
        // `out`; the borrow of `out` outlives `run_chunks`.
        let run = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
        f(start, run);
    });
}

// ---------------------------------------------------------------------------
// Matrix kernels
// ---------------------------------------------------------------------------

/// Elementwise map with the size-gated parallel fast path. Falls back
/// to [`Matrix::map`] below the gate or when the source has row slack
/// (`lda != rows`), counting the latter as a bypass.
pub(crate) fn map<T, U>(m: &Matrix<T>, f: impl Fn(&T) -> U + Sync) -> Matrix<U>
where
    T: Clone + Default + PartialEq + Sync,
    U: Clone + Default + PartialEq + Send,
{
    let n = m.numel();
    if gate(n) {
        if let Some(src) = m.as_contiguous_slice() {
            let chunk = chunk_elems(n);
            note_dispatch(chunk);
            let mut out = vec![U::default(); n];
            for_each_chunk_mut(&mut out, chunk, |start, run| {
                for (off, dst) in run.iter_mut().enumerate() {
                    *dst = f(&src[start + off]);
                }
            });
            return Matrix::from_vec(m.rows(), m.cols(), out);
        }
        note_bypass();
    }
    m.map(f)
}

/// Elementwise zip of two equal-shape matrices with the size-gated
/// parallel fast path; sequential fallback is [`Matrix::zip`].
///
/// # Panics
///
/// Panics if the shapes differ (callers check first, as for
/// [`Matrix::zip`]).
pub(crate) fn zip<T, U, V>(
    a: &Matrix<T>,
    b: &Matrix<U>,
    f: impl Fn(&T, &U) -> V + Sync,
) -> Matrix<V>
where
    T: Clone + Default + PartialEq + Sync,
    U: Clone + Default + PartialEq + Sync,
    V: Clone + Default + PartialEq + Send,
{
    let n = a.numel();
    if gate(n) {
        if let (Some(sa), Some(sb)) = (a.as_contiguous_slice(), b.as_contiguous_slice()) {
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
            let chunk = chunk_elems(n);
            note_dispatch(chunk);
            let mut out = vec![V::default(); n];
            for_each_chunk_mut(&mut out, chunk, |start, run| {
                for (off, dst) in run.iter_mut().enumerate() {
                    *dst = f(&sa[start + off], &sb[start + off]);
                }
            });
            return Matrix::from_vec(a.rows(), a.cols(), out);
        }
        note_bypass();
    }
    a.zip(b, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that reconfigure the process-global pool.
    fn config_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn with_pool<R>(threads: usize, threshold: usize, body: impl FnOnce() -> R) -> R {
        let _guard = config_lock();
        set_threads(threads);
        set_threshold(threshold);
        let out = body();
        set_threads(0);
        set_threshold(DEFAULT_PAR_THRESHOLD);
        out
    }

    #[test]
    fn parse_threads_matrix() {
        assert_eq!(parse_threads("0"), Some(0));
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads(&MAX_THREADS.to_string()), Some(MAX_THREADS));
        assert_eq!(parse_threads("257"), None, "beyond MAX_THREADS");
        assert_eq!(parse_threads("-1"), None);
        assert_eq!(parse_threads("2e9"), None);
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("4 threads"), None);
    }

    #[test]
    fn map_matches_sequential_bitwise() {
        let m = Matrix::from_vec(64, 2, (0..128).map(|k| k as f64 * 0.3).collect());
        let seq = m.map(|&v| v.sin());
        let par = with_pool(4, 8, || map(&m, |&v: &f64| v.sin()));
        assert_eq!(seq.rows(), par.rows());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zip_matches_sequential_bitwise() {
        let a = Matrix::from_vec(128, 1, (0..128).map(|k| k as f64 * 1.7).collect());
        let b = Matrix::from_vec(128, 1, (0..128).map(|k| (k as f64).sqrt()).collect());
        let seq = a.zip(&b, |&x, &y| x / y);
        let par = with_pool(3, 8, || zip(&a, &b, |&x: &f64, &y: &f64| x / y));
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn below_gate_stays_sequential_without_counting() {
        let before = majic_trace::counter("kernel.par.dispatch").get();
        let m = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let out = with_pool(4, DEFAULT_PAR_THRESHOLD, || map(&m, |&v: &f64| v + 1.0));
        assert_eq!(out.get(2, 0), 4.0);
        assert_eq!(majic_trace::counter("kernel.par.dispatch").get(), before);
    }

    #[test]
    fn non_contiguous_operand_bypasses() {
        let mut m: Matrix<f64> = Matrix::zeros(4, 1);
        m.grow(5, 1, true); // introduces lda slack
        m.grow(5, 2, true);
        assert!(m.as_contiguous_slice().is_none());
        let before = majic_trace::counter("kernel.par.bypass").get();
        let out = with_pool(4, 1, || map(&m, |&v: &f64| v + 2.0));
        assert!(out.iter().all(|&v| v == 2.0));
        assert!(majic_trace::counter("kernel.par.bypass").get() > before);
    }

    #[test]
    fn dispatch_counter_and_histogram_record() {
        let m = Matrix::from_vec(256, 1, vec![1.0; 256]);
        let before = majic_trace::counter("kernel.par.dispatch").get();
        let out = with_pool(2, 16, || map(&m, |&v: &f64| v * 2.0));
        assert!(out.iter().all(|&v| v == 2.0));
        assert!(majic_trace::counter("kernel.par.dispatch").get() > before);
    }

    #[test]
    fn pool_survives_a_panicking_chunk() {
        with_pool(4, 1, || {
            let m = Matrix::from_vec(64, 1, (0..64).map(|k| k as f64).collect());
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                map(&m, |&v: &f64| {
                    assert!(v < 63.0, "poison chunk");
                    v
                })
            }));
            assert!(r.is_err(), "chunk panic must propagate to the submitter");
            // The pool must still execute subsequent jobs correctly.
            let ok = map(&m, |&v: &f64| v + 1.0);
            assert_eq!(ok.get_linear(63), 64.0);
        });
    }

    #[test]
    fn repeated_reconfiguration_joins_cleanly() {
        let _guard = config_lock();
        for &threads in &[2usize, 4, 1, 3, 0] {
            set_threads(threads);
            set_threshold(1);
            let m = Matrix::from_vec(32, 1, vec![1.5; 32]);
            let out = map(&m, |&v: &f64| v * 2.0);
            assert!(out.iter().all(|&v| v == 3.0));
        }
        set_threads(0);
        set_threshold(DEFAULT_PAR_THRESHOLD);
    }

    #[test]
    fn blocked_gemm_is_bitwise_identical() {
        // Irrational-ish values make accumulation order observable: any
        // reordering of the inner loop would flip low mantissa bits.
        let mut lcg = crate::Lcg::seeded(42);
        let a = Matrix::from_vec(24, 32, (0..768).map(|_| lcg.next_f64() * 3.7).collect());
        let b = Matrix::from_vec(32, 40, (0..1280).map(|_| lcg.next_f64() * 2.3).collect());
        let seq = crate::linalg::gemm(&a, &b).unwrap();
        for &threads in &[2usize, 4] {
            let par = with_pool(threads, 16, || crate::linalg::gemm(&a, &b).unwrap());
            assert_eq!((seq.rows(), seq.cols()), (par.rows(), par.cols()));
            for (s, p) in seq.iter().zip(par.iter()) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn run_chunks_covers_every_chunk_exactly_once() {
        with_pool(4, 1, || {
            let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
            run_chunks(hits.len(), &|c: usize| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }
}
