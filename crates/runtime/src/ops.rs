//! The generic polymorphic operator library.
//!
//! These functions are MaJIC's equivalent of the `mlfPlus` / `mlfTimes` /
//! `mlfPower` calls visible in the paper's Figure 3: they dispatch on
//! runtime value kinds, check shapes, and allocate results. The
//! interpreter calls them for everything; `mcc`-mode compiled code calls
//! them instead of interpreting; JIT/optimized code replaces them with
//! inlined scalar instructions wherever type inference permits.

use crate::linalg;
use crate::par;
use crate::{Complex, Matrix, RuntimeError, RuntimeResult, Value};

/// Relational comparison selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `~=`
    Ne,
}

impl Cmp {
    /// Apply to two doubles.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
        }
    }
}

/// One evaluated subscript of an indexing operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Subscript {
    /// A bare `:` — the whole extent.
    Colon,
    /// Explicit indices (scalar or vector, 1-based).
    Index(Value),
}

fn dims_of(v: &Value) -> (usize, usize) {
    v.dims()
}

fn shape_err(a: &Value, b: &Value) -> RuntimeError {
    let (ar, ac) = dims_of(a);
    let (br, bc) = dims_of(b);
    RuntimeError::DimensionMismatch(format!("{ar}x{ac} vs {br}x{bc}"))
}

fn is_complex(v: &Value) -> bool {
    matches!(v, Value::Complex(_))
}

/// Elementwise binary dispatch with scalar broadcasting and complex
/// promotion. The matrix-shaped cases go through the size-gated
/// parallel kernels in [`par`], which compute each output element with
/// the very same closure the sequential path would use — results are
/// bitwise identical for every thread count.
fn elementwise(
    a: &Value,
    b: &Value,
    real_op: impl Fn(f64, f64) -> f64 + Sync,
    cplx_op: impl Fn(Complex, Complex) -> Complex + Sync,
) -> RuntimeResult<Value> {
    if is_complex(a) || is_complex(b) {
        let ma = a.to_complex_matrix()?;
        let mb = b.to_complex_matrix()?;
        let out = if ma.is_scalar() && !mb.is_scalar() {
            let s = ma.first();
            par::map(&mb, |&z| cplx_op(s, z))
        } else if mb.is_scalar() && !ma.is_scalar() {
            let s = mb.first();
            par::map(&ma, |&z| cplx_op(z, s))
        } else if ma.rows() == mb.rows() && ma.cols() == mb.cols() {
            par::zip(&ma, &mb, |&x, &y| cplx_op(x, y))
        } else {
            return Err(shape_err(a, b));
        };
        Ok(Value::Complex(out).normalized())
    } else {
        let ma = a.to_real_matrix()?;
        let mb = b.to_real_matrix()?;
        let out = if ma.is_scalar() && !mb.is_scalar() {
            let s = ma.first();
            par::map(&mb, |&v| real_op(s, v))
        } else if mb.is_scalar() && !ma.is_scalar() {
            let s = mb.first();
            par::map(&ma, |&v| real_op(v, s))
        } else if ma.rows() == mb.rows() && ma.cols() == mb.cols() {
            par::zip(&ma, &mb, |&x, &y| real_op(x, y))
        } else {
            return Err(shape_err(a, b));
        };
        Ok(Value::Real(out))
    }
}

/// `a + b`.
///
/// # Errors
///
/// Fails on shape or type mismatch.
pub fn add(a: &Value, b: &Value) -> RuntimeResult<Value> {
    elementwise(a, b, |x, y| x + y, |x, y| x + y)
}

/// `a - b`.
///
/// # Errors
///
/// Fails on shape or type mismatch.
pub fn sub(a: &Value, b: &Value) -> RuntimeResult<Value> {
    elementwise(a, b, |x, y| x - y, |x, y| x - y)
}

/// `a .* b`.
///
/// # Errors
///
/// Fails on shape or type mismatch.
pub fn elem_mul(a: &Value, b: &Value) -> RuntimeResult<Value> {
    elementwise(a, b, |x, y| x * y, |x, y| x * y)
}

/// `a ./ b`.
///
/// # Errors
///
/// Fails on shape or type mismatch.
pub fn elem_div(a: &Value, b: &Value) -> RuntimeResult<Value> {
    elementwise(a, b, |x, y| x / y, |x, y| x / y)
}

/// `a .\ b`.
///
/// # Errors
///
/// Fails on shape or type mismatch.
pub fn elem_left_div(a: &Value, b: &Value) -> RuntimeResult<Value> {
    elem_div(b, a)
}

/// `a .^ b`.
///
/// # Errors
///
/// Fails on shape or type mismatch.
pub fn elem_pow(a: &Value, b: &Value) -> RuntimeResult<Value> {
    if !is_complex(a) && !is_complex(b) {
        // Does any element pair promote to complex?
        let ma = a.to_real_matrix()?;
        let mb = b.to_real_matrix()?;
        if !ma.is_scalar() && !mb.is_scalar() && (ma.rows(), ma.cols()) != (mb.rows(), mb.cols()) {
            return Err(shape_err(a, b));
        }
        let promotes = |x: f64, y: f64| x < 0.0 && y.fract() != 0.0;
        let needs_complex = if ma.is_scalar() {
            let x = ma.first();
            mb.iter().any(|&y| promotes(x, y))
        } else if mb.is_scalar() {
            let y = mb.first();
            ma.iter().any(|&x| promotes(x, y))
        } else {
            ma.iter().zip(mb.iter()).any(|(&x, &y)| promotes(x, y))
        };
        if !needs_complex {
            return elementwise(a, b, |x, y| x.powf(y), |x, y| x.powc(y));
        }
        // Promote both sides and fall through to the complex path.
        let za = Value::Complex(a.to_complex_matrix()?);
        let zb = Value::Complex(b.to_complex_matrix()?);
        return elementwise(&za, &zb, |x, y| x.powf(y), |x, y| x.powc(y));
    }
    elementwise(a, b, |x, y| x.powf(y), |x, y| x.powc(y))
}

/// `a * b` — scalar scaling or matrix product.
///
/// # Errors
///
/// Fails when inner dimensions disagree or operands are strings.
pub fn mul(a: &Value, b: &Value) -> RuntimeResult<Value> {
    if a.is_scalar() || b.is_scalar() {
        return elem_mul(a, b);
    }
    if is_complex(a) || is_complex(b) {
        let ma = a.to_complex_matrix()?;
        let mb = b.to_complex_matrix()?;
        Ok(Value::Complex(linalg::gemm(&ma, &mb)?).normalized())
    } else {
        let ma = a.to_real_matrix()?;
        let mb = b.to_real_matrix()?;
        Ok(Value::Real(linalg::gemm(&ma, &mb)?))
    }
}

/// `a \ b` — left division (linear solve).
///
/// # Errors
///
/// Fails on non-square systems or singular matrices.
pub fn left_div(a: &Value, b: &Value) -> RuntimeResult<Value> {
    if a.is_scalar() {
        return elem_div(b, a);
    }
    if is_complex(a) || is_complex(b) {
        let ma = a.to_complex_matrix()?;
        let mb = b.to_complex_matrix()?;
        Ok(Value::Complex(linalg::lu_solve(&ma, &mb)?).normalized())
    } else {
        let ma = a.to_real_matrix()?;
        let mb = b.to_real_matrix()?;
        Ok(Value::Real(linalg::lu_solve(&ma, &mb)?))
    }
}

/// `a / b` — right division: `(b' \ a')'` for matrices.
///
/// # Errors
///
/// Fails on non-square systems or singular matrices.
pub fn div(a: &Value, b: &Value) -> RuntimeResult<Value> {
    if b.is_scalar() {
        return elem_div(a, b);
    }
    let at = transpose(a, false)?;
    let bt = transpose(b, false)?;
    let xt = left_div(&bt, &at)?;
    transpose(&xt, false)
}

/// `a ^ b` — matrix power for square matrix base and integer scalar
/// exponent; scalar power otherwise.
///
/// # Errors
///
/// Fails for non-integer matrix exponents or matrix-valued exponents.
pub fn pow(a: &Value, b: &Value) -> RuntimeResult<Value> {
    if a.is_scalar() && b.is_scalar() {
        return elem_pow(a, b);
    }
    if !b.is_scalar() {
        return Err(RuntimeError::TypeMismatch(
            "matrix exponent is not supported".to_owned(),
        ));
    }
    let e = b.to_scalar()?;
    if e.fract() != 0.0 || e < 0.0 {
        return Err(RuntimeError::TypeMismatch(
            "matrix power requires a non-negative integer exponent".to_owned(),
        ));
    }
    let (r, c) = a.dims();
    if r != c {
        return Err(RuntimeError::DimensionMismatch(format!(
            "matrix power of {r}x{c}"
        )));
    }
    // Repeated squaring.
    let mut n = e as u64;
    let mut result = identity(r);
    let mut base = a.clone();
    while n > 0 {
        if n & 1 == 1 {
            result = mul(&result, &base)?;
        }
        base = mul(&base, &base)?;
        n >>= 1;
    }
    Ok(result)
}

fn identity(n: usize) -> Value {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        m.set(i, i, 1.0);
    }
    Value::Real(m)
}

/// Unary minus.
///
/// # Errors
///
/// Fails on strings.
pub fn neg(a: &Value) -> RuntimeResult<Value> {
    match a {
        Value::Complex(m) => Ok(Value::Complex(par::map(m, |&z| -z))),
        _ => Ok(Value::Real(par::map(&a.to_real_matrix()?, |&v| -v))),
    }
}

/// Logical negation `~a`.
///
/// # Errors
///
/// Fails on strings.
pub fn not(a: &Value) -> RuntimeResult<Value> {
    match a {
        Value::Bool(m) => Ok(Value::Bool(par::map(m, |&b| !b))),
        Value::Complex(m) => Ok(Value::Bool(par::map(m, |z| z.re == 0.0 && z.im == 0.0))),
        _ => Ok(Value::Bool(par::map(&a.to_real_matrix()?, |&v| v == 0.0))),
    }
}

/// Transpose; `conjugate` selects `'` over `.'`.
///
/// # Errors
///
/// Fails on strings.
pub fn transpose(a: &Value, conjugate: bool) -> RuntimeResult<Value> {
    match a {
        Value::Real(m) => Ok(Value::Real(m.transpose())),
        Value::Bool(m) => Ok(Value::Bool(m.transpose())),
        Value::Complex(m) => {
            let t = m.transpose();
            Ok(Value::Complex(if conjugate {
                t.map(|z| z.conj())
            } else {
                t
            }))
        }
        Value::Str(_) => Err(RuntimeError::TypeMismatch(
            "cannot transpose a string".to_owned(),
        )),
    }
}

/// Relational comparison (elementwise; complex operands compare by real
/// part, as MATLAB does).
///
/// # Errors
///
/// Fails on shape mismatch.
pub fn compare(op: Cmp, a: &Value, b: &Value) -> RuntimeResult<Value> {
    // Strings compare char-by-char against strings of equal length.
    if let (Value::Str(x), Value::Str(y)) = (a, b) {
        if x.len() != y.len() {
            return Err(shape_err(a, b));
        }
        let data: Vec<bool> = x
            .bytes()
            .zip(y.bytes())
            .map(|(p, q)| op.apply(f64::from(p), f64::from(q)))
            .collect();
        let n = data.len();
        return Ok(Value::Bool(Matrix::from_vec(1, n, data)));
    }
    let realify = |v: &Value| -> RuntimeResult<Matrix<f64>> {
        match v {
            Value::Complex(m) => Ok(par::map(m, |z| z.re)),
            other => other.to_real_matrix(),
        }
    };
    let ma = realify(a)?;
    let mb = realify(b)?;
    let out = if ma.is_scalar() && !mb.is_scalar() {
        let s = ma.first();
        par::map(&mb, |&v| op.apply(s, v))
    } else if mb.is_scalar() && !ma.is_scalar() {
        let s = mb.first();
        par::map(&ma, |&v| op.apply(v, s))
    } else if ma.rows() == mb.rows() && ma.cols() == mb.cols() {
        par::zip(&ma, &mb, |&x, &y| op.apply(x, y))
    } else {
        return Err(shape_err(a, b));
    };
    Ok(Value::Bool(out))
}

/// Elementwise logical `a & b` / `a | b`.
///
/// # Errors
///
/// Fails on shape mismatch or strings.
pub fn logical(a: &Value, b: &Value, or: bool) -> RuntimeResult<Value> {
    let boolify = |v: &Value| -> RuntimeResult<Matrix<bool>> {
        match v {
            Value::Bool(m) => Ok(m.clone()),
            Value::Complex(m) => Ok(par::map(m, |z| z.re != 0.0 || z.im != 0.0)),
            other => Ok(par::map(&other.to_real_matrix()?, |&v| v != 0.0)),
        }
    };
    let ma = boolify(a)?;
    let mb = boolify(b)?;
    let f = |x: bool, y: bool| if or { x || y } else { x && y };
    let out = if ma.is_scalar() && !mb.is_scalar() {
        let s = ma.first();
        par::map(&mb, |&v| f(s, v))
    } else if mb.is_scalar() && !ma.is_scalar() {
        let s = mb.first();
        par::map(&ma, |&v| f(v, s))
    } else if ma.rows() == mb.rows() && ma.cols() == mb.cols() {
        par::zip(&ma, &mb, |&x, &y| f(x, y))
    } else {
        return Err(shape_err(a, b));
    };
    Ok(Value::Bool(out))
}

/// The colon-range constructor `start : step : stop` (row vector).
///
/// MATLAB silently uses only the real part of complex endpoints
/// (paper §2.5 — this very forgiveness is what makes the speculator's
/// "colon operands are integer scalars" hint safe).
///
/// # Errors
///
/// Fails when `step` is zero, operands are not numeric scalars, or the
/// element count exceeds the allocation ceiling (`0:1e-300:1` asks for
/// ~1e300 elements).
pub fn range(start: &Value, step: Option<&Value>, stop: &Value) -> RuntimeResult<Value> {
    let a = start.to_scalar()?;
    let s = match step {
        Some(v) => v.to_scalar()?,
        None => 1.0,
    };
    let b = stop.to_scalar()?;
    if s == 0.0 {
        return Err(RuntimeError::Raised("range step cannot be zero".to_owned()));
    }
    // A NaN endpoint or step satisfies no iteration condition: MATLAB
    // returns the 1×0 empty. (Without this, `span` goes NaN below,
    // skips the `span < 0` empty return, and the NaN→usize cast lands
    // on n = 1, yielding `[NaN]` — a compiled-vs-interpreted
    // divergence, since counted loops compare against NaN and run zero
    // iterations.)
    if a.is_nan() || s.is_nan() || b.is_nan() {
        return Ok(Value::Real(Matrix::zeros(1, 0)));
    }
    let span = (b - a) / s;
    if span < 0.0 {
        return Ok(Value::Real(Matrix::zeros(1, 0)));
    }
    // Tolerate floating-point endpoints a hair short of an exact count.
    let nf = (span + 1e-10).floor() + 1.0;
    if nf > crate::numel_limit() as f64 || nf.is_nan() {
        // Also catches infinite spans (`1:Inf`), whose usize cast would
        // otherwise saturate and wrap the `+ 1`.
        return Err(RuntimeError::AllocLimit {
            requested: format!("1x{nf:e}"),
            limit: crate::numel_limit(),
        });
    }
    let n = nf as usize;
    let data: Vec<f64> = (0..n).map(|k| a + k as f64 * s).collect();
    Ok(Value::Real(Matrix::from_vec(1, n, data)))
}

/// Validate a 1-based subscript value and convert to 0-based.
fn to_index(v: f64) -> RuntimeResult<usize> {
    if v < 1.0 || v.fract() != 0.0 || !v.is_finite() {
        return Err(RuntimeError::BadSubscript(format!("{v}")));
    }
    Ok(v as usize - 1)
}

/// Resolve one subscript against an extent into concrete 0-based indices.
fn resolve(sub: &Subscript, extent: usize) -> RuntimeResult<Vec<usize>> {
    match sub {
        Subscript::Colon => Ok((0..extent).collect()),
        Subscript::Index(v) => {
            let m = match v {
                Value::Complex(m) => m.map(|z| z.re),
                other => other.to_real_matrix()?,
            };
            m.iter().map(|&x| to_index(x)).collect()
        }
    }
}

/// Read indexing `base(subs…)` with full bounds checking.
///
/// # Errors
///
/// Fails on out-of-range or malformed subscripts, or more than two
/// subscripts.
pub fn index_get(base: &Value, subs: &[Subscript]) -> RuntimeResult<Value> {
    match base {
        Value::Real(m) => index_get_mat(m, subs).map(Value::Real),
        Value::Complex(m) => index_get_mat(m, subs).map(Value::Complex),
        Value::Bool(m) => index_get_mat(m, subs).map(Value::Bool),
        Value::Str(s) => {
            // Strings index as 1×n char arrays.
            let bytes: Vec<f64> = s.bytes().map(f64::from).collect();
            let m = Matrix::from_vec(1, bytes.len(), bytes);
            let picked = index_get_mat(&m, subs)?;
            let out: String = picked.iter().map(|&b| b as u8 as char).collect();
            Ok(Value::Str(out))
        }
    }
}

fn index_get_mat<T: Clone + Default + PartialEq>(
    m: &Matrix<T>,
    subs: &[Subscript],
) -> RuntimeResult<Matrix<T>> {
    match subs {
        [] => Ok(m.clone()),
        [one] => {
            if matches!(one, Subscript::Colon) {
                // A(:) reshapes to a column vector — O(1) when the
                // buffer is contiguous (shares it copy-on-write),
                // copying only when oversizing slack forces a repack.
                return Ok(m
                    .reshaped(m.numel(), 1)
                    .unwrap_or_else(|| Matrix::from_vec(m.numel(), 1, m.to_contiguous())));
            }
            let idx = resolve(one, m.numel())?;
            for &k in &idx {
                if k >= m.numel() {
                    return Err(RuntimeError::IndexOutOfBounds {
                        index: (k + 1).to_string(),
                        extent: m.numel().to_string(),
                    });
                }
            }
            let data: Vec<T> = idx.iter().map(|&k| m.get_linear(k)).collect();
            // Shape rule: indexing a vector keeps its orientation;
            // indexing a matrix with a vector follows the index shape.
            let n = data.len();
            let (r, c) = if let Subscript::Index(v) = one {
                if m.is_vector() && !m.is_scalar() {
                    if m.rows() == 1 {
                        (1, n)
                    } else {
                        (n, 1)
                    }
                } else {
                    let (ir, _ic) = v.dims();
                    if ir == 1 {
                        (1, n)
                    } else {
                        (n, 1)
                    }
                }
            } else {
                (n, 1)
            };
            Ok(Matrix::from_vec(r, c, data))
        }
        [rsub, csub] => {
            let ridx = resolve(rsub, m.rows())?;
            let cidx = resolve(csub, m.cols())?;
            for &r in &ridx {
                if r >= m.rows() {
                    return Err(RuntimeError::IndexOutOfBounds {
                        index: (r + 1).to_string(),
                        extent: m.rows().to_string(),
                    });
                }
            }
            for &c in &cidx {
                if c >= m.cols() {
                    return Err(RuntimeError::IndexOutOfBounds {
                        index: (c + 1).to_string(),
                        extent: m.cols().to_string(),
                    });
                }
            }
            let mut data = Vec::with_capacity(ridx.len() * cidx.len());
            for &c in &cidx {
                for &r in &ridx {
                    data.push(m.get(r, c));
                }
            }
            Ok(Matrix::from_vec(ridx.len(), cidx.len(), data))
        }
        more => Err(RuntimeError::BadSubscript(format!(
            "{} subscripts (only 1 or 2 supported)",
            more.len()
        ))),
    }
}

/// Indexed store `base(subs…) = rhs`, growing the array when a subscript
/// overflows (paper §2.6.1); `oversize` enables the ~10% headroom
/// optimization on re-layouts.
///
/// # Errors
///
/// Fails on malformed subscripts, growth of a non-vector by linear index,
/// or element-count mismatch between target cells and `rhs`.
pub fn index_set(
    base: &mut Value,
    subs: &[Subscript],
    rhs: &Value,
    oversize: bool,
) -> RuntimeResult<()> {
    // Promote the base (or rhs view) so both sides share a kind.
    match (&mut *base, rhs) {
        (Value::Real(_), Value::Complex(_)) => {
            let promoted = base.to_complex_matrix()?;
            *base = Value::Complex(promoted);
        }
        (Value::Bool(_), rhs_v) if !matches!(rhs_v, Value::Bool(_)) => {
            let promoted = base.to_real_matrix()?;
            *base = Value::Real(promoted);
        }
        _ => {}
    }
    match (base, rhs) {
        (Value::Real(m), _) => {
            let r = match rhs {
                Value::Complex(_) => unreachable!("base was promoted"),
                other => other.to_real_matrix()?,
            };
            index_set_mat(m, subs, &r, oversize)
        }
        (Value::Complex(m), _) => {
            let r = rhs.to_complex_matrix()?;
            index_set_mat(m, subs, &r, oversize)
        }
        (Value::Bool(m), Value::Bool(r)) => index_set_mat(m, subs, r, oversize),
        (b, _) => Err(RuntimeError::TypeMismatch(format!(
            "cannot index-assign into {}",
            match b {
                Value::Str(_) => "a string",
                _ => "this value",
            }
        ))),
    }
}

fn index_set_mat<T: Clone + Default + PartialEq>(
    m: &mut Matrix<T>,
    subs: &[Subscript],
    rhs: &Matrix<T>,
    oversize: bool,
) -> RuntimeResult<()> {
    match subs {
        [one] => {
            let idx = resolve(one, m.numel())?;
            if rhs.numel() != 1 && rhs.numel() != idx.len() {
                return Err(RuntimeError::DimensionMismatch(format!(
                    "assigning {} values to {} cells",
                    rhs.numel(),
                    idx.len()
                )));
            }
            let max = idx.iter().copied().max().map_or(0, |k| k + 1);
            if max > m.numel() {
                // Linear-index growth is only legal for vectors/empties.
                if m.is_empty() || m.rows() == 1 {
                    m.try_grow(1, max, oversize)?;
                } else if m.cols() == 1 {
                    m.try_grow(max, 1, oversize)?;
                } else {
                    return Err(RuntimeError::IndexOutOfBounds {
                        index: max.to_string(),
                        extent: format!(
                            "{}x{} (matrices cannot grow linearly)",
                            m.rows(),
                            m.cols()
                        ),
                    });
                }
            }
            for (pos, &k) in idx.iter().enumerate() {
                let v = if rhs.numel() == 1 {
                    rhs.first()
                } else {
                    rhs.get_linear(pos)
                };
                m.set_linear(k, v);
            }
            Ok(())
        }
        [rsub, csub] => {
            let ridx = resolve(rsub, m.rows())?;
            let cidx = resolve(csub, m.cols())?;
            let cells = ridx.len() * cidx.len();
            if rhs.numel() != 1 && rhs.numel() != cells {
                return Err(RuntimeError::DimensionMismatch(format!(
                    "assigning {} values to {} cells",
                    rhs.numel(),
                    cells
                )));
            }
            let need_r = ridx.iter().copied().max().map_or(0, |k| k + 1);
            let need_c = cidx.iter().copied().max().map_or(0, |k| k + 1);
            if need_r > m.rows() || need_c > m.cols() {
                m.try_grow(need_r.max(m.rows()), need_c.max(m.cols()), oversize)?;
            }
            let mut pos = 0;
            for &c in &cidx {
                for &r in &ridx {
                    let v = if rhs.numel() == 1 {
                        rhs.first()
                    } else {
                        rhs.get_linear(pos)
                    };
                    m.set(r, c, v);
                    pos += 1;
                }
            }
            Ok(())
        }
        other => Err(RuntimeError::BadSubscript(format!(
            "{} subscripts (only 1 or 2 supported)",
            other.len()
        ))),
    }
}

/// Build a matrix literal from evaluated row elements (the bracket
/// operator): horizontal concatenation within rows, vertical across rows.
/// Empty components vanish.
///
/// # Errors
///
/// Fails when component extents disagree or numeric and string parts mix.
pub fn build_matrix(rows: &[Vec<Value>]) -> RuntimeResult<Value> {
    // All-string single row → string concatenation.
    let flat: Vec<&Value> = rows.iter().flatten().collect();
    if !flat.is_empty() && flat.iter().all(|v| matches!(v, Value::Str(_))) && rows.len() == 1 {
        let mut s = String::new();
        for v in flat {
            if let Value::Str(x) = v {
                s.push_str(x);
            }
        }
        return Ok(Value::Str(s));
    }
    if flat.iter().any(|v| matches!(v, Value::Str(_))) {
        return Err(RuntimeError::TypeMismatch(
            "cannot mix strings and numerics in a matrix literal".to_owned(),
        ));
    }

    let complex = flat.iter().any(|v| is_complex(v));
    // Concatenate one row horizontally as a generic matrix.
    fn hcat<T: Clone + Default + PartialEq>(parts: Vec<Matrix<T>>) -> RuntimeResult<Matrix<T>> {
        let parts: Vec<Matrix<T>> = parts.into_iter().filter(|p| !p.is_empty()).collect();
        if parts.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let r = parts[0].rows();
        if parts.iter().any(|p| p.rows() != r) {
            return Err(RuntimeError::DimensionMismatch(
                "horizontal concatenation".to_owned(),
            ));
        }
        let cols = parts.iter().map(Matrix::cols).sum();
        let mut data = Vec::with_capacity(r * cols);
        for p in &parts {
            data.extend(p.to_contiguous());
        }
        Ok(Matrix::from_vec(r, cols, data))
    }
    fn vcat<T: Clone + Default + PartialEq>(parts: Vec<Matrix<T>>) -> RuntimeResult<Matrix<T>> {
        let parts: Vec<Matrix<T>> = parts.into_iter().filter(|p| !p.is_empty()).collect();
        if parts.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let c = parts[0].cols();
        if parts.iter().any(|p| p.cols() != c) {
            return Err(RuntimeError::DimensionMismatch(
                "vertical concatenation".to_owned(),
            ));
        }
        let rows: usize = parts.iter().map(Matrix::rows).sum();
        let mut data = vec![T::default(); rows * c];
        let mut roff = 0;
        for p in &parts {
            for j in 0..c {
                for i in 0..p.rows() {
                    data[j * rows + roff + i] = p.get(i, j);
                }
            }
            roff += p.rows();
        }
        Ok(Matrix::from_vec(rows, c, data))
    }

    if complex {
        let mut row_mats = Vec::new();
        for row in rows {
            let parts: RuntimeResult<Vec<_>> = row.iter().map(Value::to_complex_matrix).collect();
            row_mats.push(hcat(parts?)?);
        }
        Ok(Value::Complex(vcat(row_mats)?).normalized())
    } else {
        let mut row_mats = Vec::new();
        for row in rows {
            let parts: RuntimeResult<Vec<_>> = row.iter().map(Value::to_real_matrix).collect();
            row_mats.push(hcat(parts?)?);
        }
        Ok(Value::Real(vcat(row_mats)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(rows: Vec<Vec<f64>>) -> Value {
        Value::Real(Matrix::from_rows(rows))
    }

    #[test]
    fn range_with_nan_endpoint_or_step_is_empty() {
        // MATLAB: colon with any NaN bound yields 1x0 empty, and the
        // compiled counted-loop lowering (`i < n` is false for NaN `n`)
        // runs zero iterations — the materialized range must agree.
        for (a, s, b) in [
            (f64::NAN, 1.0, 5.0),
            (1.0, f64::NAN, 5.0),
            (1.0, 1.0, f64::NAN),
            (f64::NAN, f64::NAN, f64::NAN),
        ] {
            let (av, sv, bv) = (Value::scalar(a), Value::scalar(s), Value::scalar(b));
            let v = range(&av, Some(&sv), &bv).unwrap();
            match v {
                Value::Real(m) => {
                    assert_eq!((m.rows(), m.cols()), (1, 0), "{a}:{s}:{b}");
                }
                other => panic!("expected real empty, got {other:?}"),
            }
        }
    }

    #[test]
    fn range_element_count_is_capped() {
        // 0:1e-300:1 would ask for ~1e300 elements; must surface as a
        // catchable AllocLimit, not an OOM abort or a bogus cast.
        let r = |a: f64, s: f64, b: f64| {
            range(
                &Value::scalar(a),
                Some(&Value::scalar(s)),
                &Value::scalar(b),
            )
        };
        match r(0.0, 1e-300, 1.0) {
            Err(RuntimeError::AllocLimit { .. }) => {}
            other => panic!("expected AllocLimit, got {other:?}"),
        }
        match r(1.0, 1.0, f64::INFINITY) {
            Err(RuntimeError::AllocLimit { .. }) => {}
            other => panic!("expected AllocLimit, got {other:?}"),
        }
        // A plain huge-but-degenerate range still works.
        assert_eq!(r(5.0, 1.0, 4.0).unwrap().numel(), 0);
    }

    #[test]
    fn index_set_growth_is_capped() {
        // Scalar store far past the ceiling must fail cleanly rather
        // than attempt a monstrous zero-filled reallocation.
        let big = 1.0 + crate::numel_limit() as f64;
        let mut base = Value::Real(Matrix::zeros(1, 1));
        let subs = [
            Subscript::Index(Value::scalar(1.0)),
            Subscript::Index(Value::scalar(big)),
        ];
        let r = index_set(&mut base, &subs, &Value::scalar(7.0), true);
        match r {
            Err(RuntimeError::AllocLimit { .. }) => {}
            other => panic!("expected AllocLimit, got {other:?}"),
        }
    }

    #[test]
    fn scalar_arithmetic() {
        assert_eq!(
            add(&Value::scalar(2.0), &Value::scalar(3.0)).unwrap(),
            Value::scalar(5.0)
        );
        assert_eq!(
            sub(&Value::scalar(2.0), &Value::scalar(3.0)).unwrap(),
            Value::scalar(-1.0)
        );
        assert_eq!(
            elem_mul(&Value::scalar(2.0), &Value::scalar(3.0)).unwrap(),
            Value::scalar(6.0)
        );
    }

    #[test]
    fn scalar_matrix_broadcast() {
        let m = rv(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(
            add(&m, &Value::scalar(10.0)).unwrap(),
            rv(vec![vec![11.0, 12.0], vec![13.0, 14.0]])
        );
        assert_eq!(
            elem_mul(&Value::scalar(2.0), &m).unwrap(),
            rv(vec![vec![2.0, 4.0], vec![6.0, 8.0]])
        );
    }

    #[test]
    fn shape_mismatch_fails() {
        let a = rv(vec![vec![1.0, 2.0]]);
        let b = rv(vec![vec![1.0], vec![2.0]]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn complex_promotion() {
        let z = Value::complex_scalar(Complex::new(0.0, 1.0));
        let s = add(&Value::scalar(1.0), &z).unwrap();
        assert_eq!(s, Value::complex_scalar(Complex::new(1.0, 1.0)));
        // i * i = -1, demoted back to real.
        assert_eq!(mul(&z, &z).unwrap(), Value::scalar(-1.0));
    }

    #[test]
    fn matrix_multiply() {
        let a = rv(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = rv(vec![vec![1.0], vec![1.0]]);
        assert_eq!(mul(&a, &b).unwrap(), rv(vec![vec![3.0], vec![7.0]]));
    }

    #[test]
    fn negative_base_fractional_power_goes_complex() {
        let r = elem_pow(&Value::scalar(-8.0), &Value::scalar(0.5)).unwrap();
        match r {
            Value::Complex(m) => {
                let z = m.first();
                assert!(z.re.abs() < 1e-12);
                assert!((z.im - 8f64.sqrt()).abs() < 1e-12);
            }
            other => panic!("expected complex, got {other:?}"),
        }
        // Integer exponent stays real.
        assert_eq!(
            elem_pow(&Value::scalar(-2.0), &Value::scalar(2.0)).unwrap(),
            Value::scalar(4.0)
        );
    }

    #[test]
    fn ranges() {
        assert_eq!(
            range(&Value::scalar(1.0), None, &Value::scalar(4.0)).unwrap(),
            rv(vec![vec![1.0, 2.0, 3.0, 4.0]])
        );
        assert_eq!(
            range(
                &Value::scalar(0.0),
                Some(&Value::scalar(0.5)),
                &Value::scalar(1.0)
            )
            .unwrap(),
            rv(vec![vec![0.0, 0.5, 1.0]])
        );
        // Descending.
        assert_eq!(
            range(
                &Value::scalar(3.0),
                Some(&Value::scalar(-1.0)),
                &Value::scalar(1.0)
            )
            .unwrap(),
            rv(vec![vec![3.0, 2.0, 1.0]])
        );
        // Empty.
        assert_eq!(
            range(&Value::scalar(3.0), None, &Value::scalar(1.0))
                .unwrap()
                .numel(),
            0
        );
        // Complex endpoints use the real part (paper §2.5).
        let z = Value::complex_scalar(Complex::new(3.0, 9.0));
        assert_eq!(range(&Value::scalar(1.0), None, &z).unwrap().numel(), 3);
    }

    #[test]
    fn indexing_reads() {
        let m = rv(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        // Linear, column-major.
        assert_eq!(
            index_get(&m, &[Subscript::Index(Value::scalar(2.0))]).unwrap(),
            Value::scalar(4.0)
        );
        // 2-D.
        assert_eq!(
            index_get(
                &m,
                &[
                    Subscript::Index(Value::scalar(1.0)),
                    Subscript::Index(Value::scalar(3.0))
                ]
            )
            .unwrap(),
            Value::scalar(3.0)
        );
        // Row slice A(1, :).
        assert_eq!(
            index_get(
                &m,
                &[Subscript::Index(Value::scalar(1.0)), Subscript::Colon]
            )
            .unwrap(),
            rv(vec![vec![1.0, 2.0, 3.0]])
        );
        // A(:) flattens column-major.
        assert_eq!(
            index_get(&m, &[Subscript::Colon]).unwrap(),
            rv(vec![
                vec![1.0],
                vec![4.0],
                vec![2.0],
                vec![5.0],
                vec![3.0],
                vec![6.0]
            ])
        );
    }

    #[test]
    fn indexing_bounds_and_validity() {
        let m = rv(vec![vec![1.0, 2.0]]);
        assert!(index_get(&m, &[Subscript::Index(Value::scalar(3.0))]).is_err());
        assert!(index_get(&m, &[Subscript::Index(Value::scalar(0.0))]).is_err());
        assert!(index_get(&m, &[Subscript::Index(Value::scalar(1.5))]).is_err());
    }

    #[test]
    fn vector_index_orientation() {
        // Indexing a row vector keeps row orientation even with a column
        // index.
        let row = rv(vec![vec![10.0, 20.0, 30.0]]);
        let idx = Subscript::Index(rv(vec![vec![1.0], vec![3.0]]));
        let got = index_get(&row, &[idx]).unwrap();
        assert_eq!(got.dims(), (1, 2));
        assert_eq!(got, rv(vec![vec![10.0, 30.0]]));
    }

    #[test]
    fn stores_grow_vectors() {
        let mut v = rv(vec![vec![1.0, 2.0]]);
        index_set(
            &mut v,
            &[Subscript::Index(Value::scalar(4.0))],
            &Value::scalar(9.0),
            false,
        )
        .unwrap();
        assert_eq!(v, rv(vec![vec![1.0, 2.0, 0.0, 9.0]]));
    }

    #[test]
    fn stores_grow_matrices_2d() {
        let mut m = rv(vec![vec![1.0]]);
        index_set(
            &mut m,
            &[
                Subscript::Index(Value::scalar(3.0)),
                Subscript::Index(Value::scalar(2.0)),
            ],
            &Value::scalar(7.0),
            true,
        )
        .unwrap();
        assert_eq!(m.dims(), (3, 2));
        assert_eq!(
            index_get(
                &m,
                &[
                    Subscript::Index(Value::scalar(3.0)),
                    Subscript::Index(Value::scalar(2.0))
                ]
            )
            .unwrap(),
            Value::scalar(7.0)
        );
    }

    #[test]
    fn matrix_cannot_grow_linearly() {
        let mut m = rv(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let err = index_set(
            &mut m,
            &[Subscript::Index(Value::scalar(9.0))],
            &Value::scalar(1.0),
            false,
        );
        assert!(err.is_err());
    }

    #[test]
    fn store_promotes_to_complex() {
        let mut m = rv(vec![vec![1.0, 2.0]]);
        index_set(
            &mut m,
            &[Subscript::Index(Value::scalar(1.0))],
            &Value::complex_scalar(Complex::I),
            false,
        )
        .unwrap();
        assert!(matches!(m, Value::Complex(_)));
    }

    #[test]
    fn comparisons() {
        let m = rv(vec![vec![1.0, 5.0]]);
        let r = compare(Cmp::Lt, &m, &Value::scalar(3.0)).unwrap();
        assert_eq!(r, Value::Bool(Matrix::from_rows(vec![vec![true, false]])));
        // Complex compares by real part.
        let z = Value::complex_scalar(Complex::new(2.0, 100.0));
        assert!(compare(Cmp::Lt, &z, &Value::scalar(3.0)).unwrap().is_true());
    }

    #[test]
    fn logical_ops() {
        let a = rv(vec![vec![1.0, 0.0]]);
        let b = rv(vec![vec![1.0, 1.0]]);
        assert_eq!(
            logical(&a, &b, false).unwrap(),
            Value::Bool(Matrix::from_rows(vec![vec![true, false]]))
        );
        assert_eq!(
            logical(&a, &b, true).unwrap(),
            Value::Bool(Matrix::from_rows(vec![vec![true, true]]))
        );
    }

    #[test]
    fn bracket_concatenation() {
        // [1 2; 3 4]
        let m = build_matrix(&[
            vec![Value::scalar(1.0), Value::scalar(2.0)],
            vec![Value::scalar(3.0), Value::scalar(4.0)],
        ])
        .unwrap();
        assert_eq!(m, rv(vec![vec![1.0, 2.0], vec![3.0, 4.0]]));
        // [v [1 2]] horizontal of row vectors.
        let v = rv(vec![vec![9.0]]);
        let m = build_matrix(&[vec![v, rv(vec![vec![1.0, 2.0]])]]).unwrap();
        assert_eq!(m, rv(vec![vec![9.0, 1.0, 2.0]]));
        // Empties vanish.
        let m = build_matrix(&[vec![Value::empty(), Value::scalar(1.0)]]).unwrap();
        assert_eq!(m, Value::scalar(1.0));
        // Mismatched rows fail.
        assert!(
            build_matrix(&[vec![rv(vec![vec![1.0], vec![2.0]]), rv(vec![vec![1.0]])]]).is_err()
        );
    }

    #[test]
    fn string_concat() {
        let s = build_matrix(&[vec![Value::Str("ab".into()), Value::Str("cd".into())]]).unwrap();
        assert_eq!(s, Value::Str("abcd".into()));
    }

    #[test]
    fn division_variants() {
        // Right division by matrix: x = A/B solves x*B = A.
        let a = rv(vec![vec![4.0, 6.0]]);
        let b = rv(vec![vec![2.0, 0.0], vec![0.0, 3.0]]);
        let x = div(&a, &b).unwrap();
        assert_eq!(x, rv(vec![vec![2.0, 2.0]]));
        // Left division solves B\a.
        let rhs = rv(vec![vec![4.0], vec![6.0]]);
        let x = left_div(&b, &rhs).unwrap();
        assert_eq!(x, rv(vec![vec![2.0], vec![2.0]]));
    }

    #[test]
    fn matrix_power() {
        let a = rv(vec![vec![1.0, 1.0], vec![0.0, 1.0]]);
        let p = pow(&a, &Value::scalar(3.0)).unwrap();
        assert_eq!(p, rv(vec![vec![1.0, 3.0], vec![0.0, 1.0]]));
        let p0 = pow(&a, &Value::scalar(0.0)).unwrap();
        assert_eq!(p0, rv(vec![vec![1.0, 0.0], vec![0.0, 1.0]]));
    }

    #[test]
    fn transpose_variants() {
        let z = Value::Complex(Matrix::from_rows(vec![vec![Complex::new(1.0, 2.0)]]));
        let ct = transpose(&z, true).unwrap();
        let t = transpose(&z, false).unwrap();
        assert_eq!(ct, Value::Complex(Matrix::scalar(Complex::new(1.0, -2.0))));
        assert_eq!(t, z);
    }
}
