//! Double-precision complex arithmetic (no external dependency).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + im·i`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// A complex number from parts.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Magnitude `|z|`, overflow-safe.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Phase angle in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Complex {
        // Real-embedding fast path: keeps sqrt(∞+0i) = ∞ (the general
        // formula would produce a NaN imaginary part) and avoids rounding
        // drift for real inputs.
        if self.im == 0.0 {
            return if self.re >= 0.0 {
                Complex::new(self.re.sqrt(), 0.0)
            } else {
                Complex::new(0.0, (-self.re).sqrt())
            };
        }
        let r = self.abs();
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt();
        Complex::new(re, if self.im < 0.0 { -im } else { im })
    }

    /// Complex exponential.
    pub fn exp(self) -> Complex {
        let m = self.re.exp();
        Complex::new(m * self.im.cos(), m * self.im.sin())
    }

    /// Principal natural logarithm.
    pub fn ln(self) -> Complex {
        Complex::new(self.abs().ln(), self.arg())
    }

    /// Complex power `self^exp`.
    pub fn powc(self, exp: Complex) -> Complex {
        if self == Complex::ZERO {
            if exp == Complex::ZERO {
                return Complex::new(1.0, 0.0);
            }
            return Complex::ZERO;
        }
        // Purely real operands with a real-valued result must match
        // `f64::powf` bit-for-bit: complex-typed compiled code would
        // otherwise drift a ulp from the interpreter's real dispatch,
        // which only promotes to the exp(e·ln z) form for a negative
        // base with a fractional exponent.
        if self.im == 0.0 && exp.im == 0.0 && !(self.re < 0.0 && exp.re.fract() != 0.0) {
            return Complex::new(self.re.powf(exp.re), 0.0);
        }
        (exp * self.ln()).exp()
    }

    /// Power with a real exponent.
    pub fn powf(self, exp: f64) -> Complex {
        self.powc(Complex::new(exp, 0.0))
    }

    /// Is this value purely real (zero imaginary part)?
    pub fn is_real(self) -> bool {
        self.im == 0.0
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        // Purely real operands multiply exactly like reals — without
        // this, (∞+0i)·(∞+0i) would produce an `∞·0 = NaN` imaginary
        // part where real arithmetic overflows cleanly to ∞.
        if self.im == 0.0 && rhs.im == 0.0 {
            return Complex::new(self.re * rhs.re, 0.0);
        }
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        // Real-embedding fast path (see `Mul`).
        if self.im == 0.0 && rhs.im == 0.0 {
            return Complex::new(self.re / rhs.re, 0.0);
        }
        // Smith's algorithm for robustness against overflow.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + r * rhs.im;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 || self.im.is_nan() {
            write!(f, "{} + {}i", self.re, self.im)
        } else {
            write!(f, "{} - {}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_operations() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!(close(a * b / b, a));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn division_is_robust() {
        let a = Complex::new(1.0, 1.0);
        let tiny = Complex::new(1e-300, 1e-300);
        let q = a / tiny;
        assert!(q.re.is_finite());
    }

    #[test]
    fn magnitude_and_conjugate() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn sqrt_of_negative_real() {
        let z = Complex::new(-4.0, 0.0);
        assert!(close(z.sqrt(), Complex::new(0.0, 2.0)));
    }

    #[test]
    fn exp_log_roundtrip() {
        let z = Complex::new(0.5, 1.2);
        assert!(close(z.exp().ln(), z));
    }

    #[test]
    fn powers() {
        let z = Complex::new(0.0, 1.0);
        // i^2 = -1
        assert!(close(z.powf(2.0), Complex::new(-1.0, 0.0)));
        assert!(close(Complex::ZERO.powf(0.0), Complex::new(1.0, 0.0)));
        assert_eq!(Complex::ZERO.powf(3.0), Complex::ZERO);
    }

    #[test]
    fn real_operands_match_f64_pow_bit_for_bit() {
        // Found by the differential fuzzer: the exp(e·ln z) form gives
        // 3^1 = 3.0000000000000004, one ulp off the real dispatch the
        // interpreter uses for real values.
        assert_eq!(Complex::from(3.0).powf(1.0), Complex::from(3.0));
        assert_eq!(Complex::from(-2.0).powf(3.0), Complex::from(-8.0));
        assert_eq!(
            Complex::from(10.0).powc(Complex::from(0.5)),
            Complex::from(10.0f64.powf(0.5))
        );
        // A negative base with a fractional exponent still promotes.
        let w = Complex::from(-4.0).powf(0.5);
        assert!(w.im != 0.0);
    }
}
