//! Column-major dense matrices with MATLAB resize semantics.

use crate::{RuntimeError, RuntimeResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Arrays above this element count are never oversized (paper §2.6.1:
/// "Large arrays are never oversized").
const OVERSIZE_LIMIT: usize = 1 << 20;

/// Default per-matrix element-count ceiling (2²⁸ elements ≈ 2 GiB of
/// doubles): generous for every workload in the repo, small enough that
/// a hostile `zeros(n)` fails fast instead of aborting the process.
pub const DEFAULT_NUMEL_LIMIT: usize = 1 << 28;

/// Active ceiling; `0` means "not yet initialized from the environment".
static NUMEL_LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Parse a `MAJIC_MAX_NUMEL` value: a bare positive element count.
/// `None` for anything else (`"0"`, floats like `"2e9"`, suffixes,
/// non-numbers) — MATLAB-style scientific notation is deliberately not
/// accepted, so a rejected value can be reported instead of silently
/// truncated. Public so the engine's consolidated `MAJIC_*` env module
/// can share the exact grammar.
pub fn parse_numel_limit(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The active per-matrix element-count ceiling. Initialized on first use
/// from `MAJIC_MAX_NUMEL` (falling back to [`DEFAULT_NUMEL_LIMIT`]);
/// adjustable at runtime with [`set_numel_limit`]. A malformed value
/// warns once on stderr — in the style of `MAJIC_TRACE`'s unknown-mode
/// warning — rather than being silently swallowed.
pub fn numel_limit() -> usize {
    let v = NUMEL_LIMIT.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let init = match std::env::var("MAJIC_MAX_NUMEL") {
        Ok(s) => match parse_numel_limit(&s) {
            Some(n) => n,
            None => {
                if !s.trim().is_empty() {
                    eprintln!(
                        "majic-runtime: unrecognized MAJIC_MAX_NUMEL {s:?} (expected a positive \
                         element count); using the default {DEFAULT_NUMEL_LIMIT}"
                    );
                }
                DEFAULT_NUMEL_LIMIT
            }
        },
        Err(_) => DEFAULT_NUMEL_LIMIT,
    };
    NUMEL_LIMIT.store(init, Ordering::Relaxed);
    init
}

/// Override the per-matrix element-count ceiling (process-global).
pub fn set_numel_limit(n: usize) {
    NUMEL_LIMIT.store(n.max(1), Ordering::Relaxed);
}

/// Validate a logical extent against `usize` overflow and the active
/// ceiling, returning the element count.
///
/// # Errors
///
/// [`RuntimeError::AllocLimit`] when `rows * cols` overflows or exceeds
/// [`numel_limit`].
pub fn checked_numel(rows: usize, cols: usize) -> RuntimeResult<usize> {
    match rows.checked_mul(cols) {
        Some(n) if n <= numel_limit() => Ok(n),
        _ => Err(RuntimeError::AllocLimit {
            requested: format!("{rows}x{cols}"),
            limit: numel_limit(),
        }),
    }
}

/// Counter of buffer snapshots forced by sharing: a mutation hit a
/// buffer with more than one owner and had to copy it first. Always
/// counted (the copy itself dwarfs the increment), so tests and benches
/// can assert copy elision without enabling profiling.
fn deep_copy_counter() -> &'static majic_trace::Counter {
    static C: OnceLock<&'static majic_trace::Counter> = OnceLock::new();
    C.get_or_init(|| majic_trace::counter("runtime.matrix.deep_copy"))
}

/// Counter of mutations that proved the buffer uniquely owned and wrote
/// in place. Per-element hot, so callers only pay the increment under
/// [`majic_trace::vm_profile_enabled`].
fn inplace_store_counter() -> &'static majic_trace::Counter {
    static C: OnceLock<&'static majic_trace::Counter> = OnceLock::new();
    C.get_or_init(|| majic_trace::counter("runtime.matrix.inplace_store"))
}

/// A column-major matrix with an explicit leading dimension.
///
/// The logical extent is `rows × cols`; the allocation holds
/// `lda × alloc_cols` elements with `lda ≥ rows`. Keeping slack between
/// logical and allocated extents implements the paper's *oversizing*
/// optimization: growing an array within its allocation only bumps the
/// logical extent, avoiding the re-layout that makes repeated MATLAB
/// resizes "tremendously expensive".
///
/// The buffer is `Arc`-shared: cloning a matrix (and therefore binding
/// `x = y`, passing arguments, returning results) is O(1). Every
/// mutation funnels through the private `data_mut`, which writes in place
/// when the buffer is uniquely owned and snapshots it first when shared
/// — observable MATLAB value semantics at copy-on-write cost. The two
/// outcomes are counted as `runtime.matrix.deep_copy` and
/// `runtime.matrix.inplace_store`.
#[derive(Clone, Debug)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    lda: usize,
    data: Arc<Vec<T>>,
}

impl<T: Clone + Default + PartialEq> Matrix<T> {
    /// A `rows × cols` matrix of default elements (zeros).
    ///
    /// # Panics
    ///
    /// Panics if the extent overflows or exceeds [`numel_limit`] — use
    /// [`Matrix::try_zeros`] where the extent is program-controlled.
    pub fn zeros(rows: usize, cols: usize) -> Matrix<T> {
        Matrix::try_zeros(rows, cols).expect("matrix extent within the allocation ceiling")
    }

    /// A `rows × cols` matrix of default elements, with the extent
    /// validated first ([`checked_numel`]): the allocation either covers
    /// the full logical extent or fails as a catchable runtime error —
    /// a wrapped `rows * cols` can never under-allocate.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::AllocLimit`] on overflow or ceiling excess.
    pub fn try_zeros(rows: usize, cols: usize) -> RuntimeResult<Matrix<T>> {
        let numel = checked_numel(rows, cols)?;
        if majic_trace::vm_profile_enabled() {
            majic_trace::counter("matrix.alloc").inc();
        }
        Ok(Matrix {
            rows,
            cols,
            lda: rows,
            data: Arc::new(vec![T::default(); numel]),
        })
    }

    /// A matrix from column-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` (the product computed
    /// without wrapping).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Matrix<T> {
        assert_eq!(
            rows.checked_mul(cols),
            Some(data.len()),
            "column-major data length"
        );
        Matrix {
            rows,
            cols,
            lda: rows,
            data: Arc::new(data),
        }
    }

    /// A `1 × 1` matrix.
    pub fn scalar(v: T) -> Matrix<T> {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// A matrix from row-major nested vectors (test convenience).
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Matrix<T> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = vec![T::default(); r * c];
        for (i, row) in rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                data[j * r + i] = v.clone();
            }
        }
        Matrix::from_vec(r, c, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the allocation (`≥ rows`).
    pub fn lda(&self) -> usize {
        self.lda
    }

    /// Total logical element count.
    pub fn numel(&self) -> usize {
        self.rows * self.cols
    }

    /// Is the logical extent empty?
    pub fn is_empty(&self) -> bool {
        self.numel() == 0
    }

    /// Is this `1 × 1`?
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Is this a row or column vector (or scalar)?
    pub fn is_vector(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// Element at 0-based `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of the logical extent.
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[c * self.lda + r].clone()
    }

    /// Element at 0-based column-major linear index.
    ///
    /// # Panics
    ///
    /// Panics if out of the logical extent.
    pub fn get_linear(&self, k: usize) -> T {
        assert!(k < self.numel(), "linear index out of range");
        self.get(k % self.rows, k / self.rows)
    }

    /// The uniqueness-aware mutation choke point: every write goes
    /// through here. A uniquely-owned buffer is handed out in place
    /// (`runtime.matrix.inplace_store` under profiling); a shared one is
    /// snapshotted first (`runtime.matrix.deep_copy`, always counted),
    /// so no other owner can observe the mutation.
    fn data_mut(&mut self) -> &mut Vec<T> {
        if Arc::get_mut(&mut self.data).is_none() {
            deep_copy_counter().inc();
            self.data = Arc::new((*self.data).clone());
        } else if majic_trace::vm_profile_enabled() {
            inplace_store_counter().inc();
        }
        Arc::get_mut(&mut self.data).expect("buffer uniquely owned after unsharing")
    }

    /// Is the buffer uniquely owned (a mutation would write in place)?
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// Do `self` and `other` share one buffer? (Test observability for
    /// the CoW invariants; two logically-equal matrices may or may not
    /// share.)
    pub fn shares_buffer_with(&self, other: &Matrix<T>) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Address of the backing allocation (test observability: unchanged
    /// across a store loop ⇔ no copy and no re-layout happened).
    pub fn data_ptr(&self) -> *const T {
        self.data.as_ptr()
    }

    /// A physically independent copy, whatever the sharing state — what
    /// every assignment paid before copy-on-write buffers (the
    /// `figure_copyelision` baseline).
    pub fn deep_clone(&self) -> Matrix<T> {
        deep_copy_counter().inc();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            lda: self.lda,
            data: Arc::new((*self.data).clone()),
        }
    }

    /// Overwrite element at 0-based `(r, c)` (copy-on-write).
    ///
    /// # Panics
    ///
    /// Panics if out of the logical extent.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        let lda = self.lda;
        self.data_mut()[c * lda + r] = v;
    }

    /// Overwrite element at 0-based linear index (copy-on-write).
    ///
    /// # Panics
    ///
    /// Panics if out of the logical extent.
    pub fn set_linear(&mut self, k: usize, v: T) {
        assert!(k < self.numel(), "linear index out of range");
        let (r, c) = (k % self.rows, k / self.rows);
        self.set(r, c, v);
    }

    /// The first element (MATLAB scalar coercion).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn first(&self) -> T {
        assert!(!self.is_empty(), "empty matrix has no first element");
        self.data[0].clone()
    }

    /// Iterate elements in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.cols).flat_map(move |c| self.data[c * self.lda..c * self.lda + self.rows].iter())
    }

    /// Collect the logical contents into a contiguous column-major vector.
    pub fn to_contiguous(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }

    /// One column as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn col(&self, c: usize) -> &[T] {
        assert!(c < self.cols);
        &self.data[c * self.lda..c * self.lda + self.rows]
    }

    /// The logical contents as one contiguous column-major slice, when
    /// the allocation has no row slack (`lda == rows`): columns then sit
    /// back-to-back at the front of the buffer, so the first `numel`
    /// elements are exactly the logical contents. `None` when oversizing
    /// slack forces per-column iteration — the parallel kernels in
    /// [`crate::par`] bypass to the sequential path in that case.
    pub fn as_contiguous_slice(&self) -> Option<&[T]> {
        let n = self.numel();
        if self.lda == self.rows && self.data.len() >= n {
            Some(&self.data[..n])
        } else {
            None
        }
    }

    /// Mutable access to the full allocation, with its leading dimension.
    /// Copy-on-write: unshares first.
    pub fn raw_mut(&mut self) -> (&mut [T], usize) {
        let lda = self.lda;
        (self.data_mut().as_mut_slice(), lda)
    }

    /// Element read without the logical-extent check.
    ///
    /// # Safety
    ///
    /// `r < self.rows()` and `c < self.cols()` must hold; compiled code
    /// may only emit this access when type inference proved the bounds
    /// (paper §2.4, subscript check removal).
    #[inline]
    pub unsafe fn get_unchecked(&self, r: usize, c: usize) -> T {
        debug_assert!(r < self.rows && c < self.cols);
        // SAFETY: caller guarantees the logical bounds, and the
        // allocation always covers the logical extent.
        unsafe { self.data.get_unchecked(c * self.lda + r).clone() }
    }

    /// Element write without the logical-extent check (still
    /// copy-on-write).
    ///
    /// # Safety
    ///
    /// `r < self.rows()` and `c < self.cols()` must hold.
    #[inline]
    pub unsafe fn set_unchecked(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        let lda = self.lda;
        let data = self.data_mut();
        // SAFETY: caller guarantees the logical bounds.
        unsafe {
            *data.get_unchecked_mut(c * lda + r) = v;
        }
    }

    /// Map every element.
    pub fn map<U: Clone + Default + PartialEq>(&self, mut f: impl FnMut(&T) -> U) -> Matrix<U> {
        let data = self.iter().map(&mut f).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Zip two equal-shape matrices elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ (callers check first and raise a proper
    /// runtime error).
    pub fn zip<U: Clone + Default + PartialEq, V: Clone + Default + PartialEq>(
        &self,
        other: &Matrix<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> Matrix<V> {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .iter()
            .zip(other.iter())
            .map(|(a, b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Transpose (copies).
    pub fn transpose(&self) -> Matrix<T> {
        let mut data = vec![T::default(); self.numel()];
        for c in 0..self.cols {
            for r in 0..self.rows {
                data[r * self.cols + c] = self.get(r, c);
            }
        }
        Matrix::from_vec(self.cols, self.rows, data)
    }

    /// Grow the logical extent to at least `(new_rows, new_cols)`,
    /// zero-filling new cells.
    ///
    /// # Panics
    ///
    /// Panics if the target extent overflows or exceeds [`numel_limit`]
    /// — use [`Matrix::try_grow`] where the extent is program-controlled
    /// (e.g. growth driven by a user subscript).
    pub fn grow(&mut self, new_rows: usize, new_cols: usize, oversize: bool) {
        self.try_grow(new_rows, new_cols, oversize)
            .expect("growth within the allocation ceiling");
    }

    /// Grow the logical extent to at least `(new_rows, new_cols)`,
    /// zero-filling new cells, after validating the extent against
    /// [`checked_numel`].
    ///
    /// With `oversize` set, a re-layout allocates ~10% slack in each grown
    /// dimension so that subsequent growth stays within the allocation
    /// (paper §2.6.1). Oversizing is skipped for large arrays. Growth
    /// within the existing allocation never copies.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::AllocLimit`] when the target logical extent
    /// overflows or exceeds the ceiling (the matrix is left unchanged).
    pub fn try_grow(
        &mut self,
        new_rows: usize,
        new_cols: usize,
        oversize: bool,
    ) -> RuntimeResult<()> {
        let new_rows = new_rows.max(self.rows);
        let new_cols = new_cols.max(self.cols);
        checked_numel(new_rows, new_cols)?;
        if new_rows == self.rows && new_cols == self.cols {
            return Ok(());
        }
        let alloc_cols = self.data.len().checked_div(self.lda).unwrap_or(0);
        if majic_trace::vm_profile_enabled() {
            majic_trace::counter("matrix.grow").inc();
        }
        if new_rows <= self.lda && new_cols <= alloc_cols {
            // Fits: bump the logical extent. Cells inside the allocation
            // start zeroed and are re-zeroed on shrink-free growth paths,
            // so no fill is needed.
            self.rows = new_rows;
            self.cols = new_cols;
            return Ok(());
        }
        // Re-layout required.
        if majic_trace::vm_profile_enabled() {
            majic_trace::counter("matrix.relayout").inc();
        }
        let big = new_rows.saturating_mul(new_cols) > OVERSIZE_LIMIT;
        let headroom = |n: usize, grew: bool| {
            if oversize && !big && grew {
                n + n / 10 + 1
            } else {
                n
            }
        };
        let mut new_lda = headroom(new_rows, new_rows > self.rows).max(self.lda);
        let mut new_alloc_cols = headroom(new_cols, new_cols > self.cols).max(alloc_cols);
        if new_lda.checked_mul(new_alloc_cols).is_none() {
            // Headroom overflowed the address space: fall back to the
            // exact (already validated) extent.
            new_lda = new_rows.max(self.lda);
            new_alloc_cols = new_cols.max(alloc_cols);
        }
        let mut data = vec![T::default(); new_lda * new_alloc_cols];
        for c in 0..self.cols {
            for r in 0..self.rows {
                data[c * new_lda + r] = self.data[c * self.lda + r].clone();
            }
        }
        self.data = Arc::new(data);
        self.lda = new_lda;
        self.rows = new_rows;
        self.cols = new_cols;
        Ok(())
    }

    /// A `new_rows × new_cols` view sharing this buffer, when the
    /// element count matches and the buffer is contiguous (`lda ==
    /// rows`, no column slack). `None` otherwise — the caller falls
    /// back to a copying reshape. Makes `A(:)` O(1) under CoW.
    pub fn reshaped(&self, new_rows: usize, new_cols: usize) -> Option<Matrix<T>> {
        let contiguous = self.lda == self.rows && self.data.len() == self.numel();
        if contiguous && new_rows.checked_mul(new_cols) == Some(self.numel()) {
            Some(Matrix {
                rows: new_rows,
                cols: new_cols,
                lda: new_rows,
                data: Arc::clone(&self.data),
            })
        } else {
            None
        }
    }

    /// Does the allocation have slack beyond the logical extent?
    /// (Observable effect of oversizing; used by tests and benches.)
    pub fn has_slack(&self) -> bool {
        self.lda > self.rows || self.data.len() > self.lda * self.cols
    }
}

impl<T: Clone + Default + PartialEq> PartialEq for Matrix<T> {
    /// Logical-content equality: allocation slack is invisible.
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_zeros_rejects_overflowing_and_oversized_extents() {
        // rows * cols wrapping usize must never produce a small buffer
        // behind a huge logical extent.
        assert!(matches!(
            Matrix::<f64>::try_zeros(usize::MAX, 2),
            Err(RuntimeError::AllocLimit { .. })
        ));
        // Beyond the ceiling but without overflow: same error.
        assert!(matches!(
            Matrix::<f64>::try_zeros(numel_limit(), 2),
            Err(RuntimeError::AllocLimit { .. })
        ));
        // Within the ceiling: fine.
        assert!(Matrix::<f64>::try_zeros(4, 4).is_ok());
    }

    #[test]
    fn try_grow_rejects_oversized_extents() {
        let mut m: Matrix<f64> = Matrix::zeros(2, 2);
        assert!(matches!(
            m.try_grow(usize::MAX, 2, true),
            Err(RuntimeError::AllocLimit { .. })
        ));
        // The failed growth must leave the matrix untouched.
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert!(m.try_grow(3, 3, false).is_ok());
        assert_eq!((m.rows(), m.cols()), (3, 3));
    }

    #[test]
    fn numel_limit_parse_matrix() {
        // Malformed settings are rejected (and warned about at init
        // time) instead of being silently truncated to a prefix.
        assert_eq!(parse_numel_limit("1024"), Some(1024));
        assert_eq!(parse_numel_limit(" 65536 "), Some(65536));
        assert_eq!(parse_numel_limit("2e9"), None, "no scientific notation");
        assert_eq!(parse_numel_limit("abc"), None);
        assert_eq!(parse_numel_limit("0"), None, "ceiling must be positive");
        assert_eq!(parse_numel_limit("-5"), None);
        assert_eq!(parse_numel_limit(""), None);
        assert_eq!(parse_numel_limit("1_000"), None);
    }

    #[test]
    fn contiguous_slice_requires_no_row_slack() {
        let m = Matrix::from_rows(vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
        assert_eq!(m.as_contiguous_slice(), Some(&[1.0, 2.0, 3.0, 4.0][..]));
        // Column slack beyond the logical extent is fine: the logical
        // prefix is still contiguous.
        let mut c: Matrix<f64> = Matrix::zeros(2, 1);
        c.grow(2, 2, true);
        assert!(c.as_contiguous_slice().is_some());
        // Row slack (lda > rows) interleaves padding between columns.
        let mut s: Matrix<f64> = Matrix::zeros(2, 2);
        s.grow(3, 2, true);
        assert!(s.as_contiguous_slice().is_none());
    }

    #[test]
    fn checked_numel_boundaries() {
        assert_eq!(checked_numel(0, 0).unwrap(), 0);
        assert_eq!(checked_numel(1, numel_limit()).unwrap(), numel_limit());
        assert!(checked_numel(1, numel_limit() + 1).is_err());
        assert!(checked_numel(usize::MAX, usize::MAX).is_err());
    }

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        // Column-major linear indexing.
        assert_eq!(m.get_linear(1), 3.0);
        assert_eq!(m.get_linear(2), 2.0);
    }

    #[test]
    fn copy_on_write() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0]]);
        let mut b = a.clone();
        assert!(b.shares_buffer_with(&a));
        assert!(!a.is_unique());
        b.set(0, 0, 9.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(b.get(0, 0), 9.0);
        // The store unshared b; both sides are unique again.
        assert!(!b.shares_buffer_with(&a));
        assert!(a.is_unique() && b.is_unique());
    }

    #[test]
    fn unique_buffer_is_never_copied_on_store() {
        let mut m: Matrix<f64> = Matrix::zeros(8, 8);
        let p = m.data_ptr();
        for k in 0..m.numel() {
            m.set_linear(k, k as f64);
        }
        // Same allocation throughout: every store went in place.
        assert_eq!(m.data_ptr(), p);
        assert!(m.is_unique());
    }

    #[test]
    fn deep_clone_is_physically_independent() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0]]);
        let b = a.deep_clone();
        assert_eq!(a, b);
        assert!(!b.shares_buffer_with(&a));
        assert!(a.is_unique() && b.is_unique());
    }

    #[test]
    fn shared_in_allocation_growth_never_mutates_the_buffer() {
        // x and y share one oversized buffer; growing x within the
        // allocation must neither re-layout nor touch shared cells.
        let mut x: Matrix<f64> = Matrix::zeros(10, 1);
        x.grow(11, 1, true);
        assert!(x.has_slack());
        let y = x.clone();
        let p = x.data_ptr();
        x.grow(12, 1, true);
        // Still the shared allocation: growth only bumped x's extent.
        assert!(x.shares_buffer_with(&y));
        assert_eq!(x.data_ptr(), p);
        assert_eq!(y.rows(), 11);
        // The first store into the grown region snapshots for x only.
        x.set(11, 0, 7.0);
        assert!(!x.shares_buffer_with(&y));
        assert_eq!(y.data_ptr(), p);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reshaped_shares_contiguous_buffers() {
        let m = Matrix::from_rows(vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
        let v = m.reshaped(4, 1).expect("contiguous");
        assert!(v.shares_buffer_with(&m));
        assert_eq!(v.to_contiguous(), vec![1.0, 2.0, 3.0, 4.0]);
        assert!(m.reshaped(3, 1).is_none(), "element count must match");
        // Slack from oversizing breaks contiguity: no shared view.
        let mut s: Matrix<f64> = Matrix::zeros(2, 2);
        s.grow(3, 2, true);
        assert!(s.reshaped(6, 1).is_none());
    }

    #[test]
    fn oversize_headroom_applies_at_exactly_the_limit() {
        // numel == OVERSIZE_LIMIT is not "large": headroom still applies
        // ("large arrays are never oversized" is strictly above).
        let mut m: Matrix<f64> = Matrix::zeros(1, 1);
        m.grow(1, OVERSIZE_LIMIT, true);
        assert_eq!((m.rows(), m.cols()), (1, OVERSIZE_LIMIT));
        assert!(m.has_slack());
        // Growth within the headroom stays in the allocation.
        let p = m.data_ptr();
        m.grow(1, OVERSIZE_LIMIT + 1, true);
        assert_eq!(m.data_ptr(), p);
    }

    #[test]
    fn oversize_headroom_is_skipped_one_above_the_limit() {
        let mut m: Matrix<f64> = Matrix::zeros(1, 1);
        m.grow(1, OVERSIZE_LIMIT + 1, true);
        assert_eq!((m.rows(), m.cols()), (1, OVERSIZE_LIMIT + 1));
        assert!(!m.has_slack(), "large arrays are never oversized");
    }

    #[test]
    fn grow_zero_fills() {
        let mut m = Matrix::from_rows(vec![vec![1.0, 2.0]]);
        m.grow(2, 3, false);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 0.0);
    }

    #[test]
    fn oversized_growth_avoids_relayout() {
        let mut m: Matrix<f64> = Matrix::zeros(10, 1);
        m.grow(11, 1, true);
        assert!(m.has_slack());
        let lda_after_first = m.lda();
        // Growing within the slack must not re-layout.
        m.grow(12, 1, true);
        assert_eq!(m.lda(), lda_after_first);
    }

    #[test]
    fn unoversized_growth_relayouts_every_time() {
        let mut m: Matrix<f64> = Matrix::zeros(10, 1);
        m.grow(11, 1, false);
        assert_eq!(m.lda(), 11);
        m.grow(12, 1, false);
        assert_eq!(m.lda(), 12);
    }

    #[test]
    fn equality_ignores_slack() {
        let mut a: Matrix<f64> = Matrix::zeros(2, 2);
        let mut b: Matrix<f64> = Matrix::zeros(1, 1);
        b.grow(2, 2, true);
        a.set(1, 1, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn transpose() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn growth_preserves_contents_across_relayout() {
        let mut m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.grow(5, 5, true);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(4, 4), 0.0);
    }

    #[test]
    fn iter_respects_lda() {
        let mut m = Matrix::from_rows(vec![vec![1.0], vec![2.0]]);
        m.grow(3, 1, true); // introduces lda slack
        m.grow(3, 2, true);
        let v = m.to_contiguous();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 0.0);
    }
}
