//! The MATLAB value runtime shared by MaJIC's interpreter and compiled
//! code.
//!
//! This crate plays the role of the "MATLAB C library" the paper's
//! generated code links against (Figure 3 shows calls like `mlfPlus` /
//! `mlfTimes`): a polymorphic [`Value`] type covering real, complex,
//! logical and character matrices; the generic operator library in
//! [`ops`]; the built-in function library in [`builtins`]; and the
//! supporting dense linear algebra in [`linalg`].
//!
//! Matrices are column-major with an explicit leading dimension so that
//! the *oversizing* optimization of paper §2.6.1 (allocating ~10% extra
//! space on resize so repeated growth does not re-layout the array) is
//! faithfully reproduced — see [`Matrix`].
//!
//! # Examples
//!
//! ```
//! use majic_runtime::{ops, Value};
//!
//! let a = Value::scalar(2.0);
//! let b = Value::scalar(3.0);
//! assert_eq!(ops::add(&a, &b).unwrap(), Value::scalar(5.0));
//! ```

pub mod builtins;
mod complex;
mod error;
pub mod linalg;
mod matrix;
pub mod ops;
pub mod par;
mod rng;
mod value;

pub use complex::Complex;
pub use error::{RuntimeError, RuntimeResult};
pub use matrix::{
    checked_numel, numel_limit, parse_numel_limit, set_numel_limit, Matrix, DEFAULT_NUMEL_LIMIT,
};
pub use rng::Lcg;
pub use value::Value;
