//! A deterministic linear congruential generator for the `rand` builtin.
//!
//! MaJIC's interpreted and compiled executions of the same benchmark must
//! produce *identical* random streams so that results can be compared
//! bit-for-bit in tests; using our own LCG (rather than an external crate)
//! also keeps compiled code free of foreign state.

/// A 64-bit LCG (Knuth MMIX constants) producing doubles in `[0, 1)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator with the default seed (MATLAB-style fresh session).
    pub fn new() -> Lcg {
        Lcg::seeded(0x9E3779B97F4A7C15)
    }

    /// A generator with an explicit seed.
    pub fn seeded(seed: u64) -> Lcg {
        Lcg {
            state: seed.wrapping_mul(2862933555777941757).wrapping_add(1),
        }
    }

    /// Next raw 64-bit state.
    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// Next double uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Default for Lcg {
    fn default() -> Self {
        Lcg::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Lcg::seeded(42);
        let mut b = Lcg::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    #[test]
    fn in_unit_interval() {
        let mut g = Lcg::new();
        for _ in 0..1000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut g = Lcg::seeded(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Lcg::seeded(1);
        let mut b = Lcg::seeded(2);
        assert_ne!(a.next_f64(), b.next_f64());
    }
}
