//! The polymorphic MATLAB value.

use crate::{Complex, Matrix, RuntimeError, RuntimeResult};
use majic_types::{Intrinsic, Lattice, Range, Shape, Type};
use std::fmt;

/// A MATLAB value: a real, complex or logical matrix, or a character
/// string.
///
/// Everything — including scalars — is a matrix, exactly as in MATLAB;
/// this uniform, heap-backed representation is what makes interpreted
/// execution slow and typed compiled code fast.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Real (double) matrix.
    Real(Matrix<f64>),
    /// Complex matrix.
    Complex(Matrix<Complex>),
    /// Logical matrix.
    Bool(Matrix<bool>),
    /// Character row vector.
    Str(String),
}

impl Value {
    /// A real scalar.
    pub fn scalar(v: f64) -> Value {
        Value::Real(Matrix::scalar(v))
    }

    /// A complex scalar.
    pub fn complex_scalar(z: Complex) -> Value {
        Value::Complex(Matrix::scalar(z))
    }

    /// A logical scalar.
    pub fn bool_scalar(b: bool) -> Value {
        Value::Bool(Matrix::scalar(b))
    }

    /// The empty `0 × 0` real matrix (`[]`).
    pub fn empty() -> Value {
        Value::Real(Matrix::zeros(0, 0))
    }

    /// `(rows, cols)` of the value.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            Value::Real(m) => (m.rows(), m.cols()),
            Value::Complex(m) => (m.rows(), m.cols()),
            Value::Bool(m) => (m.rows(), m.cols()),
            Value::Str(s) => (if s.is_empty() { 0 } else { 1 }, s.len()),
        }
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        let (r, c) = self.dims();
        r * c
    }

    /// Is this a `1 × 1` value?
    pub fn is_scalar(&self) -> bool {
        self.dims() == (1, 1)
    }

    /// Is this value empty?
    pub fn is_empty(&self) -> bool {
        self.numel() == 0
    }

    /// MATLAB truthiness: nonempty and all elements nonzero.
    pub fn is_true(&self) -> bool {
        if self.is_empty() {
            return false;
        }
        match self {
            Value::Real(m) => m.iter().all(|&v| v != 0.0),
            Value::Complex(m) => m.iter().all(|z| z.re != 0.0 || z.im != 0.0),
            Value::Bool(m) => m.iter().all(|&b| b),
            Value::Str(s) => s.bytes().all(|b| b != 0),
        }
    }

    /// Scalar coercion to a real double (complex values keep the real
    /// part, as MATLAB does for subscripts and relational operands).
    ///
    /// # Errors
    ///
    /// Fails on empty values and strings.
    pub fn to_scalar(&self) -> RuntimeResult<f64> {
        match self {
            Value::Real(m) if !m.is_empty() => Ok(m.first()),
            Value::Complex(m) if !m.is_empty() => Ok(m.first().re),
            Value::Bool(m) if !m.is_empty() => Ok(if m.first() { 1.0 } else { 0.0 }),
            _ => Err(RuntimeError::TypeMismatch(
                "expected a numeric scalar".to_owned(),
            )),
        }
    }

    /// View as a real matrix, promoting logicals; errors on complex and
    /// string values.
    ///
    /// # Errors
    ///
    /// Fails when the value has an imaginary part or is a string.
    pub fn to_real_matrix(&self) -> RuntimeResult<Matrix<f64>> {
        match self {
            Value::Real(m) => Ok(m.clone()),
            Value::Bool(m) => Ok(m.map(|&b| if b { 1.0 } else { 0.0 })),
            Value::Complex(m) if m.iter().all(|z| z.im == 0.0) => Ok(m.map(|z| z.re)),
            Value::Complex(_) => Err(RuntimeError::TypeMismatch(
                "expected a real value".to_owned(),
            )),
            Value::Str(_) => Err(RuntimeError::TypeMismatch(
                "expected a numeric value".to_owned(),
            )),
        }
    }

    /// View as a complex matrix, promoting reals and logicals.
    ///
    /// # Errors
    ///
    /// Fails on strings.
    pub fn to_complex_matrix(&self) -> RuntimeResult<Matrix<Complex>> {
        match self {
            Value::Real(m) => Ok(m.map(|&v| Complex::new(v, 0.0))),
            Value::Complex(m) => Ok(m.clone()),
            Value::Bool(m) => Ok(m.map(|&b| Complex::new(if b { 1.0 } else { 0.0 }, 0.0))),
            Value::Str(_) => Err(RuntimeError::TypeMismatch(
                "expected a numeric value".to_owned(),
            )),
        }
    }

    /// Demote a complex matrix whose imaginary parts are all zero to a
    /// real matrix (MATLAB results are stored real whenever possible).
    pub fn normalized(self) -> Value {
        match self {
            Value::Complex(m) if m.iter().all(|z| z.im == 0.0) => Value::Real(m.map(|z| z.re)),
            other => other,
        }
    }

    /// The exact runtime [`Type`] of this value, used to form invocation
    /// signatures: exact shape bounds and, for real data, the exact value
    /// range (a scalar constant gets a degenerate range).
    pub fn type_of(&self) -> Type {
        let (r, c) = self.dims();
        let shape = Shape::new(r as u64, c as u64);
        match self {
            Value::Real(m) => {
                let mut intrinsic = Intrinsic::Int;
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &v in m.iter() {
                    if v.fract() != 0.0 || !v.is_finite() {
                        intrinsic = Intrinsic::Real;
                    }
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                // An empty matrix has no elements, so every range
                // constraint holds vacuously: ⊥ is ≤ any range, where ⊤
                // would spuriously fail subsumption checks against
                // inferred types with narrowed ranges.
                let range = if m.is_empty() {
                    Range::bottom()
                } else {
                    Range::new(lo, hi)
                };
                Type {
                    intrinsic,
                    min_shape: shape,
                    max_shape: shape,
                    range,
                }
            }
            Value::Complex(_) => Type {
                intrinsic: Intrinsic::Complex,
                min_shape: shape,
                max_shape: shape,
                range: Range::top(),
            },
            Value::Bool(m) => {
                let range = if m.is_empty() {
                    Range::bottom()
                } else {
                    let any_true = m.iter().any(|&b| b);
                    let any_false = m.iter().any(|&b| !b);
                    Range::new(
                        if any_false { 0.0 } else { 1.0 },
                        if any_true { 1.0 } else { 0.0 },
                    )
                };
                Type {
                    intrinsic: Intrinsic::Bool,
                    min_shape: shape,
                    max_shape: shape,
                    range,
                }
            }
            Value::Str(_) => Type {
                intrinsic: Intrinsic::Str,
                min_shape: shape,
                max_shape: shape,
                range: Range::top(),
            },
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::scalar(v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::bool_scalar(b)
    }
}

impl From<Complex> for Value {
    fn from(z: Complex) -> Self {
        Value::complex_scalar(z)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn grid<T: Clone + Default + PartialEq + fmt::Display>(
            f: &mut fmt::Formatter<'_>,
            m: &Matrix<T>,
        ) -> fmt::Result {
            for r in 0..m.rows() {
                f.write_str("  ")?;
                for c in 0..m.cols() {
                    if c > 0 {
                        f.write_str("  ")?;
                    }
                    write!(f, "{}", m.get(r, c))?;
                }
                writeln!(f)?;
            }
            Ok(())
        }
        match self {
            Value::Real(m) if m.is_scalar() => write!(f, "{}", m.first()),
            Value::Complex(m) if m.is_scalar() => write!(f, "{}", m.first()),
            Value::Bool(m) if m.is_scalar() => write!(f, "{}", u8::from(m.first())),
            Value::Real(m) => grid(f, m),
            Value::Complex(m) => grid(f, m),
            Value::Bool(m) => grid(f, &m.map(|&b| u8::from(b))),
            Value::Str(s) => f.write_str(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_send_and_sync() {
        // The Arc-backed buffers make whole values shareable across
        // threads (an Rc-backed buffer would pin every value to the
        // thread that allocated it).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Value>();
        assert_send_sync::<Matrix<f64>>();
    }

    #[test]
    fn truthiness() {
        assert!(Value::scalar(1.0).is_true());
        assert!(!Value::scalar(0.0).is_true());
        assert!(!Value::empty().is_true());
        assert!(Value::Real(Matrix::from_rows(vec![vec![1.0, 2.0]])).is_true());
        assert!(!Value::Real(Matrix::from_rows(vec![vec![1.0, 0.0]])).is_true());
        assert!(Value::bool_scalar(true).is_true());
    }

    #[test]
    fn scalar_coercion_takes_real_part() {
        let z = Value::complex_scalar(Complex::new(2.0, 5.0));
        assert_eq!(z.to_scalar().unwrap(), 2.0);
        assert!(Value::Str("x".into()).to_scalar().is_err());
    }

    #[test]
    fn normalization_demotes_pure_real_complex() {
        let z = Value::Complex(Matrix::scalar(Complex::new(3.0, 0.0)));
        assert_eq!(z.normalized(), Value::scalar(3.0));
        let z = Value::Complex(Matrix::scalar(Complex::new(3.0, 1.0)));
        assert!(matches!(z.normalized(), Value::Complex(_)));
    }

    #[test]
    fn type_extraction() {
        use majic_types::Intrinsic;
        let t = Value::scalar(3.0).type_of();
        assert_eq!(t.intrinsic, Intrinsic::Int);
        assert_eq!(t.as_constant(), Some(3.0));

        let t = Value::scalar(3.5).type_of();
        assert_eq!(t.intrinsic, Intrinsic::Real);

        let m = Value::Real(Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]));
        let t = m.type_of();
        assert_eq!(t.exact_shape(), Some(Shape::new(2, 2)));
        assert_eq!(t.range, Range::new(1.0, 4.0));

        let t = Value::bool_scalar(true).type_of();
        assert_eq!(t.intrinsic, Intrinsic::Bool);
        assert_eq!(t.range, Range::constant(1.0));
    }

    #[test]
    fn empty_values_have_bottom_range() {
        use majic_types::Lattice;
        // Found by the differential fuzzer: an empty `3:0` result was
        // typed with a ⊤ range, which is not subsumed by any inferred
        // type whose range has been narrowed (e.g. `<0,inf>` from
        // `abs`). With no elements, every range holds vacuously.
        let t = Value::Real(Matrix::zeros(1, 0)).type_of();
        assert!(t.range.is_bottom());
        assert!(t.range.le(&Range::new(0.0, 1.0)));
        let t = Value::Bool(Matrix::zeros(0, 0)).type_of();
        assert!(t.range.is_bottom());
    }

    #[test]
    fn string_dims() {
        assert_eq!(Value::Str("abc".into()).dims(), (1, 3));
        assert_eq!(Value::Str(String::new()).dims(), (0, 0));
    }
}
