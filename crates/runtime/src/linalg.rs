//! Dense linear algebra: matrix products, LU solves, norms and
//! eigenvalues.
//!
//! The paper's generated code leans on the platform BLAS/LAPACK (`dgemv`,
//! `eig`); this module is our self-contained substitute. Routines are
//! generic over [`Scalar`] so the same code serves real and complex
//! matrices.

use crate::{Complex, Matrix, RuntimeError, RuntimeResult};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Field operations required by the generic routines. `Send + Sync`
/// rides along so the blocked product may fan columns out across the
/// kernel pool in [`crate::par`] (both implementors are plain data).
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Magnitude as a real double (pivot selection, norms).
    fn abs_val(self) -> f64;
    /// Embed a real double.
    fn from_f64(v: f64) -> Self;
}

impl Scalar for f64 {
    fn abs_val(self) -> f64 {
        self.abs()
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

impl Scalar for Complex {
    fn abs_val(self) -> f64 {
        self.abs()
    }
    fn from_f64(v: f64) -> Self {
        Complex::new(v, 0.0)
    }
}

/// One output column of `A·B`: `ocol += A · bcol`, accumulating along
/// the inner dimension in ascending order. Both the sequential and the
/// blocked-parallel product run every column through this one function,
/// so each output element sees the identical accumulation order — the
/// bitwise-determinism invariant of [`crate::par`] reduces to "columns
/// are independent", which they are.
fn gemm_col<T: Scalar>(a: &Matrix<T>, bcol: &[T], ocol: &mut [T]) {
    for (l, &blj) in bcol.iter().enumerate() {
        if blj == T::default() {
            continue;
        }
        let acol = a.col(l);
        for (o, &ail) in ocol.iter_mut().zip(acol) {
            *o = *o + ail * blj;
        }
    }
}

/// General matrix–matrix product `A·B`. Output columns are distributed
/// across the kernel pool when the flop count crosses the parallel size
/// gate; chunks align on column boundaries, so the accumulation order
/// inside every column is exactly the sequential one.
///
/// # Errors
///
/// Fails when the inner dimensions disagree.
pub fn gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> RuntimeResult<Matrix<T>> {
    if a.cols() != b.rows() {
        return Err(RuntimeError::DimensionMismatch(format!(
            "{}x{} * {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (m, n) = (a.rows(), b.cols());
    let work = m.saturating_mul(a.cols()).saturating_mul(n);
    let mut out = vec![T::default(); m * n];
    if crate::par::gate(work) && m > 0 && n >= 2 {
        let cols_per_chunk = n.div_ceil(crate::par::thread_count().max(2) * 4);
        let chunk = cols_per_chunk * m;
        crate::par::note_dispatch(chunk);
        crate::par::for_each_chunk_mut(&mut out, chunk, |start, run| {
            let j0 = start / m;
            for (dj, ocol) in run.chunks_mut(m).enumerate() {
                gemm_col(a, b.col(j0 + dj), ocol);
            }
        });
    } else {
        for j in 0..n {
            gemm_col(a, b.col(j), &mut out[j * m..(j + 1) * m]);
        }
    }
    Ok(Matrix::from_vec(m, n, out))
}

/// Matrix–vector product `A·x` where `x` is a column vector.
///
/// # Errors
///
/// Fails when dimensions disagree.
pub fn gemv<T: Scalar>(a: &Matrix<T>, x: &[T]) -> RuntimeResult<Vec<T>> {
    if a.cols() != x.len() {
        return Err(RuntimeError::DimensionMismatch(format!(
            "{}x{} * {}x1",
            a.rows(),
            a.cols(),
            x.len()
        )));
    }
    let m = a.rows();
    let mut y = vec![T::default(); m];
    for (l, &xl) in x.iter().enumerate() {
        if xl == T::default() {
            continue;
        }
        let acol = a.col(l);
        for i in 0..m {
            y[i] = y[i] + acol[i] * xl;
        }
    }
    Ok(y)
}

/// Fused `alpha·A·x + beta·y` — the `dgemv` pattern the paper's code
/// selector recognizes in expressions like `a*X + b*C*Y` (§2.6.1).
///
/// # Errors
///
/// Fails when dimensions disagree.
pub fn gemv_fused<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    x: &[T],
    beta: T,
    y: &[T],
) -> RuntimeResult<Vec<T>> {
    if a.rows() != y.len() {
        return Err(RuntimeError::DimensionMismatch(format!(
            "gemv update length {} vs {}",
            a.rows(),
            y.len()
        )));
    }
    let mut out = gemv(a, x)?;
    for (o, &yv) in out.iter_mut().zip(y) {
        *o = alpha * *o + beta * yv;
    }
    Ok(out)
}

/// LU factorization with partial pivoting, in place over a copy.
/// Returns `(lu, perm)` where `perm[i]` is the source row of row `i`.
///
/// # Errors
///
/// Fails on non-square or numerically singular input.
pub fn lu_factor<T: Scalar>(a: &Matrix<T>) -> RuntimeResult<(Vec<T>, Vec<usize>)> {
    if a.rows() != a.cols() {
        return Err(RuntimeError::DimensionMismatch(format!(
            "matrix must be square for LU, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    let mut lu = a.to_contiguous();
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot search in column k.
        let mut p = k;
        let mut best = lu[k * n + k].abs_val();
        for i in k + 1..n {
            let v = lu[k * n + i].abs_val();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best == 0.0 {
            return Err(RuntimeError::Raised("matrix is singular".to_owned()));
        }
        if p != k {
            perm.swap(k, p);
            for j in 0..n {
                lu.swap(j * n + k, j * n + p);
            }
        }
        let pivot = lu[k * n + k];
        for i in k + 1..n {
            let factor = lu[k * n + i] / pivot;
            lu[k * n + i] = factor;
            for j in k + 1..n {
                let u = lu[j * n + k];
                lu[j * n + i] = lu[j * n + i] - factor * u;
            }
        }
    }
    Ok((lu, perm))
}

/// Solve `A·X = B` by LU with partial pivoting (the `\` operator).
///
/// # Errors
///
/// Fails on non-square `A`, dimension mismatch, or singular `A`.
pub fn lu_solve<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> RuntimeResult<Matrix<T>> {
    let n = a.rows();
    if b.rows() != n {
        return Err(RuntimeError::DimensionMismatch(format!(
            "A\\B with A {}x{} and B {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (lu, perm) = lu_factor(a)?;
    let mut out = vec![T::default(); n * b.cols()];
    for col in 0..b.cols() {
        let bcol = b.col(col);
        let x = &mut out[col * n..(col + 1) * n];
        // Apply permutation.
        for i in 0..n {
            x[i] = bcol[perm[i]];
        }
        // Forward substitution (unit lower).
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s = s - lu[j * n + i] * x[j];
            }
            x[i] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s = s - lu[j * n + i] * x[j];
            }
            x[i] = s / lu[i * n + i];
        }
    }
    Ok(Matrix::from_vec(n, b.cols(), out))
}

/// Vector/matrix 2-norm: Euclidean norm for vectors, Frobenius norm for
/// matrices (MATLAB's `norm(A)` is the spectral norm; Frobenius is the
/// standard inexpensive substitute and is what the benchmarks' residual
/// tests need).
pub fn norm2<T: Scalar>(a: &Matrix<T>) -> f64 {
    a.iter()
        .map(|v| {
            let m = v.abs_val();
            m * m
        })
        .sum::<f64>()
        .sqrt()
}

/// Eigenvalues of a square real matrix, via Hessenberg reduction and the
/// shifted QR iteration (Francis double-shift on real data would avoid
/// complex arithmetic; we run the single-shift iteration in complex
/// arithmetic for simplicity — the matrices in the benchmarks are tiny).
///
/// # Errors
///
/// Fails on non-square input or when the iteration does not converge.
pub fn eig(a: &Matrix<f64>) -> RuntimeResult<Vec<Complex>> {
    if a.rows() != a.cols() {
        return Err(RuntimeError::DimensionMismatch(
            "eig requires a square matrix".to_owned(),
        ));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Work in complex arithmetic.
    let mut h: Vec<Complex> = a
        .to_contiguous()
        .iter()
        .map(|&v| Complex::from(v))
        .collect();

    // Reduce to upper Hessenberg form with Householder-like eliminations
    // (Gaussian similarity transforms with pivoting are fine numerically
    // for the small matrices we target).
    let at = |h: &Vec<Complex>, i: usize, j: usize| h[j * n + i];
    for k in 1..n.saturating_sub(1) {
        // Pivot: bring largest |h(i,k-1)|, i>=k, to row k.
        let mut p = k;
        let mut best = at(&h, k, k - 1).abs();
        for i in k + 1..n {
            if at(&h, i, k - 1).abs() > best {
                best = at(&h, i, k - 1).abs();
                p = i;
            }
        }
        if best == 0.0 {
            continue;
        }
        if p != k {
            for j in 0..n {
                h.swap(j * n + k, j * n + p);
            }
            for i in 0..n {
                h.swap(k * n + i, p * n + i);
            }
        }
        let pivot = at(&h, k, k - 1);
        for i in k + 1..n {
            let m = at(&h, i, k - 1) / pivot;
            if m == Complex::ZERO {
                continue;
            }
            // Row op: row_i -= m * row_k.
            for j in 0..n {
                let v = at(&h, k, j) * m;
                h[j * n + i] = h[j * n + i] - v;
            }
            // Column op: col_k += m * col_i (inverse similarity).
            for r in 0..n {
                let v = at(&h, r, i) * m;
                h[k * n + r] = h[k * n + r] + v;
            }
        }
    }

    // Shifted QR on the Hessenberg matrix, deflating from the bottom.
    let mut eigs = Vec::with_capacity(n);
    let mut m = n;
    let mut iters = 0usize;
    while m > 0 {
        if m == 1 {
            eigs.push(at(&h, 0, 0));
            break;
        }
        // Check for a negligible subdiagonal to deflate.
        let mut deflated = false;
        for k in (1..m).rev() {
            let s = at(&h, k - 1, k - 1).abs() + at(&h, k, k).abs();
            if at(&h, k, k - 1).abs() <= 1e-14 * s.max(1e-300) && k == m - 1 {
                eigs.push(at(&h, m - 1, m - 1));
                m -= 1;
                deflated = true;
                break;
            }
        }
        if deflated {
            continue;
        }
        iters += 1;
        if iters > 200 * n {
            return Err(RuntimeError::Raised("eig failed to converge".to_owned()));
        }
        // Wilkinson shift from the trailing 2x2 block.
        let a11 = at(&h, m - 2, m - 2);
        let a12 = at(&h, m - 2, m - 1);
        let a21 = at(&h, m - 1, m - 2);
        let a22 = at(&h, m - 1, m - 1);
        let tr = a11 + a22;
        let det = a11 * a22 - a12 * a21;
        let disc = (tr * tr - Complex::from(4.0) * det).sqrt();
        let l1 = (tr + disc) / Complex::from(2.0);
        let l2 = (tr - disc) / Complex::from(2.0);
        let shift = if (l1 - a22).abs() < (l2 - a22).abs() {
            l1
        } else {
            l2
        };
        // QR step via Givens rotations on the shifted matrix (complex
        // Givens: we use 2x2 eliminations computed from the subdiagonal).
        for i in 0..m {
            h[i * n + i] = h[i * n + i] - shift;
        }
        // Factor: eliminate subdiagonal with row rotations, remember them.
        let mut rots: Vec<(usize, Complex, Complex)> = Vec::with_capacity(m - 1);
        for k in 0..m - 1 {
            let x = at(&h, k, k);
            let y = at(&h, k + 1, k);
            let r = (x * x.conj() + y * y.conj()).sqrt();
            if r.abs() == 0.0 {
                rots.push((k, Complex::from(1.0), Complex::ZERO));
                continue;
            }
            let c = x / r;
            let s = y / r;
            rots.push((k, c, s));
            for j in k..m {
                let hk = at(&h, k, j);
                let hk1 = at(&h, k + 1, j);
                h[j * n + k] = c.conj() * hk + s.conj() * hk1;
                h[j * n + k + 1] = -s * hk + c * hk1;
            }
        }
        // Multiply back: H = R·Q, applying the rotations on columns.
        for &(k, c, s) in &rots {
            for i in 0..(k + 2).min(m) {
                let hik = at(&h, i, k);
                let hik1 = at(&h, i, k + 1);
                h[k * n + i] = hik * c + hik1 * s;
                h[(k + 1) * n + i] = hik * (-s.conj()) + hik1 * c.conj();
            }
        }
        for i in 0..m {
            h[i * n + i] = h[i * n + i] + shift;
        }
    }
    eigs.reverse();
    Ok(eigs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: Vec<Vec<f64>>) -> Matrix<f64> {
        Matrix::from_rows(rows)
    }

    #[test]
    fn gemm_small() {
        let a = mat(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = mat(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c, mat(vec![vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn gemm_dimension_check() {
        let a = mat(vec![vec![1.0, 2.0]]);
        assert!(gemm(&a, &a).is_err());
    }

    #[test]
    fn gemv_matches_gemm() {
        let a = mat(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let y = gemv(&a, &[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn gemv_fused_computes_axpy() {
        let a = mat(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let out = gemv_fused(2.0, &a, &[1.0, 2.0], 3.0, &[10.0, 20.0]).unwrap();
        assert_eq!(out, vec![2.0 + 30.0, 4.0 + 60.0]);
    }

    #[test]
    fn lu_solves_linear_system() {
        let a = mat(vec![vec![4.0, 3.0], vec![6.0, 3.0]]);
        let b = mat(vec![vec![10.0], vec![12.0]]);
        let x = lu_solve(&a, &b).unwrap();
        // 4x + 3y = 10, 6x + 3y = 12 → x = 1, y = 2
        assert!((x.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((x.get(1, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = mat(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = mat(vec![vec![1.0], vec![2.0]]);
        assert!(lu_solve(&a, &b).is_err());
    }

    #[test]
    fn lu_needs_square() {
        let a = mat(vec![vec![1.0, 2.0, 3.0]]);
        let b = mat(vec![vec![1.0]]);
        assert!(lu_solve(&a, &b).is_err());
    }

    #[test]
    fn norms() {
        let v = mat(vec![vec![3.0], vec![4.0]]);
        assert_eq!(norm2(&v), 5.0);
    }

    #[test]
    fn eig_diagonal() {
        let a = mat(vec![vec![2.0, 0.0], vec![0.0, 5.0]]);
        let mut e: Vec<f64> = eig(&a).unwrap().iter().map(|z| z.re).collect();
        e.sort_by(f64::total_cmp);
        assert!((e[0] - 2.0).abs() < 1e-8);
        assert!((e[1] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn eig_symmetric() {
        // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
        let a = mat(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        let mut e: Vec<f64> = eig(&a).unwrap().iter().map(|z| z.re).collect();
        e.sort_by(f64::total_cmp);
        assert!((e[0] - 1.0).abs() < 1e-8, "{e:?}");
        assert!((e[1] - 3.0).abs() < 1e-8, "{e:?}");
    }

    #[test]
    fn eig_complex_pair() {
        // [[0,-1],[1,0]] has eigenvalues ±i.
        let a = mat(vec![vec![0.0, -1.0], vec![1.0, 0.0]]);
        let e = eig(&a).unwrap();
        let mut ims: Vec<f64> = e.iter().map(|z| z.im).collect();
        ims.sort_by(f64::total_cmp);
        assert!((ims[0] + 1.0).abs() < 1e-8, "{e:?}");
        assert!((ims[1] - 1.0).abs() < 1e-8, "{e:?}");
        assert!(e.iter().all(|z| z.re.abs() < 1e-8));
    }

    #[test]
    fn eig_larger_matrix_trace_matches() {
        // Trace = sum of eigenvalues.
        let a = mat(vec![
            vec![4.0, 1.0, 0.0, 2.0],
            vec![1.0, 3.0, 1.0, 0.0],
            vec![0.0, 1.0, 2.0, 1.0],
            vec![2.0, 0.0, 1.0, 1.0],
        ]);
        let e = eig(&a).unwrap();
        let tr: f64 = e.iter().map(|z| z.re).sum();
        assert!((tr - 10.0).abs() < 1e-6, "{e:?}");
        assert!(e.iter().map(|z| z.im).sum::<f64>().abs() < 1e-6);
    }
}
