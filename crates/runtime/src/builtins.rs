//! The MATLAB built-in function library.
//!
//! Builtins are identified by the [`Builtin`] enum so that the compiler
//! (type calculator, code selector) and the runtime agree on identity.
//! Calls run against a [`CallCtx`] that owns the random-number generator
//! and captures printed output.

use crate::{linalg, Complex, Lcg, Matrix, RuntimeError, RuntimeResult, Value};
use std::fmt;

/// Execution context threaded through builtin calls.
#[derive(Debug, Default)]
pub struct CallCtx {
    /// Deterministic generator behind `rand`.
    pub rng: Lcg,
    /// Output captured from `disp` / `fprintf`.
    pub printed: String,
}

impl CallCtx {
    /// A fresh context with the default seed.
    pub fn new() -> CallCtx {
        CallCtx::default()
    }
}

macro_rules! builtins {
    ($( $variant:ident => $name:literal ),* $(,)?) => {
        /// Identity of a MATLAB built-in function or constant.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub enum Builtin {
            $(#[doc = $name] $variant,)*
        }

        impl Builtin {
            /// Look a builtin up by its MATLAB name.
            pub fn lookup(name: &str) -> Option<Builtin> {
                match name {
                    $($name => Some(Builtin::$variant),)*
                    _ => None,
                }
            }

            /// The MATLAB-visible name.
            pub fn name(self) -> &'static str {
                match self {
                    $(Builtin::$variant => $name,)*
                }
            }

            /// Every builtin (introspection, exhaustive tests).
            pub fn all() -> &'static [Builtin] {
                &[$(Builtin::$variant,)*]
            }
        }
    };
}

builtins! {
    Zeros => "zeros",
    Ones => "ones",
    Eye => "eye",
    Rand => "rand",
    Size => "size",
    Length => "length",
    Numel => "numel",
    IsEmpty => "isempty",
    Abs => "abs",
    Sqrt => "sqrt",
    Exp => "exp",
    Log => "log",
    Log10 => "log10",
    Sin => "sin",
    Cos => "cos",
    Tan => "tan",
    Asin => "asin",
    Acos => "acos",
    Atan => "atan",
    Atan2 => "atan2",
    Floor => "floor",
    Ceil => "ceil",
    Round => "round",
    Fix => "fix",
    Sign => "sign",
    Mod => "mod",
    Rem => "rem",
    Sum => "sum",
    Prod => "prod",
    Max => "max",
    Min => "min",
    Real => "real",
    Imag => "imag",
    Conj => "conj",
    Angle => "angle",
    Norm => "norm",
    Eig => "eig",
    Pi => "pi",
    Eps => "eps",
    Inf => "Inf",
    NaN => "NaN",
    ImagUnitI => "i",
    ImagUnitJ => "j",
    Disp => "disp",
    Error => "error",
    Fprintf => "fprintf",
    Num2Str => "num2str",
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Builtin {
    /// Is this a zero-argument constant (`pi`, `i`, `Inf`, …)? Constants
    /// may appear without parentheses and are shadowed by variables.
    pub fn is_constant(self) -> bool {
        matches!(
            self,
            Builtin::Pi
                | Builtin::Eps
                | Builtin::Inf
                | Builtin::NaN
                | Builtin::ImagUnitI
                | Builtin::ImagUnitJ
        )
    }

    /// Call the builtin.
    ///
    /// `nargout` is the number of requested outputs (`[m,n] = size(A)`
    /// passes 2); most builtins produce exactly one value.
    ///
    /// # Errors
    ///
    /// Fails on arity, type or shape violations, and when user code calls
    /// `error(...)`.
    pub fn call(
        self,
        ctx: &mut CallCtx,
        args: &[Value],
        nargout: usize,
    ) -> RuntimeResult<Vec<Value>> {
        use Builtin::*;
        let one = |v: Value| Ok(vec![v]);
        match self {
            Zeros | Ones | Rand | Eye => {
                let (r, c) = creation_dims(self.name(), args)?;
                match self {
                    Zeros => one(Value::Real(Matrix::zeros(r, c))),
                    Ones => one(Value::Real(Matrix::from_vec(r, c, vec![1.0; r * c]))),
                    Eye => {
                        let mut m = Matrix::zeros(r, c);
                        for k in 0..r.min(c) {
                            m.set(k, k, 1.0);
                        }
                        one(Value::Real(m))
                    }
                    Rand => {
                        let data: Vec<f64> = (0..r * c).map(|_| ctx.rng.next_f64()).collect();
                        one(Value::Real(Matrix::from_vec(r, c, data)))
                    }
                    _ => unreachable!(),
                }
            }
            Size => {
                let a = arg(args, 0, "size")?;
                let (r, c) = a.dims();
                if args.len() == 2 {
                    let d = args[1].to_scalar()?;
                    let v = if d == 1.0 { r } else { c };
                    return one(Value::scalar(v as f64));
                }
                if nargout >= 2 {
                    Ok(vec![Value::scalar(r as f64), Value::scalar(c as f64)])
                } else {
                    one(Value::Real(Matrix::from_vec(
                        1,
                        2,
                        vec![r as f64, c as f64],
                    )))
                }
            }
            Length => {
                let (r, c) = arg(args, 0, "length")?.dims();
                one(Value::scalar(if r * c == 0 {
                    0.0
                } else {
                    r.max(c) as f64
                }))
            }
            Numel => one(Value::scalar(arg(args, 0, "numel")?.numel() as f64)),
            IsEmpty => one(Value::bool_scalar(arg(args, 0, "isempty")?.is_empty())),

            Abs => {
                let a = arg(args, 0, "abs")?;
                match a {
                    Value::Complex(m) => one(Value::Real(m.map(|z| z.abs()))),
                    other => one(Value::Real(other.to_real_matrix()?.map(|&v| v.abs()))),
                }
            }

            Sqrt => {
                let a = arg(args, 0, "sqrt")?;
                match a {
                    Value::Complex(m) => one(Value::Complex(m.map(|z| z.sqrt())).normalized()),
                    other => {
                        let m = other.to_real_matrix()?;
                        if m.iter().any(|&v| v < 0.0) {
                            one(Value::Complex(m.map(|&v| Complex::from(v).sqrt())))
                        } else {
                            one(Value::Real(m.map(|&v| v.sqrt())))
                        }
                    }
                }
            }
            Exp => complex_aware(args, "exp", |x| x.exp(), |z| z.exp()),
            Log => {
                let a = arg(args, 0, "log")?;
                match a {
                    Value::Complex(m) => one(Value::Complex(m.map(|z| z.ln())).normalized()),
                    other => {
                        let m = other.to_real_matrix()?;
                        if m.iter().any(|&v| v < 0.0) {
                            one(Value::Complex(m.map(|&v| Complex::from(v).ln())))
                        } else {
                            one(Value::Real(m.map(|&v| v.ln())))
                        }
                    }
                }
            }
            Log10 => real_only(args, "log10", |x| x.log10()),
            Sin => complex_aware(
                args,
                "sin",
                |x| x.sin(),
                |z| {
                    // sin(z) = (e^{iz} - e^{-iz}) / 2i
                    let iz = Complex::I * z;
                    (iz.exp() - (-iz).exp()) / Complex::new(0.0, 2.0)
                },
            ),
            Cos => complex_aware(
                args,
                "cos",
                |x| x.cos(),
                |z| {
                    let iz = Complex::I * z;
                    (iz.exp() + (-iz).exp()) / Complex::from(2.0)
                },
            ),
            Tan => real_only(args, "tan", |x| x.tan()),
            Asin => real_only(args, "asin", |x| x.asin()),
            Acos => real_only(args, "acos", |x| x.acos()),
            Atan => real_only(args, "atan", |x| x.atan()),
            Atan2 => {
                let y = arg(args, 0, "atan2")?.to_real_matrix()?;
                let x = arg(args, 1, "atan2")?.to_real_matrix()?;
                if y.is_scalar() && x.is_scalar() {
                    return one(Value::scalar(y.first().atan2(x.first())));
                }
                if (y.rows(), y.cols()) != (x.rows(), x.cols()) {
                    return Err(RuntimeError::DimensionMismatch("atan2".to_owned()));
                }
                one(Value::Real(y.zip(&x, |&a, &b| a.atan2(b))))
            }
            Floor => real_only(args, "floor", |x| x.floor()),
            Ceil => real_only(args, "ceil", |x| x.ceil()),
            Round => real_only(args, "round", |x| x.round()),
            Fix => real_only(args, "fix", |x| x.trunc()),
            Sign => real_only(args, "sign", |x| {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }),
            Mod => binary_real(args, "mod", |a, b| {
                if b == 0.0 {
                    a
                } else {
                    a - (a / b).floor() * b
                }
            }),
            Rem => binary_real(args, "rem", |a, b| {
                if b == 0.0 {
                    f64::NAN
                } else {
                    a - (a / b).trunc() * b
                }
            }),
            Sum => reduce(args, "sum", 0.0, |acc, v| acc + v, |acc, z| acc + z),
            Prod => reduce(args, "prod", 1.0, |acc, v| acc * v, |acc, z| acc * z),
            Max => extremum(args, "max", true),
            Min => extremum(args, "min", false),
            Real => {
                let a = arg(args, 0, "real")?;
                match a {
                    Value::Complex(m) => one(Value::Real(m.map(|z| z.re))),
                    other => one(Value::Real(other.to_real_matrix()?)),
                }
            }
            Imag => {
                let a = arg(args, 0, "imag")?;
                match a {
                    Value::Complex(m) => one(Value::Real(m.map(|z| z.im))),
                    other => one(Value::Real(other.to_real_matrix()?.map(|_| 0.0))),
                }
            }
            Conj => {
                let a = arg(args, 0, "conj")?;
                match a {
                    Value::Complex(m) => one(Value::Complex(m.map(|z| z.conj()))),
                    other => one(other.clone()),
                }
            }
            Angle => {
                let a = arg(args, 0, "angle")?;
                let m = a.to_complex_matrix()?;
                one(Value::Real(m.map(|z| z.arg())))
            }
            Norm => {
                let a = arg(args, 0, "norm")?;
                let v = match a {
                    Value::Complex(m) => linalg::norm2(m),
                    other => linalg::norm2(&other.to_real_matrix()?),
                };
                one(Value::scalar(v))
            }
            Eig => {
                let a = arg(args, 0, "eig")?;
                let m = a.to_real_matrix().map_err(|_| {
                    RuntimeError::TypeMismatch(
                        "eig of complex matrices is not supported".to_owned(),
                    )
                })?;
                let eigs = linalg::eig(&m)?;
                let n = eigs.len();
                one(Value::Complex(Matrix::from_vec(n, 1, eigs)).normalized())
            }
            Pi => one(Value::scalar(std::f64::consts::PI)),
            Eps => one(Value::scalar(f64::EPSILON)),
            Inf => one(Value::scalar(f64::INFINITY)),
            NaN => one(Value::scalar(f64::NAN)),
            ImagUnitI | ImagUnitJ => one(Value::complex_scalar(Complex::I)),
            Disp => {
                let a = arg(args, 0, "disp")?;
                ctx.printed.push_str(&format!("{a}\n"));
                Ok(vec![])
            }
            Error => {
                let msg = match args.first() {
                    Some(Value::Str(s)) => s.clone(),
                    Some(v) => format!("{v}"),
                    None => "error".to_owned(),
                };
                Err(RuntimeError::Raised(msg))
            }
            Fprintf => {
                let fmt_str = match args.first() {
                    Some(Value::Str(s)) => s.clone(),
                    _ => {
                        return Err(RuntimeError::BadArity {
                            name: "fprintf".to_owned(),
                            detail: "first argument must be a format string".to_owned(),
                        })
                    }
                };
                let text = format_printf(&fmt_str, &args[1..])?;
                ctx.printed.push_str(&text);
                Ok(vec![])
            }
            Num2Str => {
                let a = arg(args, 0, "num2str")?;
                one(Value::Str(format!("{a}")))
            }
        }
    }
}

fn arg<'a>(args: &'a [Value], k: usize, name: &str) -> RuntimeResult<&'a Value> {
    args.get(k).ok_or_else(|| RuntimeError::BadArity {
        name: name.to_owned(),
        detail: format!("expected at least {} argument(s)", k + 1),
    })
}

/// Decode `zeros()`, `zeros(n)`, `zeros(m, n)`, `zeros([m n])`.
///
/// The returned extent is validated against the allocation ceiling
/// ([`crate::checked_numel`]) so callers may multiply and allocate
/// freely: a hostile `zeros(1e300)` or a `rows * cols` that would wrap
/// `usize` surfaces as [`RuntimeError::AllocLimit`] here, before any
/// buffer exists for downstream code to trust.
fn creation_dims(name: &str, args: &[Value]) -> RuntimeResult<(usize, usize)> {
    let to_dim = |v: f64| -> RuntimeResult<usize> {
        if v < 0.0 {
            return Err(RuntimeError::BadSubscript(format!("{v}")));
        }
        if v.is_nan() {
            return Err(RuntimeError::BadSubscript(format!("{v}")));
        }
        // MATLAB warns on fractional sizes and truncates; we truncate
        // too. Infinite sizes saturate and are rejected by the ceiling
        // check below.
        Ok(v as usize)
    };
    let (r, c) = match args.len() {
        0 => (1, 1),
        1 => {
            if args[0].numel() == 2 {
                let m = args[0].to_real_matrix()?;
                (to_dim(m.get_linear(0))?, to_dim(m.get_linear(1))?)
            } else {
                let n = to_dim(args[0].to_scalar()?)?;
                (n, n)
            }
        }
        2 => (to_dim(args[0].to_scalar()?)?, to_dim(args[1].to_scalar()?)?),
        n => {
            return Err(RuntimeError::BadArity {
                name: name.to_owned(),
                detail: format!("{n} arguments"),
            })
        }
    };
    crate::checked_numel(r, c)?;
    Ok((r, c))
}

fn real_only(args: &[Value], name: &str, f: impl Fn(f64) -> f64) -> RuntimeResult<Vec<Value>> {
    let m = arg(args, 0, name)?.to_real_matrix()?;
    Ok(vec![Value::Real(m.map(|&v| f(v)))])
}

fn complex_aware(
    args: &[Value],
    name: &str,
    f: impl Fn(f64) -> f64,
    g: impl Fn(Complex) -> Complex,
) -> RuntimeResult<Vec<Value>> {
    let a = arg(args, 0, name)?;
    match a {
        Value::Complex(m) => Ok(vec![Value::Complex(m.map(|&z| g(z))).normalized()]),
        other => Ok(vec![Value::Real(other.to_real_matrix()?.map(|&v| f(v)))]),
    }
}

fn binary_real(
    args: &[Value],
    name: &str,
    f: impl Fn(f64, f64) -> f64,
) -> RuntimeResult<Vec<Value>> {
    let a = arg(args, 0, name)?.to_real_matrix()?;
    let b = arg(args, 1, name)?.to_real_matrix()?;
    let out = if a.is_scalar() && !b.is_scalar() {
        let s = a.first();
        b.map(|&v| f(s, v))
    } else if b.is_scalar() && !a.is_scalar() {
        let s = b.first();
        a.map(|&v| f(v, s))
    } else if (a.rows(), a.cols()) == (b.rows(), b.cols()) {
        a.zip(&b, |&x, &y| f(x, y))
    } else {
        return Err(RuntimeError::DimensionMismatch(name.to_owned()));
    };
    Ok(vec![Value::Real(out)])
}

/// Column-wise reduction for matrices, whole-vector for vectors. The
/// real closure `f` and its complex lift `fz` must compute the same
/// function (`sum` passes both additions, `prod` both multiplications):
/// the complex arm once hardcoded `acc + z` whatever `f` was, which
/// made `prod` of a complex vector return `1 + Σz` instead of `Πz`.
fn reduce(
    args: &[Value],
    name: &str,
    init: f64,
    f: impl Fn(f64, f64) -> f64,
    fz: impl Fn(Complex, Complex) -> Complex,
) -> RuntimeResult<Vec<Value>> {
    let a = arg(args, 0, name)?;
    match a {
        Value::Complex(m) => {
            let zinit = Complex::from(init);
            if m.is_vector() || m.is_empty() {
                let acc = m.iter().fold(zinit, |a, &z| fz(a, z));
                Ok(vec![Value::Complex(Matrix::scalar(acc)).normalized()])
            } else {
                let data: Vec<Complex> = (0..m.cols())
                    .map(|c| m.col(c).iter().fold(zinit, |a, &z| fz(a, z)))
                    .collect();
                let n = data.len();
                Ok(vec![
                    Value::Complex(Matrix::from_vec(1, n, data)).normalized()
                ])
            }
        }
        other => {
            let m = other.to_real_matrix()?;
            if m.is_vector() || m.is_empty() {
                let acc = m.iter().fold(init, |a, &v| f(a, v));
                Ok(vec![Value::scalar(acc)])
            } else {
                let data: Vec<f64> = (0..m.cols())
                    .map(|c| m.col(c).iter().fold(init, |a, &v| f(a, v)))
                    .collect();
                let n = data.len();
                Ok(vec![Value::Real(Matrix::from_vec(1, n, data))])
            }
        }
    }
}

/// `max` / `min` with MATLAB's 1-argument (reduction) and 2-argument
/// (elementwise) forms.
fn extremum(args: &[Value], name: &str, is_max: bool) -> RuntimeResult<Vec<Value>> {
    let pick = move |a: f64, b: f64| {
        // NaN-ignoring, as in MATLAB.
        if a.is_nan() {
            b
        } else if b.is_nan() || (a > b) == is_max {
            a
        } else {
            b
        }
    };
    if args.len() >= 2 {
        return binary_real(args, name, pick);
    }
    let m = arg(args, 0, name)?.to_real_matrix()?;
    if m.is_empty() {
        return Ok(vec![Value::empty()]);
    }
    if m.is_vector() {
        let acc = m.iter().copied().reduce(pick).expect("nonempty");
        Ok(vec![Value::scalar(acc)])
    } else {
        let data: Vec<f64> = (0..m.cols())
            .map(|c| m.col(c).iter().copied().reduce(pick).expect("nonempty"))
            .collect();
        let n = data.len();
        Ok(vec![Value::Real(Matrix::from_vec(1, n, data))])
    }
}

/// Minimal `fprintf` formatting: `%d` `%i` `%f` `%g` `%e` `%s` plus `\n`,
/// `\t` and `%%`.
fn format_printf(fmt: &str, args: &[Value]) -> RuntimeResult<String> {
    let mut out = String::new();
    let mut chars = fmt.chars().peekable();
    let mut next_arg = 0usize;
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            },
            '%' => {
                // Skip width/precision flags.
                let mut spec = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' || d == '-' || d == '+' {
                        spec.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match chars.next() {
                    Some('%') => out.push('%'),
                    Some(conv @ ('d' | 'i' | 'f' | 'g' | 'e' | 's')) => {
                        let v = args.get(next_arg).ok_or_else(|| RuntimeError::BadArity {
                            name: "fprintf".to_owned(),
                            detail: "not enough arguments for format".to_owned(),
                        })?;
                        next_arg += 1;
                        match conv {
                            'd' | 'i' => out.push_str(&format!("{}", v.to_scalar()? as i64)),
                            'f' => {
                                let prec = spec
                                    .split('.')
                                    .nth(1)
                                    .and_then(|p| p.parse::<usize>().ok())
                                    .unwrap_or(6);
                                out.push_str(&format!("{:.*}", prec, v.to_scalar()?));
                            }
                            'g' => out.push_str(&format!("{}", v.to_scalar()?)),
                            'e' => out.push_str(&format!("{:e}", v.to_scalar()?)),
                            's' => out.push_str(&format!("{v}")),
                            _ => unreachable!(),
                        }
                    }
                    Some(other) => {
                        out.push('%');
                        out.push(other);
                    }
                    None => out.push('%'),
                }
            }
            other => out.push(other),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(b: Builtin, args: &[Value]) -> Value {
        let mut ctx = CallCtx::new();
        b.call(&mut ctx, args, 1).unwrap().remove(0)
    }

    #[test]
    fn lookup_round_trips() {
        for &b in Builtin::all() {
            assert_eq!(Builtin::lookup(b.name()), Some(b));
        }
        assert_eq!(Builtin::lookup("no_such_fn"), None);
    }

    #[test]
    fn creation() {
        assert_eq!(call(Builtin::Zeros, &[Value::scalar(2.0)]).dims(), (2, 2));
        assert_eq!(
            call(Builtin::Ones, &[Value::scalar(1.0), Value::scalar(3.0)]),
            Value::Real(Matrix::from_rows(vec![vec![1.0, 1.0, 1.0]]))
        );
        let eye = call(Builtin::Eye, &[Value::scalar(2.0)]);
        assert_eq!(
            eye,
            Value::Real(Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]))
        );
    }

    #[test]
    fn rand_is_deterministic_per_context() {
        let mut c1 = CallCtx::new();
        let mut c2 = CallCtx::new();
        let a = Builtin::Rand.call(&mut c1, &[], 1).unwrap();
        let b = Builtin::Rand.call(&mut c2, &[], 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn size_and_friends() {
        let m = Value::Real(Matrix::zeros(2, 3));
        assert_eq!(
            call(Builtin::Size, std::slice::from_ref(&m)),
            Value::Real(Matrix::from_rows(vec![vec![2.0, 3.0]]))
        );
        assert_eq!(
            call(Builtin::Size, &[m.clone(), Value::scalar(2.0)]),
            Value::scalar(3.0)
        );
        let mut ctx = CallCtx::new();
        let two = Builtin::Size
            .call(&mut ctx, std::slice::from_ref(&m), 2)
            .unwrap();
        assert_eq!(two, vec![Value::scalar(2.0), Value::scalar(3.0)]);
        assert_eq!(
            call(Builtin::Length, std::slice::from_ref(&m)),
            Value::scalar(3.0)
        );
        assert_eq!(call(Builtin::Numel, &[m]), Value::scalar(6.0));
        assert_eq!(
            call(Builtin::IsEmpty, &[Value::empty()]),
            Value::bool_scalar(true)
        );
    }

    #[test]
    fn sqrt_promotes_negative_input() {
        assert_eq!(
            call(Builtin::Sqrt, &[Value::scalar(4.0)]),
            Value::scalar(2.0)
        );
        let z = call(Builtin::Sqrt, &[Value::scalar(-4.0)]);
        assert_eq!(z, Value::complex_scalar(Complex::new(0.0, 2.0)));
    }

    #[test]
    fn mod_and_rem_signs() {
        assert_eq!(
            call(Builtin::Mod, &[Value::scalar(-1.0), Value::scalar(3.0)]),
            Value::scalar(2.0)
        );
        assert_eq!(
            call(Builtin::Rem, &[Value::scalar(-1.0), Value::scalar(3.0)]),
            Value::scalar(-1.0)
        );
    }

    #[test]
    fn complex_prod_applies_the_reduction_closure() {
        // Regression: the complex arm of `reduce` hardcoded `acc + z`,
        // so prod of a complex vector returned 1 + Σz instead of Πz.
        let z = Value::Complex(Matrix::from_rows(vec![vec![
            Complex::new(1.0, 2.0),
            Complex::new(0.0, 3.0),
        ]]));
        // (1 + 2i)·3i = -6 + 3i
        assert_eq!(
            call(Builtin::Prod, std::slice::from_ref(&z)),
            Value::complex_scalar(Complex::new(-6.0, 3.0))
        );
        // And sum keeps its meaning through the shared helper.
        assert_eq!(
            call(Builtin::Sum, &[z]),
            Value::complex_scalar(Complex::new(1.0, 5.0))
        );
    }

    #[test]
    fn complex_matrix_reductions_are_columnwise() {
        let m = Value::Complex(Matrix::from_rows(vec![
            vec![Complex::new(1.0, 1.0), Complex::new(0.0, 3.0)],
            vec![Complex::new(2.0, 0.0), Complex::new(1.0, -1.0)],
        ]));
        // prod: [(1+i)·2, 3i·(1-i)] = [2+2i, 3+3i]
        assert_eq!(
            call(Builtin::Prod, std::slice::from_ref(&m)),
            Value::Complex(Matrix::from_rows(vec![vec![
                Complex::new(2.0, 2.0),
                Complex::new(3.0, 3.0),
            ]]))
        );
        // sum: [3+i, 1+2i]
        assert_eq!(
            call(Builtin::Sum, &[m]),
            Value::Complex(Matrix::from_rows(vec![vec![
                Complex::new(3.0, 1.0),
                Complex::new(1.0, 2.0),
            ]]))
        );
    }

    #[test]
    fn complex_empty_reductions_match_real_identities() {
        // sum([]) = 0 and prod([]) = 1 whatever the element kind; the
        // all-real results demote to real scalars on normalization.
        let e = Value::Complex(Matrix::zeros(0, 0));
        assert_eq!(
            call(Builtin::Sum, std::slice::from_ref(&e)),
            Value::scalar(0.0)
        );
        assert_eq!(call(Builtin::Prod, &[e]), Value::scalar(1.0));
    }

    #[test]
    fn reductions_on_all_nan_vectors() {
        let nan = f64::NAN;
        let v = Value::Real(Matrix::from_rows(vec![vec![nan, nan, nan]]));
        for b in [Builtin::Max, Builtin::Min, Builtin::Sum, Builtin::Prod] {
            let r = call(b, std::slice::from_ref(&v));
            assert_eq!(r.dims(), (1, 1), "{}", b.name());
            assert!(r.to_scalar().unwrap().is_nan(), "{}", b.name());
        }
    }

    #[test]
    fn reductions_on_empty_matrices() {
        let e = Value::empty();
        // max/min of an empty are empty; sum/prod yield their identity.
        assert_eq!(call(Builtin::Max, std::slice::from_ref(&e)), Value::empty());
        assert_eq!(call(Builtin::Min, std::slice::from_ref(&e)), Value::empty());
        assert_eq!(
            call(Builtin::Sum, std::slice::from_ref(&e)),
            Value::scalar(0.0)
        );
        assert_eq!(call(Builtin::Prod, &[e]), Value::scalar(1.0));
    }

    #[test]
    fn reductions_on_single_column_matrices() {
        // An n×1 matrix is a vector: the whole-vector path applies and
        // the result is a scalar, not a 1×1-per-column row.
        let v = Value::Real(Matrix::from_rows(vec![vec![4.0], vec![1.0], vec![9.0]]));
        assert_eq!(
            call(Builtin::Max, std::slice::from_ref(&v)),
            Value::scalar(9.0)
        );
        assert_eq!(
            call(Builtin::Min, std::slice::from_ref(&v)),
            Value::scalar(1.0)
        );
        assert_eq!(
            call(Builtin::Sum, std::slice::from_ref(&v)),
            Value::scalar(14.0)
        );
        assert_eq!(call(Builtin::Prod, &[v]), Value::scalar(36.0));
    }

    #[test]
    fn extremum_columnwise_handles_nan_columns() {
        // Column-wise max/min must ignore NaNs inside mixed columns and
        // yield NaN only for all-NaN columns.
        let nan = f64::NAN;
        let m = Value::Real(Matrix::from_rows(vec![
            vec![1.0, nan, nan],
            vec![2.0, nan, 5.0],
        ]));
        let check = |b: Builtin, mixed: f64| {
            let r = match call(b, std::slice::from_ref(&m)) {
                Value::Real(r) => r,
                other => panic!("expected real row, got {other:?}"),
            };
            assert_eq!((r.rows(), r.cols()), (1, 3), "{}", b.name());
            assert_eq!(r.get(0, 0), mixed, "{}", b.name());
            assert!(r.get(0, 1).is_nan(), "{}: all-NaN column", b.name());
            assert_eq!(r.get(0, 2), 5.0, "{}: NaN ignored", b.name());
        };
        check(Builtin::Max, 2.0);
        check(Builtin::Min, 1.0);
    }

    #[test]
    fn reductions() {
        let v = Value::Real(Matrix::from_rows(vec![vec![1.0, 2.0, 3.0]]));
        assert_eq!(
            call(Builtin::Sum, std::slice::from_ref(&v)),
            Value::scalar(6.0)
        );
        assert_eq!(
            call(Builtin::Prod, std::slice::from_ref(&v)),
            Value::scalar(6.0)
        );
        assert_eq!(
            call(Builtin::Max, std::slice::from_ref(&v)),
            Value::scalar(3.0)
        );
        assert_eq!(call(Builtin::Min, &[v]), Value::scalar(1.0));
        // Matrices reduce column-wise.
        let m = Value::Real(Matrix::from_rows(vec![vec![1.0, 5.0], vec![3.0, 2.0]]));
        assert_eq!(
            call(Builtin::Sum, std::slice::from_ref(&m)),
            Value::Real(Matrix::from_rows(vec![vec![4.0, 7.0]]))
        );
        assert_eq!(
            call(Builtin::Max, &[m]),
            Value::Real(Matrix::from_rows(vec![vec![3.0, 5.0]]))
        );
    }

    #[test]
    fn two_arg_extremum_is_elementwise() {
        let a = Value::Real(Matrix::from_rows(vec![vec![1.0, 9.0]]));
        assert_eq!(
            call(Builtin::Max, &[a, Value::scalar(5.0)]),
            Value::Real(Matrix::from_rows(vec![vec![5.0, 9.0]]))
        );
    }

    #[test]
    fn complex_parts() {
        let z = Value::complex_scalar(Complex::new(3.0, 4.0));
        assert_eq!(
            call(Builtin::Real, std::slice::from_ref(&z)),
            Value::scalar(3.0)
        );
        assert_eq!(
            call(Builtin::Imag, std::slice::from_ref(&z)),
            Value::scalar(4.0)
        );
        assert_eq!(call(Builtin::Abs, &[z]), Value::scalar(5.0));
    }

    #[test]
    fn constants() {
        assert_eq!(call(Builtin::Pi, &[]), Value::scalar(std::f64::consts::PI));
        assert_eq!(
            call(Builtin::ImagUnitI, &[]),
            Value::complex_scalar(Complex::I)
        );
        assert!(Builtin::Pi.is_constant());
        assert!(!Builtin::Zeros.is_constant());
    }

    #[test]
    fn norm_of_vector() {
        let v = Value::Real(Matrix::from_rows(vec![vec![3.0], vec![4.0]]));
        assert_eq!(call(Builtin::Norm, &[v]), Value::scalar(5.0));
    }

    #[test]
    fn eig_of_symmetric() {
        let m = Value::Real(Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]));
        let e = call(Builtin::Eig, &[m]);
        let e = e.to_real_matrix().unwrap();
        let mut vals = e.to_contiguous();
        vals.sort_by(f64::total_cmp);
        assert!((vals[0] - 1.0).abs() < 1e-8);
        assert!((vals[1] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn disp_and_fprintf_capture_output() {
        let mut ctx = CallCtx::new();
        Builtin::Disp
            .call(&mut ctx, &[Value::Str("hello".into())], 0)
            .unwrap();
        Builtin::Fprintf
            .call(
                &mut ctx,
                &[
                    Value::Str("x = %d, y = %.2f\\n".into()),
                    Value::scalar(3.0),
                    Value::scalar(1.5),
                ],
                0,
            )
            .unwrap();
        assert_eq!(ctx.printed, "hello\nx = 3, y = 1.50\n");
    }

    #[test]
    fn error_raises() {
        let mut ctx = CallCtx::new();
        let err = Builtin::Error
            .call(&mut ctx, &[Value::Str("boom".into())], 0)
            .unwrap_err();
        assert_eq!(err, RuntimeError::Raised("boom".to_owned()));
    }
}
