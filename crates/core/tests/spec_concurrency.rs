//! Engine-level concurrency tests for background speculation: the
//! session must produce identical results with 0, 1, and 4 spec
//! workers, pick up published versions transparently, and shut the pool
//! down cleanly (join-on-drop, no leaked work).

use majic::{ExecMode, Majic, SpecConfig, Value};
use majic_repo::CodeQuality;
use majic_types::Signature;

const PROGRAMS: &[(&str, &str, &[f64])] = &[
    (
        "function s = sumsq(n)\ns = 0;\nfor k = 1:n\n s = s + k * k;\nend\n",
        "sumsq",
        &[200.0],
    ),
    (
        "function f = fib(n)\nif n < 2\n f = n;\nelse\n f = fib(n-1) + fib(n-2);\nend\n",
        "fib",
        &[15.0],
    ),
    (
        "function s = ap(n)\nv = zeros(1, n);\nfor k = 1:n\n v(k) = k * 3;\nend\ns = sum(v) + v(1) + v(n);\n",
        "ap",
        &[40.0],
    ),
    (
        "function r = smallvec(n)\nr0 = [1 0];\nv = [0 6.28];\nfor k = 1:n\n v = v + 0.001 * r0;\n r0 = r0 + 0.001 * v;\nend\nr = r0(1) + v(2);\n",
        "smallvec",
        &[500.0],
    ),
];

fn run_with_workers(workers: usize) -> Vec<u64> {
    let mut results = Vec::new();
    for &(src, entry, args) in PROGRAMS {
        let mut m = Majic::with_mode(ExecMode::Spec);
        m.load_source(src).unwrap();
        if workers > 0 {
            m.speculate_background(workers);
            // Drain so every arm actually runs whatever the workers
            // published (the race itself is exercised elsewhere).
            m.background().wait();
        }
        let argv: Vec<Value> = args.iter().map(|&a| Value::scalar(a)).collect();
        let out = m.call(entry, &argv, 1).unwrap();
        results.push(out[0].to_scalar().unwrap().to_bits());
    }
    results
}

/// Identical final results with 0, 1, and 4 workers — bit for bit.
#[test]
fn results_identical_across_worker_counts() {
    let baseline = run_with_workers(0);
    for workers in [1, 4] {
        assert_eq!(
            run_with_workers(workers),
            baseline,
            "{workers} spec workers changed results"
        );
    }
}

/// Background workers publish optimized versions that later foreground
/// calls transparently pick up.
#[test]
fn published_versions_are_picked_up() {
    let (src, entry, args) = PROGRAMS[0];
    let mut m = Majic::with_mode(ExecMode::Spec);
    m.load_source(src).unwrap();
    m.speculate_background(2);
    m.background().wait();

    let stats = m.background().stats().spec.expect("pool running");
    assert_eq!(stats.enqueued, 1);
    assert_eq!(stats.published, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(m.repository().version_count(entry), 1);

    let argv: Vec<Value> = args.iter().map(|&a| Value::scalar(a)).collect();
    let before = m.repository().stats();
    m.call(entry, &argv, 1).unwrap();
    let after = m.repository().stats();
    // The call hit the speculative version: one more hit, no new miss.
    assert_eq!(after.hits, before.hits + 1);
    assert_eq!(after.misses, before.misses);

    // And the hit really is the optimized background version.
    let sig: Signature = argv.iter().map(Value::type_of).collect();
    let hit = m.repository().lookup(entry, &sig).unwrap();
    assert_eq!(hit.quality, CodeQuality::Optimized);
}

/// Functions loaded *after* the pool starts are speculated too (the
/// paper's "source directory snoop").
#[test]
fn late_loaded_functions_are_speculated() {
    let mut m = Majic::with_mode(ExecMode::Spec);
    m.speculate_background(2);
    m.load_source("function y = late(x)\ny = x * 2 + 1;\n")
        .unwrap();
    m.background().wait();
    let stats = m.background().stats().spec.expect("pool running");
    assert_eq!(stats.published, 1);
    assert_eq!(m.repository().version_count("late"), 1);
}

/// Shutdown drains pending jobs, returns final statistics, and joins
/// every worker; dropping the session joins too (nothing to observe
/// there beyond "does not hang", which this test also covers).
#[test]
fn shutdown_drains_and_reports() {
    let mut m = Majic::with_mode(ExecMode::Spec);
    for i in 0..12 {
        m.load_source(&format!("function y = f{i}(x)\ny = x + {i};\n"))
            .unwrap();
    }
    m.speculate_background(4);
    let stats = m.background().finish().spec.expect("pool was running");
    assert_eq!(stats.enqueued, 12);
    assert_eq!(stats.published + stats.failed, 12);
    assert_eq!(stats.records.len(), 12);
    assert!(
        m.background().stats().spec.is_none(),
        "pool gone after finish"
    );
    // Every published record carries observability timestamps.
    for r in &stats.records {
        assert!(r.published_at.is_some(), "{} failed to publish", r.name);
    }
}

/// A zero-worker pool accepts nothing and the session still works —
/// every enqueue is rejected, every call JITs.
#[test]
fn zero_worker_pool_rejects_and_session_survives() {
    let mut m = Majic::with_mode(ExecMode::Spec);
    m.load_source("function y = g(x)\ny = x - 1;\n").unwrap();
    m.speculate_background_with(SpecConfig {
        workers: 0,
        queue_capacity: 8,
        ..SpecConfig::default()
    });
    m.background().wait(); // must not hang
    let stats = m.background().stats().spec.unwrap();
    assert_eq!(stats.enqueued, 0);
    assert_eq!(stats.rejected, 1);
    let out = m.call("g", &[Value::scalar(5.0)], 1).unwrap();
    assert_eq!(out[0].to_scalar().unwrap(), 4.0);
}

/// Hammer the engine while workers publish: interleave foreground calls
/// with background publication instead of draining first. Results must
/// match the interpreter regardless of who wins each race.
#[test]
fn racing_foreground_calls_agree_with_interpreter() {
    let (src, entry, args) = PROGRAMS[1]; // fib: many recursive signatures
    let mut reference = Majic::with_mode(ExecMode::Interpret);
    reference.load_source(src).unwrap();
    let argv: Vec<Value> = args.iter().map(|&a| Value::scalar(a)).collect();
    let expect = reference.call(entry, &argv, 1).unwrap()[0]
        .to_scalar()
        .unwrap();

    for trial in 0..8 {
        let mut m = Majic::with_mode(ExecMode::Spec);
        m.load_source(src).unwrap();
        m.speculate_background(1 + trial % 4);
        // No spec_wait: the call races the background publish.
        let out = m.call(entry, &argv, 1).unwrap();
        assert_eq!(out[0].to_scalar().unwrap(), expect, "trial {trial}");
    }
}
