//! Observability acceptance at the engine level: dispatch counters,
//! background-worker span attribution, and the bounded SpecStats ring.

use majic::{ExecMode, Majic, SpecConfig, Value};
use std::sync::Mutex;

/// The trace collector is process-global; serialize tests here.
static LOCK: Mutex<()> = Mutex::new(());

const FIB: &str = "function y = fib(n)\n\
                   if n <= 1\n\
                   y = 1;\n\
                   else\n\
                   y = fib(n - 1) + fib(n - 2);\n\
                   end\n";

/// fib(5) with inlining off dispatches exactly 14 inner user calls
/// (the 15-node call tree minus the root, which enters through
/// `Majic::call`, not the dispatcher).
#[test]
fn call_user_counter_matches_hand_count() {
    let _g = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    majic_trace::reset();
    majic_trace::set_enabled(true);

    let mut m = Majic::with_mode(ExecMode::Jit);
    m.options.inline = false;
    m.load_source(FIB).unwrap();
    let out = m.call("fib", &[Value::scalar(5.0)], 1).unwrap();
    assert_eq!(out[0].to_scalar().unwrap(), 8.0);

    majic_trace::set_enabled(false);
    let snap = majic_trace::snapshot();
    let count = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(count("engine.call"), 1);
    assert_eq!(count("engine.call_user"), 14);
    majic_trace::reset();
}

/// Background workers record their compile spans on their own named
/// threads, nested as spec.compile → compile → phases.
#[test]
fn spec_workers_trace_on_their_own_threads() {
    let _g = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    majic_trace::reset();
    majic_trace::set_enabled(true);

    let mut m = Majic::with_mode(ExecMode::Spec);
    let src: String = (0..8)
        .map(|i| format!("function y = s{i}(x)\ny = x + {i};\n"))
        .collect();
    m.load_source(&src).unwrap();
    m.speculate_background_with(SpecConfig {
        workers: 4,
        ..SpecConfig::default()
    });
    m.background().wait();
    m.background().finish();

    majic_trace::set_enabled(false);
    let snap = majic_trace::snapshot();
    let worker_events: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.thread_name.starts_with("majic-spec-"))
        .collect();
    assert!(
        worker_events
            .iter()
            .filter(|e| e.name == "spec.compile")
            .count()
            >= 8,
        "each job compiles on a worker thread"
    );
    assert!(worker_events
        .iter()
        .any(|e| e.path == "spec.compile;compile;inference"));
    assert!(worker_events.iter().any(|e| e.name == "spec.queue_wait"));
    // Worker spans never inherit the main thread's stack.
    assert!(worker_events.iter().all(|e| !e.path.starts_with("call;")));
    majic_trace::reset();
}

/// The per-job record ring is bounded while aggregates stay exact.
#[test]
fn spec_records_are_ring_bounded() {
    let _g = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut m = Majic::with_mode(ExecMode::Spec);
    let src: String = (0..10)
        .map(|i| format!("function y = r{i}(x)\ny = x * {i};\n"))
        .collect();
    m.load_source(&src).unwrap();
    m.speculate_background_with(SpecConfig {
        workers: 2,
        record_capacity: 4,
        ..SpecConfig::default()
    });
    m.background().wait();
    let stats = m.background().finish().spec.unwrap();

    assert_eq!(stats.enqueued, 10);
    assert_eq!(stats.completed(), 10);
    assert_eq!(stats.records.len(), 4, "ring keeps only the newest 4");
    assert_eq!(stats.dropped_records(), 6);
    // Aggregates cover all ten jobs, not just the surviving records.
    let ring_compile: std::time::Duration = stats.records.iter().map(|r| r.compile).sum();
    assert!(stats.total_compile() >= ring_compile);
    assert!(stats.total_queue_wait() >= std::time::Duration::ZERO);
    let report = stats.render_report();
    assert!(
        report.contains("showing last 4 of 10"),
        "report notes the drop:\n{report}"
    );
}
