//! Cross-mode differential oracle.
//!
//! The paper's central safety claim is that every execution mode —
//! interpretation, `mcc`-style generic compilation, JIT compilation,
//! speculative ahead-of-time compilation, and warm starts from the
//! persistent cache — computes *the same program*: "wrong guesses are
//! never executed, merely wasted". This module turns that claim into a
//! checkable oracle. [`run_case`] executes one program through every
//! mode in a fresh session each and demands:
//!
//! * **bitwise-identical results** — every output value equal down to
//!   the `f64` bit pattern (so `NaN` payloads and signed zeros count),
//!   or
//! * **identical failure** — the same [`crate::RuntimeError`] variant from
//!   every mode, and
//! * **identical printed output** — `disp`/`fprintf` transcripts agree,
//!   and
//! * **type soundness** — every value actually produced by compiled
//!   code is admitted by the compiled version's inferred output type
//!   (`Q ⊑ T`, the repository's safety invariant applied to outputs).
//!
//! Any violation is reported as a [`Divergence`]; the differential
//! fuzzer (`crates/fuzz`) feeds thousands of generated programs through
//! this oracle and shrinks whatever fails.

use crate::engine::signature_of;
#[cfg(test)]
use crate::RuntimeError;
use crate::{ExecMode, Majic, RuntimeResult, Value};
use majic_runtime::{Complex, Matrix};
use majic_types::Type;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One program to run through every mode: MATLAB source defining the
/// functions, plus the entry invocation.
#[derive(Clone, Debug)]
pub struct DiffCase {
    /// MATLAB source text (function definitions).
    pub source: String,
    /// Function to invoke.
    pub entry: String,
    /// Actual arguments.
    pub args: Vec<Value>,
    /// Requested output count.
    pub nargout: usize,
}

/// The observable behaviour of one mode on one case.
#[derive(Clone, Debug)]
pub struct ModeOutcome {
    /// Mode label (`"interp"`, `"mcc"`, `"jit"`, `"spec"`, `"warm"`,
    /// `"falcon"`).
    pub label: &'static str,
    /// Output values, or the error.
    pub result: RuntimeResult<Vec<Value>>,
    /// Captured `disp`/`fprintf` transcript.
    pub printed: String,
}

/// What kind of disagreement was observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Both modes produced values, but they differ bitwise.
    Value,
    /// Both modes failed, but with different error classes.
    ErrorClass,
    /// One mode produced values where the other failed.
    ValueVsError,
    /// Printed transcripts differ.
    Printed,
    /// A compiled mode produced a value outside its inferred output
    /// type (type-soundness oracle).
    Soundness,
}

/// A single cross-mode disagreement (or soundness violation).
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Classification.
    pub kind: DivergenceKind,
    /// Reference mode (always the interpreter for cross-mode kinds;
    /// the offending mode for [`DivergenceKind::Soundness`]).
    pub left: &'static str,
    /// Disagreeing mode.
    pub right: &'static str,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:?}] {} vs {}: {}",
            self.kind, self.left, self.right, self.detail
        )
    }
}

/// Everything observed while running one case through the mode matrix.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Per-mode behaviour, interpreter first.
    pub outcomes: Vec<ModeOutcome>,
    /// All disagreements found (empty = the case passes).
    pub divergences: Vec<Divergence>,
}

impl DiffReport {
    /// No divergences and no soundness violations?
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Labels of the modes [`run_case`] exercises, in order. `"warm"` is
/// the persistent-cache round trip: a JIT session saves its repository
/// to disk and a second session reloads it and calls through the cached
/// code.
pub const DIFF_MODE_LABELS: [&str; 6] = ["interp", "mcc", "jit", "spec", "warm", "falcon"];

/// Run `case` through every execution mode and compare behaviours.
///
/// The interpreter is the reference semantics; each compiled mode is
/// compared against it. Every mode gets a fresh session (so `rand`
/// seeding and workspace state are identical), and compiled modes are
/// additionally checked against the type-soundness oracle.
pub fn run_case(case: &DiffCase) -> DiffReport {
    let mut outcomes = Vec::with_capacity(DIFF_MODE_LABELS.len());
    let mut divergences = Vec::new();

    let baseline = run_mode(case, ExecMode::Interpret, "interp");
    for (mode, label) in [
        (ExecMode::Mcc, "mcc"),
        (ExecMode::Jit, "jit"),
        (ExecMode::Spec, "spec"),
    ] {
        let run = run_mode(case, mode, label);
        compare(&baseline.0, &run.0, &mut divergences);
        check_soundness(case, &run, &mut divergences);
        outcomes.push(run.0);
    }
    {
        let run = run_warm(case);
        compare(&baseline.0, &run.0, &mut divergences);
        check_soundness(case, &run, &mut divergences);
        outcomes.push(run.0);
    }
    {
        let run = run_mode(case, ExecMode::Falcon, "falcon");
        compare(&baseline.0, &run.0, &mut divergences);
        check_soundness(case, &run, &mut divergences);
        outcomes.push(run.0);
    }
    outcomes.insert(0, baseline.0);
    DiffReport {
        outcomes,
        divergences,
    }
}

/// One mode's outcome plus (for compiled modes) the inferred output
/// types of the version the repository would dispatch to.
struct ModeRun(ModeOutcome, Option<Vec<Type>>);

fn run_mode(case: &DiffCase, mode: ExecMode, label: &'static str) -> ModeRun {
    let mut session = Majic::with_mode(mode);
    if let Err(e) = session.load_source(&case.source) {
        let printed = session.take_printed();
        return ModeRun(
            ModeOutcome {
                label,
                result: Err(e),
                printed,
            },
            None,
        );
    }
    if mode == ExecMode::Spec {
        session.speculate_all();
    }
    let result = session.call(&case.entry, &case.args, case.nargout);
    let printed = session.take_printed();
    let output_types = if mode == ExecMode::Interpret {
        None
    } else {
        session
            .repository()
            .lookup(&case.entry, &signature_of(&case.args))
            .map(|v| v.output_types.clone())
    };
    ModeRun(
        ModeOutcome {
            label,
            result,
            printed,
        },
        output_types,
    )
}

/// The warm-start round trip: session A JITs the entry and saves its
/// repository to a private cache file; session B attaches the cache,
/// reloads the source (installing the cached versions), and calls. The
/// compared behaviour is session B's — the one actually executing code
/// that crossed the serialization boundary.
fn run_warm(case: &DiffCase) -> ModeRun {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "majic-diff-{}-{}.cache",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));

    let outcome = (|| {
        let mut a = Majic::with_mode(ExecMode::Jit);
        a.attach_cache(&path);
        if let Err(e) = a.load_source(&case.source) {
            let printed = a.take_printed();
            return ModeRun(
                ModeOutcome {
                    label: "warm",
                    result: Err(e),
                    printed,
                },
                None,
            );
        }
        // Populate the repository (result intentionally discarded; the
        // warm session below is the measured one) and flush to disk.
        let _ = a.call(&case.entry, &case.args, case.nargout);
        let _ = a.take_printed();
        let _ = a.save_cache();
        drop(a);

        let mut b = Majic::with_mode(ExecMode::Jit);
        b.attach_cache(&path);
        if let Err(e) = b.load_source(&case.source) {
            let printed = b.take_printed();
            return ModeRun(
                ModeOutcome {
                    label: "warm",
                    result: Err(e),
                    printed,
                },
                None,
            );
        }
        let result = b.call(&case.entry, &case.args, case.nargout);
        let printed = b.take_printed();
        let output_types = b
            .repository()
            .lookup(&case.entry, &signature_of(&case.args))
            .map(|v| v.output_types.clone());
        ModeRun(
            ModeOutcome {
                label: "warm",
                result,
                printed,
            },
            output_types,
        )
    })();
    let _ = std::fs::remove_file(&path);
    outcome
}

/// Compare a compiled mode's behaviour against the interpreter's.
fn compare(base: &ModeOutcome, other: &ModeOutcome, out: &mut Vec<Divergence>) {
    match (&base.result, &other.result) {
        (Ok(a), Ok(b)) => {
            if a.len() != b.len() {
                out.push(Divergence {
                    kind: DivergenceKind::Value,
                    left: base.label,
                    right: other.label,
                    detail: format!("{} outputs vs {} outputs", a.len(), b.len()),
                });
            } else {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    if !value_bits_eq(x, y) {
                        out.push(Divergence {
                            kind: DivergenceKind::Value,
                            left: base.label,
                            right: other.label,
                            detail: format!("output {i}: {x:?} vs {y:?}"),
                        });
                    }
                }
            }
            if base.printed != other.printed {
                out.push(Divergence {
                    kind: DivergenceKind::Printed,
                    left: base.label,
                    right: other.label,
                    detail: format!("printed {:?} vs {:?}", base.printed, other.printed),
                });
            }
        }
        (Err(a), Err(b)) => {
            // Same error *class*: messages may legitimately differ
            // (e.g. the subscript that first overflowed inside a loop
            // unrolled differently), the variant may not.
            if std::mem::discriminant(a) != std::mem::discriminant(b) {
                out.push(Divergence {
                    kind: DivergenceKind::ErrorClass,
                    left: base.label,
                    right: other.label,
                    detail: format!("{a:?} vs {b:?}"),
                });
            }
        }
        (Ok(a), Err(e)) => out.push(Divergence {
            kind: DivergenceKind::ValueVsError,
            left: base.label,
            right: other.label,
            detail: format!("values {a:?} vs error {e:?}"),
        }),
        (Err(e), Ok(b)) => out.push(Divergence {
            kind: DivergenceKind::ValueVsError,
            left: base.label,
            right: other.label,
            detail: format!("error {e:?} vs values {b:?}"),
        }),
    }
}

/// The type-soundness oracle: every value a compiled version actually
/// produced must be admitted by that version's inferred output type.
/// This is the output-side image of the repository's `Q ⊑ T` argument
/// check — if it ever fails, inference produced an unsound annotation
/// and the optimizer may have specialized on a lie.
fn check_soundness(case: &DiffCase, run: &ModeRun, out: &mut Vec<Divergence>) {
    let (Ok(values), Some(output_types)) = (&run.0.result, &run.1) else {
        return;
    };
    for (i, v) in values.iter().enumerate() {
        let Some(expected) = output_types.get(i) else {
            continue;
        };
        let actual = v.type_of();
        if !actual.is_subtype_of(expected) {
            out.push(Divergence {
                kind: DivergenceKind::Soundness,
                left: run.0.label,
                right: run.0.label,
                detail: format!(
                    "{}: output {i} has runtime type {actual} not subsumed by inferred {expected}",
                    case.entry
                ),
            });
        }
    }
}

/// Bitwise value equality: shapes, kinds, and every element equal down
/// to the bit pattern (`NaN == NaN` here, `0.0 != -0.0`).
pub fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Real(x), Value::Real(y)) => mat_eq(x, y, |p, q| p.to_bits() == q.to_bits()),
        (Value::Complex(x), Value::Complex(y)) => mat_eq(x, y, |p: &Complex, q: &Complex| {
            p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits()
        }),
        (Value::Bool(x), Value::Bool(y)) => mat_eq(x, y, |p, q| p == q),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

fn mat_eq<T>(a: &Matrix<T>, b: &Matrix<T>, eq: impl Fn(&T, &T) -> bool) -> bool
where
    T: Clone + Default + PartialEq,
{
    a.rows() == b.rows() && a.cols() == b.cols() && a.iter().zip(b.iter()).all(|(x, y)| eq(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(source: &str, entry: &str, args: Vec<Value>) -> DiffCase {
        DiffCase {
            source: source.to_owned(),
            entry: entry.to_owned(),
            args,
            nargout: 1,
        }
    }

    #[test]
    fn simple_function_agrees_everywhere() {
        let c = case(
            "function y = f(x)\ny = x * 2 + 1;\n",
            "f",
            vec![Value::scalar(20.0)],
        );
        let r = run_case(&c);
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert_eq!(r.outcomes.len(), DIFF_MODE_LABELS.len());
        for o in &r.outcomes {
            assert_eq!(o.result.as_ref().unwrap()[0], Value::scalar(41.0));
        }
    }

    #[test]
    fn nan_colon_agrees_everywhere() {
        // The regression the fuzzer first flushed out: a NaN loop bound
        // ran once under interpretation ([NaN]) and zero times under
        // compilation (counted loop with a NaN trip count).
        let c = case(
            "function s = f(b)\ns = 0;\nfor k = 1:b\ns = s + k;\nend\n",
            "f",
            vec![Value::scalar(f64::NAN)],
        );
        let r = run_case(&c);
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert_eq!(
            r.outcomes[0].result.as_ref().unwrap()[0],
            Value::scalar(0.0)
        );
    }

    #[test]
    fn errors_agree_as_a_class() {
        // Out-of-range subscript fails identically in every mode.
        let c = case(
            "function y = f(x)\na = [1 2 3];\ny = a(x);\n",
            "f",
            vec![Value::scalar(9.0)],
        );
        let r = run_case(&c);
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert!(r.outcomes.iter().all(|o| o.result.is_err()));
    }

    #[test]
    fn alloc_limit_agrees_as_a_class() {
        let c = case(
            "function y = f(n)\ny = 0:1e-300:n;\n",
            "f",
            vec![Value::scalar(1.0)],
        );
        let r = run_case(&c);
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert!(matches!(
            r.outcomes[0].result,
            Err(RuntimeError::AllocLimit { .. })
        ));
    }

    #[test]
    fn logical_outputs_keep_their_class_across_modes() {
        // Scalar comparisons, element loads from a logical array and
        // stores of logical scalars all flow through F registers in
        // compiled code; the logical class must survive the round trip
        // or the output is a double where the interpreter says logical.
        let c = case(
            "function r = f(p)\nv = ([1.0 2.0 3.0] ~= p);\nv(2.0) = (p > 1.0);\nr = v(3.0);\n",
            "f",
            vec![Value::scalar(2.0)],
        );
        let r = run_case(&c);
        assert!(r.is_clean(), "{:?}", r.divergences);
        assert_eq!(
            r.outcomes[0].result.as_ref().unwrap()[0],
            Value::bool_scalar(true)
        );
    }

    #[test]
    fn real_power_in_complex_typed_code_is_bit_exact() {
        // Speculated ranges can't prove the base non-negative, so spec
        // mode types the power complex; the complex pow must still give
        // exactly what the interpreter's real dispatch computes.
        let c = case(
            "function r = f(p)\nr = (p .^ (2.0 ~= p));\n",
            "f",
            vec![Value::scalar(3.0)],
        );
        let r = run_case(&c);
        assert!(r.is_clean(), "{:?}", r.divergences);
    }

    #[test]
    fn bitwise_compare_distinguishes_signed_zero() {
        assert!(!value_bits_eq(&Value::scalar(0.0), &Value::scalar(-0.0)));
        assert!(value_bits_eq(
            &Value::scalar(f64::NAN),
            &Value::scalar(f64::NAN)
        ));
    }
}
