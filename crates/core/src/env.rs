//! One place for every `MAJIC_*` environment variable.
//!
//! The engine is configured by five process-level variables, each of
//! which used to be parsed by the subsystem that consumed it. This
//! module is the single catalogue: each variable has one parser with
//! one grammar (delegating to the owning crate where the grammar
//! already lives, so there is exactly one implementation), plus a
//! [`EnvSettings::from_process`] snapshot that reads them all at once.
//!
//! | Variable         | Meaning                                   | Parser                  |
//! |------------------|-------------------------------------------|-------------------------|
//! | `MAJIC_THREADS`  | data-parallel kernel threads              | [`parse_threads`]       |
//! | `MAJIC_MAX_NUMEL`| allocation guard (elements per matrix)    | [`parse_max_numel`]     |
//! | `MAJIC_TRACE`    | tracing mode (`report`/`chrome:…`/…)      | [`parse_trace`]         |
//! | `MAJIC_EXPLAIN`  | audit/explain mode (`report`/`json:…`)    | [`parse_explain`]       |
//! | `MAJIC_TIER`     | tier promotion (`off`/`on`/threshold)     | [`tier_options_from_env`] |
//!
//! Misconfiguration never breaks a session: every parser falls back to
//! its default on garbage, and each unrecognized value is warned about
//! at most once per process.

use crate::engine::TierOptions;
use majic_trace::{ExplainMode, TraceMode, TraceRequest};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Parse a `MAJIC_THREADS` value: a non-negative integer thread count
/// (clamped by the runtime to its pool maximum). `None` on garbage.
///
/// Delegates to [`majic_runtime::par::parse_threads`] — the exact
/// grammar the kernel pool itself applies lazily.
pub fn parse_threads(value: &str) -> Option<usize> {
    majic_runtime::par::parse_threads(value)
}

/// Parse a `MAJIC_MAX_NUMEL` value: a positive element-count limit for
/// any single matrix allocation. `None` on garbage.
///
/// Delegates to [`majic_runtime::parse_numel_limit`] — the exact
/// grammar the allocation guard itself applies lazily.
pub fn parse_max_numel(value: &str) -> Option<usize> {
    majic_runtime::parse_numel_limit(value)
}

/// Parse a `MAJIC_TRACE` value into a trace request (mode plus whether
/// per-instruction VM profiling was asked for via a `,vm` suffix).
/// Unknown values warn (inside the trace crate) and fall back to
/// [`TraceMode::Off`].
pub fn parse_trace(value: &str) -> TraceRequest {
    TraceMode::parse(value)
}

/// Parse a `MAJIC_EXPLAIN` value into an explain mode. Unknown values
/// warn (inside the trace crate) and fall back to [`ExplainMode::Off`].
pub fn parse_explain(value: &str) -> ExplainMode {
    ExplainMode::parse(value)
}

/// Apply a `MAJIC_TIER` environment value on top of `base`:
/// `off`/`0`/`false`/`no` disables promotion, `on`/`true`/`yes`
/// enables it, and a positive integer enables it with that hotness
/// threshold. Unparseable values warn once per process and leave
/// `base` unchanged (misconfiguration must never break a session).
pub fn tier_options_from_env(value: Option<&str>, base: TierOptions) -> TierOptions {
    let Some(v) = value else { return base };
    match v.trim().to_ascii_lowercase().as_str() {
        "" => base,
        "off" | "0" | "false" | "no" => TierOptions {
            enabled: false,
            ..base
        },
        "on" | "true" | "yes" => TierOptions {
            enabled: true,
            ..base
        },
        s => match s.parse::<u64>() {
            Ok(n) => TierOptions {
                enabled: true,
                threshold: n,
                ..base
            },
            Err(_) => {
                static WARNED: AtomicBool = AtomicBool::new(false);
                if !WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "majic: unrecognized MAJIC_TIER value {v:?} \
                         (want off/on or a threshold integer); ignoring"
                    );
                }
                base
            }
        },
    }
}

/// A snapshot of every `MAJIC_*` variable, parsed.
#[derive(Clone, Debug)]
pub struct EnvSettings {
    /// `MAJIC_THREADS`, when set and parseable.
    pub threads: Option<usize>,
    /// `MAJIC_MAX_NUMEL`, when set and parseable.
    pub max_numel: Option<usize>,
    /// `MAJIC_TRACE` (off when unset).
    pub trace: TraceRequest,
    /// `MAJIC_EXPLAIN` (off when unset).
    pub explain: ExplainMode,
    /// Session tier defaults after applying `MAJIC_TIER`.
    pub tier: TierOptions,
}

impl EnvSettings {
    /// Read and parse all five variables, once per process (the
    /// snapshot is cached; later environment mutations are not
    /// observed, matching the one-shot semantics of every consumer).
    pub fn from_process() -> &'static EnvSettings {
        static SETTINGS: OnceLock<EnvSettings> = OnceLock::new();
        SETTINGS.get_or_init(|| {
            let var = |k: &str| std::env::var(k).ok();
            EnvSettings {
                threads: var("MAJIC_THREADS").and_then(|v| parse_threads(&v)),
                max_numel: var("MAJIC_MAX_NUMEL").and_then(|v| parse_max_numel(&v)),
                trace: var("MAJIC_TRACE")
                    .map(|v| parse_trace(&v))
                    .unwrap_or_default(),
                explain: var("MAJIC_EXPLAIN")
                    .map(|v| parse_explain(&v))
                    .unwrap_or(ExplainMode::Off),
                tier: tier_options_from_env(var("MAJIC_TIER").as_deref(), TierOptions::default()),
            }
        })
    }

    /// Push the snapshot into the subsystems that act on it: the kernel
    /// thread pool, the allocation guard, and (via
    /// [`majic_trace::init_from_env`]) tracing and auditing. Each
    /// subsystem also self-initializes lazily from the environment, so
    /// calling this is optional — it exists for embedders that want the
    /// whole environment applied eagerly at startup (the REPL does).
    pub fn apply(&self) {
        if let Some(threads) = self.threads {
            majic_runtime::par::set_threads(threads);
        }
        if let Some(limit) = self.max_numel {
            majic_runtime::set_numel_limit(limit);
        }
        majic_trace::init_from_env();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full parse matrix for every `MAJIC_*` variable, in one
    /// place. Pure parser tests — no environment mutation, so they are
    /// safe under the parallel test runner.
    #[test]
    fn majic_env_parse_matrix() {
        // MAJIC_THREADS
        assert_eq!(parse_threads("0"), Some(0));
        assert_eq!(parse_threads("8"), Some(8));
        assert_eq!(parse_threads(" 4 "), Some(4));
        assert_eq!(parse_threads("999999"), None, "beyond the pool maximum");
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);

        // MAJIC_MAX_NUMEL
        assert_eq!(parse_max_numel("1024"), Some(1024));
        assert_eq!(parse_max_numel(" 65536 "), Some(65536));
        assert_eq!(
            parse_max_numel("0"),
            None,
            "a zero limit would reject everything"
        );
        assert_eq!(parse_max_numel("-1"), None);
        assert_eq!(parse_max_numel("big"), None);

        // MAJIC_TRACE
        assert!(matches!(parse_trace("report").mode, TraceMode::Report));
        assert!(
            matches!(parse_trace("REPORT").mode, TraceMode::Off),
            "trace modes are case-sensitive; unknown values warn and stay off"
        );
        assert!(!parse_trace("report").vm_profile);
        assert!(parse_trace("report,vm").vm_profile);
        assert!(matches!(parse_trace("off").mode, TraceMode::Off));
        let chrome = parse_trace("chrome:/tmp/t.json");
        assert!(matches!(chrome.mode, TraceMode::Chrome(ref p) if p.ends_with("t.json")));
        let folded = parse_trace("folded:/tmp/t.folded");
        assert!(matches!(folded.mode, TraceMode::Folded(ref p) if p.ends_with("t.folded")));

        // MAJIC_EXPLAIN
        assert!(matches!(parse_explain("report"), ExplainMode::Report));
        assert!(matches!(parse_explain("off"), ExplainMode::Off));
        assert!(
            matches!(parse_explain("json:/tmp/e.json"), ExplainMode::Json(ref p) if p.ends_with("e.json"))
        );

        // MAJIC_TIER
        let base = TierOptions::default();
        assert_eq!(tier_options_from_env(None, base), base);
        assert_eq!(tier_options_from_env(Some(""), base), base);
        assert_eq!(tier_options_from_env(Some("  "), base), base);
        assert!(!tier_options_from_env(Some("off"), base).enabled);
        assert!(!tier_options_from_env(Some("0"), base).enabled);
        assert!(!tier_options_from_env(Some("FALSE"), base).enabled);
        let off = TierOptions {
            enabled: false,
            ..base
        };
        assert!(tier_options_from_env(Some("on"), off).enabled);
        let tuned = tier_options_from_env(Some("500"), base);
        assert!(tuned.enabled);
        assert_eq!(tuned.threshold, 500);
        assert_eq!(tuned.workers, base.workers);
        // Misconfiguration must never break a session.
        assert_eq!(tier_options_from_env(Some("garbage"), base), base);
        assert_eq!(tier_options_from_env(Some("-3"), base), base);
    }
}
