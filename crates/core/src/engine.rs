//! The MaJIC engine: execution options, the shared compile pipeline,
//! the per-call dispatcher, and the single-session [`Majic`] facade.
//!
//! The process-wide machinery (repository, background pools, cache
//! lifecycle) lives in [`crate::service`]; this module owns everything
//! a compilation itself needs — [`EngineOptions`] and its builder, the
//! [`compile_function`] pipeline shared by the foreground dispatcher
//! and the background workers, and the [`EngineDispatcher`] compiled
//! code calls back into.

use crate::service::{CompilerService, Session};
use majic_analysis::{disambiguate, inline_function, DisambiguatedFunction, InlineOptions};
use majic_ast::{ExprKind, Function, LValue, Stmt, StmtKind};
use majic_codegen::{compile_executable, CodegenOptions};
use majic_infer::{infer_jit, infer_speculative, Annotations, CalleeOracle, InferOptions};
use majic_ir::passes::PassOptions;
use majic_repo::{CodeQuality, CompiledVersion, Repository, Tier};
use majic_runtime::builtins::CallCtx;
use majic_runtime::{RuntimeError, RuntimeResult, Value};
use majic_types::{Lattice, Range, Signature, Type};
use majic_vm::{execute, Dispatcher, RegAllocMode};
use std::collections::{HashMap, HashSet};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How function calls execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Pure interpretation (the measurement baseline).
    Interpret,
    /// Compile to generic library calls (`mcc` emulation).
    Mcc,
    /// Just-in-time compilation on repository miss.
    Jit,
    /// Speculative ahead-of-time compilation (run
    /// [`Session::speculate_all`] first); misses fall back to the JIT,
    /// exactly as in the paper.
    Spec,
    /// FALCON emulation: exact-signature inference plus the optimizing
    /// backend (batch compilation; callers exclude compile time).
    Falcon,
}

/// Simulated host platform. The paper's SPARC/MIPS difference is the
/// quality of the native backend ("On the SPARC platform the native
/// Fortran-90 compiler generates relatively poor code … on the MIPS
/// platform the native compiler is excellent"); we model it as the
/// optimizing pipeline's pass budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Platform {
    /// Weaker optimizing backend (no loop-invariant code motion).
    Sparc,
    /// Full optimizing backend.
    Mips,
}

/// Engine configuration, including every ablation switch used by the
/// evaluation harness.
///
/// Construct with [`EngineOptions::builder`] (or mutate the pub fields
/// directly on an existing value).
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Execution mode.
    pub mode: ExecMode,
    /// Type-inference switches (Figure 7: "no ranges", "no min. shapes").
    pub infer: InferOptions,
    /// Register allocation (Figure 7: "no regalloc").
    pub regalloc: RegAllocMode,
    /// Array oversizing on resizes (§2.6.1).
    pub oversize: bool,
    /// Function inlining (§2.6.1; recursion ≤ 3 levels).
    pub inline: bool,
    /// Simulated platform (Figures 4 vs 5).
    pub platform: Platform,
    /// Profile-guided tiered recompilation (hot tier-0 → tier-1).
    pub tier: TierOptions,
    /// Data-parallel kernel threads for the runtime's matrix kernels
    /// (`Some(n)` sets the process-global [`majic_runtime::par`] pool to
    /// `n` participating threads before each call; `None` leaves the
    /// `MAJIC_THREADS` environment setting in charge). `0` and `1` both
    /// mean sequential. Results are bitwise-identical either way — the
    /// kernels preserve the sequential expression and accumulation
    /// order per output element.
    pub threads: Option<usize>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            mode: ExecMode::Jit,
            infer: InferOptions::default(),
            regalloc: RegAllocMode::LinearScan,
            oversize: true,
            inline: true,
            platform: Platform::Sparc,
            tier: TierOptions::default(),
            threads: None,
        }
    }
}

impl EngineOptions {
    /// A fluent builder over the defaults, so callers name the switches
    /// they set instead of mutating pub fields positionally.
    ///
    /// ```
    /// use majic::{EngineOptions, ExecMode, Platform};
    ///
    /// let opts = EngineOptions::builder()
    ///     .mode(ExecMode::Falcon)
    ///     .platform(Platform::Mips)
    ///     .oversize(false)
    ///     .build();
    /// assert_eq!(opts.mode, ExecMode::Falcon);
    /// assert_eq!(opts.platform, Platform::Mips);
    /// assert!(!opts.oversize);
    /// assert!(opts.inline, "untouched switches keep their defaults");
    /// ```
    pub fn builder() -> EngineOptionsBuilder {
        EngineOptionsBuilder {
            opts: EngineOptions::default(),
        }
    }
}

/// Builder for [`EngineOptions`]; see [`EngineOptions::builder`].
#[derive(Clone, Copy, Debug)]
pub struct EngineOptionsBuilder {
    opts: EngineOptions,
}

impl EngineOptionsBuilder {
    /// Set the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.opts.mode = mode;
        self
    }

    /// Set the type-inference switches.
    pub fn infer(mut self, infer: InferOptions) -> Self {
        self.opts.infer = infer;
        self
    }

    /// Set the register-allocation mode.
    pub fn regalloc(mut self, regalloc: RegAllocMode) -> Self {
        self.opts.regalloc = regalloc;
        self
    }

    /// Enable or disable array oversizing on resizes.
    pub fn oversize(mut self, oversize: bool) -> Self {
        self.opts.oversize = oversize;
        self
    }

    /// Enable or disable function inlining.
    pub fn inline(mut self, inline: bool) -> Self {
        self.opts.inline = inline;
        self
    }

    /// Set the simulated platform.
    pub fn platform(mut self, platform: Platform) -> Self {
        self.opts.platform = platform;
        self
    }

    /// Set the tiered-recompilation knobs.
    pub fn tier(mut self, tier: TierOptions) -> Self {
        self.opts.tier = tier;
        self
    }

    /// Set the data-parallel kernel thread count (`None` leaves the
    /// `MAJIC_THREADS` environment setting in charge).
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Finish building.
    pub fn build(self) -> EngineOptions {
        self.opts
    }
}

/// Tiered-recompilation knobs.
///
/// Every JIT-compiled version starts at tier 0 and carries execution
/// counters (invocations, loop back-edges). When a version's hotness —
/// `calls × `[`majic_vm::CALL_HOTNESS_WEIGHT`]` + backedges` — crosses
/// [`threshold`](TierOptions::threshold), the engine enqueues a
/// background recompile that re-runs inference with the *observed*
/// signature through the full optimizing pipeline and publishes the
/// result as a tier-1 version. Dispatch prefers the highest valid tier
/// and falls back to tier 0 (or a fresh JIT compile) on a signature
/// mismatch, so promotion can only improve performance, never change
/// results.
///
/// Overridable per process through the `MAJIC_TIER` environment
/// variable, read by [`Majic::new`] and
/// [`crate::CompilerService::new`]: `off`/`0`/`false` disables
/// promotion, `on`/`true` restores the defaults, and a positive integer
/// sets the hotness threshold (see [`crate::env`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierOptions {
    /// Master switch for hot promotion.
    pub enabled: bool,
    /// Hotness score at which a tier-0 version is promoted.
    pub threshold: u64,
    /// Background recompile worker threads (clamped to ≥ 1 when a
    /// promotion actually starts the pool).
    pub workers: usize,
}

impl Default for TierOptions {
    fn default() -> Self {
        TierOptions {
            enabled: true,
            threshold: 10_000,
            workers: 1,
        }
    }
}

/// Cumulative per-phase timing, matching Figure 6's decomposition of JIT
/// runtime into disambiguation / type inference / code generation /
/// execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Parser + disambiguation + inlining time.
    pub disambiguation: Duration,
    /// Type-inference time.
    pub inference: Duration,
    /// Code selection + passes + register allocation time.
    pub codegen: Duration,
    /// Execution time of compiled code / interpreter.
    pub execution: Duration,
}

impl PhaseTimes {
    /// Total of all phases.
    pub fn total(&self) -> Duration {
        self.disambiguation + self.inference + self.codegen + self.execution
    }

    /// Compilation-only portion.
    pub fn compile(&self) -> Duration {
        self.disambiguation + self.inference + self.codegen
    }
}

/// Cumulative accounting of one service's persistent-cache activity.
///
/// Mirrored into the `repo.cache.*` trace counters; this struct is the
/// authoritative per-service record (trace counters are
/// process-global).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Entries that decoded and checksummed cleanly from disk.
    pub loaded: usize,
    /// Entries installed into the live repository after their function's
    /// source hash matched (`repo.cache.warm_hit`).
    pub installed: usize,
    /// Whole-file rejections: bad magic or container version
    /// (`repo.cache.reject.version`).
    pub rejected_version: usize,
    /// Whole-file rejections: compiler build fingerprint mismatch
    /// (`repo.cache.reject.fingerprint`).
    pub rejected_fingerprint: usize,
    /// Entries dropped for checksum/framing/decode damage
    /// (`repo.cache.reject.checksum`).
    pub rejected_checksum: usize,
    /// Entries whose function was reloaded with different source
    /// (`repo.cache.reject.source_hash`).
    pub rejected_source_hash: usize,
}

/// Everything the audit log knows about one function, as returned by
/// [`Session::explain`].
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The function asked about.
    pub function: String,
    /// Retained compilation records for the function, oldest first.
    pub records: Vec<majic_trace::audit::CompilationRecord>,
    /// Session events naming the function, plus session-wide events
    /// (e.g. whole-cache rejections) that have no single owner.
    pub events: Vec<majic_trace::audit::SessionEvent>,
    /// Human-readable rendering of the above.
    pub report: String,
}

/// A single-user MaJIC session: a [`CompilerService`] of one plus its
/// only [`Session`], kept as one value so the original embedding API
/// stays a single struct.
///
/// `Majic` dereferences to [`Session`], so every session method
/// (`load_source`, `call`, `eval`, `attach_cache`, …) and the pub
/// `options`/`times` fields are reachable directly. Multi-user
/// embedders hold a [`CompilerService`] and mint sessions themselves.
#[derive(Debug)]
pub struct Majic(Session);

impl Default for Majic {
    fn default() -> Self {
        Majic::new()
    }
}

impl Deref for Majic {
    type Target = Session;
    fn deref(&self) -> &Session {
        &self.0
    }
}

impl DerefMut for Majic {
    fn deref_mut(&mut self) -> &mut Session {
        &mut self.0
    }
}

impl Majic {
    /// A fresh session with default (JIT) options.
    ///
    /// Tiered recompilation starts enabled with the default threshold;
    /// the `MAJIC_TIER` environment variable (see [`TierOptions`]) is
    /// consulted here, so a process can disable or retune promotion
    /// without code changes.
    ///
    /// ```
    /// use majic::Majic;
    ///
    /// let mut session = Majic::new();
    /// session.load_source("function y = twice(x)\ny = 2 * x;\n").unwrap();
    /// let out = session.call("twice", &[21.0f64.into()], 1).unwrap();
    /// assert_eq!(out[0].to_scalar().unwrap(), 42.0);
    /// ```
    pub fn new() -> Majic {
        Majic(CompilerService::new().session())
    }

    /// A fresh session in the given mode.
    pub fn with_mode(mode: ExecMode) -> Majic {
        let mut m = Majic::new();
        m.options.mode = mode;
        m
    }

    /// A fresh session with fully specified options.
    pub fn with_options(options: EngineOptions) -> Majic {
        Majic(CompilerService::with_options(options).session())
    }

    /// A fluent builder: pick the switches by name, get a ready
    /// session.
    ///
    /// ```
    /// use majic::{ExecMode, Majic, Platform};
    ///
    /// let mut session = Majic::builder()
    ///     .mode(ExecMode::Jit)
    ///     .platform(Platform::Mips)
    ///     .threads(Some(1))
    ///     .build();
    /// session.load_source("function y = sq(x)\ny = x * x;\n").unwrap();
    /// assert_eq!(
    ///     session.call("sq", &[4.0f64.into()], 1).unwrap()[0]
    ///         .to_scalar()
    ///         .unwrap(),
    ///     16.0
    /// );
    /// ```
    pub fn builder() -> MajicBuilder {
        MajicBuilder {
            opts: EngineOptions::builder(),
        }
    }

    /// The service behind this facade (background handle, audit flag,
    /// cache lifecycle, more sessions).
    pub fn service(&self) -> &CompilerService {
        self.0.service()
    }

    /// Turn the *process-wide* compilation audit log on or off.
    #[deprecated(
        note = "audit enablement is per service now: use `CompilerService::set_audit` or \
                `Session::set_audit_enabled`"
    )]
    pub fn set_audit(on: bool) {
        majic_trace::audit::set_enabled(on);
    }
}

/// Builder returned by [`Majic::builder`]: the [`EngineOptionsBuilder`]
/// switches plus a [`MajicBuilder::build`] that starts the session.
#[derive(Clone, Copy, Debug)]
pub struct MajicBuilder {
    opts: EngineOptionsBuilder,
}

impl MajicBuilder {
    /// Set the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.opts = self.opts.mode(mode);
        self
    }

    /// Set the type-inference switches.
    pub fn infer(mut self, infer: InferOptions) -> Self {
        self.opts = self.opts.infer(infer);
        self
    }

    /// Set the register-allocation mode.
    pub fn regalloc(mut self, regalloc: RegAllocMode) -> Self {
        self.opts = self.opts.regalloc(regalloc);
        self
    }

    /// Enable or disable array oversizing on resizes.
    pub fn oversize(mut self, oversize: bool) -> Self {
        self.opts = self.opts.oversize(oversize);
        self
    }

    /// Enable or disable function inlining.
    pub fn inline(mut self, inline: bool) -> Self {
        self.opts = self.opts.inline(inline);
        self
    }

    /// Set the simulated platform.
    pub fn platform(mut self, platform: Platform) -> Self {
        self.opts = self.opts.platform(platform);
        self
    }

    /// Set the tiered-recompilation knobs.
    pub fn tier(mut self, tier: TierOptions) -> Self {
        self.opts = self.opts.tier(tier);
        self
    }

    /// Set the data-parallel kernel thread count.
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.opts = self.opts.threads(threads);
        self
    }

    /// Start the session. `MAJIC_TIER` is *not* consulted — the builder
    /// is the explicit-configuration path ([`Majic::new`] is the
    /// environment-sensitive one).
    pub fn build(self) -> Majic {
        Majic::with_options(self.opts.build())
    }
}

/// Stable lowercase name of a [`CodeQuality`] tier for audit outcomes.
pub(crate) fn quality_name(q: CodeQuality) -> &'static str {
    match q {
        CodeQuality::Generic => "generic",
        CodeQuality::Jit => "jit",
        CodeQuality::Optimized => "optimized",
    }
}

pub(crate) fn signature_of(args: &[Value]) -> Signature {
    args.iter().map(Value::type_of).collect()
}

pub(crate) fn has_global_or_clear(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Global(_) | StmtKind::Clear(_) => true,
        StmtKind::If {
            branches,
            else_body,
        } => {
            branches.iter().any(|(_, b)| has_global_or_clear(b))
                || else_body.as_ref().is_some_and(|b| has_global_or_clear(b))
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => has_global_or_clear(body),
        _ => false,
    })
}

pub(crate) fn collect_callees(stmts: &[Stmt], known: &HashSet<String>, out: &mut Vec<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Expr { expr, .. } => collect_expr(expr, known, out),
            StmtKind::Assign { rhs, lhs, .. } => {
                collect_expr(rhs, known, out);
                if let LValue::Index { args, .. } = lhs {
                    for a in args {
                        collect_expr(a, known, out);
                    }
                }
            }
            StmtKind::MultiAssign { callee, args, .. } => {
                if known.contains(callee) {
                    out.push(callee.clone());
                }
                for a in args {
                    collect_expr(a, known, out);
                }
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (c, b) in branches {
                    collect_expr(c, known, out);
                    collect_callees(b, known, out);
                }
                if let Some(b) = else_body {
                    collect_callees(b, known, out);
                }
            }
            StmtKind::While { cond, body } => {
                collect_expr(cond, known, out);
                collect_callees(body, known, out);
            }
            StmtKind::For { iter, body, .. } => {
                collect_expr(iter, known, out);
                collect_callees(body, known, out);
            }
            _ => {}
        }
    }
}

fn collect_expr(e: &majic_ast::Expr, known: &HashSet<String>, out: &mut Vec<String>) {
    e.walk(&mut |e| match &e.kind {
        ExprKind::Apply { callee, .. } | ExprKind::Ident(callee) if known.contains(callee) => {
            out.push(callee.clone());
        }
        _ => {}
    });
}

/// Which pipeline to run on a repository miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Pipeline {
    Mcc,
    Jit,
    Opt,
}

/// Split-borrow helper: the dispatcher compiled code calls back into.
/// One is built per top-level [`Session::call`] and carries the
/// session's identity (namespace hashes, session id, audit flag) so
/// every repository interaction stays inside the session's namespaces.
pub(crate) struct EngineDispatcher<'a> {
    pub(crate) registry: &'a HashMap<String, Function>,
    pub(crate) known: &'a HashSet<String>,
    pub(crate) repo: &'a Repository,
    /// The session's closure-hash table: `name → namespace key`.
    pub(crate) hashes: &'a HashMap<String, u64>,
    pub(crate) session: u64,
    /// Whether this session's service wants compilations audited.
    pub(crate) audit: bool,
    pub(crate) options: &'a EngineOptions,
    pub(crate) times: &'a mut PhaseTimes,
    pub(crate) next_node_id: &'a mut u32,
    pub(crate) depth: usize,
    /// Hotness noted during this dispatch (local dedup only — the
    /// service-wide dedup happens when the session drains `hot` after
    /// the top-level call, so no service lock is held while user code
    /// runs).
    pub(crate) noted: HashSet<(String, String)>,
    /// Versions that crossed the hotness threshold during this
    /// dispatch; the session drains them into the tier pool after the
    /// top-level call returns.
    pub(crate) hot: Vec<(String, Signature)>,
}

/// The inference oracle: callee output types come from the repository,
/// scoped to the *calling session's* namespace for every function the
/// session has loaded (a neighbor's redefinition must never leak into
/// this session's inference).
struct RepoOracle<'a> {
    repo: &'a Repository,
    hashes: &'a HashMap<String, u64>,
}

impl CalleeOracle for RepoOracle<'_> {
    fn call_types(&self, name: &str, args: &[Type], _nargout: usize) -> Option<Vec<Type>> {
        let sig = Signature::new(args.to_vec());
        match self.hashes.get(name) {
            Some(&ns) => self.repo.call_types_ns(name, ns, &sig),
            None => self.repo.call_types(name, &sig),
        }
    }
}

impl EngineDispatcher<'_> {
    fn ns(&self, name: &str) -> u64 {
        self.hashes
            .get(name)
            .copied()
            .unwrap_or(majic_repo::DEFAULT_NS)
    }

    /// Queue `name`'s version for tier-1 promotion if it is hot tier-0
    /// JIT code whose hotness crossed the threshold. Called right after
    /// an execution, when the counters are fresh. Dedup here is local
    /// to the dispatch (recursive calls would otherwise note the same
    /// version thousands of times); the session checks the service-wide
    /// promotion set when it drains `hot`.
    pub(crate) fn note_hot(&mut self, name: &str, v: &CompiledVersion) {
        let tier = &self.options.tier;
        if !tier.enabled
            || v.tier != Tier::T0
            || v.quality != CodeQuality::Jit
            || v.code.hotness() < tier.threshold
        {
            return;
        }
        let key = (name.to_owned(), v.signature.to_string());
        if self.noted.insert(key) {
            self.hot.push((name.to_owned(), v.signature.clone()));
        }
    }

    /// Find or build code for an invocation. Returns the repository's
    /// shared handle — a repository hit on the hot path clones one
    /// `Arc`, not the signature and output types.
    pub(crate) fn ensure_code(
        &mut self,
        name: &str,
        sig: &Signature,
    ) -> Result<Arc<CompiledVersion>, RuntimeError> {
        let ns = self.ns(name);
        if let Some(v) = self.repo.lookup_ns(name, ns, self.session, sig) {
            return Ok(v);
        }
        // Anti-explosion widening: recursive calls produce a fresh
        // constant signature per depth (fib(20), fib(19), …). After two
        // exact-signature versions exist, compile a range-widened version
        // that admits every future scalar invocation of the same shapes.
        let widened = self.repo.version_count_ns(name, ns) >= 2;
        let sig = if widened {
            Signature::new(
                sig.params()
                    .iter()
                    .map(|t| t.with_range(Range::top()))
                    .collect(),
            )
        } else {
            sig.clone()
        };
        let pipeline = match self.options.mode {
            ExecMode::Mcc => Pipeline::Mcc,
            ExecMode::Jit | ExecMode::Spec => Pipeline::Jit,
            ExecMode::Falcon => Pipeline::Opt,
            ExecMode::Interpret => Pipeline::Jit,
        };
        // `compile_function` already speaks `RuntimeError` (codegen
        // failures arrive as `Raised("cannot compile: …")`); wrapping
        // again would collapse e.g. `Undefined` into `Raised` and make
        // compiled modes disagree with the interpreter about the error
        // class of `r = v` with `v` never assigned.
        if self.audit {
            majic_trace::audit::begin(name);
            majic_trace::audit::session_id(self.session);
        }
        let t0 = Instant::now();
        let result = compile_function(
            self.registry,
            self.known,
            self.repo,
            self.hashes,
            self.options,
            name,
            Some(&sig),
            pipeline,
            self.next_node_id,
            self.times,
        );
        let trigger = if widened {
            // The widened version replaces per-signature compiles that
            // were threatening to explode — worth calling out.
            "recompile_widened"
        } else {
            "first_call"
        };
        majic_trace::audit::commit(
            || sig.to_string(),
            trigger,
            || match &result {
                Ok(v) => format!("published ({})", quality_name(v.quality)),
                Err(e) => format!("failed: {e}"),
            },
            None,
            t0.elapsed().as_nanos() as u64,
        );
        let version = result?;
        self.repo.insert_ns(name, ns, self.session, version);
        let v = self
            .repo
            .lookup_ns(name, ns, self.session, &sig)
            .expect("freshly inserted version admits its own signature");
        Ok(v)
    }
}

/// Run one compilation pipeline for `name`. `sig = None` selects
/// speculative inference (the signature is guessed). `hashes` is the
/// requesting session's closure-hash table (empty outside any session),
/// scoping the callee oracle to that session's namespaces.
///
/// This is the single compile path shared by the foreground dispatcher
/// (JIT-on-miss) and the background [`crate::SpecWorkerPool`] workers;
/// it only *reads* the registry and repository (the caller publishes
/// the returned version), which is what makes it safe to run
/// concurrently.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compile_function(
    registry: &HashMap<String, Function>,
    known: &HashSet<String>,
    repo: &Repository,
    hashes: &HashMap<String, u64>,
    options: &EngineOptions,
    name: &str,
    sig: Option<&Signature>,
    pipeline: Pipeline,
    next_node_id: &mut u32,
    times: &mut PhaseTimes,
) -> Result<CompiledVersion, RuntimeError> {
    let f = registry
        .get(name)
        .ok_or_else(|| RuntimeError::Undefined(name.to_owned()))?;
    // Every phase below is bracketed by a trace span whose `exit()`
    // duration feeds `PhaseTimes` — the Figure 6 decomposition and the
    // trace exporters therefore read the *same* measurement.
    let sp_compile = majic_trace::Span::enter_with("compile", || {
        vec![
            ("fn", name.to_owned()),
            ("pipeline", format!("{pipeline:?}").to_lowercase()),
            ("speculative", sig.is_none().to_string()),
        ]
    });

    // Phase 1: (inlining +) disambiguation.
    let sp = majic_trace::Span::enter("disambiguation");
    let inlined;
    let to_analyze = if options.inline && pipeline != Pipeline::Mcc {
        inlined = inline_function(f, registry, InlineOptions::default(), next_node_id);
        &inlined
    } else {
        f
    };
    let d: DisambiguatedFunction = disambiguate(to_analyze, known);
    times.disambiguation += sp.exit();

    // Phase 2: type inference.
    let sp = majic_trace::Span::enter("inference");
    let (signature, ann): (Signature, Annotations) = match (pipeline, sig) {
        (Pipeline::Mcc, s) => (s.cloned().unwrap_or_default(), Annotations::default()),
        (_, Some(s)) => {
            let oracle = RepoOracle { repo, hashes };
            let ann = infer_jit(&d, s, options.infer, &oracle);
            (s.clone(), ann)
        }
        (_, None) => {
            let oracle = RepoOracle { repo, hashes };
            infer_speculative(&d, options.infer, &oracle)
        }
    };
    times.inference += sp.exit();

    // Phase 3: code generation.
    let sp = majic_trace::Span::enter("codegen");
    let mut cg = match pipeline {
        Pipeline::Mcc => CodegenOptions::mcc(),
        Pipeline::Jit => CodegenOptions::jit(),
        Pipeline::Opt => CodegenOptions::optimizing(),
    };
    cg.regalloc = options.regalloc;
    if pipeline != Pipeline::Mcc {
        cg.oversize = options.oversize;
    }
    if pipeline == Pipeline::Opt && options.platform == Platform::Sparc {
        // The SPARC native compiler "generates relatively poor code".
        cg.passes = PassOptions {
            licm: false,
            ..PassOptions::all()
        };
    }
    let exe = compile_executable(&d, &ann, &cg).map_err(|e| RuntimeError::Raised(e.to_string()))?;
    times.codegen += sp.exit();

    let quality = match pipeline {
        Pipeline::Mcc => CodeQuality::Generic,
        Pipeline::Jit => CodeQuality::Jit,
        Pipeline::Opt => CodeQuality::Optimized,
    };
    // The optimizing backend is the tier-1 product; everything else
    // (generic and fast-JIT code) sits at tier 0 and is promotion bait.
    let tier = if pipeline == Pipeline::Opt {
        Tier::T1
    } else {
        Tier::T0
    };
    majic_trace::audit::tier(tier.level());
    let mut outputs = ann.outputs.clone();
    if outputs.is_empty() {
        outputs = vec![Type::top(); d.function.outputs.len()];
    }
    Ok(CompiledVersion {
        signature,
        code: Arc::new(exe),
        quality,
        tier,
        output_types: outputs,
        compile_time: sp_compile.exit(),
    })
}

impl Dispatcher for EngineDispatcher<'_> {
    fn call_user(
        &mut self,
        name: &str,
        args: &[Value],
        nargout: usize,
        ctx: &mut CallCtx,
    ) -> RuntimeResult<Vec<Value>> {
        if self.depth > 4000 {
            return Err(RuntimeError::Raised("recursion limit exceeded".to_owned()));
        }
        if majic_trace::enabled() {
            majic_trace::counter("engine.call_user").inc();
        }
        let sig = signature_of(args);
        let version = self.ensure_code(name, &sig)?;
        self.depth += 1;
        let r = execute(&version.code, args, nargout, self, ctx);
        self.depth -= 1;
        self.note_hot(name, &version);
        let mut outs = r?;
        outs.truncate(nargout.max(1));
        if outs.len() < nargout {
            return Err(RuntimeError::BadArity {
                name: name.to_owned(),
                detail: format!("{nargout} outputs requested"),
            });
        }
        Ok(outs)
    }
}
