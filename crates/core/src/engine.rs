//! The MaJIC engine: front end, repository driver, and pipelines.

use crate::spec::{SpecConfig, SpecStats, SpecWorkerPool};
use majic_analysis::{disambiguate, inline_function, DisambiguatedFunction, InlineOptions};
use majic_ast::{parse_source, parse_statements, ExprKind, Function, LValue, Stmt, StmtKind};
use majic_codegen::{compile_executable, CodegenOptions};
use majic_infer::{infer_jit, infer_speculative, Annotations, CalleeOracle, InferOptions};
use majic_interp::Interp;
use majic_ir::passes::PassOptions;
use majic_repo::cache::{CacheEntry, RepoCache};
use majic_repo::{CodeQuality, CompiledVersion, Repository, Tier};
use majic_runtime::builtins::CallCtx;
use majic_runtime::{RuntimeError, RuntimeResult, Value};
use majic_types::{Lattice, Range, Signature, Type};
use majic_vm::{execute, Dispatcher, RegAllocMode};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How function calls execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Pure interpretation (the measurement baseline).
    Interpret,
    /// Compile to generic library calls (`mcc` emulation).
    Mcc,
    /// Just-in-time compilation on repository miss.
    Jit,
    /// Speculative ahead-of-time compilation (run
    /// [`Majic::speculate_all`] first); misses fall back to the JIT,
    /// exactly as in the paper.
    Spec,
    /// FALCON emulation: exact-signature inference plus the optimizing
    /// backend (batch compilation; callers exclude compile time).
    Falcon,
}

/// Simulated host platform. The paper's SPARC/MIPS difference is the
/// quality of the native backend ("On the SPARC platform the native
/// Fortran-90 compiler generates relatively poor code … on the MIPS
/// platform the native compiler is excellent"); we model it as the
/// optimizing pipeline's pass budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Platform {
    /// Weaker optimizing backend (no loop-invariant code motion).
    Sparc,
    /// Full optimizing backend.
    Mips,
}

/// Engine configuration, including every ablation switch used by the
/// evaluation harness.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Execution mode.
    pub mode: ExecMode,
    /// Type-inference switches (Figure 7: "no ranges", "no min. shapes").
    pub infer: InferOptions,
    /// Register allocation (Figure 7: "no regalloc").
    pub regalloc: RegAllocMode,
    /// Array oversizing on resizes (§2.6.1).
    pub oversize: bool,
    /// Function inlining (§2.6.1; recursion ≤ 3 levels).
    pub inline: bool,
    /// Simulated platform (Figures 4 vs 5).
    pub platform: Platform,
    /// Profile-guided tiered recompilation (hot tier-0 → tier-1).
    pub tier: TierOptions,
    /// Data-parallel kernel threads for the runtime's matrix kernels
    /// (`Some(n)` sets the process-global [`majic_runtime::par`] pool to
    /// `n` participating threads before each call; `None` leaves the
    /// `MAJIC_THREADS` environment setting in charge). `0` and `1` both
    /// mean sequential. Results are bitwise-identical either way — the
    /// kernels preserve the sequential expression and accumulation
    /// order per output element.
    pub threads: Option<usize>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            mode: ExecMode::Jit,
            infer: InferOptions::default(),
            regalloc: RegAllocMode::LinearScan,
            oversize: true,
            inline: true,
            platform: Platform::Sparc,
            tier: TierOptions::default(),
            threads: None,
        }
    }
}

/// Tiered-recompilation knobs.
///
/// Every JIT-compiled version starts at tier 0 and carries execution
/// counters (invocations, loop back-edges). When a version's hotness —
/// `calls × `[`majic_vm::CALL_HOTNESS_WEIGHT`]` + backedges` — crosses
/// [`threshold`](TierOptions::threshold), the engine enqueues a
/// background recompile that re-runs inference with the *observed*
/// signature through the full optimizing pipeline and publishes the
/// result as a tier-1 version. Dispatch prefers the highest valid tier
/// and falls back to tier 0 (or a fresh JIT compile) on a signature
/// mismatch, so promotion can only improve performance, never change
/// results.
///
/// Overridable per process through the `MAJIC_TIER` environment
/// variable, read by [`Majic::new`]: `off`/`0`/`false` disables
/// promotion, `on`/`true` restores the defaults, and a positive integer
/// sets the hotness threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierOptions {
    /// Master switch for hot promotion.
    pub enabled: bool,
    /// Hotness score at which a tier-0 version is promoted.
    pub threshold: u64,
    /// Background recompile worker threads (clamped to ≥ 1 when a
    /// promotion actually starts the pool).
    pub workers: usize,
}

impl Default for TierOptions {
    fn default() -> Self {
        TierOptions {
            enabled: true,
            threshold: 10_000,
            workers: 1,
        }
    }
}

/// Apply a `MAJIC_TIER` environment value on top of `base`. Unparseable
/// values leave `base` unchanged (misconfiguration must never break a
/// session).
pub(crate) fn tier_options_from_env(value: Option<&str>, base: TierOptions) -> TierOptions {
    let Some(v) = value else { return base };
    match v.trim().to_ascii_lowercase().as_str() {
        "" => base,
        "off" | "0" | "false" | "no" => TierOptions {
            enabled: false,
            ..base
        },
        "on" | "true" | "yes" => TierOptions {
            enabled: true,
            ..base
        },
        s => match s.parse::<u64>() {
            Ok(n) => TierOptions {
                enabled: true,
                threshold: n,
                ..base
            },
            Err(_) => base,
        },
    }
}

/// Cumulative per-phase timing, matching Figure 6's decomposition of JIT
/// runtime into disambiguation / type inference / code generation /
/// execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Parser + disambiguation + inlining time.
    pub disambiguation: Duration,
    /// Type-inference time.
    pub inference: Duration,
    /// Code selection + passes + register allocation time.
    pub codegen: Duration,
    /// Execution time of compiled code / interpreter.
    pub execution: Duration,
}

impl PhaseTimes {
    /// Total of all phases.
    pub fn total(&self) -> Duration {
        self.disambiguation + self.inference + self.codegen + self.execution
    }

    /// Compilation-only portion.
    pub fn compile(&self) -> Duration {
        self.disambiguation + self.inference + self.codegen
    }
}

/// A MaJIC session.
#[derive(Debug)]
pub struct Majic {
    interp: Interp,
    /// Shared with background speculation workers.
    repo: Arc<Repository>,
    /// Copy-on-write: background jobs hold cheap snapshots.
    registry: Arc<HashMap<String, Function>>,
    known: Arc<HashSet<String>>,
    next_node_id: u32,
    /// Background speculative-compilation pool, when started.
    spec: Option<SpecWorkerPool>,
    /// Background tier-1 recompilation pool, started lazily at the
    /// first hot promotion.
    tier_pool: Option<SpecWorkerPool>,
    /// Hot promotions already enqueued this session, keyed by
    /// `(function, rendered signature)` — each tier-0 version is
    /// promoted at most once.
    promoted: HashSet<(String, String)>,
    /// Attached persistent cache, if any ([`Majic::attach_cache`]).
    cache: Option<RepoCache>,
    /// Cache entries loaded from disk but not yet tied to live source:
    /// they install into the repository only when `load_source`
    /// registers the matching function with a matching source hash.
    pending_cache: HashMap<String, Vec<CacheEntry>>,
    /// Running warm-start accounting ([`Majic::cache_report`]).
    cache_report: CacheReport,
    /// Engine configuration (mutable between calls).
    pub options: EngineOptions,
    /// Cumulative phase times since the last [`Majic::reset_times`].
    pub times: PhaseTimes,
}

/// Cumulative accounting of one session's persistent-cache activity.
///
/// Mirrored into the `repo.cache.*` trace counters; this struct is the
/// authoritative per-session record (trace counters are process-global).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Entries that decoded and checksummed cleanly from disk.
    pub loaded: usize,
    /// Entries installed into the live repository after their function's
    /// source hash matched (`repo.cache.warm_hit`).
    pub installed: usize,
    /// Whole-file rejections: bad magic or container version
    /// (`repo.cache.reject.version`).
    pub rejected_version: usize,
    /// Whole-file rejections: compiler build fingerprint mismatch
    /// (`repo.cache.reject.fingerprint`).
    pub rejected_fingerprint: usize,
    /// Entries dropped for checksum/framing/decode damage
    /// (`repo.cache.reject.checksum`).
    pub rejected_checksum: usize,
    /// Entries whose function was reloaded with different source
    /// (`repo.cache.reject.source_hash`).
    pub rejected_source_hash: usize,
}

impl Default for Majic {
    fn default() -> Self {
        Majic::new()
    }
}

impl Majic {
    /// A fresh session with default (JIT) options.
    ///
    /// Tiered recompilation starts enabled with the default threshold;
    /// the `MAJIC_TIER` environment variable (see [`TierOptions`]) is
    /// consulted here, so a process can disable or retune promotion
    /// without code changes.
    ///
    /// ```
    /// use majic::Majic;
    ///
    /// let mut session = Majic::new();
    /// session.load_source("function y = twice(x)\ny = 2 * x;\n").unwrap();
    /// let out = session.call("twice", &[21.0f64.into()], 1).unwrap();
    /// assert_eq!(out[0].to_scalar().unwrap(), 42.0);
    /// ```
    pub fn new() -> Majic {
        let mut options = EngineOptions::default();
        options.tier =
            tier_options_from_env(std::env::var("MAJIC_TIER").ok().as_deref(), options.tier);
        Majic {
            interp: Interp::new(),
            repo: Arc::new(Repository::new()),
            registry: Arc::new(HashMap::new()),
            known: Arc::new(HashSet::new()),
            next_node_id: 0,
            spec: None,
            tier_pool: None,
            promoted: HashSet::new(),
            cache: None,
            pending_cache: HashMap::new(),
            cache_report: CacheReport::default(),
            options,
            times: PhaseTimes::default(),
        }
    }

    /// A fresh session in the given mode.
    pub fn with_mode(mode: ExecMode) -> Majic {
        let mut m = Majic::new();
        m.options.mode = mode;
        m
    }

    /// Load MATLAB source: functions are registered (this is the
    /// repository's "source directory snoop"), script statements run
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns parse errors and script execution errors.
    pub fn load_source(&mut self, src: &str) -> RuntimeResult<()> {
        let sp = majic_trace::Span::enter("parse");
        let file =
            parse_source(src).map_err(|e| RuntimeError::Raised(format!("parse error: {e}")))?;
        sp.exit();
        self.next_node_id = self.next_node_id.max(file.node_count);
        if !file.functions.is_empty() {
            let registry = Arc::make_mut(&mut self.registry);
            let known = Arc::make_mut(&mut self.known);
            for f in &file.functions {
                // Source changed → recompile later (repository dependency
                // tracking).
                self.repo.invalidate(&f.name);
                // The invalidated versions took their promotion dedup
                // keys with them: fresh code earns promotion again.
                self.promoted.retain(|(n, _)| n != &f.name);
                known.insert(f.name.clone());
                registry.insert(f.name.clone(), f.clone());
                self.interp.define_function(f.clone());
            }
            // Warm start: now that the authoritative source is known,
            // cached compiled versions whose source hash still matches
            // may install into the repository.
            for f in &file.functions {
                install_cached(
                    &mut self.pending_cache,
                    &self.repo,
                    &mut self.cache_report,
                    &f.name,
                    source_hash(f),
                );
            }
            // A running pool snoops newly loaded sources (the paper's
            // "source directory snoop"): speculate on them right away.
            if let Some(pool) = &self.spec {
                for f in &file.functions {
                    pool.enqueue(
                        &f.name,
                        self.options,
                        Arc::clone(&self.registry),
                        Arc::clone(&self.known),
                    );
                }
            }
        }
        if !file.script.is_empty() {
            self.exec_statements(&file.script)?;
        }
        Ok(())
    }

    /// Evaluate command-window input. Function-call statements route
    /// through the repository (the front end "defers computationally
    /// complex tasks to the code repository"); everything else is
    /// interpreted directly.
    ///
    /// # Errors
    ///
    /// Returns parse and execution errors.
    pub fn eval(&mut self, src: &str) -> RuntimeResult<()> {
        let sp = majic_trace::Span::enter("parse");
        let (stmts, next) =
            parse_statements(src).map_err(|e| RuntimeError::Raised(format!("parse error: {e}")))?;
        sp.exit();
        self.next_node_id = self.next_node_id.max(next);
        self.exec_statements(&stmts)
    }

    fn exec_statements(&mut self, stmts: &[Stmt]) -> RuntimeResult<()> {
        for stmt in stmts {
            if self.options.mode != ExecMode::Interpret {
                if let Some(()) = self.try_deferred_call(stmt)? {
                    continue;
                }
            }
            let sp = majic_trace::Span::enter("execution");
            let r = self.interp.exec_statements(std::slice::from_ref(stmt));
            self.times.execution += sp.exit();
            r?;
        }
        Ok(())
    }

    /// Route `x = f(args)` / `[a,b] = f(args)` / `f(args)` statements
    /// through the compiled path when `f` is a known user function.
    fn try_deferred_call(&mut self, stmt: &Stmt) -> RuntimeResult<Option<()>> {
        let (lhs_names, callee, args): (Vec<&LValue>, &str, &[majic_ast::Expr]) = match &stmt.kind {
            StmtKind::Assign {
                lhs: lhs @ LValue::Var { .. },
                rhs,
                ..
            } => match &rhs.kind {
                ExprKind::Apply { callee, args } if self.registry.contains_key(callee) => {
                    (vec![lhs], callee, args)
                }
                _ => return Ok(None),
            },
            StmtKind::MultiAssign {
                lhs, callee, args, ..
            } if self.registry.contains_key(callee)
                && lhs.iter().all(|l| matches!(l, LValue::Var { .. })) =>
            {
                (lhs.iter().collect(), callee, args)
            }
            StmtKind::Expr { expr, .. } => match &expr.kind {
                ExprKind::Apply { callee, args } if self.registry.contains_key(callee) => {
                    (vec![], callee, args)
                }
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // Subscript-less arguments only (a `:` would mean indexing).
        if args
            .iter()
            .any(|a| matches!(a.kind, ExprKind::Colon | ExprKind::End))
        {
            return Ok(None);
        }
        let callee = callee.to_owned();
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.interp.eval_value(a)?);
        }
        let nargout = lhs_names
            .len()
            .max(if lhs_names.is_empty() { 0 } else { 1 });
        let outs = self.call(&callee, &argv, nargout)?;
        for (lv, v) in lhs_names.iter().zip(outs) {
            self.interp.set_var(lv.name(), v);
        }
        Ok(Some(()))
    }

    /// Invoke a user function through the configured execution mode.
    /// This is the operation the evaluation measures.
    ///
    /// ```
    /// use majic::{ExecMode, Majic};
    ///
    /// let mut session = Majic::with_mode(ExecMode::Jit);
    /// session
    ///     .load_source("function s = total(v)\ns = sum(v) + 1;\n")
    ///     .unwrap();
    /// let v = majic::Value::Real(majic::Matrix::from_rows(vec![vec![1.0, 2.0, 3.0]]));
    /// let out = session.call("total", &[v], 1).unwrap();
    /// assert_eq!(out[0].to_scalar().unwrap(), 7.0);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the function.
    pub fn call(
        &mut self,
        name: &str,
        args: &[Value],
        nargout: usize,
    ) -> RuntimeResult<Vec<Value>> {
        let _call = majic_trace::Span::enter_with("call", || {
            vec![
                ("fn", name.to_owned()),
                ("mode", format!("{:?}", self.options.mode).to_lowercase()),
            ]
        });
        if majic_trace::enabled() {
            majic_trace::counter("engine.call").inc();
        }
        // Apply the kernel-thread option cheaply (compare first) so
        // mid-session option mutations take effect on the next call.
        if let Some(threads) = self.options.threads {
            if threads != majic_runtime::par::thread_count() {
                majic_runtime::par::set_threads(threads);
            }
        }
        if self.options.mode == ExecMode::Interpret || self.reaches_uncompilable(name) {
            if self.options.mode != ExecMode::Interpret {
                // A compiled mode quietly routing a call through the
                // interpreter is exactly the decision the audit log
                // exists to expose.
                majic_trace::audit::session_event("fallback.interpreter", || {
                    (
                        name.to_owned(),
                        "static call graph reaches global/clear, which compiled code \
                         cannot express"
                            .to_owned(),
                    )
                });
            }
            let sp = majic_trace::Span::enter("execution");
            let r = self.interp.call_function(name, args, nargout);
            self.times.execution += sp.exit();
            return r;
        }
        let mut disp = EngineDispatcher {
            registry: &self.registry,
            known: &self.known,
            repo: &self.repo,
            options: &self.options,
            times: &mut self.times,
            next_node_id: &mut self.next_node_id,
            depth: 0,
            promoted: &mut self.promoted,
            hot: Vec::new(),
        };
        let sig = signature_of(args);
        let version = disp.ensure_code(name, &sig)?;
        let sp = majic_trace::Span::enter("execution");
        let r = execute(
            &version.code,
            args,
            nargout,
            &mut disp,
            &mut self.interp.ctx,
        );
        disp.times.execution += sp.exit();
        // The run just finished bumped the version's execution counters;
        // collect any version that crossed the hotness threshold (the
        // one we dispatched plus any noted during nested dispatch) and
        // hand them to the background tier-1 pool.
        disp.note_hot(name, &version);
        let hot = std::mem::take(&mut disp.hot);
        drop(disp);
        for (hot_name, hot_sig) in hot {
            self.promote(hot_name, hot_sig);
        }
        let mut outs = r?;
        outs.truncate(nargout.max(1));
        if outs.len() < nargout {
            return Err(RuntimeError::BadArity {
                name: name.to_owned(),
                detail: format!("{nargout} outputs requested"),
            });
        }
        Ok(outs)
    }

    /// Enqueue a background tier-1 recompile of `name` for `sig`,
    /// starting the recompilation pool on first use. Best-effort: a
    /// rejected enqueue releases the dedup key so a later hot call can
    /// retry.
    fn promote(&mut self, name: String, sig: Signature) {
        let pool = self.tier_pool.get_or_insert_with(|| {
            SpecWorkerPool::start(
                SpecConfig {
                    workers: self.options.tier.workers.max(1),
                    ..SpecConfig::default()
                },
                Arc::clone(&self.repo),
            )
        });
        // The session's *current* options ride along with the job, so
        // mutating `self.options` (platform, inference, regalloc)
        // mid-session applies to later recompiles instead of being
        // frozen at pool start.
        let accepted = pool.enqueue_hot(
            &name,
            sig.clone(),
            self.options,
            Arc::clone(&self.registry),
            Arc::clone(&self.known),
        );
        if !accepted {
            self.promoted.remove(&(name, sig.to_string()));
        }
    }

    /// Block until the tier-1 recompilation pool (if any) has drained
    /// its queue. Tests and batch experiments use this; interactive
    /// sessions never need to.
    pub fn tier_wait(&self) {
        if let Some(pool) = &self.tier_pool {
            pool.wait_idle();
        }
    }

    /// Statistics of the tier-1 recompilation pool, when promotion has
    /// started one.
    pub fn tier_stats(&self) -> Option<SpecStats> {
        self.tier_pool.as_ref().map(SpecWorkerPool::stats)
    }

    /// Shut the tier-1 recompilation pool down (drain, join) and return
    /// its final statistics. No-op returning `None` when no promotion
    /// ever happened.
    pub fn finish_tiering(&mut self) -> Option<SpecStats> {
        let mut pool = self.tier_pool.take()?;
        pool.shutdown();
        Some(pool.stats())
    }

    /// Speculatively compile every registered function ahead of time
    /// (paper §2.5), filling the repository with optimized versions for
    /// the guessed signatures. Returns the hidden (ahead-of-time)
    /// compile latency.
    ///
    /// This is the *synchronous* path: it blocks the session until
    /// every speculative version is compiled. [`Majic::speculate_background`]
    /// is the concurrent equivalent that keeps the session responsive.
    pub fn speculate_all(&mut self) -> Duration {
        let names: Vec<String> = self.registry.keys().cloned().collect();
        let t0 = Instant::now();
        for name in names {
            // Failures (globals etc.) simply leave no speculative
            // version; those calls interpret or JIT later.
            majic_trace::audit::begin(&name);
            let t1 = Instant::now();
            let result = compile_function(
                &self.registry,
                &self.known,
                &self.repo,
                &self.options,
                &name,
                None,
                Pipeline::Opt,
                &mut self.next_node_id,
                &mut self.times,
            );
            majic_trace::audit::commit(
                || match &result {
                    Ok(v) => v.signature.to_string(),
                    Err(_) => "(speculative)".to_owned(),
                },
                "spec_sync",
                || match &result {
                    Ok(v) => format!("published ({})", quality_name(v.quality)),
                    Err(e) => format!("failed: {e}"),
                },
                None,
                t1.elapsed().as_nanos() as u64,
            );
            if let Ok(version) = result {
                self.repo.insert(&name, version);
            }
        }
        // Speculative compilation happens before the program runs: it is
        // *hidden* latency, not charged to any phase.
        let hidden = t0.elapsed();
        self.times = PhaseTimes::default();
        hidden
    }

    /// Start background speculative compilation with `workers` threads:
    /// every currently registered function is queued, and functions
    /// loaded later are queued as they arrive. Returns immediately —
    /// the session keeps answering through the interpreter/JIT and
    /// transparently picks up speculative versions once published.
    ///
    /// Calling this again replaces the pool (the old one is drained and
    /// joined first).
    pub fn speculate_background(&mut self, workers: usize) {
        self.speculate_background_with(SpecConfig {
            workers,
            ..SpecConfig::default()
        });
    }

    /// [`Majic::speculate_background`] with full queue configuration.
    pub fn speculate_background_with(&mut self, cfg: SpecConfig) {
        self.spec = None; // drain + join any previous pool first
        let pool = SpecWorkerPool::start(cfg, Arc::clone(&self.repo));
        let mut names: Vec<&String> = self.registry.keys().collect();
        names.sort(); // deterministic queue order
        for name in names {
            pool.enqueue(
                name,
                self.options,
                Arc::clone(&self.registry),
                Arc::clone(&self.known),
            );
        }
        self.spec = Some(pool);
    }

    /// Block until the background pool (if any) has drained its queue.
    /// Tests and batch experiments use this; interactive sessions never
    /// need to.
    pub fn spec_wait(&self) {
        if let Some(pool) = &self.spec {
            pool.wait_idle();
        }
    }

    /// Statistics of the background pool, when one is running.
    pub fn spec_stats(&self) -> Option<SpecStats> {
        self.spec.as_ref().map(SpecWorkerPool::stats)
    }

    /// Shut the background pool down (drain, join) and return its final
    /// statistics. No-op returning `None` when no pool is running.
    pub fn finish_speculation(&mut self) -> Option<SpecStats> {
        let mut pool = self.spec.take()?;
        pool.shutdown();
        Some(pool.stats())
    }

    /// Attach a persistent repository cache at `path` and load whatever
    /// it holds (see `docs/CACHE_FORMAT.md`).
    ///
    /// Loading is infallible: a missing file is a cold start, and any
    /// corruption, truncation, version skew, or fingerprint mismatch
    /// degrades to a cold start for the affected entries — never a panic
    /// and never stale code. Loaded entries do **not** enter the live
    /// repository yet; each installs only when [`Majic::load_source`]
    /// registers its function with an unchanged source hash (functions
    /// already registered are checked immediately).
    ///
    /// An attached cache is flushed by [`Majic::save_cache`] and,
    /// best-effort, when the session drops.
    ///
    /// ```
    /// use majic::Majic;
    ///
    /// let dir = std::env::temp_dir().join(format!("majic-doc-{}", std::process::id()));
    /// let path = dir.join("repo.majiccache");
    /// let mut session = Majic::new();
    /// let report = session.attach_cache(&path);
    /// assert_eq!(report.loaded, 0); // nothing cached yet: a cold start
    /// session.load_source("function y = sq(x)\ny = x * x;\n").unwrap();
    /// session.call("sq", &[3.0f64.into()], 1).unwrap();
    /// assert!(session.save_cache().unwrap() > 0);
    /// # drop(session);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    pub fn attach_cache(&mut self, path: impl Into<std::path::PathBuf>) -> CacheReport {
        let cache = RepoCache::new(path, majic_codegen::build_fingerprint());
        let (entries, load) = cache.load();
        self.cache = Some(cache);
        self.cache_report.loaded += load.loaded;
        self.cache_report.rejected_version += load.rejected_version;
        self.cache_report.rejected_fingerprint += load.rejected_fingerprint;
        self.cache_report.rejected_checksum += load.rejected_checksum;
        for e in entries {
            self.pending_cache
                .entry(e.name.clone())
                .or_default()
                .push(e);
        }
        // Sources loaded before the cache was attached can warm up now.
        let names: Vec<String> = self
            .pending_cache
            .keys()
            .filter(|n| self.registry.contains_key(*n))
            .cloned()
            .collect();
        for name in names {
            let hash = source_hash(&self.registry[&name]);
            install_cached(
                &mut self.pending_cache,
                &self.repo,
                &mut self.cache_report,
                &name,
                hash,
            );
        }
        self.cache_report
    }

    /// Flush the repository to the attached cache (atomic write).
    /// Returns the number of entries written, or 0 with no cache
    /// attached.
    ///
    /// Entries still pending from load (their functions were never
    /// re-registered this session, so their sources were never
    /// contradicted) are carried over rather than dropped.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic save.
    pub fn save_cache(&mut self) -> std::io::Result<usize> {
        let Some(cache) = &self.cache else {
            return Ok(0);
        };
        let mut entries: Vec<CacheEntry> = Vec::new();
        for (name, versions) in self.repo.entries() {
            // Only functions whose source is in hand can be revalidated
            // next session.
            let Some(f) = self.registry.get(&name) else {
                continue;
            };
            let hash = source_hash(f);
            for version in versions {
                entries.push(CacheEntry {
                    name: name.clone(),
                    source_hash: hash,
                    version,
                });
            }
        }
        let mut carried: Vec<&String> = self.pending_cache.keys().collect();
        carried.sort();
        let carried: Vec<CacheEntry> = carried
            .into_iter()
            .flat_map(|n| self.pending_cache[n].iter().cloned())
            .collect();
        entries.extend(carried);
        cache.save(&entries)?;
        Ok(entries.len())
    }

    /// This session's warm-start accounting so far.
    pub fn cache_report(&self) -> CacheReport {
        self.cache_report
    }

    /// Does `name`'s static call graph reach a function compiled code
    /// cannot express (`global` / `clear`)?
    fn reaches_uncompilable(&self, name: &str) -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![name.to_owned()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            let Some(f) = self.registry.get(&n) else {
                continue;
            };
            if has_global_or_clear(&f.body) {
                return true;
            }
            collect_callees(&f.body, &self.known, &mut stack);
        }
        false
    }

    /// The interpreter session (workspace access, captured output).
    pub fn interp(&self) -> &Interp {
        &self.interp
    }

    /// Mutable interpreter access.
    pub fn interp_mut(&mut self) -> &mut Interp {
        &mut self.interp
    }

    /// A base-workspace variable.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.interp.var(name)
    }

    /// Drain the captured `disp`/`fprintf` output.
    pub fn take_printed(&mut self) -> String {
        std::mem::take(&mut self.interp.ctx.printed)
    }

    /// The code repository (inspection).
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// A shareable handle to the repository (e.g. for external monitors
    /// or tests observing background publishes).
    pub fn repository_handle(&self) -> Arc<Repository> {
        Arc::clone(&self.repo)
    }

    /// Zero the cumulative phase timers.
    pub fn reset_times(&mut self) {
        self.times = PhaseTimes::default();
    }

    /// Human-readable tree report of every span, counter, and histogram
    /// recorded since tracing was enabled (or last reset). Tracing is
    /// process-global — enable it with [`majic_trace::set_enabled`] or
    /// the `MAJIC_TRACE` environment variable before the work of
    /// interest runs.
    pub fn trace_report(&self) -> String {
        majic_trace::export::render_report(&majic_trace::snapshot())
    }

    /// Export everything recorded so far as Chrome trace-event JSON
    /// loadable in `chrome://tracing` or Perfetto.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from writing `path`.
    pub fn export_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        majic_trace::export::write_chrome_trace(path.as_ref())
    }

    /// Turn the compilation audit log on or off for this process.
    ///
    /// Auditing is process-global, like tracing: the flight recorder in
    /// `majic-trace` accumulates one [`majic_trace::audit::CompilationRecord`]
    /// per compilation (trigger, inference widenings, inliner verdicts,
    /// codegen shape, cache interactions) plus session-level events
    /// (cache rejects, interpreter fallbacks, VM errors). It is also
    /// enabled automatically when `MAJIC_EXPLAIN` is set and
    /// [`majic_trace::init_from_env`] runs.
    pub fn set_audit(on: bool) {
        majic_trace::audit::set_enabled(on);
    }

    /// Why does `name` run the way it does? Returns every retained
    /// compilation record and session event for the function, plus a
    /// rendered report ([`Explanation::report`]) answering: what
    /// triggered each compile, which variables inference widened and
    /// why, what the inliner did at each call site, how the generated
    /// code is shaped, and how the persistent cache treated it.
    ///
    /// Requires auditing to be on ([`Majic::set_audit`] or
    /// `MAJIC_EXPLAIN`) *before* the compilations of interest run;
    /// otherwise the explanation is empty.
    ///
    /// ```
    /// use majic::Majic;
    ///
    /// Majic::set_audit(true);
    /// let mut session = Majic::new();
    /// session.load_source("function y = cube(x)\ny = x * x * x;\n").unwrap();
    /// session.call("cube", &[2.0f64.into()], 1).unwrap();
    /// let why = session.explain("cube");
    /// assert!(!why.records.is_empty());
    /// assert!(why.report.contains("first_call"));
    /// ```
    pub fn explain(&self, name: &str) -> Explanation {
        let records = majic_trace::audit::records_for(name);
        let events = majic_trace::audit::events_for(name);
        let report = majic_trace::audit::render_function_report(name, &records, &events);
        Explanation {
            function: name.to_owned(),
            records,
            events,
            report,
        }
    }

    /// Session-wide audit report: every retained compilation record and
    /// session event, grouped per function, plus eviction counts when
    /// the bounded rings overflowed.
    pub fn explain_stats(&self) -> String {
        majic_trace::audit::render_report(&majic_trace::audit::snapshot())
    }
}

/// Everything the audit log knows about one function, as returned by
/// [`Majic::explain`].
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The function asked about.
    pub function: String,
    /// Retained compilation records for the function, oldest first.
    pub records: Vec<majic_trace::audit::CompilationRecord>,
    /// Session events naming the function, plus session-wide events
    /// (e.g. whole-cache rejections) that have no single owner.
    pub events: Vec<majic_trace::audit::SessionEvent>,
    /// Human-readable rendering of the above.
    pub report: String,
}

impl Drop for Majic {
    /// Best-effort shutdown flush: with a cache attached, finish any
    /// background speculation (so its versions are included) and save.
    /// Errors are swallowed — drop must not panic, and a failed flush
    /// only costs next session's warm start.
    fn drop(&mut self) {
        if self.cache.is_some() {
            self.finish_speculation();
            self.finish_tiering();
            let _ = self.save_cache();
        }
    }
}

/// The per-function invalidation key: an FNV-1a hash of the canonical
/// (pretty-printed) source. Whitespace/comment-insensitive by
/// construction, stable across sessions and platforms.
fn source_hash(f: &Function) -> u64 {
    majic_types::wire::fnv1a(format!("{f}").as_bytes())
}

/// Move `name`'s pending cache entries into the live repository if their
/// recorded source hash matches the just-registered source; reject them
/// otherwise. This is the gate that guarantees a stale cache is never
/// executed.
fn install_cached(
    pending: &mut HashMap<String, Vec<CacheEntry>>,
    repo: &Repository,
    report: &mut CacheReport,
    name: &str,
    live_hash: u64,
) {
    let Some(entries) = pending.remove(name) else {
        return;
    };
    for e in entries {
        if e.source_hash == live_hash {
            // A warm hit is a compilation the session never had to run;
            // it gets a (zero-compile-time) record so `explain` shows
            // where each installed version came from.
            majic_trace::audit::begin(name);
            majic_trace::audit::tier(e.version.tier.level());
            majic_trace::audit::commit(
                || e.version.signature.to_string(),
                "warm_cache",
                || {
                    format!(
                        "installed from persistent cache ({})",
                        quality_name(e.version.quality)
                    )
                },
                None,
                0,
            );
            repo.insert(name, e.version);
            report.installed += 1;
            majic_trace::counter("repo.cache.warm_hit").inc();
        } else {
            report.rejected_source_hash += 1;
            majic_trace::counter("repo.cache.reject.source_hash").inc();
            majic_trace::audit::session_event("cache.reject.source_hash", || {
                (
                    name.to_owned(),
                    format!(
                        "source changed since the cache was written \
                         (cached hash {:016x} ≠ live {:016x}); entry dropped",
                        e.source_hash, live_hash
                    ),
                )
            });
        }
    }
}

/// Stable lowercase name of a [`CodeQuality`] tier for audit outcomes.
pub(crate) fn quality_name(q: CodeQuality) -> &'static str {
    match q {
        CodeQuality::Generic => "generic",
        CodeQuality::Jit => "jit",
        CodeQuality::Optimized => "optimized",
    }
}

pub(crate) fn signature_of(args: &[Value]) -> Signature {
    args.iter().map(Value::type_of).collect()
}

fn has_global_or_clear(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Global(_) | StmtKind::Clear(_) => true,
        StmtKind::If {
            branches,
            else_body,
        } => {
            branches.iter().any(|(_, b)| has_global_or_clear(b))
                || else_body.as_ref().is_some_and(|b| has_global_or_clear(b))
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => has_global_or_clear(body),
        _ => false,
    })
}

fn collect_callees(stmts: &[Stmt], known: &HashSet<String>, out: &mut Vec<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Expr { expr, .. } => collect_expr(expr, known, out),
            StmtKind::Assign { rhs, lhs, .. } => {
                collect_expr(rhs, known, out);
                if let LValue::Index { args, .. } = lhs {
                    for a in args {
                        collect_expr(a, known, out);
                    }
                }
            }
            StmtKind::MultiAssign { callee, args, .. } => {
                if known.contains(callee) {
                    out.push(callee.clone());
                }
                for a in args {
                    collect_expr(a, known, out);
                }
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (c, b) in branches {
                    collect_expr(c, known, out);
                    collect_callees(b, known, out);
                }
                if let Some(b) = else_body {
                    collect_callees(b, known, out);
                }
            }
            StmtKind::While { cond, body } => {
                collect_expr(cond, known, out);
                collect_callees(body, known, out);
            }
            StmtKind::For { iter, body, .. } => {
                collect_expr(iter, known, out);
                collect_callees(body, known, out);
            }
            _ => {}
        }
    }
}

fn collect_expr(e: &majic_ast::Expr, known: &HashSet<String>, out: &mut Vec<String>) {
    e.walk(&mut |e| match &e.kind {
        ExprKind::Apply { callee, .. } | ExprKind::Ident(callee) if known.contains(callee) => {
            out.push(callee.clone());
        }
        _ => {}
    });
}

/// Which pipeline to run on a repository miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Pipeline {
    Mcc,
    Jit,
    Opt,
}

/// Split-borrow helper: the dispatcher compiled code calls back into.
struct EngineDispatcher<'a> {
    registry: &'a HashMap<String, Function>,
    known: &'a HashSet<String>,
    repo: &'a Repository,
    options: &'a EngineOptions,
    times: &'a mut PhaseTimes,
    next_node_id: &'a mut u32,
    depth: usize,
    /// Session-wide promotion dedup set (see [`Majic::promoted`]).
    promoted: &'a mut HashSet<(String, String)>,
    /// Versions that crossed the hotness threshold during this
    /// dispatch; the session drains them into the tier pool after the
    /// top-level call returns.
    hot: Vec<(String, Signature)>,
}

struct RepoOracle<'a>(&'a Repository);

impl CalleeOracle for RepoOracle<'_> {
    fn call_types(&self, name: &str, args: &[Type], _nargout: usize) -> Option<Vec<Type>> {
        self.0.call_types(name, &Signature::new(args.to_vec()))
    }
}

impl EngineDispatcher<'_> {
    /// Queue `name`'s version for tier-1 promotion if it is hot tier-0
    /// JIT code whose hotness crossed the threshold. Called right after
    /// an execution, when the counters are fresh. The dedup key is
    /// claimed eagerly (recursive dispatch would otherwise note the
    /// same version thousands of times); the session releases it if the
    /// enqueue is later rejected.
    fn note_hot(&mut self, name: &str, v: &CompiledVersion) {
        let tier = &self.options.tier;
        if !tier.enabled
            || v.tier != Tier::T0
            || v.quality != CodeQuality::Jit
            || v.code.hotness() < tier.threshold
        {
            return;
        }
        let key = (name.to_owned(), v.signature.to_string());
        if self.promoted.insert(key) {
            self.hot.push((name.to_owned(), v.signature.clone()));
        }
    }

    /// Find or build code for an invocation. Returns the repository's
    /// shared handle — a repository hit on the hot path clones one
    /// `Arc`, not the signature and output types.
    fn ensure_code(&mut self, name: &str, sig: &Signature) -> RuntimeResult<Arc<CompiledVersion>> {
        if let Some(v) = self.repo.lookup(name, sig) {
            return Ok(v);
        }
        // Anti-explosion widening: recursive calls produce a fresh
        // constant signature per depth (fib(20), fib(19), …). After two
        // exact-signature versions exist, compile a range-widened version
        // that admits every future scalar invocation of the same shapes.
        let widened = self.repo.version_count(name) >= 2;
        let sig = if widened {
            Signature::new(
                sig.params()
                    .iter()
                    .map(|t| t.with_range(Range::top()))
                    .collect(),
            )
        } else {
            sig.clone()
        };
        let pipeline = match self.options.mode {
            ExecMode::Mcc => Pipeline::Mcc,
            ExecMode::Jit | ExecMode::Spec => Pipeline::Jit,
            ExecMode::Falcon => Pipeline::Opt,
            ExecMode::Interpret => Pipeline::Jit,
        };
        // `compile_function` already speaks `RuntimeError` (codegen
        // failures arrive as `Raised("cannot compile: …")`); wrapping
        // again would collapse e.g. `Undefined` into `Raised` and make
        // compiled modes disagree with the interpreter about the error
        // class of `r = v` with `v` never assigned.
        majic_trace::audit::begin(name);
        let t0 = Instant::now();
        let result = compile_function(
            self.registry,
            self.known,
            self.repo,
            self.options,
            name,
            Some(&sig),
            pipeline,
            self.next_node_id,
            self.times,
        );
        let trigger = if widened {
            // The widened version replaces per-signature compiles that
            // were threatening to explode — worth calling out.
            "recompile_widened"
        } else {
            "first_call"
        };
        majic_trace::audit::commit(
            || sig.to_string(),
            trigger,
            || match &result {
                Ok(v) => format!("published ({})", quality_name(v.quality)),
                Err(e) => format!("failed: {e}"),
            },
            None,
            t0.elapsed().as_nanos() as u64,
        );
        let version = result?;
        self.repo.insert(name, version);
        let v = self
            .repo
            .lookup(name, &sig)
            .expect("freshly inserted version admits its own signature");
        Ok(v)
    }
}

/// Run one compilation pipeline for `name`. `sig = None` selects
/// speculative inference (the signature is guessed).
///
/// This is the single compile path shared by the foreground dispatcher
/// (JIT-on-miss) and the background [`SpecWorkerPool`] workers; it only
/// *reads* the registry and repository (the caller publishes the
/// returned version), which is what makes it safe to run concurrently.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compile_function(
    registry: &HashMap<String, Function>,
    known: &HashSet<String>,
    repo: &Repository,
    options: &EngineOptions,
    name: &str,
    sig: Option<&Signature>,
    pipeline: Pipeline,
    next_node_id: &mut u32,
    times: &mut PhaseTimes,
) -> Result<CompiledVersion, RuntimeError> {
    let f = registry
        .get(name)
        .ok_or_else(|| RuntimeError::Undefined(name.to_owned()))?;
    // Every phase below is bracketed by a trace span whose `exit()`
    // duration feeds `PhaseTimes` — the Figure 6 decomposition and the
    // trace exporters therefore read the *same* measurement.
    let sp_compile = majic_trace::Span::enter_with("compile", || {
        vec![
            ("fn", name.to_owned()),
            ("pipeline", format!("{pipeline:?}").to_lowercase()),
            ("speculative", sig.is_none().to_string()),
        ]
    });

    // Phase 1: (inlining +) disambiguation.
    let sp = majic_trace::Span::enter("disambiguation");
    let inlined;
    let to_analyze = if options.inline && pipeline != Pipeline::Mcc {
        inlined = inline_function(f, registry, InlineOptions::default(), next_node_id);
        &inlined
    } else {
        f
    };
    let d: DisambiguatedFunction = disambiguate(to_analyze, known);
    times.disambiguation += sp.exit();

    // Phase 2: type inference.
    let sp = majic_trace::Span::enter("inference");
    let (signature, ann): (Signature, Annotations) = match (pipeline, sig) {
        (Pipeline::Mcc, s) => (s.cloned().unwrap_or_default(), Annotations::default()),
        (_, Some(s)) => {
            let oracle = RepoOracle(repo);
            let ann = infer_jit(&d, s, options.infer, &oracle);
            (s.clone(), ann)
        }
        (_, None) => {
            let oracle = RepoOracle(repo);
            infer_speculative(&d, options.infer, &oracle)
        }
    };
    times.inference += sp.exit();

    // Phase 3: code generation.
    let sp = majic_trace::Span::enter("codegen");
    let mut cg = match pipeline {
        Pipeline::Mcc => CodegenOptions::mcc(),
        Pipeline::Jit => CodegenOptions::jit(),
        Pipeline::Opt => CodegenOptions::optimizing(),
    };
    cg.regalloc = options.regalloc;
    if pipeline != Pipeline::Mcc {
        cg.oversize = options.oversize;
    }
    if pipeline == Pipeline::Opt && options.platform == Platform::Sparc {
        // The SPARC native compiler "generates relatively poor code".
        cg.passes = PassOptions {
            licm: false,
            ..PassOptions::all()
        };
    }
    let exe = compile_executable(&d, &ann, &cg).map_err(|e| RuntimeError::Raised(e.to_string()))?;
    times.codegen += sp.exit();

    let quality = match pipeline {
        Pipeline::Mcc => CodeQuality::Generic,
        Pipeline::Jit => CodeQuality::Jit,
        Pipeline::Opt => CodeQuality::Optimized,
    };
    // The optimizing backend is the tier-1 product; everything else
    // (generic and fast-JIT code) sits at tier 0 and is promotion bait.
    let tier = if pipeline == Pipeline::Opt {
        Tier::T1
    } else {
        Tier::T0
    };
    majic_trace::audit::tier(tier.level());
    let mut outputs = ann.outputs.clone();
    if outputs.is_empty() {
        outputs = vec![Type::top(); d.function.outputs.len()];
    }
    Ok(CompiledVersion {
        signature,
        code: Arc::new(exe),
        quality,
        tier,
        output_types: outputs,
        compile_time: sp_compile.exit(),
    })
}

impl Dispatcher for EngineDispatcher<'_> {
    fn call_user(
        &mut self,
        name: &str,
        args: &[Value],
        nargout: usize,
        ctx: &mut CallCtx,
    ) -> RuntimeResult<Vec<Value>> {
        if self.depth > 4000 {
            return Err(RuntimeError::Raised("recursion limit exceeded".to_owned()));
        }
        if majic_trace::enabled() {
            majic_trace::counter("engine.call_user").inc();
        }
        let sig = signature_of(args);
        let version = self.ensure_code(name, &sig)?;
        self.depth += 1;
        let r = execute(&version.code, args, nargout, self, ctx);
        self.depth -= 1;
        self.note_hot(name, &version);
        let mut outs = r?;
        outs.truncate(nargout.max(1));
        if outs.len() < nargout {
            return Err(RuntimeError::BadArity {
                name: name.to_owned(),
                detail: format!("{nargout} outputs requested"),
            });
        }
        Ok(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majic_tier_env_parsing() {
        let base = TierOptions::default();
        assert_eq!(tier_options_from_env(None, base), base);
        assert_eq!(tier_options_from_env(Some(""), base), base);
        assert_eq!(tier_options_from_env(Some("  "), base), base);
        assert!(!tier_options_from_env(Some("off"), base).enabled);
        assert!(!tier_options_from_env(Some("0"), base).enabled);
        assert!(!tier_options_from_env(Some("FALSE"), base).enabled);
        let off = TierOptions {
            enabled: false,
            ..base
        };
        assert!(tier_options_from_env(Some("on"), off).enabled);
        let tuned = tier_options_from_env(Some("500"), base);
        assert!(tuned.enabled);
        assert_eq!(tuned.threshold, 500);
        assert_eq!(tuned.workers, base.workers);
        // Misconfiguration must never break a session.
        assert_eq!(tier_options_from_env(Some("garbage"), base), base);
        assert_eq!(tier_options_from_env(Some("-3"), base), base);
    }
}
