//! Background speculative compilation (paper §2.5, made concurrent).
//!
//! The paper's repository "generates code ahead of time" so that
//! compilation latency is *hidden* from the interactive session. The
//! seed implementation ran that speculation synchronously
//! ([`crate::Session::speculate_all`]), blocking the session exactly
//! the way the paper says it must not. This module provides the
//! genuinely concurrent version: a [`SpecWorkerPool`] of OS threads
//! runs the speculative inference + optimizing backend off the critical
//! path and publishes [`CompiledVersion`](majic_repo::CompiledVersion)s
//! into the shared [`majic_repo::Repository`] as they finish. The
//! foreground engine keeps answering through the interpreter/JIT and
//! transparently picks up speculative versions on later repository
//! lookups.
//!
//! Safety never depends on the workers: the repository's signature
//! check (`Qi ⊑ Ti`) gates every lookup, so a version published late,
//! early, or not at all can only change *performance*, never results.
//! Workers compile from a registry snapshot taken at enqueue time, so
//! each job also captures the function's repository *invalidation
//! generation* (within the job's namespace) and publishes through
//! [`majic_repo::Repository::insert_if_current_ns`]: if the source was
//! redefined while the job was in flight, the compiled version is
//! dropped (counted in [`SpecStats::stale`]) instead of letting
//! old-source code take over dispatch.
//!
//! A pool is a *service-wide* asset: jobs from different sessions share
//! the workers, and each job carries the namespace, session id, and
//! closure-hash table of the session that submitted it, so its output
//! lands in (and its inference oracle reads from) exactly that
//! session's view of the repository.
//!
//! # Shutdown semantics
//!
//! [`SpecWorkerPool::shutdown`] closes the queue (pending jobs are
//! still drained), then joins every worker. It takes `&self`, so a pool
//! shared behind an `Arc` can be shut down by whichever owner finishes
//! last. Dropping the pool does the same — join-on-drop, so a session
//! never leaks threads.

use crate::engine::{compile_function, EngineOptions, PhaseTimes, Pipeline};
use majic_ast::Function;
use majic_repo::{Repository, NO_SESSION};
use majic_types::Signature;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on the number of per-job [`SpecRecord`]s retained
/// (aggregate counters stay exact regardless).
pub const DEFAULT_RECORD_CAPACITY: usize = 1024;

/// Worker-pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct SpecConfig {
    /// Number of worker threads. `0` is allowed and means the pool
    /// accepts no jobs (every enqueue is rejected) — useful as the
    /// "speculation off" arm of an experiment.
    pub workers: usize,
    /// Bounded queue capacity; when full, enqueues are rejected rather
    /// than blocking the session (speculation is best-effort).
    pub queue_capacity: usize,
    /// Ring-buffer bound on retained per-job [`SpecRecord`]s: once this
    /// many records exist the oldest is dropped for each new one.
    /// Aggregate counters and totals remain exact either way. Clamped
    /// to at least 1.
    pub record_capacity: usize,
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig {
            workers: 2,
            queue_capacity: 256,
            record_capacity: DEFAULT_RECORD_CAPACITY,
        }
    }
}

/// Everything a background job needs, captured at submit time: the
/// compile inputs (registry/known snapshot, options), plus the
/// submitting session's identity (namespace, session id, closure-hash
/// table) and whether its service wants the compile audited. `sig =
/// None` is a speculative job (the signature is guessed); `sig =
/// Some(_)` is a hot-promotion job that re-runs inference with the
/// observed signature through the optimizing pipeline (tier-1
/// recompilation).
#[derive(Debug)]
pub(crate) struct JobSpec {
    pub(crate) name: String,
    pub(crate) sig: Option<Signature>,
    /// Namespace the result publishes into (the submitting session's
    /// closure hash for `name`).
    pub(crate) ns: u64,
    /// Session the job is attributed to ([`NO_SESSION`] outside any).
    pub(crate) session: u64,
    pub(crate) registry: Arc<HashMap<String, Function>>,
    pub(crate) known: Arc<HashSet<String>>,
    /// The submitting session's closure-hash table: the worker's
    /// inference oracle resolves callee output types through it, so a
    /// background compile sees exactly the caller's view of every
    /// callee.
    pub(crate) hashes: Arc<HashMap<String, u64>>,
    /// Engine options in effect when the job was submitted: option
    /// mutations between submits apply to later jobs instead of being
    /// frozen at pool start.
    pub(crate) options: EngineOptions,
    /// The submitting service's audit flag at submit time.
    pub(crate) audit: bool,
}

/// One queued unit of work: a [`JobSpec`] plus what the pool captured
/// when it accepted the job.
#[derive(Debug)]
struct Job {
    spec: JobSpec,
    /// The (function, namespace) invalidation generation at submit
    /// time; the publish is dropped if it no longer matches (the source
    /// was redefined while this job was in flight).
    generation: u64,
    enqueued: Instant,
}

/// Outcome record for one speculative compilation.
#[derive(Clone, Debug)]
pub struct SpecRecord {
    /// Function name.
    pub name: String,
    /// Time the job sat in the queue before a worker picked it up.
    pub queue_wait: Duration,
    /// Compilation time (inference + codegen) spent by the worker.
    pub compile: Duration,
    /// Publish timestamp, relative to pool start; `None` when nothing
    /// was published (the pipeline failed, or the compile went stale).
    pub published_at: Option<Duration>,
    /// The compile succeeded but was dropped because the function was
    /// redefined while the job was in flight.
    pub stale: bool,
}

/// Aggregate observability for a pool's lifetime.
///
/// `records` is a bounded ring (see [`SpecConfig::record_capacity`]):
/// it keeps the most recent completions only, while the counters and
/// `*_total` aggregates cover *every* job exactly.
#[derive(Clone, Debug)]
pub struct SpecStats {
    /// Per-job records, in completion order (most recent
    /// `record_capacity` retained).
    pub records: VecDeque<SpecRecord>,
    /// Ring capacity in effect for `records`.
    pub record_capacity: usize,
    /// Jobs accepted into the queue.
    pub enqueued: u64,
    /// Versions published into the repository.
    pub published: u64,
    /// Jobs whose compilation failed (no version published).
    pub failed: u64,
    /// Jobs that compiled fine but were dropped at publish time because
    /// the function's source was redefined while they were in flight.
    pub stale: u64,
    /// Enqueues rejected because the queue was full or closed.
    pub rejected: u64,
    /// Exact queue-wait total across all completed jobs (including any
    /// whose records the ring has dropped).
    pub queue_wait_total: Duration,
    /// Exact compile-time total across all completed jobs.
    pub compile_total: Duration,
}

impl Default for SpecStats {
    fn default() -> Self {
        SpecStats {
            records: VecDeque::new(),
            record_capacity: DEFAULT_RECORD_CAPACITY,
            enqueued: 0,
            published: 0,
            failed: 0,
            stale: 0,
            rejected: 0,
            queue_wait_total: Duration::ZERO,
            compile_total: Duration::ZERO,
        }
    }
}

impl SpecStats {
    /// Total queue-wait across all completed jobs (exact even when the
    /// record ring has dropped old entries).
    pub fn total_queue_wait(&self) -> Duration {
        self.queue_wait_total
    }

    /// Total background compile time across all completed jobs (exact
    /// even when the record ring has dropped old entries).
    pub fn total_compile(&self) -> Duration {
        self.compile_total
    }

    /// Jobs that ran to completion (published, failed, or stale).
    pub fn completed(&self) -> u64 {
        self.published + self.failed + self.stale
    }

    /// Completed jobs whose per-job records the ring has dropped.
    pub fn dropped_records(&self) -> u64 {
        self.completed().saturating_sub(self.records.len() as u64)
    }

    /// Append a record, evicting the oldest once the ring is full.
    /// Aggregates are updated unconditionally.
    fn push_record(&mut self, r: SpecRecord) {
        self.queue_wait_total += r.queue_wait;
        self.compile_total += r.compile;
        while self.records.len() >= self.record_capacity.max(1) {
            self.records.pop_front();
        }
        self.records.push_back(r);
    }

    /// Human-readable one-line-per-job report.
    pub fn render_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "spec workers: {} enqueued, {} published, {} failed, {} stale, {} rejected",
            self.enqueued, self.published, self.failed, self.stale, self.rejected
        );
        if self.dropped_records() > 0 {
            let _ = writeln!(
                out,
                "  (showing last {} of {} jobs; totals remain exact)",
                self.records.len(),
                self.completed()
            );
        }
        for r in &self.records {
            let _ = writeln!(
                out,
                "  {:<12} wait {:>9.1?}  compile {:>9.1?}  {}",
                r.name,
                r.queue_wait,
                r.compile,
                match (r.published_at, r.stale) {
                    (Some(at), _) => format!("published at +{at:.1?}"),
                    (None, true) => "stale (source redefined)".to_owned(),
                    (None, false) => "failed".to_owned(),
                }
            );
        }
        out
    }
}

#[derive(Debug, Default)]
struct Queue {
    jobs: VecDeque<Job>,
    /// Jobs dequeued but not yet finished.
    in_flight: usize,
    closed: bool,
}

#[derive(Debug)]
struct PoolShared {
    queue: Mutex<Queue>,
    /// Signals workers that a job (or shutdown) is available.
    job_ready: Condvar,
    /// Signals waiters that the pool went idle (queue empty, nothing in
    /// flight).
    idle: Condvar,
    capacity: usize,
    repo: Arc<Repository>,
    stats: Mutex<SpecStats>,
    started: Instant,
}

/// A pool of background speculative-compilation workers.
#[derive(Debug)]
pub struct SpecWorkerPool {
    shared: Arc<PoolShared>,
    /// Joined by [`SpecWorkerPool::shutdown`]; behind a `Mutex` so a
    /// pool shared through `Arc` can still be shut down via `&self`.
    handles: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl SpecWorkerPool {
    /// Start `cfg.workers` threads publishing into `repo`. Each job
    /// carries the engine options in effect when it was submitted.
    pub fn start(cfg: SpecConfig, repo: Arc<Repository>) -> SpecWorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Queue::default()),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
            capacity: cfg.queue_capacity.max(1),
            repo,
            stats: Mutex::new(SpecStats {
                record_capacity: cfg.record_capacity.max(1),
                ..SpecStats::default()
            }),
            started: Instant::now(),
        });
        let handles = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("majic-spec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn speculative worker")
            })
            .collect();
        SpecWorkerPool {
            shared,
            handles: Mutex::new(handles),
            worker_count: cfg.workers,
        }
    }

    /// Number of worker threads the pool was started with.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Queue `name` for speculative compilation against the given
    /// registry snapshot, outside any session (results land in the
    /// default namespace). Returns `false` (and records a rejection)
    /// when the pool has no workers, the queue is full, or the pool is
    /// shut down — speculation is best-effort and never blocks the
    /// caller.
    pub fn enqueue(
        &self,
        name: &str,
        options: EngineOptions,
        registry: Arc<HashMap<String, Function>>,
        known: Arc<HashSet<String>>,
    ) -> bool {
        self.submit(JobSpec {
            name: name.to_owned(),
            sig: None,
            ns: majic_repo::DEFAULT_NS,
            session: NO_SESSION,
            registry,
            known,
            hashes: Arc::new(HashMap::new()),
            options,
            audit: majic_trace::audit::process_enabled(),
        })
    }

    /// Queue a hot-promotion (tier-1) recompile of `name` for the
    /// observed signature, outside any session. Same best-effort
    /// semantics as [`SpecWorkerPool::enqueue`].
    pub fn enqueue_hot(
        &self,
        name: &str,
        sig: Signature,
        options: EngineOptions,
        registry: Arc<HashMap<String, Function>>,
        known: Arc<HashSet<String>>,
    ) -> bool {
        self.submit(JobSpec {
            name: name.to_owned(),
            sig: Some(sig),
            ns: majic_repo::DEFAULT_NS,
            session: NO_SESSION,
            registry,
            known,
            hashes: Arc::new(HashMap::new()),
            options,
            audit: majic_trace::audit::process_enabled(),
        })
    }

    /// Queue a fully-specified job. This is the session path: the
    /// [`JobSpec`] carries the namespace, session id, and hash table of
    /// the submitting session. Best-effort like [`SpecWorkerPool::enqueue`].
    pub(crate) fn submit(&self, spec: JobSpec) -> bool {
        // Captured before the job is queued: the caller's registry
        // snapshot is current *now*, so a later invalidation (source
        // redefinition in this namespace) bumps the generation past
        // this value and the worker's publish is rejected.
        let generation = self.shared.repo.generation_ns(&spec.name, spec.ns);
        let accepted = {
            let mut q = self.shared.queue.lock().expect("spec queue poisoned");
            if q.closed || self.worker_count == 0 || q.jobs.len() >= self.shared.capacity {
                false
            } else {
                q.jobs.push_back(Job {
                    spec,
                    generation,
                    enqueued: Instant::now(),
                });
                true
            }
        };
        let mut stats = self.shared.stats.lock().expect("spec stats poisoned");
        if accepted {
            stats.enqueued += 1;
            drop(stats);
            self.shared.job_ready.notify_one();
        } else {
            stats.rejected += 1;
        }
        accepted
    }

    /// Block until every accepted job has been compiled and published
    /// (or failed). Used by tests and the deterministic arms of the
    /// responsiveness experiment; interactive sessions never call this.
    pub fn wait_idle(&self) {
        let mut q = self.shared.queue.lock().expect("spec queue poisoned");
        while !(q.jobs.is_empty() && q.in_flight == 0) {
            q = self.shared.idle.wait(q).expect("spec queue poisoned");
        }
    }

    /// Snapshot of the pool's statistics.
    pub fn stats(&self) -> SpecStats {
        self.shared
            .stats
            .lock()
            .expect("spec stats poisoned")
            .clone()
    }

    /// Close the queue and join all workers. Pending jobs are drained
    /// first; new enqueues are rejected. Idempotent, and callable
    /// through a shared reference (the pool is a service-wide asset
    /// held behind an `Arc`).
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().expect("spec queue poisoned");
            q.closed = true;
        }
        self.shared.job_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .handles
            .lock()
            .expect("spec handles poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for SpecWorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("spec queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    q.in_flight += 1;
                    break job;
                }
                if q.closed {
                    return;
                }
                q = shared.job_ready.wait(q).expect("spec queue poisoned");
            }
        };
        let Job {
            spec: job,
            generation,
            enqueued,
        } = job;
        let queue_wait = enqueued.elapsed();
        // The wait span is recorded retroactively with the enqueue
        // timestamp as its start, so Chrome traces show the job sitting
        // in the queue on this worker's track before compilation begins.
        majic_trace::record_interval("spec.queue_wait", enqueued, queue_wait, || {
            vec![("fn", job.name.clone())]
        });

        // Compile outside every lock: this is the expensive part and the
        // whole point is that it happens off the session's critical path.
        // Node ids are scratch — the inlined function is private to this
        // job — so a worker-local counter is safe.
        let mut scratch_ids: u32 = 1 << 24;
        let mut times = PhaseTimes::default();
        // The audit scope opens only if the submitting service wanted it
        // (or the process-wide switch is on): a service with auditing
        // off must not pollute another service's flight recorder.
        if job.audit || majic_trace::audit::process_enabled() {
            majic_trace::audit::begin(&job.name);
            if job.session != NO_SESSION {
                majic_trace::audit::session_id(job.session);
            }
        }
        let sp = majic_trace::Span::enter_with("spec.compile", || {
            vec![
                ("fn", job.name.clone()),
                ("session", job.session.to_string()),
            ]
        });
        let compiled = compile_function(
            &job.registry,
            &job.known,
            &shared.repo,
            &job.hashes,
            &job.options,
            &job.name,
            job.sig.as_ref(),
            Pipeline::Opt,
            &mut scratch_ids,
            &mut times,
        );
        let compile = sp.exit();
        let trigger = if job.sig.is_some() {
            "recompile_hot"
        } else {
            "spec_worker"
        };

        // Publish before committing the audit record so the recorded
        // outcome is the real one. The generation check rejects versions
        // whose source was redefined while this job was in flight —
        // publishing them would dispatch old-source code.
        let signature = match (&compiled, &job.sig) {
            (Ok(v), _) => v.signature.to_string(),
            (Err(_), Some(s)) => s.to_string(),
            (Err(_), None) => "(speculative)".to_owned(),
        };
        let (published_at, stale, outcome) = match compiled {
            Ok(version) => {
                let quality = crate::engine::quality_name(version.quality);
                if shared.repo.insert_if_current_ns(
                    &job.name,
                    job.ns,
                    generation,
                    job.session,
                    version,
                ) {
                    (
                        Some(shared.started.elapsed()),
                        false,
                        format!("published ({quality})"),
                    )
                } else {
                    (
                        None,
                        true,
                        "dropped: source redefined while compiling".to_owned(),
                    )
                }
            }
            // Failures (globals etc.) leave no speculative version;
            // those calls interpret or JIT later.
            Err(e) => (None, false, format!("failed: {e}")),
        };
        majic_trace::audit::commit(
            || signature,
            trigger,
            || outcome,
            Some(queue_wait.as_nanos() as u64),
            compile.as_nanos() as u64,
        );

        {
            let mut stats = shared.stats.lock().expect("spec stats poisoned");
            if published_at.is_some() {
                stats.published += 1;
            } else if stale {
                stats.stale += 1;
            } else {
                stats.failed += 1;
            }
            stats.push_record(SpecRecord {
                name: job.name,
                queue_wait,
                compile,
                published_at,
                stale,
            });
        }

        let mut q = shared.queue.lock().expect("spec queue poisoned");
        q.in_flight -= 1;
        if q.jobs.is_empty() && q.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}
