//! The shared compiler service and its per-user sessions.
//!
//! The paper's code repository is a *service*: "a system-wide database
//! of previously compiled code" that many interactive sessions consult
//! and feed concurrently. This module is that split. A
//! [`CompilerService`] owns the process-wide assets — the
//! [`Repository`], the background speculation and tier-promotion
//! pools, the persistent-cache lifecycle, and the audit switch — and a
//! [`Session`] is the cheap per-user part: an interpreter workspace,
//! the sources that user loaded, and per-session phase timers. Any
//! number of sessions run concurrently against one service, each from
//! its own thread.
//!
//! # Namespaces: sharing without leakage
//!
//! Sessions share compiled code through *closure-hash namespaces*. When
//! a session loads source, it computes, for every registered function,
//! an FNV-1a hash over the canonical (pretty-printed) source of the
//! function's whole static call closure — the function itself plus
//! everything it transitively calls. That hash is the repository
//! namespace the session's compiled versions live in:
//!
//! - Two sessions that loaded the *same* source text compute the same
//!   hashes and therefore dispatch from the same namespaces — a
//!   function compiled by either is immediately available to both
//!   (counted in [`majic_repo::RepoStats::shared_hits`]).
//! - A session that *redefines* a function gets a new hash for it — and
//!   for every caller whose closure reaches it — so its future lookups
//!   and publishes move to fresh namespaces. Other sessions still on
//!   the old source keep dispatching their old, still-correct versions:
//!   a neighbor's redefinition can never leak into this session.
//!
//! Stale background publishes stay impossible for the same reason as
//! before, now per `(function, namespace)`: a job captures the
//! namespace generation at submit time and publishes through
//! [`Repository::insert_if_current_ns`], and retargeting the last user
//! away from a namespace invalidates it (bumping the generation).
//! Safety never depends on any of this bookkeeping, though — every
//! dispatch still runs the repository's `Qi ⊑ Ti` signature check, so
//! the worst a bookkeeping bug could cost is a recompile, never a wrong
//! answer.
//!
//! Namespace *reference counts* track which sessions currently use
//! which `(function, namespace)` pairs. A session dropping (or
//! retargeting away) decrements; compiled versions are invalidated only
//! when a redefinition strands a namespace with no users. A namespace
//! left behind by a plain session exit keeps its versions — that is
//! what makes the next session on the same source warm.

use crate::engine::{
    collect_callees, has_global_or_clear, quality_name, signature_of, CacheReport,
    EngineDispatcher, EngineOptions, ExecMode, Explanation, PhaseTimes, Pipeline,
};
use crate::spec::{JobSpec, SpecConfig, SpecStats, SpecWorkerPool};
use majic_ast::{parse_source, parse_statements, ExprKind, Function, LValue, Stmt, StmtKind};
use majic_interp::Interp;
use majic_repo::cache::{CacheEntry, RepoCache};
use majic_repo::{Repository, DEFAULT_NS};
use majic_runtime::{RuntimeError, RuntimeResult, Value};
use majic_types::Signature;
use majic_vm::execute;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The shared, thread-safe compiler service: one per process (or per
/// isolated repository you want), any number of [`Session`]s against
/// it. Cloning is cheap — clones share the same service state.
///
/// ```
/// use majic::CompilerService;
///
/// let service = CompilerService::new();
/// let src = "function y = twice(x)\ny = 2 * x;\n";
/// std::thread::scope(|scope| {
///     for _ in 0..2 {
///         let service = &service;
///         scope.spawn(move || {
///             let mut session = service.session();
///             session.load_source(src).unwrap();
///             let out = session.call("twice", &[21.0f64.into()], 1).unwrap();
///             assert_eq!(out[0].to_scalar().unwrap(), 42.0);
///         });
///     }
/// });
/// ```
#[derive(Clone, Debug)]
pub struct CompilerService {
    state: Arc<ServiceState>,
}

#[derive(Debug)]
pub(crate) struct ServiceState {
    repo: Arc<Repository>,
    /// Options handed to each new session (the session's `options`
    /// field is its own mutable copy).
    defaults: EngineOptions,
    next_session: AtomicU64,
    /// Background speculative-compilation pool, when started
    /// ([`Session::speculate_background`]). Shared: jobs from every
    /// session ride the same workers.
    spec: Mutex<Option<Arc<SpecWorkerPool>>>,
    /// Background tier-1 recompilation pool, started lazily at the
    /// first hot promotion from any session.
    tier: Mutex<Option<Arc<SpecWorkerPool>>>,
    /// Hot promotions already enqueued, keyed by `(function, namespace,
    /// rendered signature)` — each tier-0 version is promoted at most
    /// once service-wide, no matter how many sessions run it hot.
    promoted: Mutex<HashSet<(String, u64, String)>>,
    /// How many live sessions currently map each `(function,
    /// namespace)` pair. Redefinitions invalidate a namespace only when
    /// its last user retargets away; plain session exits just
    /// decrement, leaving compiled versions warm for the next session
    /// on the same source.
    ns_users: Mutex<HashMap<(String, u64), usize>>,
    cache: Mutex<CacheState>,
    /// This service's audit-log request; mirrored into the trace
    /// crate's process-wide refcount so recording turns on while any
    /// service wants it.
    audit: AtomicBool,
}

#[derive(Debug, Default)]
struct CacheState {
    /// Attached persistent cache, if any ([`Session::attach_cache`]).
    cache: Option<RepoCache>,
    /// Cache entries loaded from disk but not yet tied to live source:
    /// they install into the repository only when a session registers
    /// the matching function with a matching closure hash.
    pending: HashMap<String, Vec<CacheEntry>>,
    /// Running warm-start accounting ([`Session::cache_report`]).
    report: CacheReport,
}

impl Default for CompilerService {
    fn default() -> Self {
        CompilerService::new()
    }
}

impl CompilerService {
    /// A fresh service with default (JIT) session options. The
    /// `MAJIC_TIER` environment variable is consulted here (per
    /// construction, like [`crate::Majic::new`] always did), so a
    /// process can disable or retune tier promotion without code
    /// changes.
    pub fn new() -> CompilerService {
        let mut options = EngineOptions::default();
        options.tier = crate::env::tier_options_from_env(
            std::env::var("MAJIC_TIER").ok().as_deref(),
            options.tier,
        );
        CompilerService::with_options(options)
    }

    /// A fresh service whose sessions start from `options` exactly as
    /// given (`MAJIC_TIER` is *not* consulted — this is the
    /// explicit-configuration path).
    pub fn with_options(options: EngineOptions) -> CompilerService {
        CompilerService {
            state: Arc::new(ServiceState {
                repo: Arc::new(Repository::new()),
                defaults: options,
                next_session: AtomicU64::new(0),
                spec: Mutex::new(None),
                tier: Mutex::new(None),
                promoted: Mutex::new(HashSet::new()),
                ns_users: Mutex::new(HashMap::new()),
                cache: Mutex::new(CacheState::default()),
                audit: AtomicBool::new(false),
            }),
        }
    }

    /// Mint a new session. Sessions are independent users of the shared
    /// repository: each has its own workspace, loaded sources, and
    /// timers, and may live on its own thread.
    pub fn session(&self) -> Session {
        let id = self.state.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        Session {
            service: self.clone(),
            id,
            interp: Interp::new(),
            registry: Arc::new(HashMap::new()),
            known: Arc::new(HashSet::new()),
            hashes: Arc::new(HashMap::new()),
            next_node_id: 0,
            options: self.state.defaults,
            times: PhaseTimes::default(),
        }
    }

    /// The shared code repository (inspection).
    pub fn repository(&self) -> &Repository {
        &self.state.repo
    }

    /// A shareable handle to the repository (e.g. for external monitors
    /// or tests observing background publishes).
    pub fn repository_handle(&self) -> Arc<Repository> {
        Arc::clone(&self.state.repo)
    }

    /// Turn the compilation audit log on or off *for this service*.
    ///
    /// The flight recorder in `majic-trace` is process-global, so
    /// enabling any service turns recording on (each service holds one
    /// reference while its flag is set); records carry the session id
    /// of the session that compiled. Disabling this service releases
    /// its reference — recording stays on only while some other service
    /// (or the process-wide switch, e.g. `MAJIC_EXPLAIN`) still wants
    /// it.
    pub fn set_audit(&self, on: bool) {
        let was = self.state.audit.swap(on, Ordering::SeqCst);
        if on && !was {
            majic_trace::audit::retain_service();
        } else if !on && was {
            majic_trace::audit::release_service();
        }
    }

    /// Whether this service requested audit recording.
    pub fn audit_enabled(&self) -> bool {
        self.state.audit.load(Ordering::SeqCst)
    }

    /// Handle over the service's background compilation pools
    /// (speculation + tier promotion) as one unit: wait for quiet,
    /// snapshot statistics, or shut them down.
    pub fn background(&self) -> Background<'_> {
        Background { state: &self.state }
    }

    /// Attach a persistent repository cache at `path` and load whatever
    /// it holds (see `docs/CACHE_FORMAT.md`). Loaded entries install
    /// into the live repository lazily, as sessions register matching
    /// source. Usually called through [`Session::attach_cache`], which
    /// also revalidates the calling session's already-loaded functions.
    pub fn attach_cache(&self, path: impl Into<std::path::PathBuf>) -> CacheReport {
        self.state.attach_cache(path.into())
    }

    /// Flush the repository to the attached cache (atomic write).
    /// Returns the number of entries written, or 0 with no cache
    /// attached.
    ///
    /// Only namespaced (session-compiled) versions are saved — their
    /// namespace key *is* the closure-source hash the next process
    /// revalidates against. Entries still pending from load are carried
    /// over rather than dropped.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic save.
    pub fn save_cache(&self) -> std::io::Result<usize> {
        self.state.save_cache()
    }

    /// This service's warm-start accounting so far.
    pub fn cache_report(&self) -> CacheReport {
        self.state.cache_report()
    }
}

impl ServiceState {
    fn spec_pool(&self) -> Option<Arc<SpecWorkerPool>> {
        self.spec.lock().expect("spec slot poisoned").clone()
    }

    fn tier_pool(&self) -> Option<Arc<SpecWorkerPool>> {
        self.tier.lock().expect("tier slot poisoned").clone()
    }

    fn tier_pool_or_start(&self, workers: usize) -> Arc<SpecWorkerPool> {
        let mut slot = self.tier.lock().expect("tier slot poisoned");
        if let Some(pool) = &*slot {
            return Arc::clone(pool);
        }
        let pool = Arc::new(SpecWorkerPool::start(
            SpecConfig {
                workers: workers.max(1),
                ..SpecConfig::default()
            },
            Arc::clone(&self.repo),
        ));
        *slot = Some(Arc::clone(&pool));
        pool
    }

    /// A session moved `name` from namespace `old` to `new` (a
    /// redefinition changed the closure hash). When the old namespace
    /// loses its last user its versions are invalidated — bumping the
    /// generation so in-flight background compiles against the old
    /// source are rejected at publish — and its promotion dedup keys
    /// are released so fresh code can earn promotion again.
    fn retarget_ns(&self, name: &str, old: Option<u64>, new: u64) {
        let mut users = self.ns_users.lock().expect("ns_users poisoned");
        if let Some(old) = old {
            let key = (name.to_owned(), old);
            if let Some(count) = users.get_mut(&key) {
                *count -= 1;
                if *count == 0 {
                    users.remove(&key);
                    self.repo.invalidate_ns(name, old);
                    self.promoted
                        .lock()
                        .expect("promoted poisoned")
                        .retain(|(n, ns, _)| !(n == name && *ns == old));
                }
            }
        }
        *users.entry((name.to_owned(), new)).or_insert(0) += 1;
    }

    /// A session dropped while mapping `name` to `ns`: decrement the
    /// user count *without* invalidating. Compiled versions outliving
    /// their sessions is the point — the next session loading the same
    /// source starts warm.
    fn release_ns(&self, name: &str, ns: u64) {
        let mut users = self.ns_users.lock().expect("ns_users poisoned");
        let key = (name.to_owned(), ns);
        if let Some(count) = users.get_mut(&key) {
            *count -= 1;
            if *count == 0 {
                users.remove(&key);
            }
        }
    }

    fn attach_cache(&self, path: std::path::PathBuf) -> CacheReport {
        let cache = RepoCache::new(path, majic_codegen::build_fingerprint());
        let (entries, load) = cache.load();
        let mut cs = self.cache.lock().expect("cache state poisoned");
        cs.cache = Some(cache);
        cs.report.loaded += load.loaded;
        cs.report.rejected_version += load.rejected_version;
        cs.report.rejected_fingerprint += load.rejected_fingerprint;
        cs.report.rejected_checksum += load.rejected_checksum;
        for e in entries {
            cs.pending.entry(e.name.clone()).or_default().push(e);
        }
        cs.report
    }

    fn save_cache(&self) -> std::io::Result<usize> {
        let cs = self.cache.lock().expect("cache state poisoned");
        let Some(cache) = &cs.cache else {
            return Ok(0);
        };
        let mut entries: Vec<CacheEntry> = Vec::new();
        for (name, ns, versions) in self.repo.entries_ns() {
            // Only namespaced versions can be revalidated next session:
            // their namespace key is the closure-source hash. Versions
            // in the default namespace (compiled outside any session)
            // carry no source pedigree and are not persisted.
            if ns == DEFAULT_NS {
                continue;
            }
            for version in versions {
                entries.push(CacheEntry {
                    name: name.clone(),
                    source_hash: ns,
                    version,
                });
            }
        }
        let mut carried: Vec<&String> = cs.pending.keys().collect();
        carried.sort();
        let carried: Vec<CacheEntry> = carried
            .into_iter()
            .flat_map(|n| cs.pending[n].iter().cloned())
            .collect();
        entries.extend(carried);
        cache.save(&entries)?;
        Ok(entries.len())
    }

    fn cache_report(&self) -> CacheReport {
        self.cache.lock().expect("cache state poisoned").report
    }
}

impl Drop for ServiceState {
    /// Best-effort shutdown flush: drain and join the background pools
    /// (so their versions are included), then save the attached cache,
    /// if any. Errors are swallowed — drop must not panic, and a failed
    /// flush only costs next session's warm start.
    fn drop(&mut self) {
        let spec = self.spec.lock().ok().and_then(|mut s| s.take());
        if let Some(pool) = spec {
            pool.shutdown();
        }
        let tier = self.tier.lock().ok().and_then(|mut s| s.take());
        if let Some(pool) = tier {
            pool.shutdown();
        }
        let _ = self.save_cache();
        if self.audit.load(Ordering::SeqCst) {
            majic_trace::audit::release_service();
        }
    }
}

/// Statistics of both background pools, as returned by the
/// [`Background`] handle.
#[derive(Clone, Debug, Default)]
pub struct BackgroundStats {
    /// Speculative-compilation pool statistics, when one was started.
    pub spec: Option<SpecStats>,
    /// Tier-promotion pool statistics, when promotion started one.
    pub tier: Option<SpecStats>,
}

/// One handle over a service's background compilation — speculation and
/// tier promotion together. Obtained from
/// [`CompilerService::background`] or [`Session::background`].
#[derive(Debug)]
pub struct Background<'a> {
    state: &'a ServiceState,
}

impl Background<'_> {
    /// Block until both pools (whichever exist) have drained their
    /// queues. Tests and batch experiments use this; interactive
    /// sessions never need to.
    pub fn wait(&self) {
        // Clone the handles out first: waiting must not hold the slot
        // locks, or a concurrent session couldn't submit work.
        let spec = self.state.spec_pool();
        let tier = self.state.tier_pool();
        if let Some(pool) = spec {
            pool.wait_idle();
        }
        if let Some(pool) = tier {
            pool.wait_idle();
        }
    }

    /// Statistics of whichever pools exist right now.
    pub fn stats(&self) -> BackgroundStats {
        BackgroundStats {
            spec: self.state.spec_pool().map(|p| p.stats()),
            tier: self.state.tier_pool().map(|p| p.stats()),
        }
    }

    /// Shut both pools down (drain, join) and return their final
    /// statistics. Pools that never started report `None`.
    pub fn finish(&self) -> BackgroundStats {
        let spec = self.state.spec.lock().expect("spec slot poisoned").take();
        let tier = self.state.tier.lock().expect("tier slot poisoned").take();
        BackgroundStats {
            spec: spec.map(|p| {
                p.shutdown();
                p.stats()
            }),
            tier: tier.map(|p| {
                p.shutdown();
                p.stats()
            }),
        }
    }
}

/// One user of a [`CompilerService`]: an interpreter workspace, the
/// sources this user loaded (with their closure-hash namespaces), and
/// per-session timers. Create with [`CompilerService::session`]; the
/// single-user [`crate::Majic`] facade derefs to this type.
#[derive(Debug)]
pub struct Session {
    service: CompilerService,
    /// 1-based session id; attributed on audit records and repository
    /// inserts (`0` is reserved for out-of-session work).
    id: u64,
    interp: Interp,
    /// Copy-on-write: background jobs hold cheap snapshots.
    registry: Arc<HashMap<String, Function>>,
    known: Arc<HashSet<String>>,
    /// `function name → closure hash` = this session's repository
    /// namespace for the function. Recomputed on every
    /// [`Session::load_source`].
    hashes: Arc<HashMap<String, u64>>,
    next_node_id: u32,
    /// Engine configuration (mutable between calls).
    pub options: EngineOptions,
    /// Cumulative phase times since the last [`Session::reset_times`].
    pub times: PhaseTimes,
}

impl Session {
    /// The service this session belongs to.
    pub fn service(&self) -> &CompilerService {
        &self.service
    }

    /// This session's id (1-based, unique within the service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This session's repository namespace for `name`.
    fn ns(&self, name: &str) -> u64 {
        self.hashes.get(name).copied().unwrap_or(DEFAULT_NS)
    }

    /// Should compilations triggered by this session be audited?
    fn audit_on(&self) -> bool {
        self.service.audit_enabled() || majic_trace::audit::process_enabled()
    }

    fn job_spec(&self, name: &str, sig: Option<Signature>) -> JobSpec {
        JobSpec {
            name: name.to_owned(),
            sig,
            ns: self.ns(name),
            session: self.id,
            registry: Arc::clone(&self.registry),
            known: Arc::clone(&self.known),
            hashes: Arc::clone(&self.hashes),
            options: self.options,
            audit: self.audit_on(),
        }
    }

    /// Load MATLAB source: functions are registered (this is the
    /// repository's "source directory snoop"), script statements run
    /// immediately.
    ///
    /// Registering source re-derives the closure hash of *every*
    /// function this session knows — a redefinition changes the
    /// namespace of each caller that reaches it, moving this session's
    /// future compiles and lookups onto the new source while other
    /// sessions keep their own view.
    ///
    /// # Errors
    ///
    /// Returns parse errors and script execution errors.
    pub fn load_source(&mut self, src: &str) -> RuntimeResult<()> {
        let sp = majic_trace::Span::enter("parse");
        let file =
            parse_source(src).map_err(|e| RuntimeError::Raised(format!("parse error: {e}")))?;
        sp.exit();
        self.next_node_id = self.next_node_id.max(file.node_count);
        if !file.functions.is_empty() {
            {
                let registry = Arc::make_mut(&mut self.registry);
                let known = Arc::make_mut(&mut self.known);
                for f in &file.functions {
                    known.insert(f.name.clone());
                    registry.insert(f.name.clone(), f.clone());
                    self.interp.define_function(f.clone());
                }
            }
            // Source changed → namespaces move (repository dependency
            // tracking). Unchanged functions keep their hash, their
            // namespace, and every compiled version in it.
            let new_hashes = closure_hashes(&self.registry, &self.known);
            for (name, &new_ns) in &new_hashes {
                let old = self.hashes.get(name).copied();
                if old != Some(new_ns) {
                    self.service.state.retarget_ns(name, old, new_ns);
                }
            }
            self.hashes = Arc::new(new_hashes);
            // Warm start: now that the authoritative source is known,
            // cached compiled versions whose closure hash still matches
            // may install into the repository.
            for f in &file.functions {
                self.install_cached(&f.name);
            }
            // A running pool snoops newly loaded sources (the paper's
            // "source directory snoop"): speculate on them right away.
            if let Some(pool) = self.service.state.spec_pool() {
                for f in &file.functions {
                    pool.submit(self.job_spec(&f.name, None));
                }
            }
        }
        if !file.script.is_empty() {
            self.exec_statements(&file.script)?;
        }
        Ok(())
    }

    /// Evaluate command-window input. Function-call statements route
    /// through the repository (the front end "defers computationally
    /// complex tasks to the code repository"); everything else is
    /// interpreted directly.
    ///
    /// # Errors
    ///
    /// Returns parse and execution errors.
    pub fn eval(&mut self, src: &str) -> RuntimeResult<()> {
        let sp = majic_trace::Span::enter("parse");
        let (stmts, next) =
            parse_statements(src).map_err(|e| RuntimeError::Raised(format!("parse error: {e}")))?;
        sp.exit();
        self.next_node_id = self.next_node_id.max(next);
        self.exec_statements(&stmts)
    }

    fn exec_statements(&mut self, stmts: &[Stmt]) -> RuntimeResult<()> {
        for stmt in stmts {
            if self.options.mode != ExecMode::Interpret {
                if let Some(()) = self.try_deferred_call(stmt)? {
                    continue;
                }
            }
            let sp = majic_trace::Span::enter("execution");
            let r = self.interp.exec_statements(std::slice::from_ref(stmt));
            self.times.execution += sp.exit();
            r?;
        }
        Ok(())
    }

    /// Route `x = f(args)` / `[a,b] = f(args)` / `f(args)` statements
    /// through the compiled path when `f` is a known user function.
    fn try_deferred_call(&mut self, stmt: &Stmt) -> RuntimeResult<Option<()>> {
        let (lhs_names, callee, args): (Vec<&LValue>, &str, &[majic_ast::Expr]) = match &stmt.kind {
            StmtKind::Assign {
                lhs: lhs @ LValue::Var { .. },
                rhs,
                ..
            } => match &rhs.kind {
                ExprKind::Apply { callee, args } if self.registry.contains_key(callee) => {
                    (vec![lhs], callee, args)
                }
                _ => return Ok(None),
            },
            StmtKind::MultiAssign {
                lhs, callee, args, ..
            } if self.registry.contains_key(callee)
                && lhs.iter().all(|l| matches!(l, LValue::Var { .. })) =>
            {
                (lhs.iter().collect(), callee, args)
            }
            StmtKind::Expr { expr, .. } => match &expr.kind {
                ExprKind::Apply { callee, args } if self.registry.contains_key(callee) => {
                    (vec![], callee, args)
                }
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // Subscript-less arguments only (a `:` would mean indexing).
        if args
            .iter()
            .any(|a| matches!(a.kind, ExprKind::Colon | ExprKind::End))
        {
            return Ok(None);
        }
        let callee = callee.to_owned();
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.interp.eval_value(a)?);
        }
        let nargout = lhs_names
            .len()
            .max(if lhs_names.is_empty() { 0 } else { 1 });
        let outs = self.call(&callee, &argv, nargout)?;
        for (lv, v) in lhs_names.iter().zip(outs) {
            self.interp.set_var(lv.name(), v);
        }
        Ok(Some(()))
    }

    /// Invoke a user function through the configured execution mode.
    /// This is the operation the evaluation measures.
    ///
    /// ```
    /// use majic::{ExecMode, Majic};
    ///
    /// let mut session = Majic::with_mode(ExecMode::Jit);
    /// session
    ///     .load_source("function s = total(v)\ns = sum(v) + 1;\n")
    ///     .unwrap();
    /// let v = majic::Value::Real(majic::Matrix::from_rows(vec![vec![1.0, 2.0, 3.0]]));
    /// let out = session.call("total", &[v], 1).unwrap();
    /// assert_eq!(out[0].to_scalar().unwrap(), 7.0);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the function.
    pub fn call(
        &mut self,
        name: &str,
        args: &[Value],
        nargout: usize,
    ) -> RuntimeResult<Vec<Value>> {
        let _call = majic_trace::Span::enter_with("call", || {
            vec![
                ("fn", name.to_owned()),
                ("mode", format!("{:?}", self.options.mode).to_lowercase()),
            ]
        });
        if majic_trace::enabled() {
            majic_trace::counter("engine.call").inc();
        }
        // Apply the kernel-thread option cheaply (compare first) so
        // mid-session option mutations take effect on the next call.
        if let Some(threads) = self.options.threads {
            if threads != majic_runtime::par::thread_count() {
                majic_runtime::par::set_threads(threads);
            }
        }
        if self.options.mode == ExecMode::Interpret || self.reaches_uncompilable(name) {
            if self.options.mode != ExecMode::Interpret {
                // A compiled mode quietly routing a call through the
                // interpreter is exactly the decision the audit log
                // exists to expose.
                majic_trace::audit::session_event("fallback.interpreter", || {
                    (
                        name.to_owned(),
                        "static call graph reaches global/clear, which compiled code \
                         cannot express"
                            .to_owned(),
                    )
                });
            }
            let sp = majic_trace::Span::enter("execution");
            let r = self.interp.call_function(name, args, nargout);
            self.times.execution += sp.exit();
            return r;
        }
        let mut disp = EngineDispatcher {
            registry: &self.registry,
            known: &self.known,
            repo: &self.service.state.repo,
            hashes: &self.hashes,
            session: self.id,
            audit: self.service.audit_enabled() || majic_trace::audit::process_enabled(),
            options: &self.options,
            times: &mut self.times,
            next_node_id: &mut self.next_node_id,
            depth: 0,
            noted: HashSet::new(),
            hot: Vec::new(),
        };
        let sig = signature_of(args);
        let version = disp.ensure_code(name, &sig)?;
        let sp = majic_trace::Span::enter("execution");
        let r = execute(
            &version.code,
            args,
            nargout,
            &mut disp,
            &mut self.interp.ctx,
        );
        disp.times.execution += sp.exit();
        // The run just finished bumped the version's execution counters;
        // collect any version that crossed the hotness threshold (the
        // one we dispatched plus any noted during nested dispatch) and
        // hand them to the background tier-1 pool.
        disp.note_hot(name, &version);
        let hot = std::mem::take(&mut disp.hot);
        drop(disp);
        for (hot_name, hot_sig) in hot {
            self.promote(hot_name, hot_sig);
        }
        let mut outs = r?;
        outs.truncate(nargout.max(1));
        if outs.len() < nargout {
            return Err(RuntimeError::BadArity {
                name: name.to_owned(),
                detail: format!("{nargout} outputs requested"),
            });
        }
        Ok(outs)
    }

    /// Enqueue a background tier-1 recompile of `name` for `sig`,
    /// starting the service's recompilation pool on first use.
    /// Best-effort: a rejected enqueue releases the dedup key so a
    /// later hot call can retry.
    fn promote(&mut self, name: String, sig: Signature) {
        let key = (name.clone(), self.ns(&name), sig.to_string());
        {
            let mut promoted = self
                .service
                .state
                .promoted
                .lock()
                .expect("promoted poisoned");
            if !promoted.insert(key.clone()) {
                // Another session (or an earlier call) already promoted
                // this exact version.
                return;
            }
        }
        let pool = self
            .service
            .state
            .tier_pool_or_start(self.options.tier.workers.max(1));
        // The session's *current* options ride along with the job, so
        // mutating `self.options` (platform, inference, regalloc)
        // mid-session applies to later recompiles instead of being
        // frozen at pool start.
        let accepted = pool.submit(self.job_spec(&name, Some(sig)));
        if !accepted {
            self.service
                .state
                .promoted
                .lock()
                .expect("promoted poisoned")
                .remove(&key);
        }
    }

    /// Handle over the service's background pools; see
    /// [`CompilerService::background`].
    pub fn background(&self) -> Background<'_> {
        self.service.state_background()
    }

    /// Speculatively compile every registered function ahead of time
    /// (paper §2.5), filling the repository with optimized versions for
    /// the guessed signatures. Returns the hidden (ahead-of-time)
    /// compile latency.
    ///
    /// This is the *synchronous* path: it blocks the session until
    /// every speculative version is compiled.
    /// [`Session::speculate_background`] is the concurrent equivalent
    /// that keeps the session responsive.
    pub fn speculate_all(&mut self) -> Duration {
        let names: Vec<String> = self.registry.keys().cloned().collect();
        let audit = self.audit_on();
        let t0 = Instant::now();
        for name in names {
            // Failures (globals etc.) simply leave no speculative
            // version; those calls interpret or JIT later.
            if audit {
                majic_trace::audit::begin(&name);
                majic_trace::audit::session_id(self.id);
            }
            let t1 = Instant::now();
            let result = crate::engine::compile_function(
                &self.registry,
                &self.known,
                &self.service.state.repo,
                &self.hashes,
                &self.options,
                &name,
                None,
                Pipeline::Opt,
                &mut self.next_node_id,
                &mut self.times,
            );
            majic_trace::audit::commit(
                || match &result {
                    Ok(v) => v.signature.to_string(),
                    Err(_) => "(speculative)".to_owned(),
                },
                "spec_sync",
                || match &result {
                    Ok(v) => format!("published ({})", quality_name(v.quality)),
                    Err(e) => format!("failed: {e}"),
                },
                None,
                t1.elapsed().as_nanos() as u64,
            );
            if let Ok(version) = result {
                self.service
                    .state
                    .repo
                    .insert_ns(&name, self.ns(&name), self.id, version);
            }
        }
        // Speculative compilation happens before the program runs: it is
        // *hidden* latency, not charged to any phase.
        let hidden = t0.elapsed();
        self.times = PhaseTimes::default();
        hidden
    }

    /// Start background speculative compilation with `workers` threads:
    /// every function this session has registered is queued, and
    /// functions loaded later (by any session) are queued as they
    /// arrive. Returns immediately — the session keeps answering
    /// through the interpreter/JIT and transparently picks up
    /// speculative versions once published.
    ///
    /// The pool is a service-wide asset; calling this again (from any
    /// session) replaces it (the old one is drained and joined first).
    pub fn speculate_background(&mut self, workers: usize) {
        self.speculate_background_with(SpecConfig {
            workers,
            ..SpecConfig::default()
        });
    }

    /// [`Session::speculate_background`] with full queue configuration.
    pub fn speculate_background_with(&mut self, cfg: SpecConfig) {
        // Drain + join any previous pool first.
        let old = self
            .service
            .state
            .spec
            .lock()
            .expect("spec slot poisoned")
            .take();
        if let Some(old) = old {
            old.shutdown();
        }
        let pool = Arc::new(SpecWorkerPool::start(
            cfg,
            Arc::clone(&self.service.state.repo),
        ));
        let mut names: Vec<String> = self.registry.keys().cloned().collect();
        names.sort(); // deterministic queue order
        for name in &names {
            pool.submit(self.job_spec(name, None));
        }
        *self.service.state.spec.lock().expect("spec slot poisoned") = Some(pool);
    }

    /// Block until the background speculation pool (if any) has drained
    /// its queue.
    #[deprecated(note = "use `background().wait()`, which also covers the tier pool")]
    pub fn spec_wait(&self) {
        if let Some(pool) = self.service.state.spec_pool() {
            pool.wait_idle();
        }
    }

    /// Statistics of the background speculation pool, when one is
    /// running.
    #[deprecated(note = "use `background().stats().spec`")]
    pub fn spec_stats(&self) -> Option<SpecStats> {
        self.service.state.spec_pool().map(|p| p.stats())
    }

    /// Shut the background speculation pool down (drain, join) and
    /// return its final statistics. No-op returning `None` when no pool
    /// is running.
    #[deprecated(note = "use `background().finish()`, which also covers the tier pool")]
    pub fn finish_speculation(&mut self) -> Option<SpecStats> {
        let pool = self
            .service
            .state
            .spec
            .lock()
            .expect("spec slot poisoned")
            .take()?;
        pool.shutdown();
        Some(pool.stats())
    }

    /// Block until the tier-1 recompilation pool (if any) has drained
    /// its queue.
    #[deprecated(note = "use `background().wait()`, which also covers the speculation pool")]
    pub fn tier_wait(&self) {
        if let Some(pool) = self.service.state.tier_pool() {
            pool.wait_idle();
        }
    }

    /// Statistics of the tier-1 recompilation pool, when promotion has
    /// started one.
    #[deprecated(note = "use `background().stats().tier`")]
    pub fn tier_stats(&self) -> Option<SpecStats> {
        self.service.state.tier_pool().map(|p| p.stats())
    }

    /// Shut the tier-1 recompilation pool down (drain, join) and return
    /// its final statistics. No-op returning `None` when no promotion
    /// ever happened.
    #[deprecated(note = "use `background().finish()`, which also covers the speculation pool")]
    pub fn finish_tiering(&mut self) -> Option<SpecStats> {
        let pool = self
            .service
            .state
            .tier
            .lock()
            .expect("tier slot poisoned")
            .take()?;
        pool.shutdown();
        Some(pool.stats())
    }

    /// Attach a persistent repository cache at `path` and load whatever
    /// it holds (see `docs/CACHE_FORMAT.md`).
    ///
    /// Loading is infallible: a missing file is a cold start, and any
    /// corruption, truncation, version skew, or fingerprint mismatch
    /// degrades to a cold start for the affected entries — never a
    /// panic and never stale code. Loaded entries do **not** enter the
    /// live repository yet; each installs only when
    /// [`Session::load_source`] registers its function with an
    /// unchanged closure-source hash (functions already registered are
    /// checked immediately).
    ///
    /// The cache belongs to the *service*: every session shares it, and
    /// it is flushed by [`Session::save_cache`] and, best-effort, when
    /// the service drops.
    ///
    /// ```
    /// use majic::Majic;
    ///
    /// let dir = std::env::temp_dir().join(format!("majic-doc-{}", std::process::id()));
    /// let path = dir.join("repo.majiccache");
    /// let mut session = Majic::new();
    /// let report = session.attach_cache(&path);
    /// assert_eq!(report.loaded, 0); // nothing cached yet: a cold start
    /// session.load_source("function y = sq(x)\ny = x * x;\n").unwrap();
    /// session.call("sq", &[3.0f64.into()], 1).unwrap();
    /// assert!(session.save_cache().unwrap() > 0);
    /// # drop(session);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    pub fn attach_cache(&mut self, path: impl Into<std::path::PathBuf>) -> CacheReport {
        self.service.state.attach_cache(path.into());
        // Sources loaded before the cache was attached can warm up now.
        let names: Vec<String> = {
            let cs = self
                .service
                .state
                .cache
                .lock()
                .expect("cache state poisoned");
            cs.pending
                .keys()
                .filter(|n| self.registry.contains_key(*n))
                .cloned()
                .collect()
        };
        for name in names {
            self.install_cached(&name);
        }
        self.service.state.cache_report()
    }

    /// Flush the repository to the attached cache; see
    /// [`CompilerService::save_cache`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic save.
    pub fn save_cache(&mut self) -> std::io::Result<usize> {
        self.service.state.save_cache()
    }

    /// This service's warm-start accounting so far.
    pub fn cache_report(&self) -> CacheReport {
        self.service.state.cache_report()
    }

    /// Move `name`'s pending cache entries into the live repository if
    /// their recorded closure hash matches the just-registered source;
    /// reject them otherwise. This is the gate that guarantees a stale
    /// cache is never executed.
    fn install_cached(&mut self, name: &str) {
        let Some(&live) = self.hashes.get(name) else {
            return;
        };
        let entries = {
            let mut cs = self
                .service
                .state
                .cache
                .lock()
                .expect("cache state poisoned");
            match cs.pending.remove(name) {
                Some(entries) => entries,
                None => return,
            }
        };
        let audit = self.audit_on();
        let mut installed = 0usize;
        let mut rejected = 0usize;
        for e in entries {
            if e.source_hash == live {
                // A warm hit is a compilation the session never had to
                // run; it gets a (zero-compile-time) record so `explain`
                // shows where each installed version came from.
                if audit {
                    majic_trace::audit::begin(name);
                    majic_trace::audit::session_id(self.id);
                }
                majic_trace::audit::tier(e.version.tier.level());
                majic_trace::audit::commit(
                    || e.version.signature.to_string(),
                    "warm_cache",
                    || {
                        format!(
                            "installed from persistent cache ({})",
                            quality_name(e.version.quality)
                        )
                    },
                    None,
                    0,
                );
                self.service
                    .state
                    .repo
                    .insert_ns(name, live, self.id, e.version);
                installed += 1;
                majic_trace::counter("repo.cache.warm_hit").inc();
            } else {
                rejected += 1;
                majic_trace::counter("repo.cache.reject.source_hash").inc();
                majic_trace::audit::session_event("cache.reject.source_hash", || {
                    (
                        name.to_owned(),
                        format!(
                            "source changed since the cache was written \
                             (cached hash {:016x} ≠ live {:016x}); entry dropped",
                            e.source_hash, live
                        ),
                    )
                });
            }
        }
        let mut cs = self
            .service
            .state
            .cache
            .lock()
            .expect("cache state poisoned");
        cs.report.installed += installed;
        cs.report.rejected_source_hash += rejected;
    }

    /// Does `name`'s static call graph reach a function compiled code
    /// cannot express (`global` / `clear`)?
    fn reaches_uncompilable(&self, name: &str) -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![name.to_owned()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            let Some(f) = self.registry.get(&n) else {
                continue;
            };
            if has_global_or_clear(&f.body) {
                return true;
            }
            collect_callees(&f.body, &self.known, &mut stack);
        }
        false
    }

    /// The interpreter session (workspace access, captured output).
    pub fn interp(&self) -> &Interp {
        &self.interp
    }

    /// Mutable interpreter access.
    pub fn interp_mut(&mut self) -> &mut Interp {
        &mut self.interp
    }

    /// A base-workspace variable.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.interp.var(name)
    }

    /// Drain the captured `disp`/`fprintf` output.
    pub fn take_printed(&mut self) -> String {
        std::mem::take(&mut self.interp.ctx.printed)
    }

    /// The code repository (inspection). Shared with every other
    /// session of the same service.
    pub fn repository(&self) -> &Repository {
        &self.service.state.repo
    }

    /// A shareable handle to the repository (e.g. for external monitors
    /// or tests observing background publishes).
    pub fn repository_handle(&self) -> Arc<Repository> {
        Arc::clone(&self.service.state.repo)
    }

    /// Zero the cumulative phase timers.
    pub fn reset_times(&mut self) {
        self.times = PhaseTimes::default();
    }

    /// Human-readable tree report of every span, counter, and histogram
    /// recorded since tracing was enabled (or last reset). Tracing is
    /// process-global — enable it with [`majic_trace::set_enabled`] or
    /// the `MAJIC_TRACE` environment variable before the work of
    /// interest runs.
    pub fn trace_report(&self) -> String {
        majic_trace::export::render_report(&majic_trace::snapshot())
    }

    /// Export everything recorded so far as Chrome trace-event JSON
    /// loadable in `chrome://tracing` or Perfetto.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from writing `path`.
    pub fn export_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        majic_trace::export::write_chrome_trace(path.as_ref())
    }

    /// Turn the compilation audit log on or off for this session's
    /// service. Convenience for
    /// [`CompilerService::set_audit`]`(on)`.
    pub fn set_audit_enabled(&self, on: bool) {
        self.service.set_audit(on);
    }

    /// Whether this session's service requested audit recording.
    pub fn audit_enabled(&self) -> bool {
        self.service.audit_enabled()
    }

    /// Why does `name` run the way it does? Returns every retained
    /// compilation record and session event for the function, plus a
    /// rendered report ([`Explanation::report`]) answering: what
    /// triggered each compile, which variables inference widened and
    /// why, what the inliner did at each call site, how the generated
    /// code is shaped, and how the persistent cache treated it.
    ///
    /// Requires auditing to be on ([`Session::set_audit_enabled`] or
    /// `MAJIC_EXPLAIN`) *before* the compilations of interest run;
    /// otherwise the explanation is empty.
    ///
    /// ```
    /// use majic::Majic;
    ///
    /// let mut session = Majic::new();
    /// session.set_audit_enabled(true);
    /// session.load_source("function y = cube(x)\ny = x * x * x;\n").unwrap();
    /// session.call("cube", &[2.0f64.into()], 1).unwrap();
    /// let why = session.explain("cube");
    /// assert!(!why.records.is_empty());
    /// assert!(why.report.contains("first_call"));
    /// ```
    pub fn explain(&self, name: &str) -> Explanation {
        let records = majic_trace::audit::records_for(name);
        let events = majic_trace::audit::events_for(name);
        let report = majic_trace::audit::render_function_report(name, &records, &events);
        Explanation {
            function: name.to_owned(),
            records,
            events,
            report,
        }
    }

    /// Session-wide audit report: every retained compilation record and
    /// session event, grouped per function, plus eviction counts when
    /// the bounded rings overflowed.
    pub fn explain_stats(&self) -> String {
        majic_trace::audit::render_report(&majic_trace::audit::snapshot())
    }
}

impl CompilerService {
    fn state_background(&self) -> Background<'_> {
        Background { state: &self.state }
    }
}

impl Drop for Session {
    /// Release this session's namespace references *without*
    /// invalidating anything: compiled versions outlive the session, so
    /// the next session on the same source starts warm.
    fn drop(&mut self) {
        for (name, &ns) in self.hashes.iter() {
            self.service.state.release_ns(name, ns);
        }
    }
}

/// The per-function namespace key: an FNV-1a hash over the canonical
/// (pretty-printed) source of the function's whole static call closure
/// — itself plus every registered function it transitively reaches.
/// Whitespace/comment-insensitive by construction, stable across
/// sessions, processes, and platforms (which is what lets the
/// persistent cache revalidate against it).
///
/// Hashing the *closure* rather than the single function means a
/// redefinition automatically moves every affected caller to a new
/// namespace too — inlining and cross-function inference make a
/// caller's compiled code depend on its callees' exact source.
fn closure_hashes(
    registry: &HashMap<String, Function>,
    known: &HashSet<String>,
) -> HashMap<String, u64> {
    // Pretty-print each function once and record its direct callees.
    let mut printed: HashMap<&str, String> = HashMap::with_capacity(registry.len());
    let mut callees: HashMap<&str, Vec<String>> = HashMap::with_capacity(registry.len());
    for (name, f) in registry {
        printed.insert(name, format!("{f}"));
        let mut out = Vec::new();
        collect_callees(&f.body, known, &mut out);
        out.retain(|c| registry.contains_key(c));
        callees.insert(name, out);
    }
    let mut hashes = HashMap::with_capacity(registry.len());
    for name in registry.keys() {
        // Transitive closure, including the function itself. A BTreeSet
        // gives the deterministic order the hash needs.
        let mut closure: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = vec![name];
        while let Some(n) = stack.pop() {
            if !closure.insert(n) {
                continue;
            }
            if let Some(cs) = callees.get(n) {
                stack.extend(cs.iter().map(String::as_str));
            }
        }
        let mut buf = Vec::new();
        for n in &closure {
            buf.extend_from_slice(n.as_bytes());
            buf.push(0);
            buf.extend_from_slice(printed[n].as_bytes());
            buf.push(0);
        }
        let mut h = majic_types::wire::fnv1a(&buf);
        if h == DEFAULT_NS {
            // The default namespace is reserved for out-of-session work;
            // remap the (astronomically unlikely) collision.
            h = 1;
        }
        hashes.insert(name.clone(), h);
    }
    hashes
}

// The whole point of the service split: the service crosses threads,
// and each thread mints (or is handed) its own sessions.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<CompilerService>();
    assert_send::<Session>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn src_a() -> &'static str {
        "function y = helper(x)\ny = x + 1;\nfunction y = outer(x)\ny = helper(x) * 2;\n"
    }

    #[test]
    fn closure_hash_changes_ripple_to_callers() {
        let mut s = CompilerService::new().session();
        s.load_source(src_a()).unwrap();
        let h_helper = s.ns("helper");
        let h_outer = s.ns("outer");
        assert_ne!(h_helper, DEFAULT_NS);
        assert_ne!(h_outer, DEFAULT_NS);
        // Redefining the callee moves BOTH namespaces.
        s.load_source("function y = helper(x)\ny = x + 2;\n")
            .unwrap();
        assert_ne!(s.ns("helper"), h_helper);
        assert_ne!(s.ns("outer"), h_outer);
        // Reloading identical source moves neither.
        let h2_helper = s.ns("helper");
        s.load_source("function y = helper(x)\ny = x + 2;\n")
            .unwrap();
        assert_eq!(s.ns("helper"), h2_helper);
    }

    #[test]
    fn same_source_sessions_share_compiled_code() {
        let service = CompilerService::new();
        let mut a = service.session();
        let mut b = service.session();
        a.load_source(src_a()).unwrap();
        b.load_source(src_a()).unwrap();
        assert_eq!(
            a.call("outer", &[3.0f64.into()], 1).unwrap()[0]
                .to_scalar()
                .unwrap(),
            8.0
        );
        let stats_before = service.repository().stats();
        assert_eq!(
            b.call("outer", &[3.0f64.into()], 1).unwrap()[0]
                .to_scalar()
                .unwrap(),
            8.0
        );
        let stats_after = service.repository().stats();
        // B's call dispatched A's compiled version: a shared hit, and no
        // new top-level insert beyond what A produced.
        assert!(stats_after.shared_hits > stats_before.shared_hits);
    }

    #[test]
    fn redefinition_stays_session_local() {
        let service = CompilerService::new();
        let mut a = service.session();
        let mut b = service.session();
        let src = "function y = f(x)\ny = x * 10;\n";
        a.load_source(src).unwrap();
        b.load_source(src).unwrap();
        assert_eq!(
            a.call("f", &[2.0f64.into()], 1).unwrap()[0]
                .to_scalar()
                .unwrap(),
            20.0
        );
        // B redefines; A must keep its original behavior.
        b.load_source("function y = f(x)\ny = x * 100;\n").unwrap();
        assert_eq!(
            b.call("f", &[2.0f64.into()], 1).unwrap()[0]
                .to_scalar()
                .unwrap(),
            200.0
        );
        assert_eq!(
            a.call("f", &[2.0f64.into()], 1).unwrap()[0]
                .to_scalar()
                .unwrap(),
            20.0
        );
    }

    #[test]
    fn session_exit_leaves_namespace_warm() {
        let service = CompilerService::new();
        {
            let mut a = service.session();
            a.load_source(src_a()).unwrap();
            a.call("outer", &[3.0f64.into()], 1).unwrap();
        } // a drops: refcounts released, versions kept
        let versions_after_drop = service.repository().stats().inserts;
        assert!(versions_after_drop > 0);
        let mut b = service.session();
        b.load_source(src_a()).unwrap();
        let misses_before = service.repository().stats().misses;
        b.call("outer", &[3.0f64.into()], 1).unwrap();
        let stats = service.repository().stats();
        assert_eq!(
            stats.misses, misses_before,
            "warm session's first call must dispatch the kept version"
        );
        assert!(stats.shared_hits > 0);
    }
}
