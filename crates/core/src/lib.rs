//! **MaJIC** — *MATLAB Just-In-time Compiler* — reproduced in Rust after
//! Almási & Padua, PLDI 2002.
//!
//! MaJIC looks like MATLAB: an interactive front end interprets command
//! input, but function calls are deferred to a *code repository* of
//! compiled versions. On a repository miss the fast **JIT** pipeline
//! compiles the function for the invocation's exact type signature; ahead
//! of time, the **speculative** pipeline guesses likely signatures from
//! syntactic type hints and fills the repository with aggressively
//! optimized code, hiding compilation latency. The repository's
//! signature check (`Qi ⊑ Ti`) guarantees a wrong guess can cost
//! performance but never correctness.
//!
//! # Quick start
//!
//! ```
//! use majic::{ExecMode, Majic};
//!
//! let mut session = Majic::with_mode(ExecMode::Jit);
//! session
//!     .load_source("function p = poly(x)\np = x.^5 + 3*x + 2;\n")
//!     .unwrap();
//! let out = session.call("poly", &[2.0f64.into()], 1).unwrap();
//! assert_eq!(out[0].to_scalar().unwrap(), 40.0);
//! ```
//!
//! # Service and sessions
//!
//! [`Majic`] is the single-user facade: one service, one session, one
//! struct. Multi-user embedders hold a shared [`CompilerService`] — the
//! process-wide repository, background pools, cache, and audit switch —
//! and mint any number of concurrent [`Session`]s against it, each from
//! its own thread. Sessions that loaded the same source share compiled
//! code instantly; a session that redefines a function moves to fresh
//! namespaces without disturbing anyone else (see [`CompilerService`]).
//!
//! ```
//! use majic::CompilerService;
//!
//! let service = CompilerService::new();
//! let mut a = service.session();
//! let mut b = service.session();
//! a.load_source("function y = sq(x)\ny = x * x;\n").unwrap();
//! b.load_source("function y = sq(x)\ny = x * x;\n").unwrap();
//! a.call("sq", &[3.0f64.into()], 1).unwrap(); // compiles
//! b.call("sq", &[3.0f64.into()], 1).unwrap(); // reuses a's version
//! assert!(service.repository().stats().shared_hits > 0);
//! ```
//!
//! # Execution modes
//!
//! | mode | compile when | pipeline | models |
//! |---|---|---|---|
//! | [`ExecMode::Interpret`] | never | — | MATLAB 6 interpreter (baseline `ti`) |
//! | [`ExecMode::Mcc`] | on miss | generic calls | Mathworks `mcc` |
//! | [`ExecMode::Jit`] | on miss | fast selection + linear scan | MaJIC JIT (compile time counts) |
//! | [`ExecMode::Spec`] | ahead of time ([`Session::speculate_all`]) | optimizing backend | MaJIC speculative |
//! | [`ExecMode::Falcon`] | on miss, exact signature | optimizing backend | FALCON batch compiler |
//!
//! # Warm start
//!
//! Attach a persistent cache ([`Session::attach_cache`]) and the service
//! reloads previously compiled versions from disk, so the first call of
//! a warm session skips JIT latency entirely; [`Session::save_cache`] (or
//! service drop) flushes new versions back. Stale or damaged caches
//! degrade to a cold start — see `docs/CACHE_FORMAT.md` for the
//! integrity gates.

pub mod diff;
mod engine;
pub mod env;
mod service;
mod spec;

pub use diff::{DiffCase, DiffReport, Divergence, DivergenceKind, ModeOutcome};
pub use engine::{
    CacheReport, EngineOptions, EngineOptionsBuilder, ExecMode, Explanation, Majic, MajicBuilder,
    PhaseTimes, Platform, TierOptions,
};
pub use majic_repo::cache::{LoadReport, RepoCache};
pub use majic_repo::{RepoStats, Tier};
pub use service::{Background, BackgroundStats, CompilerService, Session};
pub use spec::{SpecConfig, SpecRecord, SpecStats, SpecWorkerPool, DEFAULT_RECORD_CAPACITY};

pub use majic_infer::InferOptions;
pub use majic_runtime::{Matrix, RuntimeError, RuntimeResult, Value};
pub use majic_vm::RegAllocMode;
