//! **MaJIC** — *MATLAB Just-In-time Compiler* — reproduced in Rust after
//! Almási & Padua, PLDI 2002.
//!
//! MaJIC looks like MATLAB: an interactive front end interprets command
//! input, but function calls are deferred to a *code repository* of
//! compiled versions. On a repository miss the fast **JIT** pipeline
//! compiles the function for the invocation's exact type signature; ahead
//! of time, the **speculative** pipeline guesses likely signatures from
//! syntactic type hints and fills the repository with aggressively
//! optimized code, hiding compilation latency. The repository's
//! signature check (`Qi ⊑ Ti`) guarantees a wrong guess can cost
//! performance but never correctness.
//!
//! # Quick start
//!
//! ```
//! use majic::{ExecMode, Majic};
//!
//! let mut session = Majic::with_mode(ExecMode::Jit);
//! session
//!     .load_source("function p = poly(x)\np = x.^5 + 3*x + 2;\n")
//!     .unwrap();
//! let out = session.call("poly", &[2.0f64.into()], 1).unwrap();
//! assert_eq!(out[0].to_scalar().unwrap(), 40.0);
//! ```
//!
//! # Execution modes
//!
//! | mode | compile when | pipeline | models |
//! |---|---|---|---|
//! | [`ExecMode::Interpret`] | never | — | MATLAB 6 interpreter (baseline `ti`) |
//! | [`ExecMode::Mcc`] | on miss | generic calls | Mathworks `mcc` |
//! | [`ExecMode::Jit`] | on miss | fast selection + linear scan | MaJIC JIT (compile time counts) |
//! | [`ExecMode::Spec`] | ahead of time ([`Majic::speculate_all`]) | optimizing backend | MaJIC speculative |
//! | [`ExecMode::Falcon`] | on miss, exact signature | optimizing backend | FALCON batch compiler |
//!
//! # Warm start
//!
//! Attach a persistent cache ([`Majic::attach_cache`]) and the session
//! reloads previously compiled versions from disk, so the first call of
//! a warm session skips JIT latency entirely; [`Majic::save_cache`] (or
//! drop) flushes new versions back. Stale or damaged caches degrade to a
//! cold start — see `docs/CACHE_FORMAT.md` for the integrity gates.

pub mod diff;
mod engine;
mod spec;

pub use diff::{DiffCase, DiffReport, Divergence, DivergenceKind, ModeOutcome};
pub use engine::{
    CacheReport, EngineOptions, ExecMode, Explanation, Majic, PhaseTimes, Platform, TierOptions,
};
pub use majic_repo::cache::{LoadReport, RepoCache};
pub use majic_repo::{RepoStats, Tier};
pub use spec::{SpecConfig, SpecRecord, SpecStats, SpecWorkerPool, DEFAULT_RECORD_CAPACITY};

pub use majic_infer::InferOptions;
pub use majic_runtime::{Matrix, RuntimeError, RuntimeResult, Value};
pub use majic_vm::RegAllocMode;
