//! Trace exporters: human-readable tree report, Chrome trace-event
//! JSON, and folded stacks for flamegraph tools.

use crate::{EventKind, SpanEvent, TraceSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Aggregate of all events sharing one `path`.
#[derive(Clone, Copy, Debug, Default)]
struct PathAgg {
    count: u64,
    total_ns: u64,
}

fn aggregate(events: &[SpanEvent]) -> BTreeMap<String, PathAgg> {
    let mut agg: BTreeMap<String, PathAgg> = BTreeMap::new();
    for e in events {
        let a = agg.entry(e.path.clone()).or_default();
        a.count += 1;
        a.total_ns += e.dur_ns;
    }
    agg
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Render the human-readable report: a span tree (count, total, mean
/// per path, indented by nesting depth), then counters, then
/// histograms.
pub fn render_report(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== majic trace report ==");

    let agg = aggregate(&snap.events);
    if agg.is_empty() {
        let _ = writeln!(out, "(no spans recorded)");
    } else {
        let _ = writeln!(out, "\nspans (per path):");
        // BTreeMap order visits parents before children ("a" < "a;b"),
        // and the `;` count is the depth.
        for (path, a) in &agg {
            let depth = path.matches(';').count();
            let leaf = path.rsplit(';').next().unwrap_or(path);
            let mean = a.total_ns / a.count.max(1);
            let _ = writeln!(
                out,
                "{:indent$}{leaf:<24} {:>7}×  total {:>12}  mean {:>12}",
                "",
                a.count,
                fmt_ns(a.total_ns),
                fmt_ns(mean),
                indent = depth * 2,
            );
        }
    }

    let live: Vec<_> = snap.counters.iter().filter(|c| c.value != 0).collect();
    if !live.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for c in live {
            let _ = writeln!(out, "  {:<32} {:>12}", c.name, c.value);
        }
    }

    let live: Vec<_> = snap.histograms.iter().filter(|h| h.count != 0).collect();
    if !live.is_empty() {
        let _ = writeln!(out, "\nhistograms:");
        for h in live {
            let _ = writeln!(
                out,
                "  {:<32} {:>7}×  mean {:>10.1}  p50 ≤ {:>6}  p99 ≤ {:>6}",
                h.name,
                h.count,
                h.mean(),
                h.quantile_bound(0.5),
                h.quantile_bound(0.99),
            );
        }
    }

    if snap.dropped > 0 {
        let _ = writeln!(
            out,
            "\n({} events dropped at the {}-event collector cap)",
            snap.dropped,
            crate::MAX_EVENTS
        );
    }
    out
}

pub(crate) fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_args(args: &[(&'static str, String)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(k, out);
        out.push_str("\":\"");
        json_escape(v, out);
        out.push('"');
    }
    out.push('}');
}

/// Serialize the snapshot as Chrome trace-event JSON (the
/// `{"traceEvents": […]}` object format), loadable in `chrome://tracing`
/// and Perfetto. Spans become complete (`ph:"X"`) events, instants
/// become `ph:"i"` events, and each thread gets a `thread_name`
/// metadata record. Timestamps/durations are microseconds with
/// nanosecond precision kept in the fraction.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(snap.events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: &str, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(s);
    };

    let mut threads: BTreeMap<u64, &str> = BTreeMap::new();
    for e in &snap.events {
        threads.entry(e.tid).or_insert(&e.thread_name);
    }
    for (tid, name) in &threads {
        let mut s = String::new();
        s.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(s, "{tid}");
        s.push_str(",\"args\":{\"name\":\"");
        json_escape(name, &mut s);
        s.push_str("\"}}");
        emit(&s, &mut out);
    }

    for e in &snap.events {
        let mut s = String::new();
        s.push_str("{\"name\":\"");
        json_escape(e.name, &mut s);
        let _ = write!(
            s,
            "\",\"cat\":\"majic\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
            e.tid,
            e.ts_ns as f64 / 1e3
        );
        match e.kind {
            EventKind::Span => {
                let _ = write!(s, ",\"ph\":\"X\",\"dur\":{:.3}", e.dur_ns as f64 / 1e3);
            }
            EventKind::Instant => s.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        s.push_str(",\"args\":");
        write_args(&e.args, &mut s);
        s.push('}');
        emit(&s, &mut out);
    }
    if snap.dropped > 0 {
        // A truncated trace must say so inside the trace itself, where
        // the person reading it in Perfetto will actually look.
        let last_ts = snap.events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\":\"dropped events\",\"cat\":\"majic\",\"ph\":\"i\",\"s\":\"g\",\
             \"pid\":1,\"tid\":0,\"ts\":{:.3},\"args\":{{\"dropped\":\"{}\",\
             \"note\":\"trace truncated at the {}-event collector cap\"}}}}",
            last_ts as f64 / 1e3,
            snap.dropped,
            crate::MAX_EVENTS
        );
        emit(&s, &mut out);
    }
    out.push_str("]}");
    out
}

/// Write the current snapshot as Chrome trace-event JSON to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(&crate::snapshot()))
}

/// Render folded stacks: one line per call path with its **self** time
/// in microseconds — the input format of `flamegraph.pl` and
/// `inferno-flamegraph`. Self time is a path's total minus the total of
/// its direct children (clamped at zero: children measured on other
/// threads, e.g. queue waits, may exceed the parent).
pub fn folded_stacks(snap: &TraceSnapshot) -> String {
    let agg = aggregate(
        &snap
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .cloned()
            .collect::<Vec<_>>(),
    );
    let mut children_total: BTreeMap<&str, u64> = BTreeMap::new();
    for (path, a) in &agg {
        if let Some((parent, _)) = path.rsplit_once(';') {
            *children_total.entry(parent).or_default() += a.total_ns;
        }
    }
    let mut out = String::new();
    for (path, a) in &agg {
        let kids = children_total.get(path.as_str()).copied().unwrap_or(0);
        let self_us = a.total_ns.saturating_sub(kids) / 1_000;
        let _ = writeln!(out, "{path} {self_us}");
    }
    if snap.dropped > 0 {
        // Comment lines would break flamegraph tools, so the truncation
        // warning is a synthetic single-frame stack: it shows up in the
        // flamegraph as its own (zero-width) frame and survives
        // flamegraph.pl / inferno unmodified.
        let _ = writeln!(out, "[dropped-{}-events-at-cap] 0", snap.dropped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(path: &str, ts: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name: "x",
            path: path.to_owned(),
            ts_ns: ts,
            dur_ns: dur,
            tid: 1,
            thread_name: Arc::from("main"),
            kind: EventKind::Span,
            args: vec![],
        }
    }

    #[test]
    fn folded_subtracts_children() {
        let snap = TraceSnapshot {
            events: vec![ev("a", 0, 10_000), ev("a;b", 1_000, 4_000)],
            ..TraceSnapshot::default()
        };
        let folded = folded_stacks(&snap);
        assert!(folded.contains("a 6\n"), "{folded}");
        assert!(folded.contains("a;b 4\n"), "{folded}");
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn chrome_trace_surfaces_dropped_events() {
        let snap = TraceSnapshot {
            events: vec![ev("a", 0, 1_000)],
            dropped: 7,
            ..TraceSnapshot::default()
        };
        let json = chrome_trace_json(&snap);
        assert!(json.contains("\"name\":\"dropped events\""), "{json}");
        assert!(json.contains("\"dropped\":\"7\""), "{json}");
        let clean = chrome_trace_json(&TraceSnapshot {
            events: vec![ev("a", 0, 1_000)],
            ..TraceSnapshot::default()
        });
        assert!(!clean.contains("dropped events"), "{clean}");
    }

    #[test]
    fn folded_stacks_surface_dropped_events() {
        let snap = TraceSnapshot {
            events: vec![ev("a", 0, 1_000)],
            dropped: 3,
            ..TraceSnapshot::default()
        };
        let folded = folded_stacks(&snap);
        assert!(folded.contains("[dropped-3-events-at-cap] 0\n"), "{folded}");
        // Every line must stay parseable as `stack count`.
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').expect("stack line");
            count.parse::<u64>().expect("numeric count");
        }
        let clean = folded_stacks(&TraceSnapshot {
            events: vec![ev("a", 0, 1_000)],
            ..TraceSnapshot::default()
        });
        assert!(!clean.contains("dropped"), "{clean}");
    }

    #[test]
    fn report_mentions_paths_and_counts() {
        let snap = TraceSnapshot {
            events: vec![ev("call", 0, 5_000), ev("call;infer", 0, 2_000)],
            ..TraceSnapshot::default()
        };
        let report = render_report(&snap);
        assert!(report.contains("call"));
        assert!(report.contains("infer"));
        assert!(report.contains("1×"));
    }
}
