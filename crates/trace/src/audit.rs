//! The compilation audit log: a bounded, always-on flight recorder that
//! explains *why* each compiled version of a function looks the way it
//! does.
//!
//! Spans and counters (the rest of this crate) answer "where did the
//! time go". This module answers the other observability question the
//! engine's silent mode-picking raises: *which decision went wrong* when
//! a workload is slow — a type widened to `⊤` at a loop header, an
//! inlining opportunity rejected, a persistent-cache entry bounced into
//! one of the `reject.*` buckets, a speculative version published after
//! the first call already paid for a JIT compile.
//!
//! One [`CompilationRecord`] is accumulated per compilation attempt (so
//! per (function, signature) lifecycle event): the trigger, every
//! inference widening with its reason, every inliner verdict with its
//! reason, a code-generation summary (`SlotTake`/`SlotMov` counts,
//! register pressure, spills), the outcome, and — for background jobs —
//! the speculation queue wait. Cache interactions, interpreter
//! fallbacks, and VM runtime errors that are not tied to one
//! compilation are recorded as [`SessionEvent`]s.
//!
//! # Recording model
//!
//! The engine opens a scope with [`begin`] on the thread that is about
//! to compile; instrumentation points deep in `infer`, `analysis`,
//! `codegen` etc. append to the thread-local scratch record through
//! [`widening`], [`inline_verdict`], [`codegen_summary`], and
//! [`lifecycle`]; the engine closes the scope with [`commit`], which
//! publishes the finished record into a global bounded ring. Records
//! from background speculation workers are attributed correctly because
//! the scratch is thread-local.
//!
//! # Overhead budget
//!
//! The same discipline as spans: disabled ([`enabled`] false), every
//! entry point is one relaxed atomic load and an immediate return — no
//! allocation, no locks, and no evaluation of the caller's closure
//! (asserted by the `zero_alloc` integration test). Enabled, the ring
//! bounds ([`MAX_RECORDS`], [`MAX_SESSION_EVENTS`], and the per-record
//! caps) keep an always-on session from growing without bound: the
//! newest data wins and evictions are counted, never silent.
//!
//! The record schema and its JSON rendering are documented in
//! `docs/EXPLAIN_FORMAT.md`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide master switch for audit recording (independent of span
/// tracing, so a production session can keep the flight recorder on
/// without paying for event collection).
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Number of compiler services that currently request auditing.
/// Recording is on while *either* the process-wide switch or at least
/// one service holds it open — so two services in one process never
/// fight over a single boolean (see [`retain_service`]).
static ENABLED_SERVICES: AtomicUsize = AtomicUsize::new(0);
/// Finished compilation records, oldest first.
static RECORDS: Mutex<VecDeque<CompilationRecord>> = Mutex::new(VecDeque::new());
/// Session events, oldest first.
static EVENTS: Mutex<VecDeque<SessionEvent>> = Mutex::new(VecDeque::new());
/// Records evicted from the ring (flight-recorder semantics: newest
/// kept).
static EVICTED_RECORDS: AtomicU64 = AtomicU64::new(0);
/// Session events evicted from the ring.
static EVICTED_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Global commit order across threads.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Ring capacity for finished [`CompilationRecord`]s.
pub const MAX_RECORDS: usize = 4096;
/// Ring capacity for [`SessionEvent`]s.
pub const MAX_SESSION_EVENTS: usize = 4096;
/// Per-record cap on widening notes, inline verdicts, and lifecycle
/// notes (each list individually). Overflow is counted in
/// [`CompilationRecord::truncated`].
pub const MAX_NOTES_PER_RECORD: usize = 128;

/// Is audit recording on? True while the process-wide switch is set
/// *or* any service holds a [`retain_service`] reference. The fast path
/// stays one relaxed atomic load: the refcount is only consulted when
/// the process-wide switch is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || ENABLED_SERVICES.load(Ordering::Relaxed) > 0
}

/// Turn the process-wide audit switch on or off. Service-held
/// references ([`retain_service`]) are unaffected — recording stays on
/// while any service still wants it.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is the *process-wide* switch on (ignoring service references)?
/// Engines use this to decide whether a record they are about to open
/// was requested by anyone: their own service flag or this switch.
#[inline]
pub fn process_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A compiler service turned its audit flag on: hold recording open.
/// Paired with [`release_service`]; the count keeps independent
/// services from fighting over one process-global boolean.
pub fn retain_service() {
    ENABLED_SERVICES.fetch_add(1, Ordering::Relaxed);
}

/// A compiler service turned its audit flag off (or was dropped while
/// auditing): release one [`retain_service`] reference.
pub fn release_service() {
    // Saturating: a stray release (service flag toggled twice) must not
    // wrap the count and pin recording on forever.
    let _ =
        ENABLED_SERVICES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
}

/// One inference widening: a variable's type gave up precision, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Widening {
    /// Variable name (empty for temporaries the table cannot name).
    pub variable: String,
    /// Rendered type before widening.
    pub from: String,
    /// Rendered type after widening.
    pub to: String,
    /// Why precision was lost, e.g. `join at loop header: range still
    /// moving at iteration cap`.
    pub reason: String,
}

/// One inliner decision about one call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InlineVerdict {
    /// The callee the verdict is about.
    pub callee: String,
    /// Was the call spliced in?
    pub inlined: bool,
    /// The reason, for both outcomes (`inlined (5 statements)`,
    /// `not inlined: recursion depth limit reached`, …).
    pub reason: String,
}

/// Code-generation summary of the finished executable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodegenSummary {
    /// Instructions across all basic blocks after optimization.
    pub instructions: u64,
    /// `SlotMov` count (value copies between frame slots).
    pub slot_movs: u64,
    /// `SlotTake` count (dead-temp moves that elide a copy).
    pub slot_takes: u64,
    /// `F` (real scalar) registers in use — register pressure.
    pub f_regs: u32,
    /// `C` (complex scalar) registers in use.
    pub c_regs: u32,
    /// Whole-value frame slots.
    pub slots: u32,
    /// `F` spill slots introduced by register allocation.
    pub f_spills: u32,
    /// `C` spill slots introduced by register allocation.
    pub c_spills: u32,
}

/// A free-form lifecycle note inside one compilation (phase milestones,
/// pipeline selection, oddities worth surfacing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifecycleNote {
    /// Short machine-matchable kind, e.g. `pipeline`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// One finished compilation attempt (or cache install) of one
/// (function, signature) pair.
#[derive(Clone, Debug, Default)]
pub struct CompilationRecord {
    /// Function name.
    pub function: String,
    /// Rendered type signature the version was produced for.
    pub signature: String,
    /// What started this compilation: `first_call`, `recompile_widened`,
    /// `recompile_hot`, `spec_worker`, `spec_sync`, or `warm_cache`.
    pub trigger: String,
    /// Repository tier the produced version was installed at (0 = fast
    /// JIT, 1 = optimizing backend). Absent when the compilation never
    /// produced an installable version.
    pub tier: Option<u8>,
    /// How it ended: `published (…)`, `failed: …`, or
    /// `installed from persistent cache`.
    pub outcome: String,
    /// Inference widenings, in the order they happened.
    pub widenings: Vec<Widening>,
    /// Inliner verdicts, in call-site order.
    pub inlining: Vec<InlineVerdict>,
    /// Code-generation summary (absent when codegen never ran).
    pub codegen: Option<CodegenSummary>,
    /// Free-form lifecycle notes.
    pub notes: Vec<LifecycleNote>,
    /// Notes dropped at [`MAX_NOTES_PER_RECORD`] across all three lists.
    pub truncated: u64,
    /// Session the compilation was performed for (multi-session
    /// services attribute foreground compiles and background jobs to
    /// the session that requested them; absent for single-tenant use).
    pub session: Option<u64>,
    /// Background queue wait in nanoseconds (speculation jobs only).
    pub queue_wait_ns: Option<u64>,
    /// Wall-clock compilation time in nanoseconds.
    pub compile_ns: u64,
    /// Global commit order (monotonic across threads).
    pub seq: u64,
    /// Commit time, nanoseconds since [`crate::epoch`].
    pub ts_ns: u64,
}

/// A session-level audit event not tied to a single compilation: cache
/// accepts/rejects, repository invalidations, interpreter fallbacks, VM
/// runtime errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionEvent {
    /// Machine-matchable kind, e.g. `cache.reject.fingerprint`,
    /// `fallback.interpreter`, `repo.invalidate`, `vm.error`.
    pub kind: &'static str,
    /// Function the event concerns (empty for whole-file / session-wide
    /// events such as a cache fingerprint rejection).
    pub function: String,
    /// Human-readable detail, including the reason.
    pub detail: String,
    /// Global order (shared sequence with compilation records).
    pub seq: u64,
    /// Event time, nanoseconds since [`crate::epoch`].
    pub ts_ns: u64,
}

thread_local! {
    /// The compilation record under construction on this thread.
    static CURRENT: RefCell<Option<CompilationRecord>> = const { RefCell::new(None) };
}

/// Open an audit scope for a compilation of `function` on this thread.
/// No-op when auditing is disabled. An unfinished scope from a previous
/// panic-unwound compile is silently replaced.
pub fn begin(function: &str) {
    if !enabled() {
        return;
    }
    let rec = CompilationRecord {
        function: function.to_owned(),
        ..CompilationRecord::default()
    };
    CURRENT.with(|c| *c.borrow_mut() = Some(rec));
}

/// Abandon the open scope without publishing anything.
pub fn discard() {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

fn with_current(f: impl FnOnce(&mut CompilationRecord)) {
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Record an inference widening into the open scope. The closure is
/// only evaluated when auditing is enabled and a scope is open.
#[inline]
pub fn widening(f: impl FnOnce() -> Widening) {
    if !enabled() {
        return;
    }
    with_current(|rec| {
        if rec.widenings.len() < MAX_NOTES_PER_RECORD {
            rec.widenings.push(f());
        } else {
            rec.truncated += 1;
        }
    });
}

/// Record an inliner verdict into the open scope.
#[inline]
pub fn inline_verdict(f: impl FnOnce() -> InlineVerdict) {
    if !enabled() {
        return;
    }
    with_current(|rec| {
        if rec.inlining.len() < MAX_NOTES_PER_RECORD {
            rec.inlining.push(f());
        } else {
            rec.truncated += 1;
        }
    });
}

/// Record the repository tier of the version this compilation produced
/// (0 or 1; last write wins).
#[inline]
pub fn tier(t: u8) {
    if !enabled() {
        return;
    }
    with_current(|rec| rec.tier = Some(t));
}

/// Record the session id this compilation is attributed to (last write
/// wins).
#[inline]
pub fn session_id(id: u64) {
    if !enabled() {
        return;
    }
    with_current(|rec| rec.session = Some(id));
}

/// Record the code-generation summary into the open scope (last write
/// wins — a compilation runs codegen once).
#[inline]
pub fn codegen_summary(f: impl FnOnce() -> CodegenSummary) {
    if !enabled() {
        return;
    }
    with_current(|rec| rec.codegen = Some(f()));
}

/// Record a free-form lifecycle note into the open scope.
#[inline]
pub fn lifecycle(kind: &'static str, f: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    with_current(|rec| {
        if rec.notes.len() < MAX_NOTES_PER_RECORD {
            rec.notes.push(LifecycleNote { kind, detail: f() });
        } else {
            rec.truncated += 1;
        }
    });
}

/// Close the open scope and publish the record. The closures are only
/// evaluated when auditing is enabled and a scope is open; with no open
/// scope this is a no-op (the matching [`begin`] was skipped because
/// auditing was off at the time).
pub fn commit(
    signature: impl FnOnce() -> String,
    trigger: &str,
    outcome: impl FnOnce() -> String,
    queue_wait_ns: Option<u64>,
    compile_ns: u64,
) {
    if !enabled() {
        return;
    }
    let Some(mut rec) = CURRENT.with(|c| c.borrow_mut().take()) else {
        return;
    };
    rec.signature = signature();
    rec.trigger = trigger.to_owned();
    rec.outcome = outcome();
    rec.queue_wait_ns = queue_wait_ns;
    rec.compile_ns = compile_ns;
    rec.seq = SEQ.fetch_add(1, Ordering::Relaxed);
    rec.ts_ns = crate::epoch().elapsed().as_nanos() as u64;
    let mut records = RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    while records.len() >= MAX_RECORDS {
        records.pop_front();
        EVICTED_RECORDS.fetch_add(1, Ordering::Relaxed);
    }
    records.push_back(rec);
}

/// Record a session-level event. The closure returns `(function,
/// detail)` and is only evaluated when auditing is enabled.
#[inline]
pub fn session_event(kind: &'static str, f: impl FnOnce() -> (String, String)) {
    if !enabled() {
        return;
    }
    let (function, detail) = f();
    let ev = SessionEvent {
        kind,
        function,
        detail,
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        ts_ns: crate::epoch().elapsed().as_nanos() as u64,
    };
    let mut events = EVENTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    while events.len() >= MAX_SESSION_EVENTS {
        events.pop_front();
        EVICTED_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
    events.push_back(ev);
}

/// Everything the audit recorder holds, cloned at one point in time.
#[derive(Clone, Debug, Default)]
pub struct AuditSnapshot {
    /// Finished compilation records, oldest first.
    pub records: Vec<CompilationRecord>,
    /// Session events, oldest first.
    pub events: Vec<SessionEvent>,
    /// Records evicted at the [`MAX_RECORDS`] ring bound.
    pub evicted_records: u64,
    /// Events evicted at the [`MAX_SESSION_EVENTS`] ring bound.
    pub evicted_events: u64,
}

/// Snapshot the audit recorder without clearing anything.
pub fn snapshot() -> AuditSnapshot {
    AuditSnapshot {
        records: RECORDS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect(),
        events: EVENTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect(),
        evicted_records: EVICTED_RECORDS.load(Ordering::Relaxed),
        evicted_events: EVICTED_EVENTS.load(Ordering::Relaxed),
    }
}

/// All retained records for one function, oldest first.
pub fn records_for(function: &str) -> Vec<CompilationRecord> {
    RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .filter(|r| r.function == function)
        .cloned()
        .collect()
}

/// All retained session events concerning `function`, plus session-wide
/// events (empty `function` field — e.g. whole-file cache rejections),
/// oldest first.
pub fn events_for(function: &str) -> Vec<SessionEvent> {
    EVENTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .filter(|e| e.function == function || e.function.is_empty())
        .cloned()
        .collect()
}

/// Clear all records and events and zero the eviction counters. Open
/// scopes on other threads still commit afterwards; call at quiescent
/// points.
pub fn reset() {
    RECORDS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    EVENTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    EVICTED_RECORDS.store(0, Ordering::Relaxed);
    EVICTED_EVENTS.store(0, Ordering::Relaxed);
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn render_record(out: &mut String, r: &CompilationRecord) {
    let _ = writeln!(
        out,
        "  [{}] {}({}) — {} → {}{}{} in {}{}",
        r.seq,
        r.function,
        r.signature,
        r.trigger,
        r.outcome,
        match r.tier {
            Some(t) => format!(" [tier-{t}]"),
            None => String::new(),
        },
        match r.session {
            Some(s) => format!(" [session {s}]"),
            None => String::new(),
        },
        fmt_ns(r.compile_ns),
        match r.queue_wait_ns {
            Some(w) => format!(" (queued {})", fmt_ns(w)),
            None => String::new(),
        },
    );
    for n in &r.notes {
        let _ = writeln!(out, "    note  {}: {}", n.kind, n.detail);
    }
    for w in &r.widenings {
        let _ = writeln!(
            out,
            "    widen {}: {} → {}  ({})",
            if w.variable.is_empty() {
                "<tmp>"
            } else {
                &w.variable
            },
            w.from,
            w.to,
            w.reason
        );
    }
    for v in &r.inlining {
        let _ = writeln!(
            out,
            "    inline {} {}: {}",
            if v.inlined { "✓" } else { "✗" },
            v.callee,
            v.reason
        );
    }
    if let Some(cg) = &r.codegen {
        let _ = writeln!(
            out,
            "    codegen {} insts, slot_mov {}, slot_take {}, regs F{}/C{}, slots {}, spills F{}/C{}",
            cg.instructions,
            cg.slot_movs,
            cg.slot_takes,
            cg.f_regs,
            cg.c_regs,
            cg.slots,
            cg.f_spills,
            cg.c_spills
        );
    }
    if r.truncated > 0 {
        let _ = writeln!(
            out,
            "    ({} notes dropped at the {MAX_NOTES_PER_RECORD}-per-record cap)",
            r.truncated
        );
    }
}

fn render_event(out: &mut String, e: &SessionEvent) {
    let _ = writeln!(
        out,
        "  [{}] {} {}{}",
        e.seq,
        e.kind,
        if e.function.is_empty() {
            "(session)"
        } else {
            &e.function
        },
        if e.detail.is_empty() {
            String::new()
        } else {
            format!(" — {}", e.detail)
        }
    );
}

/// Render the per-function explain report: every retained compilation of
/// `function` (use [`records_for`] / [`events_for`] to gather the
/// inputs).
pub fn render_function_report(
    function: &str,
    records: &[CompilationRecord],
    events: &[SessionEvent],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== explain {function} ==");
    if records.is_empty() {
        let _ = writeln!(
            out,
            "(no compilation records — not called in a compiled mode yet, or auditing was off)"
        );
    }
    for r in records {
        render_record(&mut out, r);
    }
    if !events.is_empty() {
        let _ = writeln!(out, "session events:");
        for e in events {
            render_event(&mut out, e);
        }
    }
    out
}

/// Render the whole-session audit report: records grouped by function
/// (first-seen order), then session events.
pub fn render_report(snap: &AuditSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== majic compilation audit ==");
    if snap.records.is_empty() && snap.events.is_empty() {
        let _ = writeln!(out, "(no audit records)");
        return out;
    }
    let mut order: Vec<&str> = Vec::new();
    for r in &snap.records {
        if !order.contains(&r.function.as_str()) {
            order.push(&r.function);
        }
    }
    for f in order {
        let _ = writeln!(out, "{f}:");
        for r in snap.records.iter().filter(|r| r.function == f) {
            render_record(&mut out, r);
        }
    }
    if !snap.events.is_empty() {
        let _ = writeln!(out, "session events:");
        for e in &snap.events {
            render_event(&mut out, e);
        }
    }
    if snap.evicted_records > 0 || snap.evicted_events > 0 {
        let _ = writeln!(
            out,
            "({} records / {} events evicted at the flight-recorder bound)",
            snap.evicted_records, snap.evicted_events
        );
    }
    out
}

fn json_str(s: &str, out: &mut String) {
    out.push('"');
    crate::export::json_escape(s, out);
    out.push('"');
}

fn json_record(r: &CompilationRecord, out: &mut String) {
    out.push_str("{\"function\":");
    json_str(&r.function, out);
    out.push_str(",\"signature\":");
    json_str(&r.signature, out);
    out.push_str(",\"trigger\":");
    json_str(&r.trigger, out);
    out.push_str(",\"outcome\":");
    json_str(&r.outcome, out);
    let _ = write!(out, ",\"seq\":{},\"ts_ns\":{}", r.seq, r.ts_ns);
    let _ = write!(out, ",\"compile_ns\":{}", r.compile_ns);
    if let Some(t) = r.tier {
        let _ = write!(out, ",\"tier\":{t}");
    }
    if let Some(s) = r.session {
        let _ = write!(out, ",\"session\":{s}");
    }
    if let Some(w) = r.queue_wait_ns {
        let _ = write!(out, ",\"queue_wait_ns\":{w}");
    }
    out.push_str(",\"widenings\":[");
    for (i, w) in r.widenings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"variable\":");
        json_str(&w.variable, out);
        out.push_str(",\"from\":");
        json_str(&w.from, out);
        out.push_str(",\"to\":");
        json_str(&w.to, out);
        out.push_str(",\"reason\":");
        json_str(&w.reason, out);
        out.push('}');
    }
    out.push_str("],\"inlining\":[");
    for (i, v) in r.inlining.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"callee\":");
        json_str(&v.callee, out);
        let _ = write!(out, ",\"inlined\":{}", v.inlined);
        out.push_str(",\"reason\":");
        json_str(&v.reason, out);
        out.push('}');
    }
    out.push(']');
    if let Some(cg) = &r.codegen {
        let _ = write!(
            out,
            ",\"codegen\":{{\"instructions\":{},\"slot_movs\":{},\"slot_takes\":{},\"f_regs\":{},\"c_regs\":{},\"slots\":{},\"f_spills\":{},\"c_spills\":{}}}",
            cg.instructions,
            cg.slot_movs,
            cg.slot_takes,
            cg.f_regs,
            cg.c_regs,
            cg.slots,
            cg.f_spills,
            cg.c_spills
        );
    }
    out.push_str(",\"notes\":[");
    for (i, n) in r.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        json_str(n.kind, out);
        out.push_str(",\"detail\":");
        json_str(&n.detail, out);
        out.push('}');
    }
    out.push(']');
    if r.truncated > 0 {
        let _ = write!(out, ",\"truncated\":{}", r.truncated);
    }
    out.push('}');
}

/// Serialize an audit snapshot as a single JSON object (schema:
/// `docs/EXPLAIN_FORMAT.md`). Hand-rolled like the Chrome exporter —
/// the workspace is dependency-free.
pub fn audit_json(snap: &AuditSnapshot) -> String {
    let mut out = String::with_capacity(snap.records.len() * 256 + 256);
    out.push_str("{\"records\":[");
    for (i, r) in snap.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_record(r, &mut out);
    }
    out.push_str("],\"events\":[");
    for (i, e) in snap.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        json_str(e.kind, &mut out);
        out.push_str(",\"function\":");
        json_str(&e.function, &mut out);
        out.push_str(",\"detail\":");
        json_str(&e.detail, &mut out);
        let _ = write!(out, ",\"seq\":{},\"ts_ns\":{}}}", e.seq, e.ts_ns);
    }
    let _ = write!(
        out,
        "],\"evicted_records\":{},\"evicted_events\":{}}}",
        snap.evicted_records, snap.evicted_events
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize a full lifecycle through the thread-local scratch and
    /// check the published record. Audit state is process-global, so the
    /// test uses unique function names instead of resetting.
    #[test]
    fn scope_lifecycle_publishes_record() {
        set_enabled(true);
        begin("audit_test_fn");
        widening(|| Widening {
            variable: "s".into(),
            from: "int[0,0]".into(),
            to: "real".into(),
            reason: "join at loop header".into(),
        });
        inline_verdict(|| InlineVerdict {
            callee: "helper".into(),
            inlined: true,
            reason: "inlined (3 statements)".into(),
        });
        codegen_summary(|| CodegenSummary {
            instructions: 10,
            slot_takes: 2,
            ..CodegenSummary::default()
        });
        lifecycle("pipeline", || "jit".into());
        tier(0);
        commit(
            || "(real)".into(),
            "first_call",
            || "published".into(),
            None,
            1234,
        );

        let recs = records_for("audit_test_fn");
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.trigger, "first_call");
        assert_eq!(r.signature, "(real)");
        assert_eq!(r.widenings.len(), 1);
        assert_eq!(r.widenings[0].reason, "join at loop header");
        assert_eq!(r.inlining[0].callee, "helper");
        assert_eq!(r.codegen.unwrap().slot_takes, 2);
        assert_eq!(r.compile_ns, 1234);
        assert_eq!(r.tier, Some(0));

        let report = render_function_report("audit_test_fn", &recs, &[]);
        assert!(report.contains("join at loop header"), "{report}");
        assert!(report.contains("helper"), "{report}");
        assert!(report.contains("slot_take 2"), "{report}");
    }

    #[test]
    fn disabled_scope_records_nothing() {
        set_enabled(false);
        begin("audit_test_disabled");
        widening(|| panic!("closure must not run when disabled"));
        commit(
            || panic!("closure must not run when disabled"),
            "first_call",
            || panic!("closure must not run when disabled"),
            None,
            0,
        );
        set_enabled(true);
        assert!(records_for("audit_test_disabled").is_empty());
    }

    #[test]
    fn commit_without_scope_is_noop() {
        set_enabled(true);
        // A begin() skipped while disabled leaves no scope; the commit
        // closures must not be evaluated against a phantom record.
        CURRENT.with(|c| *c.borrow_mut() = None);
        commit(
            || "(sig)".into(),
            "first_call",
            || "published".into(),
            None,
            0,
        );
        assert!(!records_for("").iter().any(|r| r.signature == "(sig)"));
    }

    #[test]
    fn session_events_filter_by_function_and_include_session_wide() {
        set_enabled(true);
        session_event("cache.reject.fingerprint", || {
            (String::new(), "built by majic-0.0.0".into())
        });
        session_event("fallback.interpreter", || {
            ("audit_test_fb".into(), "reaches global".into())
        });
        session_event("fallback.interpreter", || {
            ("audit_test_other".into(), "reaches clear".into())
        });
        let evs = events_for("audit_test_fb");
        assert!(evs
            .iter()
            .any(|e| e.kind == "cache.reject.fingerprint" && e.function.is_empty()));
        assert!(evs
            .iter()
            .any(|e| e.kind == "fallback.interpreter" && e.function == "audit_test_fb"));
        assert!(!evs.iter().any(|e| e.function == "audit_test_other"));
    }

    #[test]
    fn per_record_caps_count_truncation() {
        set_enabled(true);
        begin("audit_test_caps");
        for i in 0..(MAX_NOTES_PER_RECORD + 5) {
            widening(|| Widening {
                variable: format!("v{i}"),
                from: "a".into(),
                to: "b".into(),
                reason: "r".into(),
            });
        }
        commit(|| "()".into(), "first_call", || "published".into(), None, 0);
        let recs = records_for("audit_test_caps");
        assert_eq!(recs[0].widenings.len(), MAX_NOTES_PER_RECORD);
        assert_eq!(recs[0].truncated, 5);
    }

    #[test]
    fn service_refcount_saturates_at_zero() {
        // Nothing else in this test binary touches the service count,
        // so it starts at zero here.
        assert_eq!(ENABLED_SERVICES.load(Ordering::Relaxed), 0);
        release_service(); // stray release must not wrap to usize::MAX
        assert_eq!(ENABLED_SERVICES.load(Ordering::Relaxed), 0);
        retain_service();
        retain_service();
        assert_eq!(ENABLED_SERVICES.load(Ordering::Relaxed), 2);
        release_service();
        release_service();
        assert_eq!(ENABLED_SERVICES.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn session_attribution_renders_and_serializes() {
        set_enabled(true);
        begin("audit_test_session");
        session_id(7);
        commit(
            || "(real)".into(),
            "first_call",
            || "published".into(),
            None,
            5,
        );
        let recs = records_for("audit_test_session");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].session, Some(7));
        let mut rendered = String::new();
        render_record(&mut rendered, &recs[0]);
        assert!(rendered.contains("[session 7]"), "{rendered}");
        let snap = AuditSnapshot {
            records: recs,
            ..AuditSnapshot::default()
        };
        assert!(audit_json(&snap).contains("\"session\":7"));
    }

    #[test]
    fn json_round_trips_structurally() {
        set_enabled(true);
        begin("audit_test_json");
        widening(|| Widening {
            variable: "x\"y".into(),
            from: "⊥".into(),
            to: "⊤".into(),
            reason: "quote \\ test".into(),
        });
        commit(
            || "(int 1×1)".into(),
            "spec_worker",
            || "published (optimized)".into(),
            Some(42),
            7,
        );
        let snap = AuditSnapshot {
            records: records_for("audit_test_json"),
            events: vec![SessionEvent {
                kind: "vm.error",
                function: "audit_test_json".into(),
                detail: "bad subscript".into(),
                seq: 1,
                ts_ns: 2,
            }],
            evicted_records: 0,
            evicted_events: 0,
        };
        let json = audit_json(&snap);
        // Structural sanity without a parser dependency here; the e2e
        // test parses this output with the testkit JSON parser.
        assert!(json.starts_with("{\"records\":["));
        assert!(json.contains("\"queue_wait_ns\":42"), "{json}");
        assert!(json.contains("\"kind\":\"vm.error\""), "{json}");
        assert!(json.contains("x\\\"y"), "{json}");
        assert!(json.ends_with("\"evicted_records\":0,\"evicted_events\":0}"));
    }
}
