//! **majic-trace** — unified tracing, metrics, and profiling for the
//! majic compilation pipeline.
//!
//! The paper's entire evaluation is observability: Figure 6 decomposes
//! JIT runtime into disambiguation / inference / codegen / execution,
//! and Tables 1–2 hinge on repository hit/miss behaviour. This crate is
//! the single substrate those signals flow through:
//!
//! * **Spans** — RAII guards ([`Span::enter`]) measuring one region of
//!   one thread. Spans nest via a thread-local stack, so background
//!   speculation workers trace correctly alongside the session thread.
//!   A span *always* measures (its [`Span::exit`] duration feeds
//!   `PhaseTimes`-style accounting); it only *records* an event into
//!   the global collector when tracing is enabled.
//! * **Counters and histograms** — named monotonic atomics
//!   ([`counter`]) and log₂-bucketed histograms ([`histogram`]),
//!   registered on first use.
//! * **Exporters** — a human-readable tree report
//!   ([`export::render_report`]), Chrome trace-event JSON
//!   ([`export::chrome_trace_json`], loadable in `chrome://tracing` /
//!   Perfetto), and folded stacks ([`export::folded_stacks`]) for
//!   flamegraph tools.
//!
//! # Overhead budget
//!
//! Disabled, a span costs two `Instant::now` calls and one relaxed
//! atomic load — no allocation, no locks (asserted by the
//! `zero_alloc` integration test). VM execution profiling (per-opcode
//! counts) is a separate opt-in flag ([`vm_profile_enabled`]) because
//! it adds a branch per executed instruction.
//!
//! # Environment control
//!
//! `MAJIC_TRACE=report | chrome:<path> | folded:<path> | off` selects
//! the exporter (see [`TraceMode::parse`]); appending `,vm` (e.g.
//! `report,vm`) or setting `MAJIC_TRACE_VM=1` additionally enables VM
//! execution profiling. `MAJIC_EXPLAIN=report | json:<path>` enables
//! the compilation [`audit`] flight recorder (see [`ExplainMode`]) and
//! emits it at [`finish`] alongside whatever `MAJIC_TRACE` selected.
//! The bench binaries call [`init_from_env`] at startup and [`finish`]
//! before exiting.

#![deny(missing_docs)]

pub mod audit;
pub mod export;
mod metrics;

pub use metrics::{
    counter, histogram, reset_metrics, Counter, CounterSnapshot, Histogram, HistogramSnapshot,
};

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Master switch for span/event recording.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Opt-in VM execution profiling (per-opcode counts etc.).
static VM_PROFILE: AtomicBool = AtomicBool::new(false);
/// Completed span / instant events, in completion order.
static EVENTS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
/// Events discarded because the collector hit [`MAX_EVENTS`].
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Next thread id handed out by the collector.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Collector capacity: recording stops (and [`dropped_events`] counts)
/// beyond this, so an always-on session cannot grow without bound.
pub const MAX_EVENTS: usize = 1 << 20;

/// Is span/event recording on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span/event recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is opt-in VM execution profiling on?
#[inline]
pub fn vm_profile_enabled() -> bool {
    VM_PROFILE.load(Ordering::Relaxed)
}

/// Turn VM execution profiling on or off.
pub fn set_vm_profile(on: bool) {
    VM_PROFILE.store(on, Ordering::Relaxed);
}

/// Number of events discarded since the last [`reset`].
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// The process-wide clock origin: every event timestamp is nanoseconds
/// since the first call to this function.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// This thread's collector identity, assigned on first recording.
    static THREAD: RefCell<Option<(u64, Arc<str>)>> = const { RefCell::new(None) };
}

fn thread_identity() -> (u64, Arc<str>) {
    THREAD.with(|t| {
        t.borrow_mut()
            .get_or_insert_with(|| {
                let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
                let name: Arc<str> = std::thread::current().name().unwrap_or("unnamed").into();
                (tid, name)
            })
            .clone()
    })
}

/// How an event was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A region with a duration (Chrome `ph:"X"`).
    Span,
    /// A point-in-time marker (Chrome `ph:"i"`).
    Instant,
}

/// One completed span or instant event.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (the leaf of [`SpanEvent::path`]).
    pub name: &'static str,
    /// `;`-joined ancestry on the recording thread, e.g.
    /// `call;compile;inference` — the folded-stack identity.
    pub path: String,
    /// Start, nanoseconds since [`epoch`].
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Collector-assigned thread id.
    pub tid: u64,
    /// OS thread name at recording time.
    pub thread_name: Arc<str>,
    /// Span or instant.
    pub kind: EventKind,
    /// Key/value annotations (`fn`, `distance`, …).
    pub args: Vec<(&'static str, String)>,
}

fn record_event(ev: SpanEvent) {
    let mut events = EVENTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if events.len() >= MAX_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(ev);
}

fn path_of(stack: &[&'static str], leaf: Option<&'static str>) -> String {
    let mut path = String::with_capacity(16);
    for name in stack {
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(name);
    }
    if let Some(leaf) = leaf {
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(leaf);
    }
    path
}

/// An open region on the current thread. Created by [`Span::enter`];
/// closed (and recorded, when tracing is enabled) on [`Span::exit`] or
/// drop. The measured duration is returned by `exit` so callers can
/// feed phase accounting from the *same* measurement the trace records.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    /// Recording was enabled at entry: we pushed onto the thread-local
    /// stack and must pop + emit exactly once.
    rec: bool,
    done: bool,
    args: Vec<(&'static str, String)>,
}

impl Span {
    /// Open a span. When tracing is disabled this is two instants and a
    /// relaxed load — no allocation.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        Span::enter_inner(name, Vec::new)
    }

    /// Open a span with annotations. `args` is evaluated only when
    /// tracing is enabled, so argument formatting costs nothing when
    /// disabled.
    #[inline]
    pub fn enter_with(
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, String)>,
    ) -> Span {
        Span::enter_inner(name, args)
    }

    fn enter_inner(name: &'static str, args: impl FnOnce() -> Vec<(&'static str, String)>) -> Span {
        let rec = enabled();
        let args = if rec {
            STACK.with(|s| s.borrow_mut().push(name));
            args()
        } else {
            Vec::new()
        };
        Span {
            name,
            start: Instant::now(),
            rec,
            done: false,
            args,
        }
    }

    /// Close the span and return its measured duration. Equivalent to
    /// dropping it, but hands the duration back for phase accounting.
    pub fn exit(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        if self.done {
            return Duration::ZERO;
        }
        self.done = true;
        let dur = self.start.elapsed();
        if self.rec {
            let path = STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let path = path_of(&stack, None);
                stack.pop();
                path
            });
            let (tid, thread_name) = thread_identity();
            record_event(SpanEvent {
                name: self.name,
                path,
                ts_ns: self.start.duration_since(epoch()).as_nanos() as u64,
                dur_ns: dur.as_nanos() as u64,
                tid,
                thread_name,
                kind: EventKind::Span,
                args: std::mem::take(&mut self.args),
            });
        }
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Record a point-in-time event (Chrome "instant"). `args` is evaluated
/// only when tracing is enabled; disabled cost is one relaxed load.
#[inline]
pub fn instant(name: &'static str, args: impl FnOnce() -> Vec<(&'static str, String)>) {
    if !enabled() {
        return;
    }
    let path = STACK.with(|s| path_of(&s.borrow(), Some(name)));
    let (tid, thread_name) = thread_identity();
    record_event(SpanEvent {
        name,
        path,
        ts_ns: epoch().elapsed().as_nanos() as u64,
        dur_ns: 0,
        tid,
        thread_name,
        kind: EventKind::Instant,
        args: args(),
    });
}

/// Record a span whose interval was measured externally — e.g. a
/// queue-wait that *started* on the enqueueing thread and is reported by
/// the worker that dequeued the job. The event is attributed to the
/// calling thread but keeps the true start timestamp.
#[inline]
pub fn record_interval(
    name: &'static str,
    start: Instant,
    dur: Duration,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    let path = STACK.with(|s| path_of(&s.borrow(), Some(name)));
    let (tid, thread_name) = thread_identity();
    let epoch = epoch();
    record_event(SpanEvent {
        name,
        path,
        ts_ns: start
            .checked_duration_since(epoch)
            .unwrap_or(Duration::ZERO)
            .as_nanos() as u64,
        dur_ns: dur.as_nanos() as u64,
        tid,
        thread_name,
        kind: EventKind::Span,
        args: args(),
    });
}

/// Everything the collector holds, cloned at one point in time.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Completed events, in completion order.
    pub events: Vec<SpanEvent>,
    /// All registered counters (name-sorted) with their values.
    pub counters: Vec<CounterSnapshot>,
    /// All registered histograms (name-sorted).
    pub histograms: Vec<HistogramSnapshot>,
    /// Events discarded at the collector cap.
    pub dropped: u64,
}

/// Snapshot events, counters, and histograms without clearing anything.
pub fn snapshot() -> TraceSnapshot {
    TraceSnapshot {
        events: EVENTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone(),
        counters: metrics::counter_snapshots(),
        histograms: metrics::histogram_snapshots(),
        dropped: dropped_events(),
    }
}

/// Drain and return the recorded events (counters are untouched).
pub fn take_events() -> Vec<SpanEvent> {
    std::mem::take(
        &mut EVENTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// Clear events and zero every counter and histogram. Open spans on
/// other threads still record when they close; `reset` is meant for
/// quiescent points (session start, between bench arms).
pub fn reset() {
    take_events();
    DROPPED.store(0, Ordering::Relaxed);
    reset_metrics();
}

/// Where trace output goes at process exit — parsed from `MAJIC_TRACE`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Tracing disabled (the default).
    #[default]
    Off,
    /// Print the human-readable tree report to stdout.
    Report,
    /// Write Chrome trace-event JSON to the given path.
    Chrome(PathBuf),
    /// Write folded stacks (flamegraph input) to the given path.
    Folded(PathBuf),
}

/// Outcome of parsing a `MAJIC_TRACE` value: the exporter mode plus
/// whether VM execution profiling was requested via a `,vm` suffix.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TraceRequest {
    /// Exporter selection.
    pub mode: TraceMode,
    /// `,vm` suffix present.
    pub vm_profile: bool,
}

impl TraceMode {
    /// Parse a `MAJIC_TRACE` value. Unknown values fall back to `Off`
    /// with a warning on stderr (observability must never break the
    /// program being observed, but a typo'd mode silently recording
    /// nothing is its own observability failure).
    ///
    /// ```
    /// use majic_trace::TraceMode;
    /// assert_eq!(TraceMode::parse("report").mode, TraceMode::Report);
    /// assert_eq!(
    ///     TraceMode::parse("chrome:t.json").mode,
    ///     TraceMode::Chrome("t.json".into())
    /// );
    /// assert!(TraceMode::parse("folded:out.folded,vm").vm_profile);
    /// assert_eq!(TraceMode::parse("off").mode, TraceMode::Off);
    /// ```
    pub fn parse(value: &str) -> TraceRequest {
        let value = value.trim();
        let (value, vm_profile) = match value.strip_suffix(",vm") {
            Some(v) => (v, true),
            None => (value, false),
        };
        let mode = if let Some(path) = value.strip_prefix("chrome:") {
            TraceMode::Chrome(path.into())
        } else if let Some(path) = value.strip_prefix("folded:") {
            TraceMode::Folded(path.into())
        } else if value == "report" {
            TraceMode::Report
        } else {
            if !value.is_empty() && value != "off" {
                eprintln!(
                    "majic-trace: unrecognized MAJIC_TRACE mode {value:?} \
                     (expected report | chrome:<path> | folded:<path> | off, \
                     optionally with a ,vm suffix); tracing stays off"
                );
            }
            TraceMode::Off
        };
        TraceRequest { mode, vm_profile }
    }
}

/// Where the compilation audit log goes at process exit — parsed from
/// `MAJIC_EXPLAIN`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// Audit emission disabled (the default).
    #[default]
    Off,
    /// Print the per-function audit report to stdout.
    Report,
    /// Write the audit log as JSON (`docs/EXPLAIN_FORMAT.md`) to the
    /// given path.
    Json(PathBuf),
}

impl ExplainMode {
    /// Parse a `MAJIC_EXPLAIN` value. Unknown values fall back to `Off`
    /// with a warning on stderr, mirroring [`TraceMode::parse`].
    ///
    /// ```
    /// use majic_trace::ExplainMode;
    /// assert_eq!(ExplainMode::parse("report"), ExplainMode::Report);
    /// assert_eq!(
    ///     ExplainMode::parse("json:audit.json"),
    ///     ExplainMode::Json("audit.json".into())
    /// );
    /// assert_eq!(ExplainMode::parse("off"), ExplainMode::Off);
    /// ```
    pub fn parse(value: &str) -> ExplainMode {
        let value = value.trim();
        if let Some(path) = value.strip_prefix("json:") {
            ExplainMode::Json(path.into())
        } else if value == "report" {
            ExplainMode::Report
        } else {
            if !value.is_empty() && value != "off" {
                eprintln!(
                    "majic-trace: unrecognized MAJIC_EXPLAIN mode {value:?} \
                     (expected report | json:<path> | off); audit stays off"
                );
            }
            ExplainMode::Off
        }
    }
}

static ENV_MODE: OnceLock<TraceMode> = OnceLock::new();
static ENV_EXPLAIN: OnceLock<ExplainMode> = OnceLock::new();

/// Read `MAJIC_TRACE` / `MAJIC_TRACE_VM` / `MAJIC_EXPLAIN`, enable
/// recording accordingly, and remember the exporters for [`finish`].
/// Idempotent: the first call wins (matching the process-lifetime
/// semantics of an env var).
pub fn init_from_env() -> &'static TraceMode {
    ENV_EXPLAIN.get_or_init(|| {
        let mode = std::env::var("MAJIC_EXPLAIN")
            .map(|v| ExplainMode::parse(&v))
            .unwrap_or_default();
        if mode != ExplainMode::Off {
            epoch();
            audit::set_enabled(true);
        }
        mode
    });
    ENV_MODE.get_or_init(|| {
        let req = std::env::var("MAJIC_TRACE")
            .map(|v| TraceMode::parse(&v))
            .unwrap_or_default();
        if req.mode != TraceMode::Off {
            epoch(); // anchor timestamps before any work happens
            set_enabled(true);
        }
        if req.vm_profile
            || std::env::var("MAJIC_TRACE_VM").is_ok_and(|v| v != "0" && !v.is_empty())
        {
            set_vm_profile(true);
        }
        req.mode
    })
}

/// Export according to the modes captured by [`init_from_env`]: print
/// the trace report or write the Chrome/folded file, then emit the
/// compilation audit log the same way (errors go to stderr —
/// observability must not turn a successful run into a failure).
pub fn finish() {
    match ENV_MODE.get().unwrap_or(&TraceMode::Off) {
        TraceMode::Off => {}
        TraceMode::Report => print!("{}", export::render_report(&snapshot())),
        TraceMode::Chrome(path) => {
            if let Err(e) = export::write_chrome_trace(path) {
                eprintln!("majic-trace: failed to write {}: {e}", path.display());
            } else {
                eprintln!("majic-trace: chrome trace written to {}", path.display());
            }
        }
        TraceMode::Folded(path) => {
            if let Err(e) = std::fs::write(path, export::folded_stacks(&snapshot())) {
                eprintln!("majic-trace: failed to write {}: {e}", path.display());
            } else {
                eprintln!("majic-trace: folded stacks written to {}", path.display());
            }
        }
    }
    match ENV_EXPLAIN.get().unwrap_or(&ExplainMode::Off) {
        ExplainMode::Off => {}
        ExplainMode::Report => print!("{}", audit::render_report(&audit::snapshot())),
        ExplainMode::Json(path) => {
            if let Err(e) = std::fs::write(path, audit::audit_json(&audit::snapshot())) {
                eprintln!("majic-trace: failed to write {}: {e}", path.display());
            } else {
                eprintln!("majic-trace: audit log written to {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_modes() {
        assert_eq!(TraceMode::parse("").mode, TraceMode::Off);
        assert_eq!(TraceMode::parse("off").mode, TraceMode::Off);
        assert_eq!(TraceMode::parse("nonsense").mode, TraceMode::Off);
        assert_eq!(TraceMode::parse("report").mode, TraceMode::Report);
        assert_eq!(
            TraceMode::parse("chrome:/tmp/t.json").mode,
            TraceMode::Chrome("/tmp/t.json".into())
        );
        assert_eq!(
            TraceMode::parse("folded:x").mode,
            TraceMode::Folded("x".into())
        );
        let req = TraceMode::parse("report,vm");
        assert_eq!(req.mode, TraceMode::Report);
        assert!(req.vm_profile);
        assert!(TraceMode::parse("off,vm").vm_profile);
    }

    /// The full parse matrix: every mode × the `,vm` suffix ×
    /// whitespace, plus the unknown-mode fallback (which additionally
    /// warns on stderr — not assertable here, but the fallback must
    /// still be `Off` and must still honor the suffix).
    #[test]
    fn parse_matrix() {
        for (input, mode, vm) in [
            ("off", TraceMode::Off, false),
            ("off,vm", TraceMode::Off, true),
            ("report", TraceMode::Report, false),
            ("report,vm", TraceMode::Report, true),
            ("chrome:t.json", TraceMode::Chrome("t.json".into()), false),
            ("chrome:t.json,vm", TraceMode::Chrome("t.json".into()), true),
            (
                "folded:t.folded",
                TraceMode::Folded("t.folded".into()),
                false,
            ),
            (
                "folded:t.folded,vm",
                TraceMode::Folded("t.folded".into()),
                true,
            ),
            ("  report  ", TraceMode::Report, false),
            ("", TraceMode::Off, false),
            ("   ", TraceMode::Off, false),
            ("bogus", TraceMode::Off, false),
            ("bogus,vm", TraceMode::Off, true),
            ("Report", TraceMode::Off, false), // modes are case-sensitive
        ] {
            let req = TraceMode::parse(input);
            assert_eq!(req.mode, mode, "mode for {input:?}");
            assert_eq!(req.vm_profile, vm, "vm_profile for {input:?}");
        }
        // `,vm` is a suffix of the whole value, not a separate token:
        // the remainder still parses as its own mode.
        assert_eq!(TraceMode::parse(",vm").mode, TraceMode::Off);
        assert!(TraceMode::parse(",vm").vm_profile);
    }

    #[test]
    fn parse_explain_modes() {
        assert_eq!(ExplainMode::parse(""), ExplainMode::Off);
        assert_eq!(ExplainMode::parse("off"), ExplainMode::Off);
        assert_eq!(ExplainMode::parse("nonsense"), ExplainMode::Off);
        assert_eq!(ExplainMode::parse("report"), ExplainMode::Report);
        assert_eq!(ExplainMode::parse(" report "), ExplainMode::Report);
        assert_eq!(
            ExplainMode::parse("json:audit.json"),
            ExplainMode::Json("audit.json".into())
        );
    }

    #[test]
    fn path_joins() {
        assert_eq!(path_of(&[], None), "");
        assert_eq!(path_of(&["a"], None), "a");
        assert_eq!(path_of(&["a", "b"], Some("c")), "a;b;c");
        assert_eq!(path_of(&[], Some("c")), "c");
    }
}
