//! Monotonic counters and log₂-bucketed histograms.
//!
//! Both are registered globally by name on first use and live for the
//! process (the registry leaks one allocation per distinct name — the
//! standard metrics-registry trade for lock-free hot paths afterwards).
//! Unlike spans, metric *increments* are not gated on [`crate::enabled`]
//! by callers that always want the data; hot paths (the VM dispatch
//! loop) gate on [`crate::vm_profile_enabled`] and flush aggregates.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static COUNTERS: Mutex<BTreeMap<String, &'static Counter>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<String, &'static Histogram>> = Mutex::new(BTreeMap::new());

/// Number of log₂ buckets per histogram (covers the full `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A named monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time value of one counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// The counter registered under `name`, created on first use. The
/// returned reference is `'static`: cache it outside hot loops.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = COUNTERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(c) = reg.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        name: name.to_owned(),
        value: AtomicU64::new(0),
    }));
    reg.insert(name.to_owned(), c);
    c
}

/// A named histogram over `u64` samples with log₂ buckets: bucket 0
/// holds the value 0, bucket `k ≥ 1` holds values in `[2^(k-1), 2^k)`.
/// Exact count and sum are kept alongside, so means are exact and only
/// percentiles are bucket-approximate.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time state of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum (exact).
    pub sum: u64,
    /// Log₂ bucket counts (see [`Histogram`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Exact mean of the samples, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution upper bound for the `q`-quantile (`q` in
    /// `[0, 1]`): the top of the bucket the quantile sample falls in.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return match k {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => (1u64 << k) - 1,
                };
            }
        }
        u64::MAX
    }
}

/// The histogram registered under `name`, created on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = HISTOGRAMS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(h) = reg.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        name: name.to_owned(),
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
    }));
    reg.insert(name.to_owned(), h);
    h
}

/// Name-sorted snapshot of every registered counter.
pub(crate) fn counter_snapshots() -> Vec<CounterSnapshot> {
    COUNTERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .values()
        .map(|c| CounterSnapshot {
            name: c.name.clone(),
            value: c.get(),
        })
        .collect()
}

/// Name-sorted snapshot of every registered histogram.
pub(crate) fn histogram_snapshots() -> Vec<HistogramSnapshot> {
    HISTOGRAMS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .values()
        .map(|h| h.snapshot())
        .collect()
}

/// Zero every registered counter and histogram (registrations persist).
pub fn reset_metrics() {
    for c in COUNTERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .values()
    {
        c.reset();
    }
    for h in HISTOGRAMS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .values()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reuse() {
        let c = counter("test.metrics.counter");
        let v0 = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), v0 + 5);
        // Same registration on re-lookup.
        assert!(std::ptr::eq(c, counter("test.metrics.counter")));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);

        let h = histogram("test.metrics.hist");
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 106);
        assert!((s.mean() - 21.2).abs() < 1e-9);
        assert_eq!(s.quantile_bound(0.0), 0);
        // Median sample is 2 → bucket [2,4) → bound 3.
        assert_eq!(s.quantile_bound(0.5), 3);
        assert!(s.quantile_bound(1.0) >= 100);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = HistogramSnapshot {
            name: "empty".into(),
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(s.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile_bound(q), 0, "q={q}");
        }
    }

    #[test]
    fn single_bucket_quantiles_are_constant() {
        // Every sample in one bucket: all quantiles return that
        // bucket's top, including the q=0 floor (rank clamps to 1).
        let mut buckets = vec![0; HISTOGRAM_BUCKETS];
        buckets[3] = 4; // four samples in [4, 8)
        let s = HistogramSnapshot {
            name: "single".into(),
            count: 4,
            sum: 20,
            buckets,
        };
        assert_eq!(s.mean(), 5.0);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(s.quantile_bound(q), 7, "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_and_clamping() {
        let mut buckets = vec![0; HISTOGRAM_BUCKETS];
        buckets[0] = 1; // the value 0
        buckets[64] = 1; // a top-bucket value (≥ 2^63)
        let s = HistogramSnapshot {
            name: "extremes".into(),
            count: 2,
            sum: u64::MAX,
            buckets,
        };
        // q=0 clamps to the first sample; q=1 reaches the last bucket,
        // whose top saturates at u64::MAX.
        assert_eq!(s.quantile_bound(0.0), 0);
        assert_eq!(s.quantile_bound(1.0), u64::MAX);
        // Out-of-range q is clamped into [0, 1], not an error.
        assert_eq!(s.quantile_bound(-3.0), s.quantile_bound(0.0));
        assert_eq!(s.quantile_bound(7.5), s.quantile_bound(1.0));
    }

    #[test]
    fn mean_is_exact_despite_bucketing() {
        let h = histogram("test.metrics.mean_exact");
        for v in [10, 11, 12] {
            h.record(v); // all land in bucket [8, 16)
        }
        let s = h.snapshot();
        assert_eq!(s.mean(), 11.0);
        assert_eq!(s.quantile_bound(0.5), 15);
    }
}
