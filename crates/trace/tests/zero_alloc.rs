//! Disabled-mode overhead: opening and closing spans with tracing off
//! must not allocate. This test binary installs a counting global
//! allocator, so it contains exactly one test (no parallel tests to
//! attribute stray allocations to).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_and_counters_do_not_allocate() {
    majic_trace::set_enabled(false);
    majic_trace::set_vm_profile(false);
    majic_trace::audit::set_enabled(false);
    // Registration allocates once; do it before the measured region and
    // keep the &'static handle, as hot paths are told to.
    let c = majic_trace::counter("zero_alloc.test");
    // Warm up thread-locals and lazies outside the measured window.
    {
        let sp = majic_trace::Span::enter("warmup");
        sp.exit();
        c.inc();
    }

    let hot_loop = || {
        for _ in 0..10_000 {
            let sp = majic_trace::Span::enter("hot");
            let _ = sp.exit();
            let sp =
                majic_trace::Span::enter_with("hot2", || vec![("never", "evaluated".to_owned())]);
            drop(sp);
            majic_trace::instant("hot3", || vec![("never", "evaluated".to_owned())]);
            c.inc();
            // The audit layer holds to the same budget: disabled, every
            // entry point is one relaxed load, and no closure is
            // evaluated.
            majic_trace::audit::begin("never_recorded");
            majic_trace::audit::widening(|| majic_trace::audit::Widening {
                variable: "x".to_owned(),
                from: "int".to_owned(),
                to: "real".to_owned(),
                reason: "never evaluated".to_owned(),
            });
            majic_trace::audit::inline_verdict(|| majic_trace::audit::InlineVerdict {
                callee: "f".to_owned(),
                inlined: false,
                reason: "never evaluated".to_owned(),
            });
            majic_trace::audit::tier(1);
            majic_trace::audit::codegen_summary(majic_trace::audit::CodegenSummary::default);
            majic_trace::audit::lifecycle("never", || "evaluated".to_owned());
            majic_trace::audit::commit(
                || "never".to_owned(),
                "first_call",
                || "evaluated".to_owned(),
                None,
                0,
            );
            majic_trace::audit::session_event("never", || {
                ("never".to_owned(), "evaluated".to_owned())
            });
        }
    };

    // The allocation counter is process-global, and the test harness's
    // own threads occasionally allocate (timers, I/O buffers) during
    // the measured window. Those stray counts are not the property
    // under test; a hot loop that itself allocates does so on *every*
    // run, so requiring one clean run out of a few attempts keeps the
    // assertion sound while ignoring unrelated background noise.
    let mut leaked = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        hot_loop();
        let after = ALLOCS.load(Ordering::Relaxed);
        leaked = leaked.min(after - before);
        if leaked == 0 {
            break;
        }
    }
    assert_eq!(
        leaked, 0,
        "disabled tracing allocated at least {leaked} times in every attempt"
    );
    assert!(c.get() >= 10_001);
}
