//! Disabled-mode overhead: opening and closing spans with tracing off
//! must not allocate. This test binary installs a counting global
//! allocator, so it contains exactly one test (no parallel tests to
//! attribute stray allocations to).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Allocations are attributed per thread: the harness's own threads
// (timers, I/O buffers) allocate at unpredictable times, and counting
// them would force the assertion to tolerate noise. Only the thread
// that opts in (the test thread, around the measured window) counts —
// so the property stays strict: *zero* allocations from the hot loop.
std::thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with`: the allocator can be entered during thread
        // teardown, after the thread-locals are gone.
        if TRACKING.try_with(Cell::get).unwrap_or(false) {
            let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_and_counters_do_not_allocate() {
    majic_trace::set_enabled(false);
    majic_trace::set_vm_profile(false);
    majic_trace::audit::set_enabled(false);
    // Registration allocates once; do it before the measured region and
    // keep the &'static handle, as hot paths are told to.
    let c = majic_trace::counter("zero_alloc.test");
    // Warm up thread-locals and lazies outside the measured window.
    {
        let sp = majic_trace::Span::enter("warmup");
        sp.exit();
        c.inc();
    }

    let hot_loop = || {
        for _ in 0..10_000 {
            let sp = majic_trace::Span::enter("hot");
            let _ = sp.exit();
            let sp =
                majic_trace::Span::enter_with("hot2", || vec![("never", "evaluated".to_owned())]);
            drop(sp);
            majic_trace::instant("hot3", || vec![("never", "evaluated".to_owned())]);
            c.inc();
            // The audit layer holds to the same budget: disabled, every
            // entry point is one relaxed load, and no closure is
            // evaluated.
            majic_trace::audit::begin("never_recorded");
            majic_trace::audit::widening(|| majic_trace::audit::Widening {
                variable: "x".to_owned(),
                from: "int".to_owned(),
                to: "real".to_owned(),
                reason: "never evaluated".to_owned(),
            });
            majic_trace::audit::inline_verdict(|| majic_trace::audit::InlineVerdict {
                callee: "f".to_owned(),
                inlined: false,
                reason: "never evaluated".to_owned(),
            });
            majic_trace::audit::tier(1);
            majic_trace::audit::codegen_summary(majic_trace::audit::CodegenSummary::default);
            majic_trace::audit::lifecycle("never", || "evaluated".to_owned());
            majic_trace::audit::commit(
                || "never".to_owned(),
                "first_call",
                || "evaluated".to_owned(),
                None,
                0,
            );
            majic_trace::audit::session_event("never", || {
                ("never".to_owned(), "evaluated".to_owned())
            });
        }
    };

    // Thread-local attribution makes the assertion strict: every
    // allocation on *this* thread during the window came from the hot
    // loop itself, so the tolerated count is exactly zero — an
    // intermittent allocation (a lazily-initialized branch, say) fails
    // the test instead of hiding behind background noise.
    let before = THREAD_ALLOCS.with(Cell::get);
    TRACKING.with(|t| t.set(true));
    hot_loop();
    TRACKING.with(|t| t.set(false));
    let leaked = THREAD_ALLOCS.with(Cell::get) - before;
    assert_eq!(leaked, 0, "disabled tracing allocated {leaked} times");
    assert!(c.get() >= 10_001);
}
