//! Integration tests over the global collector: span nesting, thread
//! attribution, and exporter round-trips.
//!
//! The collector is process-global, so every test here serializes on
//! one lock and resets state on entry.

use majic_testkit::json::Json;
use majic_trace::{
    export, instant, record_interval, reset, set_enabled, snapshot, EventKind, Span,
};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialize a test and start it from a clean, enabled collector.
fn begin() -> MutexGuard<'static, ()> {
    let g = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    reset();
    set_enabled(true);
    g
}

fn end(g: MutexGuard<'static, ()>) {
    set_enabled(false);
    reset();
    drop(g);
}

#[test]
fn paths_nest_per_thread() {
    let g = begin();
    {
        let outer = Span::enter("outer");
        {
            let inner = Span::enter_with("inner", || vec![("k", "v".to_owned())]);
            instant("mark", || vec![("n", "1".to_owned())]);
            inner.exit();
        }
        let mid = Span::enter("mid");
        mid.exit();
        outer.exit();
    }
    let snap = snapshot();
    let paths: Vec<&str> = snap.events.iter().map(|e| e.path.as_str()).collect();
    // Completion order: leaves close before their parents.
    assert_eq!(
        paths,
        vec!["outer;inner;mark", "outer;inner", "outer;mid", "outer"]
    );
    let mark = &snap.events[0];
    assert_eq!(mark.kind, EventKind::Instant);
    assert_eq!(mark.dur_ns, 0);
    let inner = &snap.events[1];
    assert_eq!(inner.name, "inner");
    assert_eq!(inner.args, vec![("k", "v".to_owned())]);
    let outer = snap.events.last().unwrap();
    // A parent's interval contains its child's.
    assert!(outer.ts_ns <= inner.ts_ns);
    assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns + 1);
    end(g);
}

#[test]
fn threads_attribute_independently() {
    let g = begin();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("spans-test-{i}"))
                .spawn(move || {
                    let sp = Span::enter("work");
                    let nested = Span::enter("step");
                    nested.exit();
                    sp.exit();
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = snapshot();
    assert_eq!(snap.events.len(), 8);
    for i in 0..4 {
        let name = format!("spans-test-{i}");
        let mine: Vec<_> = snap
            .events
            .iter()
            .filter(|e| *e.thread_name == name)
            .collect();
        // Each thread contributed exactly its own two spans — nesting
        // stacks are thread-local, so no cross-thread paths appear.
        assert_eq!(mine.len(), 2, "events for {name}");
        assert!(mine.iter().any(|e| e.path == "work"));
        assert!(mine.iter().any(|e| e.path == "work;step"));
        let tid = mine[0].tid;
        assert!(mine.iter().all(|e| e.tid == tid));
    }
    // Four distinct collector tids.
    let mut tids: Vec<u64> = snap.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 4);
    end(g);
}

#[test]
fn chrome_export_is_valid_json_with_invariants() {
    let g = begin();
    {
        let sp = Span::enter_with("alpha", || vec![("fn", "f\"q\"".to_owned())]);
        let inner = Span::enter("beta");
        inner.exit();
        sp.exit();
        instant("gamma", Vec::new);
    }
    let snap = snapshot();
    let json = export::chrome_trace_json(&snap);
    let doc = Json::parse(&json).expect("chrome export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut complete = 0;
    let mut instants = 0;
    let mut metadata = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        assert!(ev.get("pid").and_then(Json::as_f64).is_some());
        assert!(ev.get("tid").and_then(Json::as_f64).is_some());
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        match ph {
            "X" => {
                complete += 1;
                let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = ev.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
            }
            "i" => {
                instants += 1;
                assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"));
                assert!(ev.get("ts").and_then(Json::as_f64).is_some());
            }
            "M" => {
                metadata += 1;
                assert_eq!(ev.get("name").and_then(Json::as_str), Some("thread_name"));
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }
    assert_eq!(complete, 2);
    assert_eq!(instants, 1);
    assert!(metadata >= 1);
    // The escaped quote in the span arg survived the round trip.
    let alpha = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("alpha"))
        .unwrap();
    assert_eq!(
        alpha
            .get("args")
            .and_then(|a| a.get("fn"))
            .and_then(Json::as_str),
        Some("f\"q\"")
    );
    end(g);
}

#[test]
fn folded_output_parses_and_covers_paths() {
    let g = begin();
    {
        let a = Span::enter("a");
        std::thread::sleep(Duration::from_millis(1));
        let b = Span::enter("b");
        b.exit();
        a.exit();
    }
    let folded = export::folded_stacks(&snapshot());
    let mut seen = Vec::new();
    for line in folded.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("stack SPACE value");
        let _: u64 = n.parse().expect("numeric self-time");
        seen.push(stack.to_owned());
    }
    assert!(seen.contains(&"a".to_owned()));
    assert!(seen.contains(&"a;b".to_owned()));
    end(g);
}

#[test]
fn record_interval_backdates_start() {
    let g = begin();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(2));
    record_interval("waited", t0, t0.elapsed(), Vec::new);
    let snap = snapshot();
    let ev = snap.events.iter().find(|e| e.name == "waited").unwrap();
    assert_eq!(ev.kind, EventKind::Span);
    assert!(ev.dur_ns >= 2_000_000, "dur {} < 2ms", ev.dur_ns);
    end(g);
}
