//! The persistent repository cache: compiled versions on disk.
//!
//! MaJIC's responsiveness story rests on never recompiling what it has
//! already compiled. This module extends that across sessions: the
//! in-memory [`Repository`](crate::Repository) can be snapshotted to a
//! single cache file and reloaded at the next startup, so the first call
//! of a warm session dispatches straight into compiled code instead of
//! paying JIT latency.
//!
//! The byte-level layout is specified in `docs/CACHE_FORMAT.md`. The
//! safety argument (paper §2.2.1 — "a wrong guess … never affects
//! program correctness") is preserved across sessions by three gates:
//!
//! 1. **Build fingerprint** — the whole file is rejected unless it was
//!    written by the same compiler build (`repo.cache.reject.version` /
//!    `repo.cache.reject.fingerprint` counters).
//! 2. **Per-entry checksums + full structural validation** — corrupt or
//!    truncated entries are skipped (`repo.cache.reject.checksum`); a
//!    decoded executable is additionally bounds-checked by
//!    [`Executable::decode`](majic_vm::Executable) before it can run.
//! 3. **Source hashes** — every entry records a hash of the function
//!    source it was compiled from; the engine refuses to install an
//!    entry whose source has changed (`repo.cache.reject.source_hash`).
//!
//! Any failure at any gate degrades to a cold start; loading never
//! panics and never errors.

use crate::{CodeQuality, CompiledVersion, Tier};
use majic_types::wire::{
    decode_signature, decode_type, encode_signature, encode_type, fnv1a, Reader, WireError,
    WireResult, Writer,
};
use majic_vm::Executable;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// First eight bytes of every cache file.
pub const MAGIC: [u8; 8] = *b"MAJICRC\0";

/// Version of the container layout (header + entry framing). Bump when
/// the framing itself changes; changes to the *payload* encodings are
/// covered by the build fingerprint instead.
///
/// History: v1 had no tier byte in the entry payload; v2 added it when
/// tiered recompilation landed.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// One compiled function version as stored in (or destined for) the
/// cache file, together with the invalidation key that ties it to the
/// source text it was compiled from.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Function name.
    pub name: String,
    /// FNV-1a hash of the function's canonical source text. The engine
    /// only installs the entry if the freshly loaded source hashes to
    /// the same value.
    pub source_hash: u64,
    /// The compiled version itself.
    pub version: CompiledVersion,
}

/// What happened during [`RepoCache::load`]. All counts are also
/// mirrored into `majic-trace` counters; the struct is the authoritative
/// per-call record (trace counters are global and may aggregate several
/// caches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries decoded, validated, and returned.
    pub loaded: usize,
    /// Whole-file rejections for a bad magic or container version
    /// (`repo.cache.reject.version`).
    pub rejected_version: usize,
    /// Whole-file rejections for a build-fingerprint mismatch
    /// (`repo.cache.reject.fingerprint`).
    pub rejected_fingerprint: usize,
    /// Entries (or the file's tail) dropped for checksum, framing,
    /// truncation, or decode failures (`repo.cache.reject.checksum`).
    pub rejected_checksum: usize,
}

impl LoadReport {
    /// True when nothing at all was rejected.
    pub fn clean(&self) -> bool {
        self.rejected_version == 0 && self.rejected_fingerprint == 0 && self.rejected_checksum == 0
    }
}

/// A versioned, integrity-checked on-disk store for compiled repository
/// entries.
///
/// The store is a plain file; [`load`](RepoCache::load) is infallible
/// (any problem means fewer entries, never an error) and
/// [`save`](RepoCache::save) is atomic (temp file + rename), so a crash
/// mid-write can never leave a half-written cache that poisons the next
/// session.
#[derive(Clone, Debug)]
pub struct RepoCache {
    path: PathBuf,
    fingerprint: String,
}

impl RepoCache {
    /// A cache at `path`, keyed by the given compiler build fingerprint
    /// (see `majic_codegen::build_fingerprint`). Nothing is read or
    /// written until `load`/`save`.
    pub fn new(path: impl Into<PathBuf>, fingerprint: impl Into<String>) -> RepoCache {
        RepoCache {
            path: path.into(),
            fingerprint: fingerprint.into(),
        }
    }

    /// The cache file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The build fingerprint this cache accepts.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Read the cache, returning every entry that survives all integrity
    /// gates plus a report of what was rejected.
    ///
    /// A missing file is an ordinary cold start (empty result, clean
    /// report). A malformed file degrades: header problems reject the
    /// whole file, per-entry problems skip that entry and keep going.
    /// This function never panics and never returns an error.
    pub fn load(&self) -> (Vec<CacheEntry>, LoadReport) {
        let mut report = LoadReport::default();
        let bytes = match fs::read(&self.path) {
            Ok(b) => b,
            Err(_) => return (Vec::new(), report), // cold start
        };
        let entries = self.parse(&bytes, &mut report);
        majic_trace::counter("repo.cache.reject.version").add(report.rejected_version as u64);
        majic_trace::counter("repo.cache.reject.fingerprint")
            .add(report.rejected_fingerprint as u64);
        majic_trace::counter("repo.cache.reject.checksum").add(report.rejected_checksum as u64);
        if report.rejected_version > 0 {
            majic_trace::audit::session_event("cache.reject.version", || {
                (
                    String::new(),
                    format!(
                        "{}: bad magic or container version — not a cache this \
                         build can read",
                        self.path.display()
                    ),
                )
            });
        }
        if report.rejected_fingerprint > 0 {
            majic_trace::audit::session_event("cache.reject.fingerprint", || {
                (
                    String::new(),
                    format!(
                        "{}: written by a different compiler build (this build is {:?}); \
                         whole file rejected, cold start",
                        self.path.display(),
                        self.fingerprint
                    ),
                )
            });
        }
        if report.rejected_checksum > 0 {
            majic_trace::audit::session_event("cache.reject.checksum", || {
                (
                    String::new(),
                    format!(
                        "{}: {} entr{} dropped for checksum/framing/decode damage",
                        self.path.display(),
                        report.rejected_checksum,
                        if report.rejected_checksum == 1 {
                            "y"
                        } else {
                            "ies"
                        }
                    ),
                )
            });
        }
        (entries, report)
    }

    fn parse(&self, bytes: &[u8], report: &mut LoadReport) -> Vec<CacheEntry> {
        let mut r = Reader::new(bytes);
        // Gate 1a: container magic + version.
        let header_ok = (|| -> WireResult<bool> {
            let mut magic = [0u8; 8];
            for m in &mut magic {
                *m = r.u8()?;
            }
            if magic != MAGIC {
                return Ok(false);
            }
            Ok(r.u32()? == CACHE_FORMAT_VERSION)
        })();
        match header_ok {
            Ok(true) => {}
            Ok(false) | Err(_) => {
                report.rejected_version += 1;
                return Vec::new();
            }
        }
        // Gate 1b: build fingerprint. A fingerprint that fails to even
        // decode (truncated or damaged region) is still a fingerprint
        // rejection: we cannot establish which build wrote the file.
        match r.str() {
            Ok(fp) if fp == self.fingerprint => {}
            _ => {
                report.rejected_fingerprint += 1;
                return Vec::new();
            }
        }
        let count = match r.seq_len(12) {
            Ok(n) => n,
            Err(_) => {
                report.rejected_checksum += 1;
                return Vec::new();
            }
        };
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            // Frame: checksum, then length-prefixed payload.
            let payload = (|| -> WireResult<&[u8]> {
                let sum = r.u64()?;
                let payload = r.blob()?;
                if fnv1a(payload) != sum {
                    return Err(WireError::new("entry checksum"));
                }
                Ok(payload)
            })();
            // Gate 2: checksum + structural decode (including executable
            // bounds validation). A bad frame means we can no longer
            // trust the framing of anything after it; a bad payload in a
            // good frame lets us keep scanning.
            match payload {
                Err(_) => {
                    report.rejected_checksum += 1;
                    return entries;
                }
                Ok(payload) => match decode_entry(payload) {
                    Ok(e) => {
                        report.loaded += 1;
                        entries.push(e);
                    }
                    Err(_) => report.rejected_checksum += 1,
                },
            }
        }
        if !r.is_empty() {
            // Trailing garbage after the declared entries: the file was
            // not produced by our writer. Keep the verified entries but
            // record the damage.
            report.rejected_checksum += 1;
        }
        entries
    }

    /// Atomically write `entries` to the cache file, replacing any
    /// previous contents. The bytes are first written to a sibling
    /// temporary file and then `rename`d into place, so concurrent or
    /// crashed writers can never expose a half-written cache.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable directory, disk full…).
    pub fn save(&self, entries: &[CacheEntry]) -> io::Result<()> {
        let bytes = self.serialize(entries);
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let tmp = tmp_path(&self.path);
        fs::write(&tmp, &bytes)?;
        match fs::rename(&tmp, &self.path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// The exact bytes `save` would write (exposed for tests and tools).
    pub fn serialize(&self, entries: &[CacheEntry]) -> Vec<u8> {
        let mut w = Writer::new();
        for b in MAGIC {
            w.u8(b);
        }
        w.u32(CACHE_FORMAT_VERSION);
        w.str(&self.fingerprint);
        w.u32(entries.len() as u32);
        for e in entries {
            let payload = encode_entry(e);
            w.u64(fnv1a(&payload));
            w.blob(&payload);
        }
        w.into_bytes()
    }
}

/// The temp-file sibling used by atomic saves: `<file>.tmp` in the same
/// directory (rename is only atomic within a filesystem).
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn quality_tag(q: CodeQuality) -> u8 {
    match q {
        CodeQuality::Generic => 0,
        CodeQuality::Jit => 1,
        CodeQuality::Optimized => 2,
    }
}

fn quality_from(tag: u8) -> WireResult<CodeQuality> {
    Ok(match tag {
        0 => CodeQuality::Generic,
        1 => CodeQuality::Jit,
        2 => CodeQuality::Optimized,
        _ => return Err(WireError::new("code quality tag")),
    })
}

fn tier_tag(t: Tier) -> u8 {
    t.level()
}

fn tier_from(tag: u8) -> WireResult<Tier> {
    Ok(match tag {
        0 => Tier::T0,
        1 => Tier::T1,
        _ => return Err(WireError::new("tier tag")),
    })
}

fn encode_entry(e: &CacheEntry) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&e.name);
    w.u64(e.source_hash);
    w.u8(quality_tag(e.version.quality));
    w.u8(tier_tag(e.version.tier));
    w.u64(e.version.compile_time.as_nanos() as u64);
    encode_signature(&mut w, &e.version.signature);
    w.u32(e.version.output_types.len() as u32);
    for t in &e.version.output_types {
        encode_type(&mut w, t);
    }
    w.blob(&e.version.code.encode());
    w.into_bytes()
}

fn decode_entry(payload: &[u8]) -> WireResult<CacheEntry> {
    let mut r = Reader::new(payload);
    let name = r.str()?;
    let source_hash = r.u64()?;
    let quality = quality_from(r.u8()?)?;
    let tier = tier_from(r.u8()?)?;
    let compile_time = Duration::from_nanos(r.u64()?);
    let signature = decode_signature(&mut r)?;
    let n = r.seq_len(6)?;
    let mut output_types = Vec::with_capacity(n);
    for _ in 0..n {
        output_types.push(decode_type(&mut r)?);
    }
    let code = Executable::decode(r.blob()?)?;
    if !r.is_empty() {
        return Err(WireError::new("trailing bytes after cache entry"));
    }
    Ok(CacheEntry {
        name,
        source_hash,
        version: CompiledVersion {
            signature,
            code: Arc::new(code),
            quality,
            tier,
            output_types,
            compile_time,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use majic_ir::{Block, Function};
    use majic_types::{Intrinsic, Lattice, Signature, Type};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch file path; the whole directory is removed on
    /// drop.
    struct TempFile {
        dir: PathBuf,
        path: PathBuf,
    }

    impl TempFile {
        fn new() -> TempFile {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "majic-cache-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            let path = dir.join("repo.majiccache");
            TempFile { dir, path }
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }

    fn entry(name: &str, source_hash: u64) -> CacheEntry {
        let exe = Executable::new(
            &Function {
                name: name.into(),
                blocks: vec![Block::default()],
                ..Function::default()
            },
            0,
            0,
        );
        CacheEntry {
            name: name.into(),
            source_hash,
            version: CompiledVersion {
                signature: Signature::new(vec![Type::scalar(Intrinsic::Real)]),
                code: Arc::new(exe),
                quality: CodeQuality::Optimized,
                tier: Tier::T1,
                output_types: vec![Type::top(), Type::constant(2.0)],
                compile_time: Duration::from_micros(123),
            },
        }
    }

    #[test]
    fn missing_file_is_a_quiet_cold_start() {
        let t = TempFile::new();
        let cache = RepoCache::new(&t.path, "fp");
        let (entries, report) = cache.load();
        assert!(entries.is_empty());
        assert_eq!(report, LoadReport::default());
        assert!(report.clean());
    }

    #[test]
    fn save_load_round_trips() {
        let t = TempFile::new();
        let cache = RepoCache::new(&t.path, "fp");
        let wrote = vec![entry("f", 11), entry("g", 22)];
        cache.save(&wrote).unwrap();
        let (got, report) = cache.load();
        assert!(report.clean());
        assert_eq!(report.loaded, 2);
        assert_eq!(got.len(), 2);
        for (a, b) in wrote.iter().zip(&got) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.source_hash, b.source_hash);
            assert_eq!(a.version.signature, b.version.signature);
            assert_eq!(a.version.quality, b.version.quality);
            assert_eq!(a.version.tier, b.version.tier);
            assert_eq!(a.version.compile_time, b.version.compile_time);
            assert_eq!(a.version.output_types, b.version.output_types);
            assert_eq!(a.version.code.encode(), b.version.code.encode());
        }
        // Saving what we loaded reproduces the same bytes (canonical).
        assert_eq!(cache.serialize(&wrote), cache.serialize(&got));
        // No temp file left behind.
        assert!(!tmp_path(&t.path).exists());
    }

    #[test]
    fn fingerprint_mismatch_rejects_whole_file() {
        let t = TempFile::new();
        RepoCache::new(&t.path, "build-A")
            .save(&[entry("f", 1)])
            .unwrap();
        let (entries, report) = RepoCache::new(&t.path, "build-B").load();
        assert!(entries.is_empty());
        assert_eq!(report.rejected_fingerprint, 1);
    }

    #[test]
    fn bad_magic_or_version_rejects_whole_file() {
        let t = TempFile::new();
        let cache = RepoCache::new(&t.path, "fp");
        cache.save(&[entry("f", 1)]).unwrap();

        let mut bytes = fs::read(&t.path).unwrap();
        bytes[0] ^= 0xFF; // magic
        fs::write(&t.path, &bytes).unwrap();
        let (entries, report) = cache.load();
        assert!(entries.is_empty());
        assert_eq!(report.rejected_version, 1);

        let mut bytes = cache.serialize(&[entry("f", 1)]);
        bytes[8] = 0xEE; // container version (first byte, LE)
        fs::write(&t.path, &bytes).unwrap();
        let (entries, report) = cache.load();
        assert!(entries.is_empty());
        assert_eq!(report.rejected_version, 1);
    }

    #[test]
    fn corrupt_entry_is_skipped_and_counted() {
        let t = TempFile::new();
        let cache = RepoCache::new(&t.path, "fp");
        cache.save(&[entry("f", 1), entry("g", 2)]).unwrap();
        let mut bytes = fs::read(&t.path).unwrap();
        // Flip one byte in the *last* entry's payload (the file tail).
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        fs::write(&t.path, &bytes).unwrap();
        let (entries, report) = cache.load();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "f");
        assert_eq!(report.loaded, 1);
        assert_eq!(report.rejected_checksum, 1);
    }

    #[test]
    fn truncation_at_every_length_never_panics() {
        let t = TempFile::new();
        let cache = RepoCache::new(&t.path, "fp");
        cache.save(&[entry("f", 1), entry("g", 2)]).unwrap();
        let full = fs::read(&t.path).unwrap();
        for n in 0..full.len() {
            fs::write(&t.path, &full[..n]).unwrap();
            let (entries, report) = cache.load();
            // Whatever survives decoded from an intact prefix; the
            // damage is always accounted for.
            assert!(entries.len() <= 2);
            assert!((n == 0) || !report.clean() || entries.len() == 2);
        }
        // Trailing garbage is detected too.
        let mut padded = full.clone();
        padded.extend_from_slice(b"junk");
        fs::write(&t.path, &padded).unwrap();
        let (entries, report) = cache.load();
        assert_eq!(entries.len(), 2);
        assert_eq!(report.rejected_checksum, 1);
    }

    #[test]
    fn stale_temp_file_does_not_poison_saves() {
        let t = TempFile::new();
        let cache = RepoCache::new(&t.path, "fp");
        // A previous session died mid-write, leaving temp garbage.
        fs::write(tmp_path(&t.path), b"half-written garbage").unwrap();
        cache.save(&[entry("f", 1)]).unwrap();
        let (entries, report) = cache.load();
        assert!(report.clean());
        assert_eq!(entries.len(), 1);
        assert!(!tmp_path(&t.path).exists());
    }

    #[test]
    fn save_creates_parent_directories() {
        let t = TempFile::new();
        let nested = t.dir.join("a/b/repo.majiccache");
        let cache = RepoCache::new(&nested, "fp");
        cache.save(&[entry("f", 1)]).unwrap();
        assert_eq!(cache.load().0.len(), 1);
    }
}
