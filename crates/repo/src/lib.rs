//! The code repository (paper §2, §2.2.1).
//!
//! "The code repository is a database of compiled code. … The code
//! repository may contain, at any time, several compiled versions of the
//! same code, differing only in the assumptions about the types of input
//! parameters. The function locator has to match a given invocation to a
//! version of compiled code in the repository that is safe to execute
//! (i.e. preserves the semantics of the program), and at the same time
//! is optimal performance-wise. … When several matching objects exist,
//! the code repository uses simple heuristics to find the best matching
//! candidate for a particular call, based on a Manhattan-like 'distance'
//! between the type signature of the invocation and the matching
//! compiled code."
//!
//! Safety is the subtype check `Qi ⊑ Ti` per parameter; it is what makes
//! speculation *safe*: "a wrong guess by the compiler results, at worst,
//! in degraded performance, but never affects program correctness".
//!
//! # Namespaces
//!
//! The repository is a *process-wide* asset shared by every session of a
//! [`CompilerService`](https://docs.rs/majic): versions are stored
//! two-level, `function name → namespace → versions`. A namespace key is
//! an opaque `u64` — the engine uses the function's transitive source
//! (closure) hash, so two sessions that loaded identical source share
//! one namespace (and each other's compiled versions), while a session
//! that redefined `f` (or any function `f` reaches) lands in a different
//! namespace and can never be answered with its neighbor's code. The
//! namespace-less methods ([`Repository::insert`], [`Repository::lookup`],
//! …) remain for single-tenant use and diagnostics: they write to
//! [`DEFAULT_NS`] and read across *all* namespaces.
//!
//! # Concurrency
//!
//! The repository is shared between the foreground engine and the
//! background speculative-compilation workers, so it is `Send + Sync`:
//! function entries are distributed across [`SHARD_COUNT`] independent
//! `RwLock` shards (keyed by a hash of the function name), and the
//! locator statistics are atomics. Lookups on one function never block
//! behind inserts on a function in a different shard, and concurrent
//! readers of the same shard proceed in parallel; a shard's write lock
//! is held only for the duration of one `Vec::push`.
//!
//! Background publishes are additionally guarded against *staleness*:
//! every (function, namespace) pair carries an invalidation generation,
//! bumped by [`Repository::invalidate_ns`] on source change, and a
//! worker that compiled from a pre-change snapshot publishes through
//! [`Repository::insert_if_current_ns`], which drops the version instead
//! of letting since-redefined code take over dispatch. The namespace key
//! joins that guard: generations are per namespace, so a session
//! redefining `f` never poisons a neighbor still running the old `f`.
//!
//! # Persistence
//!
//! The [`cache`] module persists repository contents across sessions in
//! an integrity-checked on-disk file (`docs/CACHE_FORMAT.md`), turning
//! speculative compilation into a cross-session asset.

#![deny(missing_docs)]

pub mod cache;

use majic_types::{Signature, Type};
use majic_vm::Executable;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// The namespace the namespace-less compatibility methods write to.
/// Engine sessions use the function's closure hash instead.
pub const DEFAULT_NS: u64 = 0;

/// The session id recorded for versions inserted outside any session
/// (the namespace-less compatibility methods, tests, tools). Lookups
/// attributed to this id never count as shared hits.
pub const NO_SESSION: u64 = 0;

/// Locator and lifecycle statistics of a [`Repository`].
///
/// All counts are since creation or the last [`Repository::clear`],
/// except the `*_versions` fields, which are the repository's *current*
/// per-tier population at the moment [`Repository::stats`] ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepoStats {
    /// Lookups answered by an existing version.
    pub hits: u64,
    /// Lookups with no safe version (each triggers a JIT compile).
    pub misses: u64,
    /// Hits answered by a version a *different* session inserted —
    /// the cross-session amortization a shared service exists for.
    /// Only session-attributed lookups ([`Repository::lookup_ns`])
    /// can count here.
    pub shared_hits: u64,
    /// Versions inserted.
    pub inserts: u64,
    /// Invalidations (source-change recompilation triggers).
    pub invalidations: u64,
    /// Hits answered by a tier-0 (fast-pipeline) version.
    pub tier0_hits: u64,
    /// Hits answered by a tier-1 (optimizing-pipeline) version.
    pub tier1_hits: u64,
    /// Tier-0 versions currently live.
    pub tier0_versions: usize,
    /// Tier-1 versions currently live.
    pub tier1_versions: usize,
}

impl RepoStats {
    /// Fraction of lookups that hit, or 0.0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The dispatch-preference level of a compiled version.
///
/// Tiers order the *pipelines* that produce code: tier 0 is anything
/// compiled on (or for) the critical path by a fast pipeline (the JIT
/// and the `mcc` emulation), tier 1 is the optimizing backend
/// (speculative, batch, or a hotness-driven background recompile). The
/// locator prefers the highest tier among the safe candidates, so a
/// tier-1 version atomically takes over dispatch the moment it is
/// inserted — and a call its signature does not admit falls back to
/// tier 0 just as atomically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Tier 0: fast-pipeline output (JIT / generic).
    T0,
    /// Tier 1: optimizing-backend output.
    T1,
}

impl Tier {
    /// Numeric level (0 or 1) for serialization and diagnostics.
    pub fn level(self) -> u8 {
        match self {
            Tier::T0 => 0,
            Tier::T1 => 1,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tier-{}", self.level())
    }
}

/// Number of independent lock shards. A small power of two: the
/// workload is dozens-to-hundreds of functions, not millions, and the
/// goal is only that foreground lookups rarely contend with background
/// publishes.
pub const SHARD_COUNT: usize = 16;

/// How a version was produced — used as a tie-breaker among equally
/// close candidates (optimized code wins) and reported in diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CodeQuality {
    /// `mcc`-style generic code.
    Generic,
    /// Fast JIT pipeline (no backend optimization).
    Jit,
    /// Optimizing pipeline (speculative / batch backend).
    Optimized,
}

/// One compiled version of a function.
#[derive(Clone, Debug)]
pub struct CompiledVersion {
    /// The type signature the code was compiled for.
    pub signature: Signature,
    /// The executable code (shared with any thread executing it).
    pub code: Arc<Executable>,
    /// Pipeline that produced it.
    pub quality: CodeQuality,
    /// Dispatch-preference level (see [`Tier`]). Persisted across
    /// sessions by the on-disk cache.
    pub tier: Tier,
    /// Inferred output types (fed back into inference as the callee
    /// oracle).
    pub output_types: Vec<Type>,
    /// Time spent compiling this version.
    pub compile_time: Duration,
}

/// One stored version plus its insertion provenance (which session
/// published it — the input to [`RepoStats::shared_hits`]).
#[derive(Debug)]
struct Stored {
    version: Arc<CompiledVersion>,
    inserted_by: u64,
}

/// Versions and the invalidation generation of one (function,
/// namespace) pair. The generation is bumped by
/// [`Repository::invalidate_ns`]; background compiles capture it when
/// they start and publish through
/// [`Repository::insert_if_current_ns`], which rejects the version if
/// the source changed while the compile was in flight. Generations only
/// ever grow — [`Repository::clear`] drops versions but keeps them, so
/// an in-flight publish can never resurrect stale code.
#[derive(Debug, Default)]
struct NsEntry {
    versions: Vec<Stored>,
    generation: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// `function name → namespace key → versions + generation`.
    functions: HashMap<String, HashMap<u64, NsEntry>>,
}

/// The repository: compiled versions per function name and namespace,
/// sharded for concurrent access. All methods take `&self`; clone-free
/// sharing between threads goes through `Arc<Repository>`.
#[derive(Debug)]
pub struct Repository {
    shards: Vec<RwLock<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Hits answered by a version inserted by a different session.
    shared_hits: AtomicU64,
    inserts: AtomicU64,
    invalidations: AtomicU64,
    /// Hits answered by a tier-0 version.
    tier0_hits: AtomicU64,
    /// Hits answered by a tier-1 version.
    tier1_hits: AtomicU64,
    /// Total compile time across all inserted versions, in nanoseconds.
    compile_nanos: AtomicU64,
}

impl Default for Repository {
    fn default() -> Self {
        Repository::new()
    }
}

fn shard_index(name: &str) -> usize {
    // FNV-1a: tiny, stable, good enough to spread function names. Keyed
    // by the bare name so every namespace of a function shares a shard.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % SHARD_COUNT as u64) as usize
}

/// The locator preference among safe candidates: highest [`Tier`]
/// first, then Manhattan-closest signature, then [`CodeQuality`].
fn best<'a>(
    candidates: impl Iterator<Item = &'a Stored>,
    actuals: &Signature,
) -> Option<&'a Stored> {
    candidates
        .filter(|s| s.version.signature.admits(actuals))
        .min_by_key(|s| {
            (
                std::cmp::Reverse(s.version.tier),
                s.version.signature.distance(actuals).unwrap_or(u64::MAX),
                std::cmp::Reverse(s.version.quality),
            )
        })
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Repository {
        Repository {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shared_hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            tier0_hits: AtomicU64::new(0),
            tier1_hits: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<Shard> {
        &self.shards[shard_index(name)]
    }

    fn count_insert(&self, version: &CompiledVersion) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.compile_nanos
            .fetch_add(version.compile_time.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Register a compiled version in [`DEFAULT_NS`] with no session
    /// attribution (single-tenant compatibility path).
    pub fn insert(&self, name: &str, version: CompiledVersion) {
        self.insert_ns(name, DEFAULT_NS, NO_SESSION, version);
    }

    /// Register a compiled version in namespace `ns`, attributed to
    /// `session` (use [`NO_SESSION`] outside any session).
    pub fn insert_ns(&self, name: &str, ns: u64, session: u64, version: CompiledVersion) {
        self.count_insert(&version);
        let mut shard = self.shard(name).write().expect("repository shard poisoned");
        shard
            .functions
            .entry(name.to_owned())
            .or_default()
            .entry(ns)
            .or_default()
            .versions
            .push(Stored {
                version: Arc::new(version),
                inserted_by: session,
            });
    }

    /// The current invalidation generation of `name` in [`DEFAULT_NS`]
    /// (0 until the first [`Repository::invalidate`]).
    pub fn generation(&self, name: &str) -> u64 {
        self.generation_ns(name, DEFAULT_NS)
    }

    /// The current invalidation generation of `(name, ns)` (0 until the
    /// first invalidation). A compile that starts now and publishes
    /// through [`Repository::insert_if_current_ns`] with this value is
    /// guaranteed to be dropped if the source changes in between.
    pub fn generation_ns(&self, name: &str, ns: u64) -> u64 {
        let shard = self.shard(name).read().expect("repository shard poisoned");
        shard
            .functions
            .get(name)
            .and_then(|e| e.get(&ns))
            .map_or(0, |e| e.generation)
    }

    /// [`Repository::insert_if_current_ns`] against [`DEFAULT_NS`] with
    /// no session attribution.
    pub fn insert_if_current(&self, name: &str, generation: u64, version: CompiledVersion) -> bool {
        self.insert_if_current_ns(name, DEFAULT_NS, generation, NO_SESSION, version)
    }

    /// Register `version` only if `(name, ns)`'s invalidation generation
    /// is still `generation` (as captured by
    /// [`Repository::generation_ns`] when the compile started). Returns
    /// whether the version was published.
    ///
    /// This is the publish path for *background* compiles: a worker's
    /// input is a registry snapshot taken at enqueue time, so by the
    /// time it finishes, [`Repository::invalidate_ns`] may have dropped
    /// every version of the old source. The check and the push happen
    /// under one shard write lock, so a version compiled from
    /// since-redefined source can never land — stale code would
    /// otherwise outrank (or coexist with) fresh tier-0 compiles and
    /// silently change results.
    pub fn insert_if_current_ns(
        &self,
        name: &str,
        ns: u64,
        generation: u64,
        session: u64,
        version: CompiledVersion,
    ) -> bool {
        let mut shard = self.shard(name).write().expect("repository shard poisoned");
        let current = shard
            .functions
            .get(name)
            .and_then(|e| e.get(&ns))
            .map_or(0, |e| e.generation);
        if current != generation {
            return false;
        }
        self.count_insert(&version);
        shard
            .functions
            .entry(name.to_owned())
            .or_default()
            .entry(ns)
            .or_default()
            .versions
            .push(Stored {
                version: Arc::new(version),
                inserted_by: session,
            });
        true
    }

    /// Bump the locator counters and emit the per-lookup trace event.
    fn record_lookup(
        &self,
        name: &str,
        actuals: &Signature,
        found: Option<&Arc<CompiledVersion>>,
        shared: bool,
    ) {
        if let Some(v) = found {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if shared {
                self.shared_hits.fetch_add(1, Ordering::Relaxed);
            }
            match v.tier {
                Tier::T0 => self.tier0_hits.fetch_add(1, Ordering::Relaxed),
                Tier::T1 => self.tier1_hits.fetch_add(1, Ordering::Relaxed),
            };
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if majic_trace::enabled() {
            // Per-lookup locator event: the best match's Manhattan
            // distance is the signal Tables 1–2 and future heuristics
            // are built on.
            let distance = found.and_then(|v| v.signature.distance(actuals));
            if let Some(d) = distance {
                majic_trace::histogram("repo.lookup.distance").record(d);
            }
            majic_trace::counter(if found.is_some() {
                "repo.hits"
            } else {
                "repo.misses"
            })
            .inc();
            majic_trace::instant("repo.lookup", || {
                let mut args = vec![
                    ("fn", name.to_owned()),
                    ("hit", found.is_some().to_string()),
                ];
                if let Some(d) = distance {
                    args.push(("distance", d.to_string()));
                }
                args
            });
        }
    }

    /// The function locator across *all* namespaces of `name`: find the
    /// best safe version for an invocation, or `None` (triggering a JIT
    /// compilation). Single-tenant compatibility path — engine sessions
    /// dispatch through [`Repository::lookup_ns`].
    ///
    /// Among safe candidates the locator prefers the highest [`Tier`]
    /// (optimized code wins over naive code whenever both admit the
    /// call), then the Manhattan-closest signature within that tier,
    /// then [`CodeQuality`] as the final tie-breaker. Because the
    /// preference is evaluated per lookup against whatever versions are
    /// currently published, a tier-1 version inserted by a background
    /// recompile takes over dispatch atomically, with no stall — and a
    /// signature it does not admit falls back to tier 0 the same way.
    ///
    /// Returns a shared handle (versions live behind `Arc`s, so a hit
    /// clones one pointer, never the signature or output types) and the
    /// shard lock is released before the code runs.
    pub fn lookup(&self, name: &str, actuals: &Signature) -> Option<Arc<CompiledVersion>> {
        let found = {
            let shard = self.shard(name).read().expect("repository shard poisoned");
            shard.functions.get(name).and_then(|namespaces| {
                best(namespaces.values().flat_map(|e| e.versions.iter()), actuals)
                    .map(|s| Arc::clone(&s.version))
            })
        };
        self.record_lookup(name, actuals, found.as_ref(), false);
        found
    }

    /// The function locator within one namespace, attributed to
    /// `session`: the dispatch path of a multi-session service. Same
    /// preference order as [`Repository::lookup`], but only versions in
    /// `ns` are candidates — a session can never be answered with code
    /// compiled from source it did not load. A hit on a version a
    /// *different* session inserted counts as a shared hit
    /// ([`RepoStats::shared_hits`]).
    pub fn lookup_ns(
        &self,
        name: &str,
        ns: u64,
        session: u64,
        actuals: &Signature,
    ) -> Option<Arc<CompiledVersion>> {
        let (found, shared) = {
            let shard = self.shard(name).read().expect("repository shard poisoned");
            match shard
                .functions
                .get(name)
                .and_then(|namespaces| namespaces.get(&ns))
                .and_then(|e| best(e.versions.iter(), actuals))
            {
                Some(s) => (
                    Some(Arc::clone(&s.version)),
                    session != NO_SESSION && s.inserted_by != session,
                ),
                None => (None, false),
            }
        };
        self.record_lookup(name, actuals, found.as_ref(), shared);
        found
    }

    /// Inference oracle across all namespaces: output types of the best
    /// version admitting the given argument types.
    pub fn call_types(&self, name: &str, args: &Signature) -> Option<Vec<Type>> {
        let shard = self.shard(name).read().expect("repository shard poisoned");
        shard.functions.get(name).and_then(|namespaces| {
            namespaces
                .values()
                .flat_map(|e| e.versions.iter())
                .filter(|s| s.version.signature.admits(args))
                .min_by_key(|s| s.version.signature.distance(args).unwrap_or(u64::MAX))
                .map(|s| s.version.output_types.clone())
        })
    }

    /// Inference oracle within one namespace (the multi-session path:
    /// a callee's output types must come from the *caller's* view of the
    /// callee, never from a neighbor's redefinition).
    pub fn call_types_ns(&self, name: &str, ns: u64, args: &Signature) -> Option<Vec<Type>> {
        let shard = self.shard(name).read().expect("repository shard poisoned");
        shard
            .functions
            .get(name)
            .and_then(|namespaces| namespaces.get(&ns))
            .and_then(|e| {
                e.versions
                    .iter()
                    .filter(|s| s.version.signature.admits(args))
                    .min_by_key(|s| s.version.signature.distance(args).unwrap_or(u64::MAX))
                    .map(|s| s.version.output_types.clone())
            })
    }

    /// Number of compiled versions of `name` across all namespaces.
    pub fn version_count(&self, name: &str) -> usize {
        let shard = self.shard(name).read().expect("repository shard poisoned");
        shard.functions.get(name).map_or(0, |namespaces| {
            namespaces.values().map(|e| e.versions.len()).sum()
        })
    }

    /// Number of compiled versions of `name` in namespace `ns`.
    pub fn version_count_ns(&self, name: &str, ns: u64) -> usize {
        let shard = self.shard(name).read().expect("repository shard poisoned");
        shard
            .functions
            .get(name)
            .and_then(|namespaces| namespaces.get(&ns))
            .map_or(0, |e| e.versions.len())
    }

    /// Total number of versions across all functions and namespaces.
    pub fn total_versions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("repository shard poisoned")
                    .functions
                    .values()
                    .flat_map(HashMap::values)
                    .map(|e| e.versions.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Locator and lifecycle statistics, including the per-tier hit
    /// split and the current per-tier population ([`Repository::tier_versions`]).
    pub fn stats(&self) -> RepoStats {
        let [tier0_versions, tier1_versions] = self.tier_versions();
        RepoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            shared_hits: self.shared_hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            tier0_hits: self.tier0_hits.load(Ordering::Relaxed),
            tier1_hits: self.tier1_hits.load(Ordering::Relaxed),
            tier0_versions,
            tier1_versions,
        }
    }

    /// Current number of live versions per tier: `[tier-0, tier-1]`.
    /// Shards are read-locked one at a time; concurrent inserts may or
    /// may not be counted.
    pub fn tier_versions(&self) -> [usize; 2] {
        let mut counts = [0usize; 2];
        for s in &self.shards {
            let shard = s.read().expect("repository shard poisoned");
            for namespaces in shard.functions.values() {
                for e in namespaces.values() {
                    for s in &e.versions {
                        counts[s.version.tier.level() as usize] += 1;
                    }
                }
            }
        }
        counts
    }

    /// Number of `insert` calls since creation (or the last `clear`).
    pub fn insert_count(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Drop every version of `name` in *every* namespace (source changed
    /// — the repository "triggers recompilations when the source code
    /// changes") and bump each namespace's invalidation generation, so
    /// in-flight background compiles of the old source are rejected at
    /// publish time ([`Repository::insert_if_current_ns`]).
    pub fn invalidate(&self, name: &str) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        majic_trace::audit::session_event("repo.invalidate", || {
            (
                name.to_owned(),
                "source changed: every compiled version dropped".to_owned(),
            )
        });
        let mut shard = self.shard(name).write().expect("repository shard poisoned");
        let namespaces = shard.functions.entry(name.to_owned()).or_default();
        // Bump the default namespace even if nothing was ever inserted
        // there: `generation(name)` must grow on every invalidation.
        namespaces.entry(DEFAULT_NS).or_default();
        for e in namespaces.values_mut() {
            e.versions.clear();
            e.generation += 1;
        }
    }

    /// Drop every version of `name` in namespace `ns` only, and bump
    /// that namespace's generation. This is the multi-session
    /// redefinition path: when the *last* session using `(name, ns)`
    /// moves to new source, its old versions are dropped and any
    /// in-flight background publish against the old source is rejected —
    /// while other namespaces (other sessions' definitions of the same
    /// name) are untouched.
    pub fn invalidate_ns(&self, name: &str, ns: u64) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        majic_trace::audit::session_event("repo.invalidate", || {
            (
                name.to_owned(),
                format!("source changed in namespace {ns:016x}: its compiled versions dropped"),
            )
        });
        let mut shard = self.shard(name).write().expect("repository shard poisoned");
        let e = shard
            .functions
            .entry(name.to_owned())
            .or_default()
            .entry(ns)
            .or_default();
        e.versions.clear();
        e.generation += 1;
    }

    /// Drop every version in every namespace (generations are preserved
    /// — dropping code is not a source change, and an in-flight publish
    /// for unchanged source is still valid).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.write().expect("repository shard poisoned");
            for namespaces in shard.functions.values_mut() {
                for e in namespaces.values_mut() {
                    e.versions.clear();
                }
            }
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.shared_hits.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.tier0_hits.store(0, Ordering::Relaxed);
        self.tier1_hits.store(0, Ordering::Relaxed);
        self.compile_nanos.store(0, Ordering::Relaxed);
    }

    /// Total compile time recorded across all inserted versions.
    pub fn total_compile_time(&self) -> Duration {
        Duration::from_nanos(self.compile_nanos.load(Ordering::Relaxed))
    }

    /// A point-in-time snapshot of every compiled version, grouped by
    /// function (namespaces merged) and sorted by name (so serialized
    /// caches are deterministic). Shards are locked one at a time;
    /// concurrent inserts may or may not appear.
    pub fn entries(&self) -> Vec<(String, Vec<CompiledVersion>)> {
        let mut all: Vec<(String, Vec<CompiledVersion>)> = Vec::new();
        for (name, _, versions) in self.entries_ns() {
            match all.last_mut() {
                Some((last, vs)) if *last == name => vs.extend(versions),
                _ => all.push((name, versions)),
            }
        }
        all
    }

    /// A point-in-time snapshot of every compiled version with its
    /// namespace key, sorted by `(name, ns)`. Empty namespaces (all
    /// versions invalidated) are skipped. This is the persistence
    /// walk: the namespace key *is* the closure hash a future session
    /// revalidates cached entries against.
    pub fn entries_ns(&self) -> Vec<(String, u64, Vec<CompiledVersion>)> {
        let mut all: Vec<(String, u64, Vec<CompiledVersion>)> = Vec::new();
        for s in &self.shards {
            let shard = s.read().expect("repository shard poisoned");
            for (name, namespaces) in &shard.functions {
                for (&ns, e) in namespaces {
                    if e.versions.is_empty() {
                        continue;
                    }
                    // Deep clone: serialization walks the whole version
                    // anyway, and this keeps `Arc` an internal detail.
                    all.push((
                        name.clone(),
                        ns,
                        e.versions.iter().map(|s| (*s.version).clone()).collect(),
                    ));
                }
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        all
    }
}

// The shards hold plain data behind std locks and the counters are
// atomics; assert the properties the engine relies on at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Repository>();
    assert_send_sync::<CompiledVersion>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use majic_ir::Function;
    use majic_types::{Intrinsic, Lattice};
    use majic_vm::Executable;

    fn dummy_code() -> Arc<Executable> {
        Arc::new(Executable::new(
            &Function {
                name: "f".into(),
                blocks: vec![majic_ir::Block::default()],
                ..Function::default()
            },
            0,
            0,
        ))
    }

    fn version(sig: Vec<Type>, quality: CodeQuality) -> CompiledVersion {
        CompiledVersion {
            signature: Signature::new(sig),
            code: dummy_code(),
            quality,
            tier: if quality == CodeQuality::Optimized {
                Tier::T1
            } else {
                Tier::T0
            },
            output_types: vec![Type::top()],
            compile_time: Duration::from_micros(10),
        }
    }

    #[test]
    fn lookup_requires_safety() {
        let repo = Repository::new();
        repo.insert(
            "poly",
            version(vec![Type::scalar(Intrinsic::Int)], CodeQuality::Jit),
        );
        // Integer invocation: safe.
        let ok = Signature::new(vec![Type::constant(3.0)]);
        assert!(repo.lookup("poly", &ok).is_some());
        // Real invocation: 3.5 is not ⊑ int scalar.
        let bad = Signature::new(vec![Type::constant(3.5)]);
        assert!(repo.lookup("poly", &bad).is_none());
        let stats = repo.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    fn stats_track_lifecycle() {
        let repo = Repository::new();
        assert_eq!(repo.stats(), RepoStats::default());
        repo.insert("f", version(vec![], CodeQuality::Jit));
        repo.invalidate("f");
        repo.invalidate("g"); // counting is per trigger, not per removal
        let s = repo.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.hit_rate(), 0.0);
        repo.clear();
        assert_eq!(repo.stats(), RepoStats::default());
    }

    #[test]
    fn best_candidate_wins() {
        // The Figure 3 ladder: an int-scalar invocation must pick the
        // int-scalar version over the real-scalar and complex-anything
        // versions.
        let repo = Repository::new();
        repo.insert(
            "poly",
            version(
                vec![Type::top().with_intrinsic(Intrinsic::Complex)],
                CodeQuality::Jit,
            ),
        );
        repo.insert(
            "poly",
            version(vec![Type::scalar(Intrinsic::Real)], CodeQuality::Jit),
        );
        repo.insert(
            "poly",
            version(vec![Type::scalar(Intrinsic::Int)], CodeQuality::Jit),
        );
        let inv = Signature::new(vec![Type::constant(3.0)]);
        let found = repo.lookup("poly", &inv).unwrap();
        assert_eq!(
            found.signature,
            Signature::new(vec![Type::scalar(Intrinsic::Int)])
        );
    }

    #[test]
    fn quality_breaks_ties() {
        let repo = Repository::new();
        repo.insert(
            "f",
            version(vec![Type::scalar(Intrinsic::Real)], CodeQuality::Jit),
        );
        repo.insert(
            "f",
            version(vec![Type::scalar(Intrinsic::Real)], CodeQuality::Optimized),
        );
        let inv = Signature::new(vec![Type::scalar(Intrinsic::Real)]);
        assert_eq!(
            repo.lookup("f", &inv).unwrap().quality,
            CodeQuality::Optimized
        );
    }

    #[test]
    fn arity_mismatch_never_matches() {
        let repo = Repository::new();
        repo.insert(
            "f",
            version(vec![Type::scalar(Intrinsic::Real)], CodeQuality::Jit),
        );
        let inv = Signature::new(vec![]);
        assert!(repo.lookup("f", &inv).is_none());
    }

    #[test]
    fn invalidation_forgets_versions() {
        let repo = Repository::new();
        repo.insert("f", version(vec![], CodeQuality::Jit));
        assert_eq!(repo.version_count("f"), 1);
        repo.invalidate("f");
        assert_eq!(repo.version_count("f"), 0);
    }

    #[test]
    fn stale_background_publish_is_rejected() {
        // The tier-1 publish race: a background worker captures the
        // generation when its compile starts; if the source is
        // redefined (invalidate) before it publishes, the publish must
        // be dropped — old-source code outranking fresh tier-0 compiles
        // would silently change results.
        let repo = Repository::new();
        assert_eq!(repo.generation("f"), 0);
        let gen = repo.generation("f");
        repo.invalidate("f"); // source changed mid-compile
        assert_eq!(repo.generation("f"), 1);
        assert!(!repo.insert_if_current("f", gen, version(vec![], CodeQuality::Optimized)));
        assert_eq!(repo.version_count("f"), 0);
        assert_eq!(
            repo.stats().inserts,
            0,
            "rejected publish counted as insert"
        );

        // A publish whose generation is still current lands normally.
        let gen = repo.generation("f");
        assert!(repo.insert_if_current("f", gen, version(vec![], CodeQuality::Optimized)));
        assert_eq!(repo.version_count("f"), 1);
        assert_eq!(repo.stats().inserts, 1);
    }

    #[test]
    fn generations_survive_clear() {
        // `clear` drops code but is not a source change: generations
        // are monotonic so an in-flight publish for unchanged source
        // stays valid, and one for redefined source stays invalid.
        let repo = Repository::new();
        repo.invalidate("f");
        let stale = 0;
        repo.clear();
        assert_eq!(repo.generation("f"), 1);
        assert!(!repo.insert_if_current("f", stale, version(vec![], CodeQuality::Jit)));
        assert!(repo.insert_if_current("f", 1, version(vec![], CodeQuality::Jit)));
    }

    #[test]
    fn oracle_returns_output_types() {
        let repo = Repository::new();
        let mut v = version(vec![Type::scalar(Intrinsic::Int)], CodeQuality::Jit);
        v.output_types = vec![Type::scalar(Intrinsic::Real)];
        repo.insert("f", v);
        let args = Signature::new(vec![Type::constant(1.0)]);
        assert_eq!(
            repo.call_types("f", &args),
            Some(vec![Type::scalar(Intrinsic::Real)])
        );
        assert_eq!(repo.call_types("g", &args), None);
    }

    #[test]
    fn shared_across_threads() {
        let repo = Arc::new(Repository::new());
        let writer = {
            let repo = Arc::clone(&repo);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    repo.insert(
                        "t",
                        version(vec![Type::scalar(Intrinsic::Int)], CodeQuality::Jit),
                    );
                }
            })
        };
        let inv = Signature::new(vec![Type::constant(1.0)]);
        for _ in 0..100 {
            let _ = repo.lookup("t", &inv);
        }
        writer.join().unwrap();
        assert_eq!(repo.version_count("t"), 100);
        assert_eq!(repo.insert_count(), 100);
    }

    #[test]
    fn namespaces_isolate_dispatch() {
        // Two sessions, two definitions of `f` (namespaces 10 and 20):
        // each session's lookup must only ever see its own namespace,
        // while the namespace-less diagnostics see both.
        let repo = Repository::new();
        let sig = vec![Type::scalar(Intrinsic::Real)];
        repo.insert_ns("f", 10, 1, version(sig.clone(), CodeQuality::Jit));
        repo.insert_ns("f", 20, 2, version(sig.clone(), CodeQuality::Optimized));
        let inv = Signature::new(sig);
        let a = repo.lookup_ns("f", 10, 1, &inv).expect("ns 10 version");
        assert_eq!(a.quality, CodeQuality::Jit);
        let b = repo.lookup_ns("f", 20, 2, &inv).expect("ns 20 version");
        assert_eq!(b.quality, CodeQuality::Optimized);
        assert!(repo.lookup_ns("f", 30, 3, &inv).is_none(), "unknown ns hit");
        assert_eq!(repo.version_count("f"), 2);
        assert_eq!(repo.version_count_ns("f", 10), 1);
        // The namespace-less locator still finds the best across both.
        assert_eq!(
            repo.lookup("f", &inv).unwrap().quality,
            CodeQuality::Optimized
        );
    }

    #[test]
    fn shared_hits_attribute_cross_session_reuse() {
        let repo = Repository::new();
        let sig = vec![Type::scalar(Intrinsic::Real)];
        repo.insert_ns("f", 10, 1, version(sig.clone(), CodeQuality::Jit));
        let inv = Signature::new(sig);
        // The inserting session's own hit is not "shared".
        repo.lookup_ns("f", 10, 1, &inv).unwrap();
        assert_eq!(repo.stats().shared_hits, 0);
        // Another session hitting the same version is.
        repo.lookup_ns("f", 10, 2, &inv).unwrap();
        assert_eq!(repo.stats().shared_hits, 1);
        // Unattributed lookups never count.
        repo.lookup("f", &inv).unwrap();
        repo.lookup_ns("f", 10, NO_SESSION, &inv).unwrap();
        let s = repo.stats();
        assert_eq!(s.shared_hits, 1);
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn invalidate_ns_spares_other_namespaces() {
        let repo = Repository::new();
        let sig = vec![Type::scalar(Intrinsic::Real)];
        repo.insert_ns("f", 10, 1, version(sig.clone(), CodeQuality::Jit));
        repo.insert_ns("f", 20, 2, version(sig.clone(), CodeQuality::Jit));
        let g20 = repo.generation_ns("f", 20);
        repo.invalidate_ns("f", 10);
        assert_eq!(repo.version_count_ns("f", 10), 0);
        assert_eq!(repo.version_count_ns("f", 20), 1, "neighbor poisoned");
        assert_eq!(repo.generation_ns("f", 10), 1);
        assert_eq!(
            repo.generation_ns("f", 20),
            g20,
            "neighbor generation bumped"
        );
        // The generation guard is per namespace: a stale publish into
        // ns 10 is rejected while a current publish into ns 20 lands.
        assert!(!repo.insert_if_current_ns(
            "f",
            10,
            0,
            1,
            version(sig.clone(), CodeQuality::Optimized)
        ));
        assert!(repo.insert_if_current_ns("f", 20, g20, 2, version(sig, CodeQuality::Optimized)));
    }

    #[test]
    fn entries_ns_reports_namespace_keys() {
        let repo = Repository::new();
        let sig = vec![Type::scalar(Intrinsic::Real)];
        repo.insert_ns("a", 7, 1, version(sig.clone(), CodeQuality::Jit));
        repo.insert_ns("a", 9, 1, version(sig.clone(), CodeQuality::Jit));
        repo.insert_ns("b", 7, 1, version(sig.clone(), CodeQuality::Jit));
        repo.invalidate_ns("b", 7); // empty namespaces are skipped
        let entries = repo.entries_ns();
        let keys: Vec<(String, u64)> = entries.iter().map(|(n, ns, _)| (n.clone(), *ns)).collect();
        assert_eq!(keys, vec![("a".to_owned(), 7), ("a".to_owned(), 9)]);
        // The merged view folds namespaces per name.
        let merged = repo.entries();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].0, "a");
        assert_eq!(merged[0].1.len(), 2);
    }
}
