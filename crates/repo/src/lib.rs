//! The code repository (paper §2, §2.2.1).
//!
//! "The code repository is a database of compiled code. … The code
//! repository may contain, at any time, several compiled versions of the
//! same code, differing only in the assumptions about the types of input
//! parameters. The function locator has to match a given invocation to a
//! version of compiled code in the repository that is safe to execute
//! (i.e. preserves the semantics of the program), and at the same time
//! is optimal performance-wise. … When several matching objects exist,
//! the code repository uses simple heuristics to find the best matching
//! candidate for a particular call, based on a Manhattan-like 'distance'
//! between the type signature of the invocation and the matching
//! compiled code."
//!
//! Safety is the subtype check `Qi ⊑ Ti` per parameter; it is what makes
//! speculation *safe*: "a wrong guess by the compiler results, at worst,
//! in degraded performance, but never affects program correctness".

use majic_types::{Signature, Type};
use majic_vm::Executable;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

/// How a version was produced — used as a tie-breaker among equally
/// close candidates (optimized code wins) and reported in diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CodeQuality {
    /// `mcc`-style generic code.
    Generic,
    /// Fast JIT pipeline (no backend optimization).
    Jit,
    /// Optimizing pipeline (speculative / batch backend).
    Optimized,
}

/// One compiled version of a function.
#[derive(Clone, Debug)]
pub struct CompiledVersion {
    /// The type signature the code was compiled for.
    pub signature: Signature,
    /// The executable code.
    pub code: Rc<Executable>,
    /// Pipeline that produced it.
    pub quality: CodeQuality,
    /// Inferred output types (fed back into inference as the callee
    /// oracle).
    pub output_types: Vec<Type>,
    /// Time spent compiling this version.
    pub compile_time: Duration,
}

/// The repository: compiled versions per function name.
#[derive(Debug, Default)]
pub struct Repository {
    versions: HashMap<String, Vec<CompiledVersion>>,
    /// Lookup statistics: (hits, misses).
    stats: (u64, u64),
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// Register a compiled version.
    pub fn insert(&mut self, name: &str, version: CompiledVersion) {
        self.versions.entry(name.to_owned()).or_default().push(version);
    }

    /// The function locator: find the best safe version for an
    /// invocation, or `None` (triggering a JIT compilation).
    pub fn lookup(&mut self, name: &str, actuals: &Signature) -> Option<&CompiledVersion> {
        let found = self.versions.get(name).and_then(|versions| {
            versions
                .iter()
                .filter(|v| v.signature.admits(actuals))
                .min_by_key(|v| {
                    (
                        v.signature.distance(actuals).unwrap_or(u64::MAX),
                        std::cmp::Reverse(v.quality),
                    )
                })
        });
        if found.is_some() {
            self.stats.0 += 1;
        } else {
            self.stats.1 += 1;
        }
        found
    }

    /// Inference oracle: output types of the best version admitting the
    /// given argument types.
    pub fn call_types(&self, name: &str, args: &Signature) -> Option<Vec<Type>> {
        self.versions.get(name).and_then(|versions| {
            versions
                .iter()
                .filter(|v| v.signature.admits(args))
                .min_by_key(|v| v.signature.distance(args).unwrap_or(u64::MAX))
                .map(|v| v.output_types.clone())
        })
    }

    /// Number of compiled versions of `name`.
    pub fn version_count(&self, name: &str) -> usize {
        self.versions.get(name).map_or(0, Vec::len)
    }

    /// `(hits, misses)` of the function locator.
    pub fn stats(&self) -> (u64, u64) {
        self.stats
    }

    /// Drop every version of `name` (source changed — the repository
    /// "triggers recompilations when the source code changes").
    pub fn invalidate(&mut self, name: &str) {
        self.versions.remove(name);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.versions.clear();
        self.stats = (0, 0);
    }

    /// Total compile time recorded across all versions.
    pub fn total_compile_time(&self) -> Duration {
        self.versions
            .values()
            .flatten()
            .map(|v| v.compile_time)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majic_ir::Function;
    use majic_types::{Intrinsic, Lattice};
    use majic_vm::Executable;

    fn dummy_code() -> Rc<Executable> {
        Rc::new(Executable::new(
            &Function {
                name: "f".into(),
                blocks: vec![majic_ir::Block::default()],
                ..Function::default()
            },
            0,
            0,
        ))
    }

    fn version(sig: Vec<Type>, quality: CodeQuality) -> CompiledVersion {
        CompiledVersion {
            signature: Signature::new(sig),
            code: dummy_code(),
            quality,
            output_types: vec![Type::top()],
            compile_time: Duration::from_micros(10),
        }
    }

    #[test]
    fn lookup_requires_safety() {
        let mut repo = Repository::new();
        repo.insert(
            "poly",
            version(vec![Type::scalar(Intrinsic::Int)], CodeQuality::Jit),
        );
        // Integer invocation: safe.
        let ok = Signature::new(vec![Type::constant(3.0)]);
        assert!(repo.lookup("poly", &ok).is_some());
        // Real invocation: 3.5 is not ⊑ int scalar.
        let bad = Signature::new(vec![Type::constant(3.5)]);
        assert!(repo.lookup("poly", &bad).is_none());
        assert_eq!(repo.stats(), (1, 1));
    }

    #[test]
    fn best_candidate_wins() {
        // The Figure 3 ladder: an int-scalar invocation must pick the
        // int-scalar version over the real-scalar and complex-anything
        // versions.
        let mut repo = Repository::new();
        repo.insert(
            "poly",
            version(vec![Type::top().with_intrinsic(Intrinsic::Complex)], CodeQuality::Jit),
        );
        repo.insert(
            "poly",
            version(vec![Type::scalar(Intrinsic::Real)], CodeQuality::Jit),
        );
        repo.insert(
            "poly",
            version(vec![Type::scalar(Intrinsic::Int)], CodeQuality::Jit),
        );
        let inv = Signature::new(vec![Type::constant(3.0)]);
        let found = repo.lookup("poly", &inv).unwrap();
        assert_eq!(found.signature, Signature::new(vec![Type::scalar(Intrinsic::Int)]));
    }

    #[test]
    fn quality_breaks_ties() {
        let mut repo = Repository::new();
        repo.insert(
            "f",
            version(vec![Type::scalar(Intrinsic::Real)], CodeQuality::Jit),
        );
        repo.insert(
            "f",
            version(vec![Type::scalar(Intrinsic::Real)], CodeQuality::Optimized),
        );
        let inv = Signature::new(vec![Type::scalar(Intrinsic::Real)]);
        assert_eq!(
            repo.lookup("f", &inv).unwrap().quality,
            CodeQuality::Optimized
        );
    }

    #[test]
    fn arity_mismatch_never_matches() {
        let mut repo = Repository::new();
        repo.insert("f", version(vec![Type::scalar(Intrinsic::Real)], CodeQuality::Jit));
        let inv = Signature::new(vec![]);
        assert!(repo.lookup("f", &inv).is_none());
    }

    #[test]
    fn invalidation_forgets_versions() {
        let mut repo = Repository::new();
        repo.insert("f", version(vec![], CodeQuality::Jit));
        assert_eq!(repo.version_count("f"), 1);
        repo.invalidate("f");
        assert_eq!(repo.version_count("f"), 0);
    }

    #[test]
    fn oracle_returns_output_types() {
        let mut repo = Repository::new();
        let mut v = version(vec![Type::scalar(Intrinsic::Int)], CodeQuality::Jit);
        v.output_types = vec![Type::scalar(Intrinsic::Real)];
        repo.insert("f", v);
        let args = Signature::new(vec![Type::constant(1.0)]);
        assert_eq!(
            repo.call_types("f", &args),
            Some(vec![Type::scalar(Intrinsic::Real)])
        );
        assert_eq!(repo.call_types("g", &args), None);
    }
}
