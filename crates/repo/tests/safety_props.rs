//! Property tests of the repository's safety check and locator
//! heuristic (paper §2.2.1): a `lookup` hit must never violate the
//! per-parameter subtype condition `Qi ⊑ Ti`, and among safe candidates
//! the locator must prefer minimal Manhattan distance.

use majic_repo::{CodeQuality, CompiledVersion, Repository};
use majic_testkit::{forall, Rng};
use majic_types::{Dim, Intrinsic, Shape, Signature, Type};
use std::sync::Arc;
use std::time::Duration;

fn dummy_code() -> Arc<majic_vm::Executable> {
    Arc::new(majic_vm::Executable::new(
        &majic_ir::Function {
            name: "f".into(),
            blocks: vec![majic_ir::Block::default()],
            ..majic_ir::Function::default()
        },
        0,
        0,
    ))
}

fn arb_intrinsic(rng: &mut Rng) -> Intrinsic {
    *rng.choose(&[
        Intrinsic::Bottom,
        Intrinsic::Bool,
        Intrinsic::Int,
        Intrinsic::Real,
        Intrinsic::Complex,
        Intrinsic::Top,
    ])
}

fn arb_dim(rng: &mut Rng) -> Dim {
    if rng.below(5) == 0 {
        Dim::Inf
    } else {
        Dim::Finite(rng.range_u64(0, 6))
    }
}

fn arb_type(rng: &mut Rng) -> Type {
    use majic_types::Lattice;
    let a = Shape {
        rows: arb_dim(rng),
        cols: arb_dim(rng),
    };
    let b = Shape {
        rows: arb_dim(rng),
        cols: arb_dim(rng),
    };
    Type {
        intrinsic: arb_intrinsic(rng),
        min_shape: a.meet(&b),
        max_shape: a.join(&b),
        range: majic_types::Range::top(),
    }
}

fn arb_signature(rng: &mut Rng, arity: usize) -> Signature {
    Signature::new((0..arity).map(|_| arb_type(rng)).collect())
}

fn version(sig: Signature, quality: CodeQuality) -> CompiledVersion {
    CompiledVersion {
        signature: sig,
        code: dummy_code(),
        quality,
        tier: majic_repo::Tier::T0,
        output_types: vec![],
        compile_time: Duration::ZERO,
    }
}

/// A hit implies every actual parameter is a subtype of the matching
/// compiled parameter — speculation can never execute unsafe code.
#[test]
fn lookup_hit_implies_subtype_per_parameter() {
    forall("repo/hit_implies_subtype", 256, |rng| {
        let repo = Repository::new();
        let arity = rng.below(4);
        let n_versions = 1 + rng.below(6);
        for _ in 0..n_versions {
            // Mix arities so arity mismatches are exercised too.
            let v_arity = if rng.below(4) == 0 {
                rng.below(4)
            } else {
                arity
            };
            repo.insert("f", version(arb_signature(rng, v_arity), CodeQuality::Jit));
        }
        let actuals = arb_signature(rng, arity);
        if let Some(hit) = repo.lookup("f", &actuals) {
            assert_eq!(hit.signature.params().len(), actuals.params().len());
            for (q, t) in actuals.params().iter().zip(hit.signature.params()) {
                assert!(
                    q.is_subtype_of(t),
                    "unsafe hit: actual {q:?} not ⊑ compiled {t:?}"
                );
            }
            assert!(
                hit.signature.admits(&actuals),
                "locator returned a version that does not admit the invocation"
            );
        }
    });
}

/// Among all safe candidates, the locator returns one at minimal
/// Manhattan distance from the invocation.
#[test]
fn lookup_prefers_minimal_manhattan_distance() {
    forall("repo/minimal_distance", 256, |rng| {
        let repo = Repository::new();
        let arity = rng.below(3);
        let n_versions = 1 + rng.below(8);
        let mut versions = Vec::new();
        for _ in 0..n_versions {
            let sig = arb_signature(rng, arity);
            versions.push(sig.clone());
            repo.insert("f", version(sig, CodeQuality::Jit));
        }
        let actuals = arb_signature(rng, arity);
        let best_admitting = versions
            .iter()
            .filter(|s| s.admits(&actuals))
            .filter_map(|s| s.distance(&actuals))
            .min();
        match (repo.lookup("f", &actuals), best_admitting) {
            (Some(hit), Some(best)) => {
                assert_eq!(
                    hit.signature.distance(&actuals),
                    Some(best),
                    "locator picked distance {:?}, minimum is {best}",
                    hit.signature.distance(&actuals)
                );
            }
            (None, None) => {}
            (hit, best) => panic!(
                "locator and oracle disagree about admissibility: hit {:?}, best {best:?}",
                hit.map(|h| h.signature.clone())
            ),
        }
    });
}

/// Equal-distance ties go to the higher-quality version.
#[test]
fn quality_tie_break_holds_under_random_signatures() {
    forall("repo/quality_tie_break", 128, |rng| {
        let repo = Repository::new();
        let arity = 1 + rng.below(3);
        let sig = arb_signature(rng, arity);
        repo.insert("f", version(sig.clone(), CodeQuality::Jit));
        repo.insert("f", version(sig.clone(), CodeQuality::Optimized));
        repo.insert("f", version(sig.clone(), CodeQuality::Generic));
        // Invoke with the signature itself: it always admits itself
        // (subtyping is reflexive), distance 0 for all three.
        if let Some(hit) = repo.lookup("f", &sig) {
            assert_eq!(hit.quality, CodeQuality::Optimized);
        } else {
            // Bottom-typed parameters admit themselves too, so a miss
            // here would be a locator bug.
            panic!("self-invocation missed: {sig:?}");
        }
    });
}

/// The locator's hit/miss accounting matches what it returns.
#[test]
fn stats_count_every_lookup() {
    forall("repo/stats_accounting", 64, |rng| {
        let repo = Repository::new();
        for _ in 0..rng.below(4) {
            repo.insert("f", version(arb_signature(rng, 1), CodeQuality::Jit));
        }
        let (mut hits, mut misses) = (0u64, 0u64);
        for _ in 0..20 {
            let arity = rng.below(2);
            let actuals = arb_signature(rng, arity);
            if repo.lookup("f", &actuals).is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        let stats = repo.stats();
        assert_eq!((stats.hits, stats.misses), (hits, misses));
    });
}
