//! Concurrency stress: reader threads hammer `lookup` while writer
//! threads (standing in for spec workers) `insert`. Asserts the sharded
//! repository loses no versions, keeps locator statistics monotonically
//! non-decreasing, and never hands a reader an unsafe version.

use majic_repo::{CodeQuality, CompiledVersion, Repository};
use majic_types::{Intrinsic, Range, Signature, Type};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn dummy_code() -> Arc<majic_vm::Executable> {
    Arc::new(majic_vm::Executable::new(
        &majic_ir::Function {
            name: "f".into(),
            blocks: vec![majic_ir::Block::default()],
            ..majic_ir::Function::default()
        },
        0,
        0,
    ))
}

/// A distinct, self-admitting signature per (writer, iteration): an int
/// scalar constrained to the constant `k`.
fn sig(k: f64) -> Signature {
    Signature::new(vec![
        Type::scalar(Intrinsic::Int).with_range(Range::new(k, k))
    ])
}

#[test]
fn readers_never_block_out_lost_inserts() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const INSERTS_PER_WRITER: usize = 250;
    // Spread across several function names so multiple shards stay hot.
    const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

    let repo = Arc::new(Repository::new());
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let repo = Arc::clone(&repo);
            std::thread::spawn(move || {
                for i in 0..INSERTS_PER_WRITER {
                    let k = (w * INSERTS_PER_WRITER + i) as f64;
                    let name = NAMES[i % NAMES.len()];
                    repo.insert(
                        name,
                        CompiledVersion {
                            signature: sig(k),
                            code: dummy_code(),
                            quality: CodeQuality::Optimized,
                            tier: majic_repo::Tier::T1,
                            output_types: vec![],
                            compile_time: Duration::from_nanos(1),
                        },
                    );
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let repo = Arc::clone(&repo);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Each reader verifies its own observations: safe hits
                // only, and hit/miss counters never go backwards.
                let mut last_hits = 0u64;
                let mut last_misses = 0u64;
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let k = ((r * 37 + i) % (WRITERS * INSERTS_PER_WRITER)) as f64;
                    let actuals = sig(k);
                    if let Some(hit) = repo.lookup(NAMES[i % NAMES.len()], &actuals) {
                        assert!(
                            hit.signature.admits(&actuals),
                            "reader observed an unsafe hit"
                        );
                    }
                    let stats = repo.stats();
                    assert!(stats.hits >= last_hits, "hit counter went backwards");
                    assert!(stats.misses >= last_misses, "miss counter went backwards");
                    last_hits = stats.hits;
                    last_misses = stats.misses;
                    i += 1;
                }
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader panicked");
    }

    // No lost versions: every insert is present.
    assert_eq!(repo.insert_count(), (WRITERS * INSERTS_PER_WRITER) as u64);
    assert_eq!(repo.total_versions(), WRITERS * INSERTS_PER_WRITER);
    // And every version is individually findable by its own signature.
    for w in 0..WRITERS {
        for i in 0..INSERTS_PER_WRITER {
            let k = (w * INSERTS_PER_WRITER + i) as f64;
            let name = NAMES[i % NAMES.len()];
            assert!(
                repo.lookup(name, &sig(k)).is_some(),
                "version {k} of {name} was lost"
            );
        }
    }
}
