//! Property tests for the persistent repository cache.
//!
//! Two families, both driven by the testkit PRNG:
//!
//! * **round-trip** — random repository states serialize → load →
//!   re-serialize to bitwise-identical files (the format is canonical);
//! * **adversarial** — flipping any single byte of a valid cache file
//!   degrades gracefully: no panic, no bogus entries, and the rejection
//!   is attributed to the right `reject.*` bucket for the region hit.

use majic_ir::{Block, FBinOp, FUnOp, Function, Inst, Reg, Slot, Terminator, VarBinding};
use majic_repo::cache::{CacheEntry, RepoCache, MAGIC};
use majic_repo::{CodeQuality, CompiledVersion, Tier};
use majic_testkit::{forall, Rng};
use majic_types::{Dim, Intrinsic, Lattice, Range, Shape, Signature, Type};
use majic_vm::Executable;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct TempFile {
    dir: PathBuf,
    path: PathBuf,
}

impl TempFile {
    fn new() -> TempFile {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "majic-cache-props-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.majiccache");
        TempFile { dir, path }
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn random_intrinsic(rng: &mut Rng) -> Intrinsic {
    *rng.choose(&[
        Intrinsic::Bottom,
        Intrinsic::Bool,
        Intrinsic::Int,
        Intrinsic::Real,
        Intrinsic::Complex,
        Intrinsic::Str,
        Intrinsic::Top,
    ])
}

fn random_type(rng: &mut Rng) -> Type {
    let mut t = Type::top().with_intrinsic(random_intrinsic(rng));
    if rng.coin() {
        let rows = Dim::Finite(rng.range_u64(0, 8));
        let cols = if rng.coin() {
            Dim::Inf
        } else {
            Dim::Finite(rng.range_u64(0, 8))
        };
        t.max_shape = Shape { rows, cols };
        t.min_shape = Shape {
            rows: Dim::Finite(0),
            cols: Dim::Finite(0),
        };
    }
    if rng.coin() {
        let lo = rng.range_f64(-100.0, 100.0);
        t = t.with_range(Range::new(lo, lo + rng.range_f64(0.0, 50.0)));
    }
    t
}

/// A random — but *valid* — executable: a straight-line function over a
/// few registers, flattened by the real flattener so every reference is
/// in bounds.
fn random_executable(rng: &mut Rng, name: &str) -> Executable {
    let n_insts = rng.range_u64(1, 12) as usize;
    let mut insts = Vec::with_capacity(n_insts);
    for _ in 0..n_insts {
        insts.push(match rng.below(4) {
            0 => Inst::FConst {
                d: Reg(rng.range_u64(0, 7) as u32),
                v: rng.range_f64(-1e6, 1e6),
            },
            1 => Inst::FBin {
                op: *rng.choose(&[FBinOp::Add, FBinOp::Mul, FBinOp::Min]),
                d: Reg(rng.range_u64(0, 7) as u32),
                a: Reg(rng.range_u64(0, 7) as u32),
                b: Reg(rng.range_u64(0, 7) as u32),
            },
            2 => Inst::FUn {
                op: *rng.choose(&[FUnOp::Neg, FUnOp::Sqrt, FUnOp::Floor]),
                d: Reg(rng.range_u64(0, 7) as u32),
                s: Reg(rng.range_u64(0, 7) as u32),
            },
            _ => Inst::FToSlot {
                slot: Slot(rng.range_u64(0, 3) as u32),
                s: Reg(rng.range_u64(0, 7) as u32),
            },
        });
    }
    let f = Function {
        name: name.into(),
        blocks: vec![Block {
            insts,
            term: Terminator::Return,
        }],
        f_regs: 8,
        slots: 4,
        params: vec![VarBinding::F(Reg(0))],
        outputs: vec![VarBinding::F(Reg(1))],
        ..Function::default()
    };
    Executable::new(&f, 0, 0)
}

fn random_entry(rng: &mut Rng, k: usize) -> CacheEntry {
    let name = format!("fn_{k}_{}", rng.range_u64(0, 999));
    let n_params = rng.below(4);
    let signature = Signature::new((0..n_params).map(|_| random_type(rng)).collect());
    let n_outs = rng.below(3);
    CacheEntry {
        version: CompiledVersion {
            signature,
            code: Arc::new(random_executable(rng, &name)),
            quality: *rng.choose(&[
                CodeQuality::Generic,
                CodeQuality::Jit,
                CodeQuality::Optimized,
            ]),
            tier: *rng.choose(&[Tier::T0, Tier::T1]),
            output_types: (0..n_outs).map(|_| random_type(rng)).collect(),
            compile_time: Duration::from_nanos(rng.range_u64(0, 1_000_000_000)),
        },
        source_hash: rng.next_u64(),
        name,
    }
}

fn random_state(rng: &mut Rng) -> Vec<CacheEntry> {
    let n = rng.below(6);
    (0..n).map(|k| random_entry(rng, k)).collect()
}

#[test]
fn random_states_round_trip_bitwise() {
    forall("cache round-trip", 60, |rng| {
        let t = TempFile::new();
        let cache = RepoCache::new(&t.path, "prop-fp");
        let entries = random_state(rng);
        cache.save(&entries).unwrap();
        let bytes = std::fs::read(&t.path).unwrap();

        let (loaded, report) = cache.load();
        assert!(report.clean(), "clean file reported damage: {report:?}");
        assert_eq!(loaded.len(), entries.len());

        // Canonical encoding: re-saving what we loaded reproduces the
        // file bit for bit.
        cache.save(&loaded).unwrap();
        assert_eq!(std::fs::read(&t.path).unwrap(), bytes);

        // And field-level equality holds entry by entry.
        for (a, b) in entries.iter().zip(&loaded) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.source_hash, b.source_hash);
            assert_eq!(a.version.signature, b.version.signature);
            assert_eq!(a.version.quality, b.version.quality);
            assert_eq!(a.version.tier, b.version.tier);
            assert_eq!(a.version.output_types, b.version.output_types);
            assert_eq!(a.version.compile_time, b.version.compile_time);
            assert_eq!(a.version.code.encode(), b.version.code.encode());
        }
    });
}

#[test]
fn any_single_byte_flip_degrades_gracefully() {
    forall("cache byte-flip", 120, |rng| {
        let t = TempFile::new();
        let fingerprint = "prop-fp";
        let cache = RepoCache::new(&t.path, fingerprint);
        // At least one entry so the file has all regions.
        let mut entries = random_state(rng);
        entries.push(random_entry(rng, 99));
        cache.save(&entries).unwrap();
        let clean = std::fs::read(&t.path).unwrap();

        let pos = rng.below(clean.len());
        let mut dirty = clean.clone();
        // Flip 1..8 bits at the position — never a no-op.
        dirty[pos] ^= rng.range_u64(1, 255) as u8;
        std::fs::write(&t.path, &dirty).unwrap();

        // Must not panic, must not report clean, must not hallucinate.
        let (loaded, report) = cache.load();
        assert!(
            !report.clean(),
            "flip at byte {pos} went unnoticed: {report:?}"
        );
        assert!(loaded.len() <= entries.len());
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        for e in &loaded {
            assert!(names.contains(&e.name.as_str()));
        }

        // The rejection lands in the right bucket for the region hit.
        let fp_region = 12..12 + 4 + fingerprint.len();
        if pos < MAGIC.len() + 4 {
            assert_eq!(
                (report.rejected_version, loaded.len()),
                (1, 0),
                "header flip at {pos}: {report:?}"
            );
        } else if fp_region.contains(&pos) {
            assert_eq!(
                (report.rejected_fingerprint, loaded.len()),
                (1, 0),
                "fingerprint flip at {pos}: {report:?}"
            );
        } else {
            // Length prefixes, counts, checksums, payloads: all framing/
            // integrity damage.
            assert!(
                report.rejected_checksum >= 1,
                "body flip at {pos}: {report:?}"
            );
        }
    });
}

#[test]
fn reject_counters_reach_the_global_trace_registry() {
    // Counters are process-global and other tests run in parallel, so
    // assert on deltas of this test's own damage only.
    let t = TempFile::new();
    let cache = RepoCache::new(&t.path, "fp-A");
    let mut rng = Rng::new(7);
    cache.save(&[random_entry(&mut rng, 0)]).unwrap();

    let before = majic_trace::counter("repo.cache.reject.fingerprint").get();
    let (_, report) = RepoCache::new(&t.path, "fp-B").load();
    assert_eq!(report.rejected_fingerprint, 1);
    let after = majic_trace::counter("repo.cache.reject.fingerprint").get();
    assert!(after > before);

    let before = majic_trace::counter("repo.cache.reject.checksum").get();
    let mut bytes = std::fs::read(&t.path).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 1;
    std::fs::write(&t.path, &bytes).unwrap();
    let (_, report) = cache.load();
    assert_eq!(report.rejected_checksum, 1);
    let after = majic_trace::counter("repo.cache.reject.checksum").get();
    assert!(after > before);
}
