//! Speculative type inference (paper §2.5).
//!
//! "The type speculator's trick is to back-propagate certain type hints
//! from the body of the code to the input parameters. Type hints are
//! collected from syntactic constructs that suggest, but do not command,
//! particular semantic meanings."
//!
//! The hints implemented here are exactly the paper's list:
//!
//! 1. operands of the colon (interval) operator are almost always
//!    integer scalars;
//! 2. operands of relational operators — and even more strongly, of
//!    `if`/`while` conditions — are real scalars;
//! 3. when one argument of the bracket operator `[x1 x2 … xn]` is
//!    provably scalar, the others are probably scalars too;
//! 4. subscripts written without colons (Fortran-77 style indexing) are
//!    likely integer scalars — and the indexed name is a real array;
//! 5. arguments of `zeros`, `ones`, `rand`, `eye` and the second
//!    argument of `size` are likely integer scalars.
//!
//! Hints propagate *backward* through simple expressions (the type
//! calculator's backward mode), then a normal forward pass re-computes
//! body types; the alternation iterates until the guessed signature
//! converges. Un-hinted parameters default to the fully generic
//! signature — a complex matrix of unknown shape (the bottom row of the
//! paper's Figure 3). That default is precisely why `eig`-style
//! benchmarks lose under speculation (§3.6: in `mei` "the speculator is
//! unable to predict that the arguments to an eig function call are
//! reals; instead it considers them complex values which leads to
//! performance loss").

use crate::calculator::InferOptions;
use crate::engine::{Annotations, CalleeOracle, ForwardEngine};
use majic_analysis::{DisambiguatedFunction, SymbolKind};
use majic_ast::{BinOp, Expr, ExprKind, LValue, Stmt, StmtKind};
use majic_runtime::builtins::Builtin;
use majic_types::{Intrinsic, Lattice, Range, Shape, Signature, Type};
use std::collections::HashMap;

/// The fully generic parameter guess: any complex matrix (Figure 3,
/// bottom row: `itype(x)=complex, shape(x)=⊤s, limits(x)=⊤l`).
fn generic_guess() -> Type {
    Type {
        intrinsic: Intrinsic::Complex,
        min_shape: Shape::bottom(),
        max_shape: Shape::top(),
        range: Range::top(),
    }
}

/// An int-scalar hint (colon operands, subscripts, `zeros` arguments).
fn int_scalar_hint() -> Type {
    Type::scalar(Intrinsic::Int)
}

/// A real-scalar hint (relational operands, conditions).
fn real_scalar_hint() -> Type {
    Type::scalar(Intrinsic::Real)
}

/// A real-matrix hint (names that get subscripted): shape unknown, but
/// contents real rather than complex.
fn real_matrix_hint() -> Type {
    Type {
        intrinsic: Intrinsic::Real,
        min_shape: Shape::bottom(),
        max_shape: Shape::top(),
        range: Range::top(),
    }
}

/// Speculative type inference: guess a signature from type hints, then
/// run forward inference with it. Returns the guessed [`Signature`]
/// together with the resulting annotations.
pub fn infer_speculative<O: CalleeOracle>(
    d: &DisambiguatedFunction,
    opts: InferOptions,
    oracle: &O,
) -> (Signature, Annotations) {
    let _sp = majic_trace::Span::enter_with("infer.speculative", || {
        vec![("fn", d.function.name.clone())]
    });
    let mut hints: HashMap<String, Type> = HashMap::new();
    // Alternate backward (hint collection) and forward passes until the
    // parameter guess converges (paper: "the alternating
    // backwards-forwards process can be iterated several times").
    let mut sig_types: Vec<Type> = vec![generic_guess(); d.function.params.len()];
    for _pass in 0..4 {
        let mut collector = HintCollector {
            d,
            hints: std::mem::take(&mut hints),
        };
        collector.block(&d.function.body);
        hints = collector.hints;
        // Back-propagate hints through simple assignment chains:
        // a hint on `m` combined with `m = n` hints `n` too.
        for _chain in 0..4 {
            let mut changed = false;
            let assigns = simple_assigns(&d.function.body);
            for (lhs, rhs) in &assigns {
                if let Some(h) = hints.get(lhs).copied() {
                    changed |= backward_expr(rhs, &h, &mut hints);
                }
            }
            if !changed {
                break;
            }
        }
        let new_sig: Vec<Type> = d
            .function
            .params
            .iter()
            .map(|p| match hints.get(p) {
                Some(h) => *h,
                None => generic_guess(),
            })
            .collect();
        if new_sig == sig_types {
            break;
        }
        sig_types = new_sig;
    }

    let sig = Signature::new(sig_types.clone());
    let mut engine = ForwardEngine {
        d,
        opts,
        oracle,
        ann: Annotations::default(),
        break_envs: Vec::new(),
        continue_envs: Vec::new(),
    };
    let ann = engine.run(sig_types);
    (sig, ann)
}

/// Meet a hint into the map (most restrictive wins; contradictions keep
/// the earlier, more restrictive guess).
fn add_hint(hints: &mut HashMap<String, Type>, name: &str, hint: Type) -> bool {
    match hints.get(name) {
        Some(old) => {
            let met = old.meet(&hint);
            // A bottom meet means the hints genuinely conflict; keep the
            // older one (rules are ordered most-restrictive-first).
            if met.intrinsic == Intrinsic::Bottom || met == *old {
                false
            } else {
                hints.insert(name.to_owned(), met);
                true
            }
        }
        None => {
            hints.insert(name.to_owned(), hint);
            true
        }
    }
}

/// Backward transfer through an expression: constrain the variables that
/// feed it (the type calculator's backward mode, §2.3.1).
fn backward_expr(e: &Expr, want: &Type, hints: &mut HashMap<String, Type>) -> bool {
    match &e.kind {
        ExprKind::Ident(name) => add_hint(hints, name, *want),
        // Scalar-preserving arithmetic: `i+1`, `2*k`, `-n` … propagate
        // scalar hints through to the variable.
        ExprKind::Binary { op, lhs, rhs }
            if matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::ElemMul
            ) && want.is_scalar() =>
        {
            let mut changed = false;
            // Division and multiplication may break integrality.
            let w = if matches!(op, BinOp::Div) {
                real_scalar_hint()
            } else {
                *want
            };
            changed |= backward_expr(lhs, &w, hints);
            changed |= backward_expr(rhs, &w, hints);
            changed
        }
        ExprKind::Unary { operand, .. } if want.is_scalar() => backward_expr(operand, want, hints),
        _ => false,
    }
}

/// Collect `lhs = rhs` pairs where the lhs is a plain variable.
fn simple_assigns(stmts: &[Stmt]) -> Vec<(String, Expr)> {
    let mut out = Vec::new();
    fn scan(stmts: &[Stmt], out: &mut Vec<(String, Expr)>) {
        for s in stmts {
            match &s.kind {
                StmtKind::Assign {
                    lhs: LValue::Var { name, .. },
                    rhs,
                    ..
                } => out.push((name.clone(), rhs.clone())),
                StmtKind::If {
                    branches,
                    else_body,
                } => {
                    for (_, b) in branches {
                        scan(b, out);
                    }
                    if let Some(b) = else_body {
                        scan(b, out);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => scan(body, out),
                _ => {}
            }
        }
    }
    scan(stmts, &mut out);
    out
}

struct HintCollector<'a> {
    d: &'a DisambiguatedFunction,
    hints: HashMap<String, Type>,
}

impl HintCollector<'_> {
    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr { expr, .. } => self.expr(expr),
            StmtKind::Assign { lhs, rhs, .. } => {
                if let LValue::Index { name, args, .. } = lhs {
                    self.subscript_hints(name, args);
                }
                self.expr(rhs);
            }
            StmtKind::MultiAssign {
                callee, args, id, ..
            } => {
                self.call_hints(*id, callee, args);
                for a in args {
                    self.expr(a);
                }
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (cond, body) in branches {
                    // Hint 2 (strong form): condition operands are real
                    // scalars.
                    self.condition_hints(cond);
                    self.expr(cond);
                    self.block(body);
                }
                if let Some(b) = else_body {
                    self.block(b);
                }
            }
            StmtKind::While { cond, body } => {
                self.condition_hints(cond);
                self.expr(cond);
                self.block(body);
            }
            StmtKind::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            _ => {}
        }
    }

    fn condition_hints(&mut self, cond: &Expr) {
        if let ExprKind::Binary { op, lhs, rhs } = &cond.kind {
            if op.is_relational() {
                backward_expr(lhs, &real_scalar_hint(), &mut self.hints);
                backward_expr(rhs, &real_scalar_hint(), &mut self.hints);
            }
        }
    }

    fn subscript_hints(&mut self, base: &str, args: &[Expr]) {
        // Hint 4: F77-style subscripts (no colons anywhere) are integer
        // scalars, and the base is a real array.
        let has_colon = args.iter().any(|a| {
            matches!(a.kind, ExprKind::Colon)
                || matches!(a.kind, ExprKind::Range { .. })
                || matches!(a.kind, ExprKind::End)
        });
        add_hint(&mut self.hints, base, real_matrix_hint());
        if !has_colon {
            for a in args {
                backward_expr(a, &int_scalar_hint(), &mut self.hints);
            }
        }
    }

    fn call_hints(&mut self, id: majic_ast::NodeId, _callee: &str, args: &[Expr]) {
        if let SymbolKind::Builtin(b) = self.d.table.kind(id) {
            // Hint 5: creation-function arguments are integer scalars.
            match b {
                Builtin::Zeros | Builtin::Ones | Builtin::Rand | Builtin::Eye => {
                    for a in args {
                        backward_expr(a, &int_scalar_hint(), &mut self.hints);
                    }
                }
                Builtin::Size => {
                    if let Some(second) = args.get(1) {
                        backward_expr(second, &int_scalar_hint(), &mut self.hints);
                    }
                }
                _ => {}
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Range { start, step, stop } => {
                // Hint 1: colon operands are integer scalars.
                backward_expr(start, &int_scalar_hint(), &mut self.hints);
                if let Some(s) = step {
                    backward_expr(s, &int_scalar_hint(), &mut self.hints);
                    self.expr(s);
                }
                backward_expr(stop, &int_scalar_hint(), &mut self.hints);
                self.expr(start);
                self.expr(stop);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                if op.is_relational() {
                    // Hint 2: relational operands are real scalars.
                    backward_expr(lhs, &real_scalar_hint(), &mut self.hints);
                    backward_expr(rhs, &real_scalar_hint(), &mut self.hints);
                }
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Transpose { operand, .. } => {
                self.expr(operand);
            }
            ExprKind::Matrix(rows) => {
                // Hint 3: a provably scalar bracket argument makes the
                // siblings probably scalar too.
                for row in rows {
                    let any_scalar_literal = row
                        .iter()
                        .any(|el| matches!(el.kind, ExprKind::Number { .. }));
                    if any_scalar_literal {
                        for el in row {
                            backward_expr(el, &real_scalar_hint(), &mut self.hints);
                        }
                    }
                    for el in row {
                        self.expr(el);
                    }
                }
            }
            ExprKind::Apply { callee, args } => {
                match self.d.table.kind(e.id) {
                    SymbolKind::Variable(_) | SymbolKind::Ambiguous(_) => {
                        self.subscript_hints(callee, args);
                    }
                    SymbolKind::Builtin(_) => self.call_hints(e.id, callee, args),
                    _ => {}
                }
                for a in args {
                    self.expr(a);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NoOracle;
    use majic_analysis::disambiguate;
    use majic_ast::parse_source;
    use std::collections::HashSet;

    fn speculate(src: &str) -> (Signature, Annotations, DisambiguatedFunction) {
        let file = parse_source(src).unwrap();
        let known: HashSet<String> = file.functions.iter().map(|f| f.name.clone()).collect();
        let d = disambiguate(&file.functions[0], &known);
        let (sig, ann) = infer_speculative(&d, InferOptions::default(), &NoOracle);
        (sig, ann, d)
    }

    #[test]
    fn colon_operand_is_guessed_integer_scalar() {
        let (sig, _, _) = speculate("function y = f(n)\ny = 0;\nfor k = 1:n\n y = y + k;\nend\n");
        let p = sig.params()[0];
        assert_eq!(p.intrinsic, Intrinsic::Int);
        assert!(p.is_scalar());
    }

    #[test]
    fn relational_operand_is_guessed_real_scalar() {
        let (sig, _, _) = speculate("function y = f(x)\nif x > 0\n y = 1;\nelse\n y = 2;\nend\n");
        let p = sig.params()[0];
        assert!(p.intrinsic.le(&Intrinsic::Real));
        assert!(p.is_scalar());
    }

    #[test]
    fn subscripted_name_is_guessed_real_array() {
        let (sig, _, _) = speculate("function y = f(A, i)\ny = A(i);\n");
        let a = sig.params()[0];
        let i = sig.params()[1];
        assert_eq!(a.intrinsic, Intrinsic::Real);
        assert!(!a.is_scalar());
        assert_eq!(i.intrinsic, Intrinsic::Int);
        assert!(i.is_scalar());
    }

    #[test]
    fn zeros_argument_is_guessed_integer_scalar() {
        let (sig, _, _) = speculate("function A = f(m, n)\nA = zeros(m, n);\n");
        assert!(sig.params()[0].is_scalar());
        assert_eq!(sig.params()[0].intrinsic, Intrinsic::Int);
        assert!(sig.params()[1].is_scalar());
    }

    #[test]
    fn unhinted_parameter_defaults_to_generic_complex() {
        // The mei failure mode: an argument that only feeds eig gets no
        // hint and is guessed complex.
        let (sig, _, _) = speculate("function e = f(A)\ne = eig(A);\n");
        let p = sig.params()[0];
        assert_eq!(p.intrinsic, Intrinsic::Complex);
        assert!(p.max_shape == Shape::top());
    }

    #[test]
    fn hints_propagate_through_scalar_arithmetic() {
        // `x` is used as `x+1` in a subscript: the hint reaches x.
        let (sig, _, _) = speculate("function y = f(A, x)\ny = A(x + 1);\n");
        let x = sig.params()[1];
        assert!(x.is_scalar());
        assert_eq!(x.intrinsic, Intrinsic::Int);
    }

    #[test]
    fn hints_chain_through_assignments() {
        // n flows into m which is used as a colon bound.
        let (sig, _, _) =
            speculate("function y = f(n)\nm = n;\ny = 0;\nfor k = 1:m\n y = y + k;\nend\n");
        assert!(sig.params()[0].is_scalar());
        assert_eq!(sig.params()[0].intrinsic, Intrinsic::Int);
    }

    #[test]
    fn colon_in_subscript_suppresses_scalar_index_hint() {
        // F90-style `A(1:k)`: the presence of the colon means no scalar
        // hint for the bound (the paper: colons indicate F90 syntax).
        let (sig, _, _) = speculate("function y = f(A)\ny = A(:, 1);\n");
        let a = sig.params()[0];
        assert_eq!(a.intrinsic, Intrinsic::Real);
    }

    #[test]
    fn speculative_annotations_cover_the_body() {
        let (_, ann, d) =
            speculate("function y = f(n)\ns = 0;\nfor k = 1:n\n s = s + k;\nend\ny = s;\n");
        // The speculative forward pass must have annotated the loop body
        // with non-top types (int scalars).
        assert_eq!(ann.params[0].intrinsic, Intrinsic::Int);
        let out = ann.outputs[0];
        assert!(out.intrinsic.le(&Intrinsic::Real), "{out}");
        let _ = d;
    }

    #[test]
    fn bracket_sibling_hint() {
        let (sig, _, _) = speculate("function v = f(a, b)\nv = [a b 0];\n");
        assert!(sig.params()[0].is_scalar());
        assert!(sig.params()[1].is_scalar());
    }
}
