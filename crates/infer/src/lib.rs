//! MaJIC type inference (paper §2.3–§2.5).
//!
//! The engine is an *iterative join-of-all-paths monotonic data analysis
//! framework*: it walks a function's (structured) control-flow graph with
//! a type environment mapping each variable to a [`majic_types::Type`],
//! joining environments at merge points and iterating loops to a fixpoint
//! under an iteration cap with widening.
//!
//! Transfer functions live in the [`calculator`]: a database of
//! precondition-guarded rules per operator/builtin, tried from most to
//! least restrictive, with an implicit default rule yielding `⊤`
//! (paper §2.3.1). The calculator runs *forward* (expression types from
//! argument types) for JIT inference and *backward* (argument types from
//! expected expression types) for the speculator.
//!
//! * [`infer_jit`] — forward inference seeded with the exact runtime
//!   [`Signature`] of an invocation. Because the seed is precise, range
//!   propagation doubles as constant propagation, shape bounds become
//!   exact, and subscript checks become provably removable (§2.4).
//! * [`infer_speculative`] — guesses a plausible signature from syntactic
//!   *type hints* (§2.5: colon operands, relational operands, bracket
//!   siblings, scalar-looking subscripts, `zeros`/`ones`/`rand`/`size`
//!   arguments), alternating backward and forward passes to convergence.

pub mod calculator;
mod engine;
mod speculate;

pub use engine::{infer_jit, Annotations, CalleeOracle, InferOptions, NoOracle};
pub use speculate::infer_speculative;

pub use majic_types::Signature;
