//! The type calculator (paper §2.3.1).
//!
//! Transfer functions are organized as a database of rules. "Multiple
//! type calculation rules may exist for each AST node type. Each rule is
//! guarded by a boolean precondition. … the corresponding rules'
//! preconditions are tested in order until one evaluates to true; the
//! rule is then applied. … If no rules' preconditions evaluate to true,
//! the type calculator applies the implicit default rule: all output
//! types are set to ⊤."
//!
//! Rules are ordered from most to least restrictive — e.g. the `*`
//! operator is tried successively as *integer scalar multiply*, *real
//! scalar multiply*, *complex scalar multiply*, *scalar × matrix*,
//! *matrix × vector* (`dgemv`), and finally *generic complex matrix
//! multiply* — because more restrictive rules produce faster code.

use majic_ast::{BinOp, UnOp};
use majic_runtime::builtins::Builtin;
use majic_types::{Dim, Intrinsic, Lattice, Range, Shape, Type};

/// Inference knobs (the Figure 7 ablations live here).
#[derive(Clone, Copy, Debug)]
pub struct InferOptions {
    /// Propagate value ranges (`Ll`). Disabling reproduces Figure 7's
    /// "no ranges" bars: subscript-check removal mostly dies.
    pub range_propagation: bool,
    /// Propagate minimum shape bounds. Disabling reproduces "no min.
    /// shapes": small-vector unrolling and some check removal die.
    pub min_shape_propagation: bool,
    /// Loop fixpoint iteration cap; widening kicks in afterwards
    /// (paper §2.3: the engine "caps the number of iterations").
    pub max_loop_iterations: usize,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            range_propagation: true,
            min_shape_propagation: true,
            max_loop_iterations: 8,
        }
    }
}

impl InferOptions {
    /// Strip the information channels that are switched off.
    pub fn sanitize(&self, mut t: Type) -> Type {
        if !self.range_propagation {
            t.range = Range::top();
        }
        if !self.min_shape_propagation {
            t.min_shape = Shape::bottom();
        }
        t
    }
}

/// One evaluated subscript, as seen by the calculator.
#[derive(Clone, Copy, Debug)]
pub enum SubTy {
    /// A bare `:`.
    Colon,
    /// A typed subscript expression.
    Ty(Type),
}

// ---------------------------------------------------------------------
// Helper predicates (rule guards)
// ---------------------------------------------------------------------

fn is_scalar(t: &Type) -> bool {
    t.is_scalar()
}

fn is_numeric(t: &Type) -> bool {
    t.intrinsic.is_numeric()
}

fn at_most(t: &Type, i: Intrinsic) -> bool {
    t.intrinsic.le(&i) && t.intrinsic != Intrinsic::Bottom
}

fn int_scalar(t: &Type) -> bool {
    is_scalar(t) && at_most(t, Intrinsic::Int)
}

/// May the value have zero elements? (The guaranteed lower shape bound
/// admits an empty extent.)
fn may_be_empty(t: &Type) -> bool {
    t.min_shape.rows == Dim::Finite(0) || t.min_shape.cols == Dim::Finite(0)
}

fn real_scalar(t: &Type) -> bool {
    is_scalar(t) && at_most(t, Intrinsic::Real)
}

fn cplx_scalar(t: &Type) -> bool {
    is_scalar(t) && at_most(t, Intrinsic::Complex)
}

/// Result shape of an elementwise operation: operands must agree (or one
/// is scalar), so bounds combine as join-of-mins / meet-of-maxes.
fn elem_shape(a: &Type, b: &Type) -> (Shape, Shape) {
    if a.is_scalar() {
        return (b.min_shape, b.max_shape);
    }
    if b.is_scalar() {
        return (a.min_shape, a.max_shape);
    }
    if a.may_be_scalar() && !b.may_be_scalar() {
        return (b.min_shape, b.max_shape);
    }
    if b.may_be_scalar() && !a.may_be_scalar() {
        return (a.min_shape, a.max_shape);
    }
    // Either could be the broadcast scalar: stay conservative.
    (
        a.min_shape.meet(&b.min_shape),
        a.max_shape.join(&b.max_shape),
    )
}

fn with_shape(intrinsic: Intrinsic, min: Shape, max: Shape, range: Range) -> Type {
    let range = if intrinsic.has_range() {
        range
    } else {
        Range::top()
    };
    Type {
        intrinsic,
        min_shape: min,
        max_shape: max,
        range,
    }
}

fn scalar_of(intrinsic: Intrinsic, range: Range) -> Type {
    with_shape(intrinsic, Shape::scalar(), Shape::scalar(), range)
}

/// `int` results degrade to `real` when the range arithmetic could have
/// produced non-integers (it cannot for + − ×).
fn int_preserving(a: &Type, b: &Type) -> Intrinsic {
    match a.intrinsic.numeric_join(b.intrinsic) {
        // Arithmetic on logicals yields numeric values at runtime
        // (`true - true` is the integral double 0, not a logical);
        // bool survives only logical operators and comparisons.
        Intrinsic::Bool => Intrinsic::Int,
        other => other,
    }
}

/// `int` means "integral-valued double", which excludes ±∞ (a non-finite
/// value types as `real` at runtime). Endpoint arithmetic overflows to
/// an infinite bound exactly when the concrete operation can, so an
/// integral result may only claim `int` while its interval stays
/// finite. A `⊥` range describes no values and keeps `int` vacuously.
fn int_unless_overflow(range: &Range) -> Intrinsic {
    if range.is_bottom() || (range.lo().is_finite() && range.hi().is_finite()) {
        Intrinsic::Int
    } else {
        Intrinsic::Real
    }
}

// ---------------------------------------------------------------------
// Binary operators
// ---------------------------------------------------------------------

/// Forward transfer for a binary operator.
pub fn binary(op: BinOp, a: &Type, b: &Type, o: &InferOptions) -> Type {
    use BinOp::*;
    let t = match op {
        Add => arith(a, b, Range::add, false),
        Sub => arith(a, b, Range::sub, false),
        ElemMul => arith(a, b, Range::mul, false),
        ElemDiv | ElemLeftDiv => {
            let (x, y) = if op == ElemLeftDiv { (b, a) } else { (a, b) };
            arith(x, y, Range::div, true)
        }
        ElemPow => elem_pow(a, b),
        Mul => mul(a, b),
        Div => rdiv(a, b),
        LeftDiv => ldiv(a, b),
        Pow => pow(a, b),
        Lt | Le | Gt | Ge | Eq | Ne => relational(a, b),
        And | Or => {
            // rule logical.elementwise
            let (min, max) = elem_shape(a, b);
            with_shape(Intrinsic::Bool, min, max, Range::new(0.0, 1.0))
        }
        ShortAnd | ShortOr => scalar_of(Intrinsic::Bool, Range::new(0.0, 1.0)),
    };
    o.sanitize(t)
}

/// Elementwise + − × ÷ rule ladder.
fn arith(a: &Type, b: &Type, rf: fn(Range, Range) -> Range, is_div: bool) -> Type {
    // rule arith.int_scalar / arith.real_scalar / arith.cplx_scalar
    if int_scalar(a) && int_scalar(b) && !is_div {
        let r = rf(a.range, b.range);
        return scalar_of(int_unless_overflow(&r), r);
    }
    if real_scalar(a) && real_scalar(b) {
        let r = rf(a.range, b.range);
        let intr = if !is_div && at_most(a, Intrinsic::Int) && at_most(b, Intrinsic::Int) {
            int_unless_overflow(&r)
        } else {
            Intrinsic::Real
        };
        return scalar_of(intr, r);
    }
    if cplx_scalar(a) && cplx_scalar(b) {
        return scalar_of(Intrinsic::Complex, Range::top());
    }
    // rule arith.scalar_matrix / arith.matrix_matrix
    if is_numeric(a) && is_numeric(b) {
        let (min, max) = elem_shape(a, b);
        let intr = if is_div {
            match int_preserving(a, b) {
                Intrinsic::Bool | Intrinsic::Int => Intrinsic::Real,
                other => other,
            }
        } else {
            int_preserving(a, b)
        };
        let range = if intr.has_range() {
            rf(a.range, b.range)
        } else {
            Range::top()
        };
        let intr = if intr == Intrinsic::Int {
            int_unless_overflow(&range)
        } else {
            intr
        };
        return with_shape(intr, min, max, range);
    }
    // implicit default rule
    Type::top()
}

fn elem_pow(a: &Type, b: &Type) -> Type {
    // rule pow.int_scalar: integral base and constant non-negative
    // integral exponent stays int.
    if int_scalar(a) && int_scalar(b) {
        if let Some(e) = b.range.as_constant() {
            if e >= 0.0 {
                let r = a.range.powi(e);
                return scalar_of(int_unless_overflow(&r), r);
            }
        }
        return scalar_of(Intrinsic::Real, Range::top());
    }
    // rule pow.real_scalar: negative bases with fractional exponents go
    // complex; a provably non-negative base stays real.
    if real_scalar(a) && real_scalar(b) {
        if a.range.is_nonnegative() && !a.range.is_bottom() {
            let r = match b.range.as_constant() {
                Some(e) => a.range.powi(e),
                None => Range::top(),
            };
            return scalar_of(Intrinsic::Real, r);
        }
        if let Some(e) = b.range.as_constant() {
            if e.fract() == 0.0 {
                return scalar_of(Intrinsic::Real, a.range.powi(e));
            }
        }
        return scalar_of(Intrinsic::Complex, Range::top());
    }
    if cplx_scalar(a) && cplx_scalar(b) {
        return scalar_of(Intrinsic::Complex, Range::top());
    }
    // rule pow.elementwise
    if is_numeric(a) && is_numeric(b) {
        let (min, max) = elem_shape(a, b);
        return with_shape(Intrinsic::Complex, min, max, Range::top());
    }
    Type::top()
}

fn mul(a: &Type, b: &Type) -> Type {
    // rule mul.int_scalar / mul.real_scalar / mul.cplx_scalar
    if is_scalar(a) && is_scalar(b) {
        return arith(a, b, Range::mul, false);
    }
    // rule mul.scalar_matrix / mul.matrix_scalar
    if is_scalar(a) && is_numeric(a) && is_numeric(b) {
        return with_shape(
            int_preserving(a, b),
            b.min_shape,
            b.max_shape,
            a.range.mul(b.range),
        );
    }
    if is_scalar(b) && is_numeric(a) && is_numeric(b) {
        return with_shape(
            int_preserving(a, b),
            a.min_shape,
            a.max_shape,
            a.range.mul(b.range),
        );
    }
    // rule mul.gemv / mul.gemm: <ar, ac> * <br, bc> = <ar, bc>.
    if is_numeric(a) && is_numeric(b) {
        let min = Shape {
            rows: a.min_shape.rows,
            cols: b.min_shape.cols,
        };
        let max = Shape {
            rows: a.max_shape.rows,
            cols: b.max_shape.cols,
        };
        let mut t = with_shape(int_preserving(a, b), min, max, Range::top());
        // A maybe-scalar operand turns `*` elementwise at runtime, so
        // the result may take the other operand's shape.
        t = join_maybe_scalar_alternatives(t, a, b);
        return t;
    }
    Type::top()
}

/// Matrix-op shape rules (`*`, `/`, `\`) compute shapes from both
/// operands' extents, but when either operand is 1×1 at runtime the
/// operation degenerates to scalar × matrix and the result takes the
/// *other* operand's shape. Join those alternatives in whenever an
/// operand's inferred shape admits a scalar.
fn join_maybe_scalar_alternatives(t: Type, a: &Type, b: &Type) -> Type {
    let mut t = t;
    if a.may_be_scalar() {
        t = t.join(&with_shape(t.intrinsic, b.min_shape, b.max_shape, t.range));
    }
    if b.may_be_scalar() {
        t = t.join(&with_shape(t.intrinsic, a.min_shape, a.max_shape, t.range));
    }
    t
}

fn rdiv(a: &Type, b: &Type) -> Type {
    if is_scalar(b) {
        return arith(a, b, Range::div, true);
    }
    // rule div.matrix: A/B has shape <a.rows, b.rows>.
    if is_numeric(a) && is_numeric(b) {
        let min = Shape {
            rows: a.min_shape.rows,
            cols: b.min_shape.rows,
        };
        let max = Shape {
            rows: a.max_shape.rows,
            cols: b.max_shape.rows,
        };
        let t = with_shape(
            int_preserving(a, b).join(&Intrinsic::Real),
            min,
            max,
            Range::top(),
        );
        return join_maybe_scalar_alternatives(t, a, b);
    }
    Type::top()
}

fn ldiv(a: &Type, b: &Type) -> Type {
    if is_scalar(a) {
        return arith(b, a, Range::div, true);
    }
    // rule ldiv.matrix: A\B has shape <a.cols, b.cols>.
    if is_numeric(a) && is_numeric(b) {
        let min = Shape {
            rows: a.min_shape.cols,
            cols: b.min_shape.cols,
        };
        let max = Shape {
            rows: a.max_shape.cols,
            cols: b.max_shape.cols,
        };
        let t = with_shape(
            int_preserving(a, b).join(&Intrinsic::Real),
            min,
            max,
            Range::top(),
        );
        return join_maybe_scalar_alternatives(t, a, b);
    }
    Type::top()
}

fn pow(a: &Type, b: &Type) -> Type {
    if is_scalar(a) && is_scalar(b) {
        return elem_pow(a, b);
    }
    // rule pow.matrix: square matrix to integer power keeps its shape.
    if is_numeric(a) && is_scalar(b) {
        return with_shape(
            a.intrinsic.numeric_join(Intrinsic::Real),
            a.min_shape,
            a.max_shape,
            Range::top(),
        );
    }
    Type::top()
}

fn relational(a: &Type, b: &Type) -> Type {
    // rule rel.scalar / rel.elementwise — complex operands compare by
    // real part, so any numeric input is acceptable.
    if is_numeric(a) && is_numeric(b) {
        let (min, max) = elem_shape(a, b);
        return with_shape(Intrinsic::Bool, min, max, Range::new(0.0, 1.0));
    }
    if a.intrinsic == Intrinsic::Str && b.intrinsic == Intrinsic::Str {
        let (min, max) = elem_shape(a, b);
        return with_shape(Intrinsic::Bool, min, max, Range::new(0.0, 1.0));
    }
    Type::top()
}

// ---------------------------------------------------------------------
// Unary, transpose, range, matrix literal
// ---------------------------------------------------------------------

/// Forward transfer for a unary operator.
pub fn unary(op: UnOp, a: &Type, o: &InferOptions) -> Type {
    let t = match op {
        UnOp::Plus => *a,
        UnOp::Neg => {
            if is_numeric(a) {
                // Negation converts logicals to numeric (`-true` is the
                // double -1, not a logical), so Bool promotes to Int.
                let intrinsic = if a.intrinsic == Intrinsic::Bool {
                    Intrinsic::Int
                } else {
                    a.intrinsic
                };
                with_shape(intrinsic, a.min_shape, a.max_shape, a.range.neg())
            } else {
                Type::top()
            }
        }
        UnOp::Not => {
            if is_numeric(a) {
                with_shape(
                    Intrinsic::Bool,
                    a.min_shape,
                    a.max_shape,
                    Range::new(0.0, 1.0),
                )
            } else {
                Type::top()
            }
        }
    };
    o.sanitize(t)
}

/// Forward transfer for `'` / `.'`.
pub fn transpose(a: &Type, o: &InferOptions) -> Type {
    let t = if is_numeric(a) {
        with_shape(
            a.intrinsic,
            a.min_shape.transpose(),
            a.max_shape.transpose(),
            a.range,
        )
    } else {
        Type::top()
    };
    o.sanitize(t)
}

/// `floor(span + ε) + 1` as an exact element count, or `None` when the
/// span is too large to count in a `u64` — a bare `as u64` saturates
/// there and the `+ 1` overflows (fuzzer reproducer: `0:1e-300:1`).
fn extent_of_span(span: f64) -> Option<u64> {
    let nf = (span + 1e-10).floor();
    // 2^53: the last f64 whose successor integers are still exact.
    if nf < 9_007_199_254_740_992.0 {
        Some(nf as u64 + 1)
    } else {
        None
    }
}

/// Forward transfer for `start : step : stop`.
pub fn range_expr(start: &Type, step: Option<&Type>, stop: &Type, o: &InferOptions) -> Type {
    let one = Type::constant(1.0);
    let step = step.copied().unwrap_or(one);
    // rule colon.const: all-constant endpoints give the exact extent.
    let count = match (
        start.range.as_constant(),
        step.range.as_constant(),
        stop.range.as_constant(),
    ) {
        (Some(a), Some(s), Some(b)) if s != 0.0 => {
            let span = (b - a) / s;
            if span.is_nan() {
                // A NaN endpoint or step yields the 1x0 empty at
                // runtime (see `majic_runtime::ops::range`).
                (Dim::Finite(0), Dim::Finite(0))
            } else if span < 0.0 {
                (Dim::Finite(0), Dim::Finite(0))
            } else {
                match extent_of_span(span) {
                    // Beyond any representable extent the runtime
                    // raises AllocLimit, so no value needs describing;
                    // stay sound with an unbounded upper dimension.
                    None => (Dim::Finite(0), Dim::Inf),
                    Some(n) => (Dim::Finite(n), Dim::Finite(n)),
                }
            }
        }
        // rule colon.bounded: a bounded span bounds the extent.
        _ => {
            let max = match (start.range.lo(), stop.range.hi(), step.range.as_constant()) {
                (a, b, Some(s)) if a.is_finite() && b.is_finite() && s > 0.0 => {
                    let span = (b - a) / s;
                    if span < 0.0 {
                        Dim::Finite(0)
                    } else {
                        extent_of_span(span).map_or(Dim::Inf, Dim::Finite)
                    }
                }
                _ => Dim::Inf,
            };
            (Dim::Finite(0), max)
        }
    };
    let intrinsic = if at_most(start, Intrinsic::Int)
        && at_most(&step, Intrinsic::Int)
        && at_most(stop, Intrinsic::Int)
    {
        Intrinsic::Int
    } else if is_numeric(start) && is_numeric(&step) && is_numeric(stop) {
        // Complex endpoints contribute only their real parts.
        Intrinsic::Real
    } else {
        Intrinsic::Real
    };
    let range = start.range.join(&stop.range);
    let t = with_shape(
        intrinsic,
        Shape {
            rows: Dim::Finite(if count.0 == Dim::Finite(0) { 0 } else { 1 }),
            cols: count.0,
        },
        Shape {
            rows: Dim::Finite(1),
            cols: count.1,
        },
        range,
    );
    o.sanitize(t)
}

/// Forward transfer for a matrix literal (bracket operator).
pub fn matrix_literal(rows: &[Vec<Type>], o: &InferOptions) -> Type {
    if rows.is_empty() {
        return o.sanitize(with_shape(
            Intrinsic::Real,
            Shape::empty(),
            Shape::empty(),
            Range::top(),
        ));
    }
    let mut intrinsic = Intrinsic::Bottom;
    let mut range = Range::bottom();
    let mut total_min_rows = Dim::Finite(0);
    let mut total_max_rows = Dim::Finite(0);
    let mut min_cols: Option<Dim> = None;
    let mut max_cols: Option<Dim> = None;
    for row in rows {
        let mut row_min_cols = Dim::Finite(0);
        let mut row_max_cols = Dim::Finite(0);
        let mut row_min_rows = Dim::Inf;
        let mut row_max_rows = Dim::Finite(0);
        for el in row {
            intrinsic = intrinsic.join(&el.intrinsic);
            range = range.join(&el.range);
            row_min_cols = add_dim(row_min_cols, el.min_shape.cols);
            row_max_cols = add_dim(row_max_cols, el.max_shape.cols);
            row_min_rows = row_min_rows.min(el.min_shape.rows);
            row_max_rows = row_max_rows.max(el.max_shape.rows);
        }
        total_min_rows = add_dim(total_min_rows, row_min_rows);
        total_max_rows = add_dim(total_max_rows, row_max_rows);
        min_cols = Some(match min_cols {
            None => row_min_cols,
            Some(c) => c.min(row_min_cols),
        });
        max_cols = Some(match max_cols {
            None => row_max_cols,
            Some(c) => c.max(row_max_cols),
        });
    }
    let t = with_shape(
        if intrinsic == Intrinsic::Bottom {
            Intrinsic::Real
        } else {
            intrinsic
        },
        Shape {
            rows: total_min_rows,
            cols: min_cols.unwrap_or(Dim::Finite(0)),
        },
        Shape {
            rows: total_max_rows,
            cols: max_cols.unwrap_or(Dim::Finite(0)),
        },
        range,
    );
    o.sanitize(t)
}

fn add_dim(a: Dim, b: Dim) -> Dim {
    match (a, b) {
        (Dim::Finite(x), Dim::Finite(y)) => Dim::Finite(x + y),
        _ => Dim::Inf,
    }
}

// ---------------------------------------------------------------------
// Indexing
// ---------------------------------------------------------------------

/// Extent bounds of one subscript (how many elements it selects).
fn sub_count(sub: &SubTy, dim_min: Dim, dim_max: Dim) -> (Dim, Dim) {
    match sub {
        SubTy::Colon => (dim_min, dim_max),
        SubTy::Ty(t) => (
            t.min_shape.rows.saturating_mul(t.min_shape.cols),
            t.max_shape.rows.saturating_mul(t.max_shape.cols),
        ),
    }
}

/// Forward transfer for an indexed read `base(subs…)`.
pub fn index_read(base: &Type, subs: &[SubTy], o: &InferOptions) -> Type {
    if !is_numeric(base) && base.intrinsic != Intrinsic::Str {
        return Type::top();
    }
    let elem_range = base.range;
    let t = match subs {
        // rule index.all — `A()` is just A.
        [] => *base,
        [one] => match one {
            // rule index.flatten — `A(:)` is a column vector.
            SubTy::Colon => {
                let min_n = base.min_shape.rows.saturating_mul(base.min_shape.cols);
                let max_n = base.max_shape.rows.saturating_mul(base.max_shape.cols);
                with_shape(
                    base.intrinsic,
                    Shape {
                        rows: min_n,
                        cols: Dim::Finite(1),
                    },
                    Shape {
                        rows: max_n,
                        cols: Dim::Finite(1),
                    },
                    elem_range,
                )
            }
            // rule index.scalar — the hot case: scalar subscript.
            SubTy::Ty(it) if it.is_scalar() => scalar_of(base.intrinsic, elem_range),
            // rule index.vector — vector subscript selects that many
            // elements.
            SubTy::Ty(it) => {
                let (lo, hi) = sub_count(&SubTy::Ty(*it), Dim::Finite(0), Dim::Inf);
                with_shape(
                    base.intrinsic,
                    Shape {
                        rows: Dim::Finite(if lo == Dim::Finite(0) { 0 } else { 1 }),
                        cols: lo,
                    },
                    Shape {
                        rows: hi.min(Dim::Finite(1)).max(Dim::Finite(1)),
                        cols: hi,
                    },
                    elem_range,
                )
            }
        },
        [r, c] => {
            // rule index.scalar2 — A(i, j) with scalar subscripts.
            if let (SubTy::Ty(rt), SubTy::Ty(ct)) = (r, c) {
                if rt.is_scalar() && ct.is_scalar() {
                    return o.sanitize(scalar_of(base.intrinsic, elem_range));
                }
            }
            // rule index.slice — row/column slices and submatrices.
            let (rmin, rmax) = sub_count(r, base.min_shape.rows, base.max_shape.rows);
            let (cmin, cmax) = sub_count(c, base.min_shape.cols, base.max_shape.cols);
            with_shape(
                base.intrinsic,
                Shape {
                    rows: rmin,
                    cols: cmin,
                },
                Shape {
                    rows: rmax,
                    cols: cmax,
                },
                elem_range,
            )
        }
        _ => Type::top(),
    };
    o.sanitize(t)
}

/// Forward transfer for an indexed write `base(subs…) = rhs`, returning
/// the array's type *after* the store (paper §2.4: "the range of the
/// index can determine the shape of the array, because MATLAB arrays
/// reshape themselves to accommodate indices").
pub fn index_write(base: &Type, subs: &[SubTy], rhs: &Type, o: &InferOptions) -> Type {
    let intrinsic = if base.intrinsic == Intrinsic::Bottom {
        rhs.intrinsic
    } else {
        base.intrinsic.join(&rhs.intrinsic)
    };
    let range = if intrinsic.has_range() {
        base.range.join(&rhs.range)
    } else {
        Range::top()
    };
    // Bounds required by the subscripts.
    let req = |sub: &SubTy| -> (Dim, Dim) {
        match sub {
            SubTy::Colon => (Dim::Finite(0), Dim::Inf),
            SubTy::Ty(t) => {
                let lo = if t.range.lo().is_finite() && t.range.lo() >= 1.0 {
                    Dim::Finite(t.range.lo() as u64)
                } else {
                    Dim::Finite(0)
                };
                let hi = if t.range.hi().is_finite() && t.range.hi() >= 1.0 {
                    Dim::Finite(t.range.hi() as u64)
                } else {
                    Dim::Inf
                };
                (lo, hi)
            }
        }
    };
    let (min, max) = match subs {
        [one] => {
            let (lo, hi) = req(one);
            if base.intrinsic == Intrinsic::Bottom {
                // Creating a fresh array: a linear store makes a row
                // vector.
                (
                    Shape {
                        rows: Dim::Finite(1),
                        cols: lo,
                    },
                    Shape {
                        rows: Dim::Finite(1),
                        cols: hi,
                    },
                )
            } else if base.max_shape.rows == Dim::Finite(1) {
                // Row vector grows along columns.
                (
                    Shape {
                        rows: Dim::Finite(1),
                        cols: base.min_shape.cols.max(lo),
                    },
                    Shape {
                        rows: Dim::Finite(1),
                        cols: base.max_shape.cols.max(hi),
                    },
                )
            } else if base.max_shape.cols == Dim::Finite(1) {
                (
                    Shape {
                        rows: base.min_shape.rows.max(lo),
                        cols: Dim::Finite(1),
                    },
                    Shape {
                        rows: base.max_shape.rows.max(hi),
                        cols: Dim::Finite(1),
                    },
                )
            } else {
                // Orientation unknown: only upper bounds survive.
                (
                    base.min_shape,
                    Shape {
                        rows: base.max_shape.rows.max(hi),
                        cols: base.max_shape.cols.max(hi),
                    },
                )
            }
        }
        [r, c] => {
            let (rlo, rhi) = req(r);
            let (clo, chi) = req(c);
            let (base_min, base_max) = if base.intrinsic == Intrinsic::Bottom {
                (Shape::empty(), Shape::empty())
            } else {
                (base.min_shape, base.max_shape)
            };
            (
                Shape {
                    rows: base_min.rows.max(rlo),
                    cols: base_min.cols.max(clo),
                },
                Shape {
                    rows: base_max.rows.max(rhi),
                    cols: base_max.cols.max(chi),
                },
            )
        }
        _ => (Shape::bottom(), Shape::top()),
    };
    // A linear store into a base that may be *empty* — including one
    // that may be unbound on some incoming path (the env join drops
    // `min_shape` to ⊥ at such merges) — vivifies a 1×N row vector at
    // runtime, whatever orientation the defined alternative has. Join
    // that alternative in, or the inferred shape claims an orientation
    // the fresh-creation path does not honor.
    let (min, max) = match subs {
        [SubTy::Ty(_)] if base.intrinsic != Intrinsic::Bottom && may_be_empty(base) => {
            let (lo, hi) = req(&subs[0]);
            (
                min.meet(&Shape {
                    rows: Dim::Finite(1),
                    cols: lo,
                }),
                max.join(&Shape {
                    rows: Dim::Finite(1),
                    cols: hi,
                }),
            )
        }
        _ => (min, max),
    };
    // A store that grows the array (or vivifies a fresh variable) fills
    // every element it did not write with 0.0; the result range must
    // include that fill unless the subscripts provably stay within the
    // extent the array is guaranteed to have already. A fresh variable
    // is only exactly covered when the store lands at position 1.
    let no_fill = match subs {
        [one] => {
            let (_, hi) = req(one);
            let guaranteed = if base.intrinsic == Intrinsic::Bottom {
                Dim::Finite(1)
            } else {
                base.min_shape.rows.saturating_mul(base.min_shape.cols)
            };
            hi.le(guaranteed)
        }
        [r, c] => {
            let (_, rhi) = req(r);
            let (_, chi) = req(c);
            let (gr, gc) = if base.intrinsic == Intrinsic::Bottom {
                (Dim::Finite(1), Dim::Finite(1))
            } else {
                (base.min_shape.rows, base.min_shape.cols)
            };
            rhi.le(gr) && chi.le(gc)
        }
        _ => false,
    };
    let range = if no_fill {
        range
    } else {
        range.join(&Range::constant(0.0))
    };
    o.sanitize(with_shape(intrinsic, min, max, range))
}

// ---------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------

/// Forward transfer for a builtin call.
pub fn builtin(b: Builtin, args: &[Type], nargout: usize, o: &InferOptions) -> Vec<Type> {
    use Builtin::*;
    let one = |t: Type| vec![o.sanitize(t)];
    let arg = |k: usize| args.get(k).copied().unwrap_or_else(Type::top);
    match b {
        Zeros | Ones | Rand | Eye => {
            let (min, max) = creation_shape(args);
            let range = match b {
                Zeros => Range::constant(0.0),
                Ones => Range::constant(1.0),
                Eye => Range::new(0.0, 1.0),
                Rand => Range::new(0.0, 1.0),
                _ => unreachable!(),
            };
            let intrinsic = match b {
                // rule zeros.int / ones.int / eye.int: contents integral.
                Zeros | Ones | Eye => Intrinsic::Int,
                _ => Intrinsic::Real,
            };
            one(with_shape(intrinsic, min, max, range))
        }
        Size => {
            let a = arg(0);
            if args.len() == 2 {
                // rule size.dim: size(A, k) — exact when the shape and k
                // are exact.
                let k = arg(1).range.as_constant();
                let (lo, hi) = match k {
                    Some(1.0) => (a.min_shape.rows, a.max_shape.rows),
                    Some(_) => (a.min_shape.cols, a.max_shape.cols),
                    None => (
                        a.min_shape.rows.min(a.min_shape.cols),
                        a.max_shape.rows.max(a.max_shape.cols),
                    ),
                };
                return one(scalar_of(Intrinsic::Int, dim_range(lo, hi)));
            }
            if nargout >= 2 {
                return vec![
                    o.sanitize(scalar_of(
                        Intrinsic::Int,
                        dim_range(a.min_shape.rows, a.max_shape.rows),
                    )),
                    o.sanitize(scalar_of(
                        Intrinsic::Int,
                        dim_range(a.min_shape.cols, a.max_shape.cols),
                    )),
                ];
            }
            one(with_shape(
                Intrinsic::Int,
                Shape::new(1, 2),
                Shape::new(1, 2),
                Range::new(0.0, f64::INFINITY),
            ))
        }
        Length => {
            let a = arg(0);
            let lo = a.min_shape.rows.min(a.min_shape.cols);
            let hi = a.max_shape.rows.max(a.max_shape.cols);
            one(scalar_of(Intrinsic::Int, dim_range(lo, hi)))
        }
        Numel => {
            let a = arg(0);
            let lo = a.min_shape.rows.saturating_mul(a.min_shape.cols);
            let hi = a.max_shape.rows.saturating_mul(a.max_shape.cols);
            one(scalar_of(Intrinsic::Int, dim_range(lo, hi)))
        }
        IsEmpty => one(scalar_of(Intrinsic::Bool, Range::new(0.0, 1.0))),
        Abs => {
            let a = arg(0);
            // rule abs.real / abs.complex — both yield real.
            let intr = if at_most(&a, Intrinsic::Int) {
                Intrinsic::Int
            } else {
                Intrinsic::Real
            };
            one(with_shape(intr, a.min_shape, a.max_shape, a.range.abs()))
        }
        Sqrt => {
            let a = arg(0);
            // rule sqrt.nonneg: provably non-negative input stays real.
            if at_most(&a, Intrinsic::Real) && a.range.is_nonnegative() && !a.range.is_bottom() {
                let r = Range::new(a.range.lo().max(0.0).sqrt(), a.range.hi().sqrt());
                return one(with_shape(Intrinsic::Real, a.min_shape, a.max_shape, r));
            }
            one(with_shape(
                Intrinsic::Complex,
                a.min_shape,
                a.max_shape,
                Range::top(),
            ))
        }
        Exp => {
            let a = arg(0);
            if at_most(&a, Intrinsic::Real) {
                let r = Range::new(a.range.lo().exp(), a.range.hi().exp());
                return one(with_shape(Intrinsic::Real, a.min_shape, a.max_shape, r));
            }
            one(with_shape(
                Intrinsic::Complex,
                a.min_shape,
                a.max_shape,
                Range::top(),
            ))
        }
        Log | Log10 => {
            let a = arg(0);
            if at_most(&a, Intrinsic::Real) && a.range.lo() > 0.0 {
                return one(with_shape(
                    Intrinsic::Real,
                    a.min_shape,
                    a.max_shape,
                    Range::top(),
                ));
            }
            one(with_shape(
                Intrinsic::Complex,
                a.min_shape,
                a.max_shape,
                Range::top(),
            ))
        }
        Sin | Cos => {
            let a = arg(0);
            if at_most(&a, Intrinsic::Real) {
                return one(with_shape(
                    Intrinsic::Real,
                    a.min_shape,
                    a.max_shape,
                    Range::new(-1.0, 1.0),
                ));
            }
            one(with_shape(
                Intrinsic::Complex,
                a.min_shape,
                a.max_shape,
                Range::top(),
            ))
        }
        Tan | Asin | Acos | Atan | Atan2 => {
            let a = arg(0);
            one(with_shape(
                Intrinsic::Real,
                a.min_shape,
                a.max_shape,
                Range::top(),
            ))
        }
        Floor | Ceil | Round | Fix => {
            let a = arg(0);
            let r = match b {
                Floor => a.range.floor(),
                Ceil => a.range.ceil(),
                Round => a.range.round(),
                _ => a.range.floor().join(&a.range.ceil()),
            };
            // `floor(NaN)` is NaN and `floor(±∞)` is ±∞, which type as
            // `real` at runtime. A NaN value carries the ⊥ range, which
            // subsumes under every inferred range, so a finite range is
            // no evidence against NaN — only an integral input intrinsic
            // (which NaN never satisfies) lets the result claim `int`.
            let intrinsic = if a.intrinsic.le(&Intrinsic::Int) {
                Intrinsic::Int
            } else {
                Intrinsic::Real
            };
            one(with_shape(intrinsic, a.min_shape, a.max_shape, r))
        }
        Sign => {
            let a = arg(0);
            one(with_shape(
                Intrinsic::Int,
                a.min_shape,
                a.max_shape,
                Range::new(-1.0, 1.0),
            ))
        }
        Mod | Rem => {
            let a = arg(0);
            let bb = arg(1);
            let (min, max) = elem_shape(&a, &bb);
            let intr = if at_most(&a, Intrinsic::Int) && at_most(&bb, Intrinsic::Int) {
                Intrinsic::Int
            } else {
                Intrinsic::Real
            };
            // rule mod.bounded: result magnitude bounded by divisor.
            let r = if bb.range.hi().is_finite() && bb.range.lo().is_finite() {
                let m = bb.range.hi().abs().max(bb.range.lo().abs());
                Range::new(-m, m)
            } else {
                Range::top()
            };
            one(with_shape(intr, min, max, r))
        }
        Sum | Prod => one(reduction_type(&arg(0), b == Builtin::Prod)),
        Max | Min => {
            if args.len() >= 2 {
                let a = arg(0);
                let bb = arg(1);
                let (min, max) = elem_shape(&a, &bb);
                let r = if b == Builtin::Max {
                    a.range.max_with(bb.range)
                } else {
                    a.range.min_with(bb.range)
                };
                return one(with_shape(int_preserving(&a, &bb), min, max, r));
            }
            let a = arg(0);
            let t = reduction_type(&a, false);
            one(t.with_range(a.range))
        }
        Real | Imag => {
            let a = arg(0);
            one(with_shape(
                Intrinsic::Real,
                a.min_shape,
                a.max_shape,
                if at_most(&a, Intrinsic::Real) && b == Builtin::Real {
                    a.range
                } else {
                    Range::top()
                },
            ))
        }
        Conj => one(arg(0)),
        Angle => {
            let a = arg(0);
            one(with_shape(
                Intrinsic::Real,
                a.min_shape,
                a.max_shape,
                Range::new(-std::f64::consts::PI, std::f64::consts::PI),
            ))
        }
        Norm => one(scalar_of(Intrinsic::Real, Range::new(0.0, f64::INFINITY))),
        Eig => {
            let a = arg(0);
            // Eigenvalues of an n×n matrix: an n×1 (possibly complex)
            // vector.
            one(with_shape(
                Intrinsic::Complex,
                Shape {
                    rows: a.min_shape.rows,
                    cols: Dim::Finite(1),
                },
                Shape {
                    rows: a.max_shape.rows,
                    cols: Dim::Finite(1),
                },
                Range::top(),
            ))
        }
        Pi => one(scalar_of(
            Intrinsic::Real,
            Range::constant(std::f64::consts::PI),
        )),
        Eps => one(scalar_of(Intrinsic::Real, Range::constant(f64::EPSILON))),
        Inf => one(scalar_of(
            Intrinsic::Real,
            Range::new(f64::INFINITY, f64::INFINITY),
        )),
        NaN => one(scalar_of(Intrinsic::Real, Range::top())),
        ImagUnitI | ImagUnitJ => one(scalar_of(Intrinsic::Complex, Range::top())),
        Disp | Error | Fprintf => vec![],
        Num2Str => one(Type::string()),
    }
}

fn dim_range(lo: Dim, hi: Dim) -> Range {
    Range::new(
        match lo {
            Dim::Finite(n) => n as f64,
            Dim::Inf => 0.0,
        },
        match hi {
            Dim::Finite(n) => n as f64,
            Dim::Inf => f64::INFINITY,
        },
    )
}

/// Shape bounds of `zeros(m, n)`-style creation from argument types —
/// the paper's *exact shape inference* example: "in the statement
/// `A = zeros(m,n)`, the value ranges of m and n may uniquely determine
/// the shape of A".
fn creation_shape(args: &[Type]) -> (Shape, Shape) {
    let dim_of = |t: &Type| -> (Dim, Dim) {
        let lo = if t.range.lo().is_finite() && t.range.lo() >= 0.0 {
            Dim::Finite(t.range.lo() as u64)
        } else {
            Dim::Finite(0)
        };
        let hi = if t.range.hi().is_finite() && t.range.hi() >= 0.0 {
            Dim::Finite(t.range.hi() as u64)
        } else {
            Dim::Inf
        };
        (lo, hi)
    };
    match args {
        [] => (Shape::scalar(), Shape::scalar()),
        [n] if n.is_scalar() => {
            let (lo, hi) = dim_of(n);
            (Shape { rows: lo, cols: lo }, Shape { rows: hi, cols: hi })
        }
        [m, n] => {
            let (rlo, rhi) = dim_of(m);
            let (clo, chi) = dim_of(n);
            (
                Shape {
                    rows: rlo,
                    cols: clo,
                },
                Shape {
                    rows: rhi,
                    cols: chi,
                },
            )
        }
        _ => (Shape::bottom(), Shape::top()),
    }
}

/// Result type of a column-wise reduction (`sum`, `max`, …).
fn reduction_type(a: &Type, _prod: bool) -> Type {
    let intr = if at_most(a, Intrinsic::Int) {
        Intrinsic::Int
    } else if at_most(a, Intrinsic::Real) {
        Intrinsic::Real
    } else if at_most(a, Intrinsic::Complex) {
        Intrinsic::Complex
    } else {
        return Type::top();
    };
    // A vector reduces to a scalar; a matrix to a row vector. When we
    // cannot tell, bound by <1, max_cols>.
    if a.max_shape.rows == Dim::Finite(1) || a.max_shape.cols == Dim::Finite(1) {
        return scalar_of(intr, Range::top());
    }
    with_shape(
        intr,
        Shape {
            rows: Dim::Finite(1),
            cols: Dim::Finite(1),
        },
        Shape {
            rows: Dim::Finite(1),
            cols: a.max_shape.cols,
        },
        Range::top(),
    )
}

/// The rule inventory: one name per guarded rule in the database, in the
/// order they are tried. Mirrors the paper's "about 250 rules" database
/// structurally (each arm above corresponds to one or more entries here).
pub fn rule_inventory() -> Vec<&'static str> {
    let mut v = Vec::new();
    // Binary arithmetic ladders (×4 ops + div variants + pow).
    for op in ["add", "sub", "elem_mul", "elem_div", "elem_ldiv"] {
        for rule in [
            "int_scalar",
            "real_scalar",
            "cplx_scalar",
            "scalar_matrix",
            "matrix_scalar",
            "matrix_matrix",
            "default",
        ] {
            v.push(Box::leak(format!("{op}.{rule}").into_boxed_str()) as &'static str);
        }
    }
    for rule in [
        "mul.int_scalar",
        "mul.real_scalar",
        "mul.cplx_scalar",
        "mul.scalar_matrix",
        "mul.matrix_scalar",
        "mul.gemv",
        "mul.gemm",
        "mul.default",
        "div.scalar",
        "div.matrix",
        "div.default",
        "ldiv.scalar",
        "ldiv.matrix",
        "ldiv.default",
        "pow.int_scalar",
        "pow.real_scalar_nonneg",
        "pow.real_scalar_int_exp",
        "pow.real_scalar_cplx",
        "pow.cplx_scalar",
        "pow.matrix",
        "pow.elementwise",
        "pow.default",
    ] {
        v.push(rule);
    }
    // Relational and logical.
    for op in ["lt", "le", "gt", "ge", "eq", "ne"] {
        for rule in ["scalar", "elementwise", "string", "default"] {
            v.push(Box::leak(format!("{op}.{rule}").into_boxed_str()) as &'static str);
        }
    }
    for rule in [
        "and.elementwise",
        "or.elementwise",
        "shortand.scalar",
        "shortor.scalar",
        "neg.numeric",
        "not.numeric",
        "transpose.numeric",
        "colon.const",
        "colon.bounded",
        "colon.default",
        "bracket.concat",
        "index.all",
        "index.flatten",
        "index.scalar",
        "index.vector",
        "index.scalar2",
        "index.slice",
        "index.default",
        "store.linear_fresh",
        "store.linear_row",
        "store.linear_col",
        "store.linear_matrix",
        "store.grow2d",
        "store.default",
    ] {
        v.push(rule);
    }
    // Builtins: each match arm above is a rule; several have sub-rules.
    for b in Builtin::all() {
        v.push(Box::leak(format!("builtin.{}", b.name()).into_boxed_str()) as &'static str);
    }
    for rule in [
        "builtin.zeros.exact_shape",
        "builtin.zeros.bounded_shape",
        "builtin.size.dim",
        "builtin.size.pair",
        "builtin.sqrt.nonneg",
        "builtin.sqrt.complex",
        "builtin.log.positive",
        "builtin.log.complex",
        "builtin.exp.real",
        "builtin.sin.real_bounded",
        "builtin.cos.real_bounded",
        "builtin.abs.int",
        "builtin.mod.bounded",
        "builtin.max.binary",
        "builtin.max.reduce",
        "builtin.min.binary",
        "builtin.min.reduce",
        "builtin.sum.vector",
        "builtin.sum.matrix",
        "builtin.eig.shape",
    ] {
        v.push(rule);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o() -> InferOptions {
        InferOptions::default()
    }

    #[test]
    fn int_scalar_addition_tracks_constants() {
        let t = binary(BinOp::Add, &Type::constant(2.0), &Type::constant(3.0), &o());
        assert_eq!(t.intrinsic, Intrinsic::Int);
        assert_eq!(t.as_constant(), Some(5.0));
    }

    #[test]
    fn int_arithmetic_that_may_overflow_degrades_to_real() {
        // Found by the differential fuzzer: 2 .^ 1e10 is `inf` at
        // runtime, which types as real, so an unbounded interval must
        // not claim int. Finite intervals keep it.
        let t = binary(
            BinOp::ElemPow,
            &Type::constant(2.0),
            &Type::constant(1e10),
            &o(),
        );
        assert_eq!(t.intrinsic, Intrinsic::Real);
        let t = binary(
            BinOp::ElemPow,
            &Type::constant(2.0),
            &Type::constant(10.0),
            &o(),
        );
        assert_eq!(t.intrinsic, Intrinsic::Int);

        // Same for +/-/*: a widened (⊤) operand admits overflow.
        let wide = Type::scalar(Intrinsic::Int);
        let t = binary(BinOp::Add, &wide, &Type::constant(1.0), &o());
        assert_eq!(t.intrinsic, Intrinsic::Real);
        let t = binary(BinOp::Mul, &Type::constant(3.0), &Type::constant(4.0), &o());
        assert_eq!(t.intrinsic, Intrinsic::Int);
    }

    #[test]
    fn growing_store_joins_zero_fill_into_range() {
        // Found by the differential fuzzer: `m(5) = 5` vivifies m as
        // [0 0 0 0 5], so the inferred range must include the 0.0 fill,
        // not just the stored value.
        let five = SubTy::Ty(Type::constant(5.0));
        let t = index_write(
            &Type::bottom(),
            std::slice::from_ref(&five),
            &Type::constant(5.0),
            &o(),
        );
        assert_eq!(t.range, Range::new(0.0, 5.0));

        // A store inside the guaranteed extent leaves the range alone.
        let base = Type::matrix(Intrinsic::Int, 1, 8).with_range(Range::new(3.0, 4.0));
        let t = index_write(&base, &[five], &Type::constant(5.0), &o());
        assert_eq!(t.range, Range::new(3.0, 5.0));
    }

    #[test]
    fn division_degrades_int_to_real() {
        let t = binary(
            BinOp::ElemDiv,
            &Type::constant(1.0),
            &Type::constant(3.0),
            &o(),
        );
        assert_eq!(t.intrinsic, Intrinsic::Real);
    }

    #[test]
    fn complex_contaminates() {
        let z = Type::scalar(Intrinsic::Complex);
        let t = binary(BinOp::Add, &Type::constant(1.0), &z, &o());
        assert_eq!(t.intrinsic, Intrinsic::Complex);
    }

    #[test]
    fn matrix_multiply_shapes() {
        let a = Type::matrix(Intrinsic::Real, 3, 4);
        let b = Type::matrix(Intrinsic::Real, 4, 2);
        let t = binary(BinOp::Mul, &a, &b, &o());
        assert_eq!(t.exact_shape(), Some(Shape::new(3, 2)));
    }

    #[test]
    fn scalar_matrix_broadcast_keeps_shape() {
        let a = Type::matrix(Intrinsic::Real, 3, 3);
        let t = binary(BinOp::Add, &a, &Type::constant(1.0), &o());
        assert_eq!(t.exact_shape(), Some(Shape::new(3, 3)));
    }

    #[test]
    fn relational_yields_bool() {
        let t = binary(
            BinOp::Lt,
            &Type::scalar(Intrinsic::Real),
            &Type::constant(3.0),
            &o(),
        );
        assert_eq!(t.intrinsic, Intrinsic::Bool);
        assert!(t.is_scalar());
    }

    #[test]
    fn colon_with_constants_has_exact_extent() {
        let t = range_expr(&Type::constant(1.0), None, &Type::constant(10.0), &o());
        assert_eq!(t.exact_shape(), Some(Shape::new(1, 10)));
        assert_eq!(t.intrinsic, Intrinsic::Int);
        assert_eq!(t.range, Range::new(1.0, 10.0));
    }

    #[test]
    fn colon_with_bounded_stop_has_bounded_extent() {
        let n = Type::scalar(Intrinsic::Int).with_range(Range::new(1.0, 100.0));
        let t = range_expr(&Type::constant(1.0), None, &n, &o());
        assert_eq!(t.max_shape.cols, Dim::Finite(100));
        assert!(t.exact_shape().is_none());
    }

    #[test]
    fn zeros_with_constant_dims_is_exact() {
        let t = builtin(
            Builtin::Zeros,
            &[Type::constant(3.0), Type::constant(4.0)],
            1,
            &o(),
        );
        assert_eq!(t[0].exact_shape(), Some(Shape::new(3, 4)));
        assert_eq!(t[0].range, Range::constant(0.0));
    }

    #[test]
    fn zeros_with_bounded_dims_is_bounded() {
        let n = Type::scalar(Intrinsic::Int).with_range(Range::new(2.0, 8.0));
        let t = builtin(Builtin::Zeros, &[n], 1, &o());
        assert_eq!(t[0].min_shape, Shape::new(2, 2));
        assert_eq!(t[0].max_shape, Shape::new(8, 8));
    }

    #[test]
    fn size_of_exact_shape_is_constant() {
        let a = Type::matrix(Intrinsic::Real, 5, 7);
        let t = builtin(Builtin::Size, &[a, Type::constant(1.0)], 1, &o());
        assert_eq!(t[0].as_constant(), Some(5.0));
        let two = builtin(Builtin::Size, &[a], 2, &o());
        assert_eq!(two[1].as_constant(), Some(7.0));
    }

    #[test]
    fn scalar_index_read() {
        let a = Type::matrix(Intrinsic::Real, 10, 10).with_range(Range::new(-1.0, 1.0));
        let i = Type::constant(3.0);
        let t = index_read(&a, &[SubTy::Ty(i), SubTy::Ty(i)], &o());
        assert!(t.is_scalar());
        assert_eq!(t.range, Range::new(-1.0, 1.0));
    }

    #[test]
    fn slice_read_shapes() {
        let a = Type::matrix(Intrinsic::Real, 10, 4);
        let t = index_read(&a, &[SubTy::Ty(Type::constant(1.0)), SubTy::Colon], &o());
        assert_eq!(t.exact_shape(), Some(Shape::new(1, 4)));
        let t = index_read(&a, &[SubTy::Colon], &o());
        assert_eq!(t.exact_shape(), Some(Shape::new(40, 1)));
    }

    #[test]
    fn store_growth_follows_index_range() {
        // A(i) = v with i in [1, 50] on a row vector: extent grows to at
        // least 1 (min) and at most 50 beyond its old max.
        let base = Type::matrix(Intrinsic::Real, 1, 10);
        let idx = Type::scalar(Intrinsic::Int).with_range(Range::new(1.0, 50.0));
        let t = index_write(&base, &[SubTy::Ty(idx)], &Type::constant(0.0), &o());
        assert_eq!(t.max_shape, Shape::new(1, 50));
        assert_eq!(t.min_shape, Shape::new(1, 10));
        // Exact index: exact growth.
        let idx = Type::constant(20.0);
        let t = index_write(&base, &[SubTy::Ty(idx)], &Type::constant(0.0), &o());
        assert_eq!(t.max_shape, Shape::new(1, 20));
        assert_eq!(t.min_shape, Shape::new(1, 20));
    }

    #[test]
    fn store_promotes_intrinsic() {
        let base = Type::matrix(Intrinsic::Real, 2, 2);
        let t = index_write(
            &base,
            &[SubTy::Ty(Type::constant(1.0))],
            &Type::scalar(Intrinsic::Complex),
            &o(),
        );
        assert_eq!(t.intrinsic, Intrinsic::Complex);
    }

    #[test]
    fn sqrt_rule_ladder() {
        let pos = Type::scalar(Intrinsic::Real).with_range(Range::new(0.0, 4.0));
        let t = builtin(Builtin::Sqrt, &[pos], 1, &o());
        assert_eq!(t[0].intrinsic, Intrinsic::Real);
        assert_eq!(t[0].range, Range::new(0.0, 2.0));
        let any = Type::scalar(Intrinsic::Real);
        let t = builtin(Builtin::Sqrt, &[any], 1, &o());
        assert_eq!(t[0].intrinsic, Intrinsic::Complex);
    }

    #[test]
    fn disabling_ranges_strips_ranges() {
        let opts = InferOptions {
            range_propagation: false,
            ..InferOptions::default()
        };
        let t = binary(
            BinOp::Add,
            &Type::constant(2.0),
            &Type::constant(3.0),
            &opts,
        );
        assert!(t.range.is_top());
        // Shape info is unaffected.
        assert!(t.is_scalar());
    }

    #[test]
    fn disabling_min_shapes_strips_lower_bounds() {
        let opts = InferOptions {
            min_shape_propagation: false,
            ..InferOptions::default()
        };
        let t = builtin(
            Builtin::Zeros,
            &[Type::constant(3.0), Type::constant(3.0)],
            1,
            &opts,
        );
        assert_eq!(t[0].min_shape, Shape::bottom());
        assert_eq!(t[0].max_shape, Shape::new(3, 3));
        assert!(t[0].exact_shape().is_none());
    }

    #[test]
    fn default_rule_yields_top() {
        let s = Type::string();
        let t = binary(BinOp::Mul, &s, &Type::constant(2.0), &o());
        assert_eq!(t, Type::top());
    }

    #[test]
    fn rule_inventory_is_substantial() {
        // The paper reports "about 250 rules"; our database is the same
        // order of magnitude.
        let rules = rule_inventory();
        assert!(rules.len() >= 150, "only {} rules", rules.len());
        // No duplicates.
        let set: std::collections::HashSet<_> = rules.iter().collect();
        assert_eq!(set.len(), rules.len());
    }

    #[test]
    fn eig_shape_rule() {
        let a = Type::matrix(Intrinsic::Real, 6, 6);
        let t = builtin(Builtin::Eig, &[a], 1, &o());
        assert_eq!(t[0].max_shape, Shape::new(6, 1));
        assert_eq!(t[0].intrinsic, Intrinsic::Complex);
    }

    #[test]
    fn transpose_swaps_bounds() {
        let a = Type::matrix(Intrinsic::Real, 2, 5);
        let t = transpose(&a, &o());
        assert_eq!(t.exact_shape(), Some(Shape::new(5, 2)));
    }

    #[test]
    fn matrix_literal_of_scalars() {
        let row = vec![
            Type::constant(1.0),
            Type::constant(2.0),
            Type::constant(3.0),
        ];
        let t = matrix_literal(&[row], &o());
        assert_eq!(t.exact_shape(), Some(Shape::new(1, 3)));
        assert_eq!(t.intrinsic, Intrinsic::Int);
        assert_eq!(t.range, Range::new(1.0, 3.0));
    }

    #[test]
    fn matrix_literal_two_rows() {
        let t = matrix_literal(
            &[
                vec![Type::constant(1.0), Type::constant(2.0)],
                vec![Type::constant(3.0), Type::constant(4.0)],
            ],
            &o(),
        );
        assert_eq!(t.exact_shape(), Some(Shape::new(2, 2)));
    }

    #[test]
    fn negating_a_logical_is_numeric() {
        // Found by the differential fuzzer: `-true` is the double -1.0,
        // which Bool (values 0/1) does not admit.
        let b = with_shape(
            Intrinsic::Bool,
            Shape::scalar(),
            Shape::scalar(),
            Range::new(0.0, 1.0),
        );
        let t = unary(UnOp::Neg, &b, &o());
        assert_ne!(t.intrinsic, Intrinsic::Bool);
        assert!(t.intrinsic.le(&Intrinsic::Int));
        assert_eq!(t.range, Range::new(-1.0, 0.0));
    }

    #[test]
    fn floor_of_real_cannot_claim_int() {
        // Found by the differential fuzzer: floor(NaN) is NaN, which
        // types as real with the ⊥ range — a range every interval
        // admits — so only an integral input intrinsic justifies `int`.
        let real = Type::scalar(Intrinsic::Real);
        for b in [Builtin::Floor, Builtin::Ceil, Builtin::Round, Builtin::Fix] {
            let t = builtin(b, &[real], 1, &o());
            assert_eq!(t[0].intrinsic, Intrinsic::Real, "{b:?}");
        }
        // An already-integral operand (NaN-free by construction) keeps
        // the precise class.
        let t = builtin(Builtin::Floor, &[Type::constant(3.0)], 1, &o());
        assert_eq!(t[0].intrinsic, Intrinsic::Int);
    }

    #[test]
    fn matmul_joins_scalar_broadcast_alternative() {
        // Found by the differential fuzzer: 4x4 times a join of 1x1 and
        // 4x1 was typed 4x1, but the runtime scalar case scales the
        // matrix and produces 4x4.
        let a = Type::matrix(Intrinsic::Real, 4, 4);
        let b = with_shape(
            Intrinsic::Real,
            Shape::scalar(),
            Shape::new(4, 1),
            Range::top(),
        );
        let t = binary(BinOp::Mul, &a, &b, &o());
        assert!(
            Shape::new(4, 4).le(&t.max_shape),
            "scalar-broadcast shape not covered: {t:?}"
        );
        let t = binary(BinOp::Div, &a, &b, &o());
        assert!(Shape::new(4, 4).le(&t.max_shape), "rdiv: {t:?}");
        let t = binary(BinOp::LeftDiv, &b, &a, &o());
        assert!(Shape::new(4, 4).le(&t.max_shape), "ldiv: {t:?}");
    }
}
