//! The forward (JIT) type-inference engine (paper §2.3, §2.4).

use crate::calculator::{self, SubTy};
use majic_analysis::{DisambiguatedFunction, SymbolKind};
use majic_ast::{Expr, ExprKind, LValue, NodeId, Stmt, StmtKind};
use majic_types::{Dim, Intrinsic, Lattice, Range, Signature, Type};
use std::collections::HashMap;

pub use crate::calculator::InferOptions;

/// Resolves the output types of user-function calls. The engine wires
/// the code repository in here so that inference can use the signatures
/// of already-compiled callees; [`NoOracle`] answers `⊤`.
pub trait CalleeOracle {
    /// Output types of calling `name` with the given argument types, or
    /// `None` when unknown.
    fn call_types(&self, name: &str, args: &[Type], nargout: usize) -> Option<Vec<Type>>;
}

/// An oracle that knows nothing (every call returns `⊤`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOracle;

impl CalleeOracle for NoOracle {
    fn call_types(&self, _name: &str, _args: &[Type], _nargout: usize) -> Option<Vec<Type>> {
        None
    }
}

/// The result of type inference: "a set of type annotations S, one type
/// for each expression node in the abstract syntax tree … a conservative
/// estimate of the types that expression nodes can assume during
/// execution" (§2.3).
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    /// Result type per expression node (and per lvalue id: the variable's
    /// type *after* the assignment).
    pub types: HashMap<NodeId, Type>,
    /// For `Apply` reads and `Index` lvalues: the type of the indexed
    /// array *before* the operation (drives subscript-check removal).
    pub base_types: HashMap<NodeId, Type>,
    /// Types of the function outputs at exit.
    pub outputs: Vec<Type>,
    /// Parameter types the analysis ran with (JIT: the invocation
    /// signature; speculative: the inferred guess).
    pub params: Vec<Type>,
}

impl Annotations {
    /// The annotation of a node (`⊤` when absent).
    pub fn ty(&self, id: NodeId) -> Type {
        self.types.get(&id).copied().unwrap_or_else(Type::top)
    }

    /// The base-array annotation of an indexing node (`⊤` when absent).
    pub fn base_ty(&self, id: NodeId) -> Type {
        self.base_types.get(&id).copied().unwrap_or_else(Type::top)
    }
}

/// Environment: one type per variable (`⊥` = undefined so far).
type Env = Vec<Type>;

fn join_env(a: &Env, b: &Env) -> Env {
    a.iter().zip(b).map(|(x, y)| join_var(x, y)).collect()
}

/// Join two per-variable dataflow states.
///
/// In the environment, `⊥` means "unbound on this path" — *not*
/// "unreachable". The lattice join treats `⊥` as an identity, which is
/// right for upper bounds but unsound for the *guarantees* carried in
/// `min_shape`: a variable that is unbound on one incoming path (the
/// first iteration of a loop that assigns it, an `if` without an `else`)
/// auto-vivifies from empty when indexed-stored, so code reaching the
/// merge cannot assume any minimum extent. Keeping the defined side's
/// `min_shape` let codegen remove store checks that the first iteration
/// still needs (the unchecked store path refuses to vivify and raises
/// `Undefined` where the interpreter succeeds).
fn join_var(x: &Type, y: &Type) -> Type {
    let j = x.join(y);
    let xb = x.intrinsic == Intrinsic::Bottom;
    let yb = y.intrinsic == Intrinsic::Bottom;
    if xb == yb {
        j
    } else {
        Type {
            min_shape: majic_types::Shape::bottom(),
            ..j
        }
    }
}

pub(crate) struct ForwardEngine<'a, O: CalleeOracle> {
    pub(crate) d: &'a DisambiguatedFunction,
    pub(crate) opts: InferOptions,
    pub(crate) oracle: &'a O,
    pub(crate) ann: Annotations,
    pub(crate) break_envs: Vec<Env>,
    pub(crate) continue_envs: Vec<Env>,
}

/// JIT type inference: propagate the invocation's type signature through
/// the function body (paper §2.4).
///
/// Because the signature comes from actual runtime values, ranges are
/// exact (constant propagation), shapes are exact, and subscript bounds
/// become provable.
pub fn infer_jit<O: CalleeOracle>(
    d: &DisambiguatedFunction,
    sig: &Signature,
    opts: InferOptions,
    oracle: &O,
) -> Annotations {
    let _sp = majic_trace::Span::enter_with("infer.jit", || vec![("fn", d.function.name.clone())]);
    let params: Vec<Type> = d
        .function
        .params
        .iter()
        .enumerate()
        .map(|(k, _)| {
            sig.params()
                .get(k)
                .copied()
                .map(|t| opts.sanitize(t))
                .unwrap_or_else(Type::bottom)
        })
        .collect();
    let mut engine = ForwardEngine {
        d,
        opts,
        oracle,
        ann: Annotations::default(),
        break_envs: Vec::new(),
        continue_envs: Vec::new(),
    };
    engine.run(params)
}

impl<O: CalleeOracle> ForwardEngine<'_, O> {
    pub(crate) fn run(&mut self, params: Vec<Type>) -> Annotations {
        let nvars = self.d.table.var_count();
        let mut env: Env = vec![Type::bottom(); nvars];
        for (k, p) in self.d.function.params.iter().enumerate() {
            if let Some(v) = self.d.table.var_id(p) {
                env[v.index()] = params.get(k).copied().unwrap_or_else(Type::bottom);
            }
        }
        self.ann.params = params;
        let out_env = self.block(&self.d.function.body, env);
        self.ann.outputs = self
            .d
            .function
            .outputs
            .iter()
            .map(|o| {
                self.d
                    .table
                    .var_id(o)
                    .map(|v| out_env[v.index()])
                    .unwrap_or_else(Type::top)
            })
            .collect();
        std::mem::take(&mut self.ann)
    }

    fn block(&mut self, stmts: &[Stmt], mut env: Env) -> Env {
        for s in stmts {
            env = self.stmt(s, env);
        }
        env
    }

    fn stmt(&mut self, s: &Stmt, mut env: Env) -> Env {
        match &s.kind {
            StmtKind::Expr { expr, .. } => {
                self.expr(expr, &env, None);
                env
            }
            StmtKind::Assign { lhs, rhs, .. } => {
                let t = self.expr(rhs, &env, None);
                self.assign(lhs, t, &mut env);
                env
            }
            StmtKind::MultiAssign {
                lhs,
                id,
                callee,
                args,
                ..
            } => {
                let arg_tys: Vec<Type> = args.iter().map(|a| self.expr(a, &env, None)).collect();
                let outs = match self.d.table.kind(*id) {
                    SymbolKind::Builtin(b) => {
                        calculator::builtin(b, &arg_tys, lhs.len(), &self.opts)
                    }
                    SymbolKind::UserFunction => self
                        .oracle
                        .call_types(callee, &arg_tys, lhs.len())
                        .unwrap_or_else(|| vec![Type::top(); lhs.len()]),
                    _ => vec![Type::top(); lhs.len()],
                };
                self.ann
                    .types
                    .insert(*id, outs.first().copied().unwrap_or_else(Type::top));
                for (k, lv) in lhs.iter().enumerate() {
                    let t = outs.get(k).copied().unwrap_or_else(Type::top);
                    self.assign(lv, t, &mut env);
                }
                env
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                let mut out: Option<Env> = None;
                for (cond, body) in branches {
                    self.expr(cond, &env, None);
                    let b_out = self.block(body, env.clone());
                    out = Some(match out {
                        Some(o) => join_env(&o, &b_out),
                        None => b_out,
                    });
                }
                let else_out = match else_body {
                    Some(body) => self.block(body, env.clone()),
                    None => env,
                };
                match out {
                    Some(o) => join_env(&o, &else_out),
                    None => else_out,
                }
            }
            StmtKind::While { cond, body } => self.fixpoint(env, |me, e| {
                me.expr(cond, e, None);
                me.block(body, e.clone())
            }),
            StmtKind::For {
                var,
                var_id,
                iter,
                body,
            } => {
                let iter_t = self.expr(iter, &env, None);
                let elem_t = self.loop_element_type(&iter_t);
                let vid = self.d.table.var_id(var);
                self.ann.types.insert(*var_id, elem_t);
                self.fixpoint(env, |me, e| {
                    let mut e2 = e.clone();
                    if let Some(v) = vid {
                        e2[v.index()] = elem_t;
                        me.ann.types.insert(*var_id, elem_t);
                    }
                    me.block(body, e2)
                })
            }
            StmtKind::Break => {
                self.break_envs.push(env.clone());
                env
            }
            StmtKind::Continue => {
                self.continue_envs.push(env.clone());
                env
            }
            StmtKind::Return => env,
            StmtKind::Global(names) => {
                for n in names {
                    if let Some(v) = self.d.table.var_id(n) {
                        env[v.index()] = Type::top();
                    }
                }
                env
            }
            StmtKind::Clear(names) => {
                if names.is_empty() {
                    for t in env.iter_mut() {
                        *t = Type::bottom();
                    }
                } else {
                    for n in names {
                        if let Some(v) = self.d.table.var_id(n) {
                            env[v.index()] = Type::bottom();
                        }
                    }
                }
                env
            }
        }
    }

    /// Iterate a loop body to a fixpoint under the iteration cap, widening
    /// past it (paper §2.3: the engine "avoids symbolic computation and
    /// caps the number of iterations").
    fn fixpoint(&mut self, env_in: Env, mut body: impl FnMut(&mut Self, &Env) -> Env) -> Env {
        let saved_breaks = std::mem::take(&mut self.break_envs);
        let saved_continues = std::mem::take(&mut self.continue_envs);
        let mut carried = env_in.clone();
        let mut converged = false;
        for iter in 0..self.opts.max_loop_iterations.max(4) {
            self.break_envs.clear();
            self.continue_envs.clear();
            let out = body(self, &carried);
            let mut next = join_env(&env_in, &out);
            for c in &self.continue_envs {
                next = join_env(&next, c);
            }
            if next == carried {
                converged = true;
                break;
            }
            if iter + 2 >= self.opts.max_loop_iterations {
                // Widen the components that keep changing: moved range
                // bounds jump to ±∞, grown shape bounds to their lattice
                // extremes. Each component widens at most once, so the
                // iteration terminates; stable components (e.g. an exact
                // small-vector shape) survive — they are what the
                // unrolling optimizations feed on.
                next = next
                    .iter()
                    .zip(&carried)
                    .enumerate()
                    .map(|(i, (n, c))| {
                        if n == c {
                            *n
                        } else {
                            let w = n.widen_from(c);
                            majic_trace::audit::widening(|| majic_trace::audit::Widening {
                                variable: self.d.table.vars.get(i).cloned().unwrap_or_default(),
                                from: c.to_string(),
                                to: w.to_string(),
                                reason: format!(
                                    "join at loop header: still moving after {} iterations",
                                    iter + 1
                                ),
                            });
                            w
                        }
                    })
                    .collect();
            }
            carried = next;
        }
        if !converged {
            // Soundness backstop: annotations must describe *every*
            // iteration (unchecked accesses rely on them). If the cap was
            // hit while still changing, send the unstable variables to ⊤
            // and run one final annotation pass at the fixpoint.
            self.break_envs.clear();
            self.continue_envs.clear();
            let out = body(self, &carried);
            let probe = join_env(&env_in, &out);
            for (i, (slot, p)) in carried.iter_mut().zip(&probe).enumerate() {
                if slot != p {
                    majic_trace::audit::widening(|| majic_trace::audit::Widening {
                        variable: self.d.table.vars.get(i).cloned().unwrap_or_default(),
                        from: slot.to_string(),
                        to: Type::top().to_string(),
                        reason: "unstable at loop iteration cap → ⊤ (soundness backstop)"
                            .to_owned(),
                    });
                    *slot = Type::top();
                }
            }
            self.break_envs.clear();
            self.continue_envs.clear();
            let _ = body(self, &carried);
        }
        let mut exit = carried;
        for b in std::mem::replace(&mut self.break_envs, saved_breaks) {
            exit = join_env(&exit, &b);
        }
        self.continue_envs = saved_continues;
        exit
    }

    /// Type of the loop variable given the iteration-space type
    /// (MATLAB iterates over columns).
    fn loop_element_type(&self, iter_t: &Type) -> Type {
        if iter_t.max_shape.rows == Dim::Finite(1) || iter_t.is_scalar() {
            // Row vector (the common `for i = 1:n`): scalar elements whose
            // range is the iteration range.
            Type {
                intrinsic: iter_t.intrinsic,
                min_shape: majic_types::Shape::scalar(),
                max_shape: majic_types::Shape::scalar(),
                range: iter_t.range,
            }
        } else {
            // Column-of-matrix iteration.
            Type {
                intrinsic: iter_t.intrinsic,
                min_shape: majic_types::Shape {
                    rows: iter_t.min_shape.rows,
                    cols: Dim::Finite(1),
                },
                max_shape: majic_types::Shape {
                    rows: iter_t.max_shape.rows,
                    cols: Dim::Finite(1),
                },
                range: iter_t.range,
            }
        }
    }

    fn assign(&mut self, lhs: &LValue, rhs_t: Type, env: &mut Env) {
        match lhs {
            LValue::Var { name, id, .. } => {
                if let Some(v) = self.d.table.var_id(name) {
                    env[v.index()] = rhs_t;
                }
                self.ann.types.insert(*id, rhs_t);
            }
            LValue::Index { name, args, id, .. } => {
                let base = self
                    .d
                    .table
                    .var_id(name)
                    .map(|v| env[v.index()])
                    .unwrap_or_else(Type::top);
                self.ann.base_types.insert(*id, base);
                let subs = self.subscripts(args, &base, env);
                let new_t = calculator::index_write(&base, &subs, &rhs_t, &self.opts);
                if let Some(v) = self.d.table.var_id(name) {
                    env[v.index()] = new_t;
                }
                self.ann.types.insert(*id, new_t);
            }
        }
    }

    fn subscripts(&mut self, args: &[Expr], base: &Type, env: &Env) -> Vec<SubTy> {
        let n = args.len();
        args.iter()
            .enumerate()
            .map(|(k, a)| match &a.kind {
                ExprKind::Colon => SubTy::Colon,
                _ => SubTy::Ty(self.expr(a, env, Some(end_type(base, k, n, &self.opts)))),
            })
            .collect()
    }

    fn expr(&mut self, e: &Expr, env: &Env, end_t: Option<Type>) -> Type {
        let t = match &e.kind {
            ExprKind::Number { value, imaginary } => {
                if *imaginary {
                    Type::scalar(Intrinsic::Complex)
                } else {
                    Type::constant(*value)
                }
            }
            ExprKind::Str(s) => {
                let n = s.len() as u64;
                Type::string()
                    .with_exact_shape(majic_types::Shape::new(if n == 0 { 0 } else { 1 }, n))
            }
            ExprKind::Ident(name) => match self.d.table.kind(e.id) {
                SymbolKind::Variable(v) => env[v.index()],
                SymbolKind::Builtin(b) => calculator::builtin(b, &[], 1, &self.opts)
                    .first()
                    .copied()
                    .unwrap_or_else(Type::top),
                SymbolKind::UserFunction => self
                    .oracle
                    .call_types(name, &[], 1)
                    .and_then(|v| v.first().copied())
                    .unwrap_or_else(Type::top),
                SymbolKind::Ambiguous(_) | SymbolKind::Unknown => Type::top(),
            },
            ExprKind::Apply { callee, args } => match self.d.table.kind(e.id) {
                SymbolKind::Variable(v) | SymbolKind::Ambiguous(v) => {
                    let base = env[v.index()];
                    self.ann.base_types.insert(e.id, base);
                    if matches!(self.d.table.kind(e.id), SymbolKind::Ambiguous(_)) {
                        // Deferred to runtime: argument types still get
                        // annotated, result is unknown.
                        for a in args {
                            self.expr(a, env, None);
                        }
                        Type::top()
                    } else {
                        let subs = self.subscripts(args, &base, env);
                        calculator::index_read(&base, &subs, &self.opts)
                    }
                }
                SymbolKind::Builtin(b) => {
                    let arg_tys: Vec<Type> = args.iter().map(|a| self.expr(a, env, None)).collect();
                    calculator::builtin(b, &arg_tys, 1, &self.opts)
                        .first()
                        .copied()
                        .unwrap_or_else(Type::top)
                }
                SymbolKind::UserFunction => {
                    let arg_tys: Vec<Type> = args.iter().map(|a| self.expr(a, env, None)).collect();
                    self.oracle
                        .call_types(callee, &arg_tys, 1)
                        .and_then(|v| v.first().copied())
                        .unwrap_or_else(Type::top)
                }
                SymbolKind::Unknown => {
                    for a in args {
                        self.expr(a, env, None);
                    }
                    Type::top()
                }
            },
            ExprKind::Range { start, step, stop } => {
                let st = self.expr(start, env, end_t);
                let sp = step.as_ref().map(|s| self.expr(s, env, end_t));
                let en = self.expr(stop, env, end_t);
                calculator::range_expr(&st, sp.as_ref(), &en, &self.opts)
            }
            ExprKind::Colon => Type::top(),
            ExprKind::End => end_t.unwrap_or_else(Type::top),
            ExprKind::Unary { op, operand } => {
                let t = self.expr(operand, env, end_t);
                calculator::unary(*op, &t, &self.opts)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.expr(lhs, env, end_t);
                let rt = self.expr(rhs, env, end_t);
                let mut t = calculator::binary(*op, &lt, &rt, &self.opts);
                // `x*x` is non-negative even when x's range is unknown —
                // the one piece of symbolic reasoning the numeric range
                // lattice cannot express, and the one the benchmarks'
                // `sqrt(x*x + y*y)` idiom depends on to stay real.
                if matches!(op, majic_ast::BinOp::Mul | majic_ast::BinOp::ElemMul)
                    && t.intrinsic.has_range()
                    && !t.range.is_nonnegative()
                    && same_shape_expr(lhs, rhs)
                {
                    t.range = t.range.meet(&Range::new(0.0, f64::INFINITY));
                }
                t
            }
            ExprKind::Matrix(rows) => {
                let tys: Vec<Vec<Type>> = rows
                    .iter()
                    .map(|row| row.iter().map(|el| self.expr(el, env, end_t)).collect())
                    .collect();
                calculator::matrix_literal(&tys, &self.opts)
            }
            ExprKind::Transpose { operand, .. } => {
                let t = self.expr(operand, env, end_t);
                calculator::transpose(&t, &self.opts)
            }
        };
        let t = self.opts.sanitize(t);
        self.ann.types.insert(e.id, t);
        t
    }
}

/// Structural equality of two expressions, ignoring node ids and spans —
/// used to recognize `x*x` squares. Conservative: any unhandled pair is
/// "different".
fn same_shape_expr(a: &Expr, b: &Expr) -> bool {
    match (&a.kind, &b.kind) {
        (ExprKind::Ident(x), ExprKind::Ident(y)) => x == y,
        (
            ExprKind::Number {
                value: x,
                imaginary: xi,
            },
            ExprKind::Number {
                value: y,
                imaginary: yi,
            },
        ) => x == y && xi == yi,
        (
            ExprKind::Apply {
                callee: cx,
                args: ax,
            },
            ExprKind::Apply {
                callee: cy,
                args: ay,
            },
        ) => {
            cx == cy
                && ax.len() == ay.len()
                && ax.iter().zip(ay).all(|(p, q)| same_shape_expr(p, q))
        }
        (
            ExprKind::Unary {
                op: ox,
                operand: px,
            },
            ExprKind::Unary {
                op: oy,
                operand: py,
            },
        ) => ox == oy && same_shape_expr(px, py),
        (
            ExprKind::Binary {
                op: ox,
                lhs: lx,
                rhs: rx,
            },
            ExprKind::Binary {
                op: oy,
                lhs: ly,
                rhs: ry,
            },
        ) => ox == oy && same_shape_expr(lx, ly) && same_shape_expr(rx, ry),
        _ => false,
    }
}

/// The type of `end` in subscript `k` of `n` against `base` (its value
/// is the relevant extent, so its range is the extent's bounds).
fn end_type(base: &Type, k: usize, n: usize, opts: &InferOptions) -> Type {
    let (lo, hi) = if n == 1 {
        (
            base.min_shape.rows.saturating_mul(base.min_shape.cols),
            base.max_shape.rows.saturating_mul(base.max_shape.cols),
        )
    } else if k == 0 {
        (base.min_shape.rows, base.max_shape.rows)
    } else {
        (base.min_shape.cols, base.max_shape.cols)
    };
    let range = Range::new(
        match lo {
            Dim::Finite(v) => v as f64,
            Dim::Inf => 0.0,
        },
        match hi {
            Dim::Finite(v) => v as f64,
            Dim::Inf => f64::INFINITY,
        },
    );
    opts.sanitize(Type::scalar(Intrinsic::Int).with_range(range))
}

#[cfg(test)]
mod tests {
    use super::*;
    use majic_analysis::disambiguate;
    use majic_ast::parse_source;
    use std::collections::HashSet;

    fn setup(src: &str, sig: Vec<Type>) -> (DisambiguatedFunction, Annotations) {
        let file = parse_source(src).unwrap();
        let known: HashSet<String> = file.functions.iter().map(|f| f.name.clone()).collect();
        let d = disambiguate(&file.functions[0], &known);
        let ann = infer_jit(&d, &Signature::new(sig), InferOptions::default(), &NoOracle);
        (d, ann)
    }

    /// The annotation of the rhs of the assignment to `name`.
    fn type_of_assign(d: &DisambiguatedFunction, ann: &Annotations, name: &str) -> Type {
        fn find(stmts: &[Stmt], name: &str, ann: &Annotations, out: &mut Option<Type>) {
            for s in stmts {
                match &s.kind {
                    StmtKind::Assign { lhs, .. } if lhs.name() == name => {
                        *out = Some(ann.ty(lhs.id()));
                    }
                    StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                        find(body, name, ann, out)
                    }
                    StmtKind::If {
                        branches,
                        else_body,
                    } => {
                        for (_, b) in branches {
                            find(b, name, ann, out);
                        }
                        if let Some(b) = else_body {
                            find(b, name, ann, out);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut out = None;
        find(&d.function.body, name, ann, &mut out);
        out.expect("assignment found")
    }

    #[test]
    fn constants_propagate_through_arithmetic() {
        let (d, ann) = setup(
            "function y = f(x)\na = 2;\nb = a * 3 + 1;\ny = b;\n",
            vec![Type::constant(0.0)],
        );
        let t = type_of_assign(&d, &ann, "b");
        assert_eq!(t.as_constant(), Some(7.0));
        assert_eq!(ann.outputs[0].as_constant(), Some(7.0));
    }

    #[test]
    fn signature_drives_precision() {
        // With x = int constant 3, x+1 is the constant 4.
        let (d, ann) = setup("function y = f(x)\ny = x + 1;\n", vec![Type::constant(3.0)]);
        assert_eq!(type_of_assign(&d, &ann, "y").as_constant(), Some(4.0));
        // With x an unknown real scalar, y is a real scalar, not constant.
        let (d, ann) = setup(
            "function y = f(x)\ny = x + 1;\n",
            vec![Type::scalar(Intrinsic::Real)],
        );
        let t = type_of_assign(&d, &ann, "y");
        assert_eq!(t.intrinsic, Intrinsic::Real);
        assert!(t.as_constant().is_none());
        assert!(t.is_scalar());
    }

    #[test]
    fn exact_shape_inference_through_zeros() {
        // Paper §2.4: "A = zeros(m,n): the value ranges of m and n may
        // uniquely determine the shape of A".
        let (d, ann) = setup(
            "function y = f(m, n)\nA = zeros(m, n);\ny = A;\n",
            vec![Type::constant(30.0), Type::constant(40.0)],
        );
        let t = type_of_assign(&d, &ann, "A");
        assert_eq!(t.exact_shape(), Some(majic_types::Shape::new(30, 40)));
    }

    #[test]
    fn loop_variable_gets_range_of_iteration_space() {
        let (d, ann) = setup(
            "function y = f(n)\ns = 0;\nfor k = 1:n\n s = s + k;\nend\ny = s;\n",
            vec![Type::constant(100.0)],
        );
        // Find the for's var_id annotation.
        let mut var_t = None;
        for s in &d.function.body {
            if let StmtKind::For { var_id, .. } = &s.kind {
                var_t = Some(ann.ty(*var_id));
            }
        }
        let var_t = var_t.unwrap();
        assert_eq!(var_t.intrinsic, Intrinsic::Int);
        assert_eq!(var_t.range, Range::new(1.0, 100.0));
        assert!(var_t.is_scalar());
    }

    #[test]
    fn loop_fixpoint_converges_with_widening() {
        // s grows without bound; the range must widen rather than iterate
        // forever, and the intrinsic stays int.
        let (d, ann) = setup(
            "function y = f(n)\ns = 0;\nfor k = 1:n\n s = s + 1;\nend\ny = s;\n",
            vec![Type::constant(1000.0)],
        );
        let _ = &d;
        let t = ann.outputs[0];
        assert!(t.intrinsic.le(&Intrinsic::Real));
        // Lower bound of s stays finite, upper widens to cover the loop.
        assert!(t.range.hi().is_infinite() || t.range.hi() >= 1000.0);
    }

    #[test]
    fn subscript_ranges_enable_check_removal_info() {
        let (d, ann) = setup(
            "function y = f(n)\nA = zeros(1, n);\nfor k = 1:n\n A(k) = k;\nend\ny = A;\n",
            vec![Type::constant(50.0)],
        );
        // After the loop, A is exactly 1x50: stores at k ∈ [1,50] on a
        // zeros(1,50) never resize.
        let t = type_of_assign(&d, &ann, "y");
        assert_eq!(t.exact_shape(), Some(majic_types::Shape::new(1, 50)));
    }

    #[test]
    fn growing_array_bounds() {
        // A starts empty and grows: max shape must cover [1, n].
        let (d, ann) = setup(
            "function y = f(n)\nA(1) = 0;\nfor k = 2:n\n A(k) = k;\nend\ny = A;\n",
            vec![Type::constant(10.0)],
        );
        let t = type_of_assign(&d, &ann, "y");
        assert_eq!(t.max_shape.cols, Dim::Finite(10));
        assert!(t.min_shape.cols.le(Dim::Finite(1)));
    }

    #[test]
    fn complex_seed_infects_results() {
        let (d, ann) = setup(
            "function y = f(z)\ny = z * 2 + 1;\n",
            vec![Type::scalar(Intrinsic::Complex)],
        );
        assert_eq!(type_of_assign(&d, &ann, "y").intrinsic, Intrinsic::Complex);
    }

    #[test]
    fn branch_join_merges_types() {
        let (d, ann) = setup(
            "function y = f(c)\nif c > 0\n t = 1;\nelse\n t = 2.5;\nend\ny = t;\n",
            vec![Type::scalar(Intrinsic::Real)],
        );
        let t = type_of_assign(&d, &ann, "y");
        assert_eq!(t.intrinsic, Intrinsic::Real);
        assert_eq!(t.range, Range::new(1.0, 2.5));
    }

    #[test]
    fn end_in_subscript_gets_extent_range() {
        let (d, ann) = setup(
            "function y = f(v)\ny = v(end);\n",
            vec![Type::matrix(Intrinsic::Real, 1, 8)],
        );
        let t = type_of_assign(&d, &ann, "y");
        assert!(t.is_scalar());
        assert_eq!(t.intrinsic, Intrinsic::Real);
    }

    #[test]
    fn unknown_call_defaults_to_top() {
        let (d, ann) = setup(
            "function y = f(x)\ny = helper(x);\nfunction y = helper(x)\ny = x;\n",
            vec![Type::constant(1.0)],
        );
        assert_eq!(type_of_assign(&d, &ann, "y"), Type::top());
    }

    #[test]
    fn oracle_supplies_call_types() {
        struct Fixed;
        impl CalleeOracle for Fixed {
            fn call_types(&self, _: &str, _: &[Type], n: usize) -> Option<Vec<Type>> {
                Some(vec![Type::constant(9.0); n])
            }
        }
        let file =
            parse_source("function y = f(x)\ny = helper(x);\nfunction y = helper(x)\ny = x;\n")
                .unwrap();
        let known: HashSet<String> = file.functions.iter().map(|f| f.name.clone()).collect();
        let d = disambiguate(&file.functions[0], &known);
        let ann = infer_jit(
            &d,
            &Signature::new(vec![Type::constant(1.0)]),
            InferOptions::default(),
            &Fixed,
        );
        assert_eq!(ann.outputs[0].as_constant(), Some(9.0));
    }

    #[test]
    fn range_ablation_defeats_constant_propagation() {
        let file = parse_source("function y = f(x)\ny = x + 1;\n").unwrap();
        let d = disambiguate(&file.functions[0], &HashSet::new());
        let opts = InferOptions {
            range_propagation: false,
            ..Default::default()
        };
        let ann = infer_jit(
            &d,
            &Signature::new(vec![Type::constant(3.0)]),
            opts,
            &NoOracle,
        );
        assert!(ann.outputs[0].as_constant().is_none());
        // Shape info survives.
        assert!(ann.outputs[0].is_scalar());
    }
}
