//! Differential fuzzing harness.
//!
//! Glue between the engine-agnostic program generator
//! ([`majic_testkit::fuzzgen`]) and the cross-mode oracle
//! ([`majic::diff`]): generate a program from a seed, run it through
//! every execution mode, and — when any mode disagrees with the
//! interpreter or produces a value outside its inferred type — shrink
//! the program to a minimal reproducer.
//!
//! The `fuzz_differential` binary drives [`fuzz`] from the command
//! line; the checked-in regression corpus under `tests/fuzz_regressions/`
//! is replayed by `cargo test` through [`replay_file`].

use majic::diff::{run_case, DiffCase, DiffReport, DivergenceKind};
use majic_runtime::{Matrix, Value};
use majic_testkit::fuzzgen::{self, ArgVal, Program};
use std::path::Path;

pub use majic_testkit::fuzzgen::Grammar;

/// Convert a generator argument into an engine value.
pub fn value_of(a: &ArgVal) -> Value {
    match a {
        ArgVal::Scalar(v) => Value::scalar(*v),
        ArgVal::Matrix { rows, cols, data } => {
            Value::Real(Matrix::from_vec(*rows, *cols, data.clone()))
        }
    }
}

/// Build the oracle case for a generated program.
pub fn case_of(p: &Program) -> DiffCase {
    DiffCase {
        source: p.source(),
        entry: p.entry().to_owned(),
        args: p.args.iter().map(value_of).collect(),
        nargout: 1,
    }
}

/// One divergent case, shrunk to a minimal reproducer.
#[derive(Debug)]
pub struct Failure {
    /// Seed that generated the original program.
    pub seed: u64,
    /// The minimized program.
    pub shrunk: Program,
    /// The oracle report for the minimized program.
    pub report: DiffReport,
}

impl Failure {
    /// The self-contained corpus text of the reproducer (headers plus
    /// source; drop it into `tests/fuzz_regressions/` once fixed).
    pub fn reproducer(&self) -> String {
        self.shrunk.render_corpus()
    }
}

/// Maximum oracle evaluations the shrinker may spend per failure.
/// Each evaluation runs six engine sessions, so this bounds shrink
/// time at roughly a second.
const SHRINK_EVALS: usize = 400;

/// Run one seed through generate → oracle → (on failure) shrink, using
/// the default grammar.
pub fn run_seed(seed: u64) -> (DiffReport, Option<Failure>) {
    run_seed_with(seed, Grammar::Default)
}

/// Run one seed through generate → oracle → (on failure) shrink, with
/// the chosen grammar (the aliasing mode stresses copy-on-write
/// snapshot isolation).
pub fn run_seed_with(seed: u64, grammar: Grammar) -> (DiffReport, Option<Failure>) {
    let program = fuzzgen::generate_with(seed, grammar);
    let report = run_case(&case_of(&program));
    if report.is_clean() {
        return (report, None);
    }
    // Shrink while *some* divergence of the original kinds survives —
    // this keeps the minimizer from wandering onto an unrelated bug
    // halfway through and attributing it to this seed.
    let kinds: Vec<DivergenceKind> = report.divergences.iter().map(|d| d.kind).collect();
    let shrunk = fuzzgen::shrink(
        &program,
        |q| {
            let r = run_case(&case_of(q));
            r.divergences.iter().any(|d| kinds.contains(&d.kind))
        },
        SHRINK_EVALS,
    );
    let shrunk_report = run_case(&case_of(&shrunk));
    let failure = Failure {
        seed,
        shrunk,
        report: shrunk_report,
    };
    (report, Some(failure))
}

/// Aggregate statistics of one fuzzing run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzStats {
    /// Programs executed.
    pub iters: u64,
    /// Cases where every mode returned values (all agreeing).
    pub ok_cases: u64,
    /// Cases where every mode failed with the same error class.
    pub err_cases: u64,
    /// Divergent cases (fuzzer failures).
    pub failures: u64,
}

/// Run `iters` seeds starting at `seed` with the default grammar,
/// calling `on_failure` for each divergent (already shrunk) case.
/// Returns the aggregate statistics.
pub fn fuzz(seed: u64, iters: u64, on_failure: impl FnMut(&Failure)) -> FuzzStats {
    fuzz_with(seed, iters, Grammar::Default, on_failure)
}

/// [`fuzz`] with an explicit grammar.
pub fn fuzz_with(
    seed: u64,
    iters: u64,
    grammar: Grammar,
    mut on_failure: impl FnMut(&Failure),
) -> FuzzStats {
    let mut stats = FuzzStats::default();
    for i in 0..iters {
        let (report, failure) = run_seed_with(seed.wrapping_add(i), grammar);
        stats.iters += 1;
        match failure {
            Some(f) => {
                stats.failures += 1;
                on_failure(&f);
            }
            None => {
                if report.outcomes.iter().all(|o| o.result.is_ok()) {
                    stats.ok_cases += 1;
                } else {
                    stats.err_cases += 1;
                }
            }
        }
    }
    stats
}

/// Replay one corpus file (see `tests/fuzz_regressions/`): parse its
/// `% entry:` / `% arg:` headers, run the full file as source, and
/// return the oracle report.
///
/// # Errors
///
/// Returns a message when the file cannot be read or its headers are
/// malformed.
pub fn replay_file(path: &Path) -> Result<DiffReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let header = fuzzgen::parse_corpus(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let case = DiffCase {
        source: text,
        entry: header.entry,
        args: header.args.iter().map(value_of).collect(),
        nargout: 1,
    };
    Ok(run_case(&case))
}

/// Minimal JSON string escaping (the workspace is offline; no serde).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_seeds_stay_clean() {
        // A smoke sample of the generator space: every case must agree
        // across all six engine configurations.
        for seed in 0..25 {
            let (report, failure) = run_seed(seed);
            assert!(
                failure.is_none(),
                "seed {seed} diverged:\n{}\nreproducer:\n{}",
                report
                    .divergences
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n"),
                failure.map(|f| f.reproducer()).unwrap_or_default(),
            );
        }
    }

    #[test]
    fn clean_aliasing_seeds_stay_clean() {
        // The aliasing-heavy grammar hammers copy-on-write snapshot
        // isolation; every case must still agree across all six modes.
        for seed in 0..25 {
            let (report, failure) = run_seed_with(seed, Grammar::Aliasing);
            assert!(
                failure.is_none(),
                "aliasing seed {seed} diverged:\n{}\nreproducer:\n{}",
                report
                    .divergences
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n"),
                failure.map(|f| f.reproducer()).unwrap_or_default(),
            );
        }
    }

    #[test]
    fn corpus_text_replays() {
        let p = fuzzgen::generate(3);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("majic-fuzz-selftest-{}.m", std::process::id()));
        std::fs::write(&path, p.render_corpus()).unwrap();
        let report = replay_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        // Replaying the rendered corpus must behave exactly like the
        // in-memory case.
        let direct = run_case(&case_of(&p));
        assert_eq!(report.is_clean(), direct.is_clean());
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
