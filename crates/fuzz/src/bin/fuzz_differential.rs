//! Differential fuzzer CLI.
//!
//! Runs generated MATLAB programs through every execution mode
//! (interpreter, mcc, JIT, speculative, warm cache round-trip, FALCON)
//! and reports any divergence, shrunk to a minimal reproducer.
//!
//! ```text
//! fuzz_differential [--seed N] [--iters N] [--grammar MODE] [--json] [--artifacts DIR]
//! ```
//!
//! * `--seed N`      — first seed (default 0); iteration `i` uses seed `N+i`.
//! * `--iters N`     — number of programs to run (default 1000).
//! * `--grammar M`   — `default` or `aliasing` (the CoW-stress grammar:
//!   alias binds, mutation of either alias, self-referential updates,
//!   growth after aliasing, duplicated actuals).
//! * `--json`        — machine-readable summary on stdout.
//! * `--artifacts D` — write each shrunk reproducer to `D/repro-<seed>.m`
//!   (created on first failure; CI uploads this).
//!
//! Exit status: 0 when every case agrees, 1 on any divergence, 2 on
//! usage errors.

use majic_fuzz::{fuzz_with, json_escape, Failure, Grammar};
use std::io::Write;
use std::path::PathBuf;

struct Options {
    seed: u64,
    iters: u64,
    grammar: Grammar,
    json: bool,
    artifacts: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        seed: 0,
        iters: 1000,
        grammar: Grammar::Default,
        json: false,
        artifacts: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                o.seed = v.parse().map_err(|e| format!("bad --seed {v:?}: {e}"))?;
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                o.iters = v.parse().map_err(|e| format!("bad --iters {v:?}: {e}"))?;
            }
            "--grammar" => {
                let v = it.next().ok_or("--grammar needs a value")?;
                o.grammar = match v.as_str() {
                    "default" => Grammar::Default,
                    "aliasing" => Grammar::Aliasing,
                    other => return Err(format!("unknown grammar {other:?}")),
                };
            }
            "--json" => o.json = true,
            "--artifacts" => {
                let v = it.next().ok_or("--artifacts needs a directory")?;
                o.artifacts = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: fuzz_differential [--seed N] [--iters N] [--grammar default|aliasing] [--json] [--artifacts DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(o)
}

fn save_artifact(dir: &PathBuf, f: &Failure) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("repro-{}.m", f.seed));
    if let Err(e) = std::fs::write(&path, f.reproducer()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("reproducer written to {}", path.display());
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut failures: Vec<(u64, Vec<String>, String)> = Vec::new();
    let progress_every = (opts.iters / 20).max(1);
    let stats = fuzz_with(opts.seed, opts.iters, opts.grammar, |f| {
        if !opts.json {
            eprintln!("--- divergence at seed {} ---", f.seed);
            for d in &f.report.divergences {
                eprintln!("  {d}");
            }
            eprintln!("minimal reproducer:\n{}", f.reproducer());
        }
        if let Some(dir) = &opts.artifacts {
            save_artifact(dir, f);
        }
        failures.push((
            f.seed,
            f.report
                .divergences
                .iter()
                .map(ToString::to_string)
                .collect(),
            f.reproducer(),
        ));
    });
    // Progress lines go to stderr so --json stdout stays parseable.
    if !opts.json && opts.iters >= progress_every {
        eprintln!(
            "ran {} programs: {} all-ok, {} agreeing-error, {} divergent",
            stats.iters, stats.ok_cases, stats.err_cases, stats.failures
        );
    }

    if opts.json {
        let mut out = String::new();
        out.push('{');
        out.push_str(&format!(
            "\"seed\":{},\"iters\":{},\"grammar\":\"{}\",\"ok_cases\":{},\"err_cases\":{},\"failures\":[",
            opts.seed,
            stats.iters,
            match opts.grammar {
                Grammar::Default => "default",
                Grammar::Aliasing => "aliasing",
            },
            stats.ok_cases,
            stats.err_cases
        ));
        for (i, (seed, divs, repro)) in failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"seed\":{seed},\"divergences\":["));
            for (j, d) in divs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", json_escape(d)));
            }
            out.push_str(&format!("],\"reproducer\":\"{}\"}}", json_escape(repro)));
        }
        out.push_str(&format!("],\"clean\":{}}}", failures.is_empty()));
        let mut stdout = std::io::stdout();
        let _ = writeln!(stdout, "{out}");
    } else if failures.is_empty() {
        println!(
            "clean: {} programs, {} all-ok, {} agreeing-error",
            stats.iters, stats.ok_cases, stats.err_cases
        );
    } else {
        println!(
            "{} divergent case(s) out of {}",
            failures.len(),
            stats.iters
        );
    }

    std::process::exit(i32::from(!failures.is_empty()));
}
