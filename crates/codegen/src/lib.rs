//! MaJIC code generation (paper §2.6).
//!
//! "Both code generators use the parsed AST and type annotations to drive
//! code selection. The code generators follow the same general selection
//! rules, but build radically different code."
//!
//! This crate implements the shared **code selector** (typed AST →
//! register IR) and the two pipelines built on it:
//!
//! * the **JIT pipeline** — selection, then register allocation, then
//!   flattening; "no loop optimizations or instruction scheduling are
//!   performed. Register allocation is done using the linear-scan
//!   register allocator";
//! * the **optimizing pipeline** — the same selection followed by the
//!   `majic-ir` pass set (constant folding, CSE, LICM, DCE), standing in
//!   for the platform C/Fortran compiler of the paper's speculative
//!   backend.
//!
//! Selection rules implemented (paper §2.6.1):
//!
//! * generic complex-matrix fallback for anything un-inferred,
//! * inlined scalar arithmetic/logic/math on `F`/`C` registers,
//! * inlined scalar and F90-style array indexing, with **subscript
//!   checks removed** when ranges and shapes prove them redundant,
//! * pre-allocated small temporaries and **full unrolling** of small
//!   (≤ 3×3) vector operations with exactly known shapes,
//! * `dgemv` call fusion for `a*X + b*C*Y`-shaped expressions,
//! * array **oversizing** (~10% headroom) on resizing stores,
//! * (function inlining runs earlier, as an AST pass in
//!   `majic-analysis`).

#![deny(missing_docs)]

mod select;

pub use select::{compile, CodegenError, CodegenOptions};

/// Fingerprint of this compiler build, stamped into persistent
/// repository caches (`docs/CACHE_FORMAT.md`).
///
/// Compiled code is only reusable by the exact pipeline that produced
/// it: a different crate version may select different instructions, and
/// a different serialization version lays the same instructions out
/// differently. Combining the package version with the IR and wire
/// format versions makes any such skew a whole-file cache rejection
/// (`repo.cache.reject.fingerprint`) instead of a subtle
/// misinterpretation.
pub fn build_fingerprint() -> String {
    format!(
        "majic-{}/ir{}/wire{}",
        env!("CARGO_PKG_VERSION"),
        majic_ir::serial::IR_FORMAT_VERSION,
        majic_types::wire::WIRE_VERSION,
    )
}

use majic_analysis::DisambiguatedFunction;
use majic_infer::Annotations;
use majic_ir::passes::{self, PassOptions};
use majic_vm::{allocate, Executable, RegAllocMode};

/// Compile a function all the way to executable VM code.
///
/// # Errors
///
/// Returns [`CodegenError`] when the function uses features compiled
/// code cannot honor (`global`, `clear`); the engine falls back to the
/// interpreter in that case.
pub fn compile_executable(
    d: &DisambiguatedFunction,
    ann: &Annotations,
    opts: &CodegenOptions,
) -> Result<Executable, CodegenError> {
    let sp = majic_trace::Span::enter_with("select", || vec![("fn", d.function.name.clone())]);
    let mut func = compile(d, ann, opts)?;
    sp.exit();
    {
        let _sp = majic_trace::Span::enter("passes");
        passes::optimize(&mut func, opts.passes);
    }
    let (f_spill, c_spill) = allocate(&mut func, opts.regalloc);
    majic_trace::audit::codegen_summary(|| {
        let (mut slot_movs, mut slot_takes) = (0u64, 0u64);
        for b in &func.blocks {
            for i in &b.insts {
                match i {
                    majic_ir::Inst::SlotMov { .. } => slot_movs += 1,
                    majic_ir::Inst::SlotTake { .. } => slot_takes += 1,
                    _ => {}
                }
            }
        }
        majic_trace::audit::CodegenSummary {
            instructions: func.inst_count() as u64,
            slot_movs,
            slot_takes,
            f_regs: func.f_regs,
            c_regs: func.c_regs,
            slots: func.slots,
            f_spills: f_spill,
            c_spills: c_spill,
        }
    });
    Ok(Executable::new(&func, f_spill, c_spill))
}

impl CodegenOptions {
    /// The JIT pipeline: fast selection, no IR passes, linear scan
    /// (paper §2.6: "builds code fast and in memory").
    pub fn jit() -> CodegenOptions {
        CodegenOptions {
            passes: PassOptions::none(),
            regalloc: RegAllocMode::LinearScan,
            mcc_mode: false,
            oversize: true,
            unroll_small_vectors: true,
            gemv_fusion: true,
        }
    }

    /// The optimizing pipeline used behind speculative / batch
    /// compilation: full IR pass set.
    pub fn optimizing() -> CodegenOptions {
        CodegenOptions {
            passes: PassOptions::all(),
            ..CodegenOptions::jit()
        }
    }

    /// `mcc` emulation: every operation compiles to a call into the
    /// generic polymorphic library (the bottom row of the paper's
    /// Figure 3) — interpretation overhead is gone, but nothing is
    /// specialized.
    pub fn mcc() -> CodegenOptions {
        CodegenOptions {
            mcc_mode: true,
            oversize: false,
            unroll_small_vectors: false,
            gemv_fusion: false,
            passes: PassOptions::none(),
            regalloc: RegAllocMode::LinearScan,
        }
    }
}
