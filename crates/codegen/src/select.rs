//! The code selector: typed AST → register IR.

use majic_analysis::{DisambiguatedFunction, SymbolKind, VarId};
use majic_ast::{BinOp, Expr, ExprKind, LValue, NodeId, Stmt, StmtKind, UnOp};
use majic_ir::passes::PassOptions;
use majic_ir::{
    Block, BlockId, CBinOp, CUnOp, CmpOp, FBinOp, FUnOp, Function, GenOp, Inst, LoopInfo, Operand,
    Reg, Slot, Terminator, VarBinding,
};
use majic_runtime::builtins::Builtin;
use majic_types::{Dim, Intrinsic, Lattice, Type};
use majic_vm::RegAllocMode;
use std::error::Error;
use std::fmt;

use majic_infer::Annotations;

/// Code generation knobs.
#[derive(Clone, Copy, Debug)]
pub struct CodegenOptions {
    /// Emit generic library calls for everything (the `mcc` baseline).
    pub mcc_mode: bool,
    /// Oversize arrays on resizing stores (paper §2.6.1).
    pub oversize: bool,
    /// Fully unroll small-vector operations with exact shapes.
    pub unroll_small_vectors: bool,
    /// Fuse `a*X + b*C*Y` into a dgemv call.
    pub gemv_fusion: bool,
    /// IR passes to run after selection.
    pub passes: PassOptions,
    /// Register-allocation mode.
    pub regalloc: RegAllocMode,
}

/// Why a function could not be compiled (the engine falls back to the
/// interpreter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodegenError(pub String);

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot compile: {}", self.0)
    }
}

impl Error for CodegenError {}

/// Where a variable lives in compiled code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VarLoc {
    F(Reg),
    C(Reg),
    Slot(Slot),
}

/// A compiled expression value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RVal {
    F(Reg),
    /// An `F` register holding 0/1 whose value is *logical* (the result
    /// of a comparison or logical operator). Arithmetic consumes it
    /// like any `F` register, but boxing must produce `Value::Bool` so
    /// compiled code preserves the class the interpreter observes
    /// (function results, logical indexing, `disp`).
    FB(Reg),
    C(Reg),
    Slot(Slot),
}

/// What kind of value an annotation describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    F,
    C,
    Slot,
}

fn kind_of(t: &Type) -> Kind {
    if t.is_scalar() && t.intrinsic.le(&Intrinsic::Real) && t.intrinsic != Intrinsic::Bottom {
        Kind::F
    } else if t.is_scalar()
        && t.intrinsic.le(&Intrinsic::Complex)
        && t.intrinsic != Intrinsic::Bottom
    {
        Kind::C
    } else {
        Kind::Slot
    }
}

/// Compile one disambiguated, type-annotated function to (virtual
/// register) IR.
///
/// # Errors
///
/// Fails on `global` / `clear` statements, which compiled frames cannot
/// honor; the engine interprets such functions instead.
pub fn compile(
    d: &DisambiguatedFunction,
    ann: &Annotations,
    opts: &CodegenOptions,
) -> Result<Function, CodegenError> {
    check_compilable(&d.function.body)?;
    let mut g = Gen::new(d, ann, opts);
    g.classify_vars();
    g.bind_params();
    g.block(&d.function.body);
    g.seal(Terminator::Return);
    g.bind_outputs();
    Ok(g.finish())
}

fn check_compilable(stmts: &[Stmt]) -> Result<(), CodegenError> {
    for s in stmts {
        match &s.kind {
            StmtKind::Global(_) => {
                return Err(CodegenError("global variables".to_owned()));
            }
            StmtKind::Clear(_) => {
                return Err(CodegenError("clear statements".to_owned()));
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (_, b) in branches {
                    check_compilable(b)?;
                }
                if let Some(b) = else_body {
                    check_compilable(b)?;
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                check_compilable(body)?;
            }
            _ => {}
        }
    }
    Ok(())
}

struct Gen<'a> {
    d: &'a DisambiguatedFunction,
    ann: &'a Annotations,
    opts: &'a CodegenOptions,
    func: Function,
    cur: BlockId,
    var_locs: Vec<VarLoc>,
    /// Slots below this index belong to variables; everything allocated
    /// afterwards is a single-use expression temporary (see
    /// [`Gen::is_temp_slot`]).
    var_slot_end: u32,
    /// Temporaries pre-allocated once in the entry block and refilled on
    /// every execution (small matrix literals, unrolled elementwise
    /// results). These outlive a single consumption and must never be
    /// moved out of.
    persistent_slots: Vec<Slot>,
    /// (continue target, break target) of enclosing loops.
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl<'a> Gen<'a> {
    fn new(d: &'a DisambiguatedFunction, ann: &'a Annotations, opts: &'a CodegenOptions) -> Self {
        let mut func = Function {
            name: d.function.name.clone(),
            ..Function::default()
        };
        func.blocks.push(Block::default());
        Gen {
            d,
            ann,
            opts,
            func,
            cur: BlockId(0),
            var_locs: Vec::new(),
            var_slot_end: 0,
            persistent_slots: Vec::new(),
            loop_stack: Vec::new(),
        }
    }

    // ---- infrastructure ----

    fn fresh_f(&mut self) -> Reg {
        let r = Reg(self.func.f_regs);
        self.func.f_regs += 1;
        r
    }

    fn fresh_c(&mut self) -> Reg {
        let r = Reg(self.func.c_regs);
        self.func.c_regs += 1;
        r
    }

    fn fresh_slot(&mut self) -> Slot {
        let s = Slot(self.func.slots);
        self.func.slots += 1;
        s
    }

    fn emit(&mut self, i: Inst) {
        self.func.blocks[self.cur.index()].insts.push(i);
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::default());
        id
    }

    fn seal(&mut self, t: Terminator) {
        self.func.blocks[self.cur.index()].term = t;
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn fconst(&mut self, v: f64) -> Reg {
        let d = self.fresh_f();
        self.emit(Inst::FConst { d, v });
        d
    }

    // ---- variable classification ----

    fn classify_vars(&mut self) {
        let n = self.d.table.var_count();
        let mut forced_slot = vec![self.opts.mcc_mode; n];
        let mut types: Vec<Vec<Type>> = vec![Vec::new(); n];

        // Parameter types from the signature the annotations ran with.
        for (k, p) in self.d.function.params.iter().enumerate() {
            if let Some(v) = self.d.table.var_id(p) {
                if let Some(t) = self.ann.params.get(k) {
                    types[v.index()].push(*t);
                }
            }
        }
        // Assignment sites and forced-slot positions.
        collect_var_evidence(
            &self.d.function.body,
            self.d,
            self.ann,
            &mut types,
            &mut forced_slot,
        );

        self.var_locs = (0..n)
            .map(|i| {
                if forced_slot[i] || types[i].is_empty() {
                    return VarLoc::Slot(Slot(u32::MAX)); // placeholder
                }
                // A variable that may hold a logical scalar lives in a
                // slot: an unboxed `F` register cannot carry the class
                // bit, and the class is observable (logical indexing,
                // function results, display).
                let maybe_bool = types[i].iter().any(|t| t.intrinsic == Intrinsic::Bool);
                let all_f = !maybe_bool && types[i].iter().all(|t| kind_of(t) == Kind::F);
                let all_scalar = !maybe_bool
                    && types[i]
                        .iter()
                        .all(|t| matches!(kind_of(t), Kind::F | Kind::C));
                if all_f {
                    VarLoc::F(Reg(u32::MAX))
                } else if all_scalar {
                    VarLoc::C(Reg(u32::MAX))
                } else {
                    VarLoc::Slot(Slot(u32::MAX))
                }
            })
            .collect();
        // Materialize the placeholders.
        for i in 0..n {
            self.var_locs[i] = match self.var_locs[i] {
                VarLoc::F(_) => VarLoc::F(self.fresh_f()),
                VarLoc::C(_) => VarLoc::C(self.fresh_c()),
                VarLoc::Slot(_) => VarLoc::Slot(self.fresh_slot()),
            };
        }
        // Every slot allocated from here on is an expression temporary.
        self.var_slot_end = self.func.slots;
    }

    /// Whether `s` is a single-use expression temporary (as opposed to a
    /// variable's home slot). Temporaries are produced immediately
    /// before their one consumer, so a consumer that stores one into a
    /// variable may *move* it — leaving a clone behind would keep a
    /// second owner of the buffer alive and force the variable's next
    /// element store to deep-copy under copy-on-write.
    fn is_temp_slot(&self, s: Slot) -> bool {
        s.0 >= self.var_slot_end && !self.persistent_slots.contains(&s)
    }

    fn var_loc(&self, v: VarId) -> VarLoc {
        self.var_locs[v.index()]
    }

    fn bind_params(&mut self) {
        let params: Vec<VarBinding> = self
            .d
            .function
            .params
            .iter()
            .map(|p| {
                let v = self.d.table.var_id(p).expect("params interned");
                match self.var_loc(v) {
                    VarLoc::F(r) => VarBinding::F(r),
                    VarLoc::C(r) => VarBinding::C(r),
                    VarLoc::Slot(s) => VarBinding::Slot(s),
                }
            })
            .collect();
        self.func.params = params;
    }

    fn bind_outputs(&mut self) {
        let outputs: Vec<VarBinding> = self
            .d
            .function
            .outputs
            .iter()
            .map(|o| {
                let v = self.d.table.var_id(o).expect("outputs interned");
                match self.var_loc(v) {
                    VarLoc::F(r) => VarBinding::F(r),
                    VarLoc::C(r) => VarBinding::C(r),
                    VarLoc::Slot(s) => VarBinding::Slot(s),
                }
            })
            .collect();
        self.func.outputs = outputs;
    }

    fn finish(self) -> Function {
        self.func
    }

    // ---- coercions ----

    // `to_*` here converts the *argument* into the named storage class
    // (emitting moves), not `self`; the convention lint does not apply.
    #[allow(clippy::wrong_self_convention)]
    fn to_f(&mut self, v: RVal) -> Reg {
        match v {
            // A logical 0/1 *is* its double value (`true + 1 == 2`).
            RVal::F(r) | RVal::FB(r) => r,
            RVal::C(c) => {
                let d = self.fresh_f();
                self.emit(Inst::CPart {
                    d,
                    s: c,
                    imag: false,
                });
                d
            }
            RVal::Slot(s) => {
                let d = self.fresh_f();
                self.emit(Inst::SlotToF { d, slot: s });
                d
            }
        }
    }

    #[allow(clippy::wrong_self_convention)]
    fn to_c(&mut self, v: RVal) -> Reg {
        match v {
            RVal::C(r) => r,
            RVal::F(r) | RVal::FB(r) => {
                let zero = self.fconst(0.0);
                let d = self.fresh_c();
                self.emit(Inst::CMake { d, re: r, im: zero });
                d
            }
            RVal::Slot(s) => {
                let d = self.fresh_c();
                self.emit(Inst::SlotToC { d, slot: s });
                d
            }
        }
    }

    #[allow(clippy::wrong_self_convention)]
    fn to_slot(&mut self, v: RVal) -> Slot {
        match v {
            RVal::Slot(s) => s,
            RVal::F(r) => {
                let slot = self.fresh_slot();
                self.emit(Inst::FToSlot { slot, s: r });
                slot
            }
            RVal::FB(r) => {
                let slot = self.fresh_slot();
                self.emit(Inst::FToSlotBool { slot, s: r });
                slot
            }
            RVal::C(r) => {
                let slot = self.fresh_slot();
                self.emit(Inst::CToSlot { slot, s: r });
                slot
            }
        }
    }

    #[allow(clippy::wrong_self_convention)]
    fn to_operand(&mut self, v: RVal) -> Operand {
        match v {
            RVal::F(r) => Operand::F(r),
            // `Operand::F` materializes as a real scalar in the VM, so
            // logical values must cross generic boundaries boxed — the
            // class is observable to callees, indexing, and display.
            RVal::FB(_) => Operand::Slot(self.to_slot(v)),
            RVal::C(r) => Operand::C(r),
            RVal::Slot(s) => Operand::Slot(s),
        }
    }

    /// Truthiness of a value into an `F` register (0/1).
    fn truth(&mut self, v: RVal, t: &Type) -> Reg {
        match v {
            // Logical values are already 0/1 — use them directly.
            RVal::FB(r) => r,
            RVal::F(r) => {
                // Scalars are true iff nonzero; comparisons already
                // produce 0/1, so `r != 0` is the general form.
                if t.range == majic_types::Range::new(0.0, 1.0) {
                    r
                } else {
                    let zero = self.fconst(0.0);
                    let d = self.fresh_f();
                    self.emit(Inst::FCmp {
                        op: CmpOp::Ne,
                        d,
                        a: r,
                        b: zero,
                    });
                    d
                }
            }
            RVal::C(c) => {
                let a = self.fresh_f();
                self.emit(Inst::CAbs { d: a, s: c });
                let zero = self.fconst(0.0);
                let d = self.fresh_f();
                self.emit(Inst::FCmp {
                    op: CmpOp::Ne,
                    d,
                    a,
                    b: zero,
                });
                d
            }
            RVal::Slot(s) => {
                let d = self.fresh_f();
                self.emit(Inst::TruthF { d, slot: s });
                d
            }
        }
    }

    // ---- statements ----

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr { expr, suppressed } => {
                // A call in statement position may legitimately produce
                // no value (e.g. `disp(x)`).
                if let Some(v) = self.expr_stmt_value(expr) {
                    if !*suppressed {
                        let op = self.to_operand(v);
                        self.emit(Inst::Gen {
                            op: GenOp::Display("ans".to_owned()),
                            dsts: vec![],
                            args: vec![op],
                        });
                    }
                }
            }
            StmtKind::Assign {
                lhs,
                rhs,
                suppressed,
            } => {
                if !self.try_assign_unrolled(lhs, rhs) {
                    let v = self.expr(rhs, None);
                    self.assign(lhs, v);
                }
                if !*suppressed {
                    self.display(lhs.name());
                }
            }
            StmtKind::MultiAssign {
                lhs,
                id,
                callee,
                args,
                suppressed,
            } => {
                let argv: Vec<Operand> = args
                    .iter()
                    .map(|a| {
                        let v = self.expr(a, None);
                        self.to_operand(v)
                    })
                    .collect();
                let dsts: Vec<Slot> = (0..lhs.len()).map(|_| self.fresh_slot()).collect();
                let op = match self.d.table.kind(*id) {
                    SymbolKind::Builtin(b) => GenOp::CallBuiltin(b),
                    _ => GenOp::CallUser(callee.clone()),
                };
                self.emit(Inst::Gen {
                    op,
                    dsts: dsts.clone(),
                    args: argv,
                });
                for (lv, tmp) in lhs.iter().zip(dsts) {
                    self.assign(lv, RVal::Slot(tmp));
                    if !*suppressed {
                        self.display(lv.name());
                    }
                }
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                // The merge block must be created *after* every arm so
                // that block ids (the linear-scan position order) follow
                // execution order: a live interval ending at a use in the
                // merge must cover the arm blocks that execute first.
                // Arm-end jumps are therefore deferred until the merge id
                // is known.
                let mut exits = Vec::with_capacity(branches.len() + 1);
                let mut next_test = self.cur;
                for (cond, body) in branches {
                    self.switch_to(next_test);
                    let ct = self.ann.ty(cond.id);
                    let cv = self.expr(cond, None);
                    let c = self.truth(cv, &ct);
                    let then_bb = self.new_block();
                    next_test = self.new_block();
                    self.seal(Terminator::Branch {
                        cond: c,
                        then_bb,
                        else_bb: next_test,
                    });
                    self.switch_to(then_bb);
                    self.block(body);
                    exits.push(self.cur);
                }
                self.switch_to(next_test);
                if let Some(body) = else_body {
                    self.block(body);
                }
                exits.push(self.cur);
                let merge = self.new_block();
                for b in exits {
                    self.switch_to(b);
                    self.seal(Terminator::Jump(merge));
                }
                self.switch_to(merge);
            }
            StmtKind::While { cond, body } => {
                let preheader = self.new_block();
                self.seal(Terminator::Jump(preheader));
                let header = self.new_block();
                self.switch_to(preheader);
                self.seal(Terminator::Jump(header));
                let exit = self.new_block();
                let loop_body_start = self.func.blocks.len() as u32;
                self.switch_to(header);
                let ct = self.ann.ty(cond.id);
                let cv = self.expr(cond, None);
                let c = self.truth(cv, &ct);
                let body_bb = self.new_block();
                self.seal(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.switch_to(body_bb);
                self.loop_stack.push((header, exit));
                self.block(body);
                self.loop_stack.pop();
                self.seal(Terminator::Jump(header));
                let loop_body_end = self.func.blocks.len() as u32;
                let mut blocks: Vec<BlockId> = vec![header];
                blocks.extend((loop_body_start..loop_body_end).map(BlockId));
                self.func.loops.push(LoopInfo {
                    preheader,
                    header,
                    blocks,
                });
                self.switch_to(exit);
            }
            StmtKind::For {
                var,
                var_id,
                iter,
                body,
            } => self.for_stmt(var, *var_id, iter, body),
            StmtKind::Break => {
                if let Some(&(_, exit)) = self.loop_stack.last() {
                    self.seal(Terminator::Jump(exit));
                } else {
                    self.seal(Terminator::Return);
                }
                let dead = self.new_block();
                self.switch_to(dead);
            }
            StmtKind::Continue => {
                if let Some(&(latch, _)) = self.loop_stack.last() {
                    self.seal(Terminator::Jump(latch));
                } else {
                    self.seal(Terminator::Return);
                }
                let dead = self.new_block();
                self.switch_to(dead);
            }
            StmtKind::Return => {
                self.seal(Terminator::Return);
                let dead = self.new_block();
                self.switch_to(dead);
            }
            StmtKind::Global(_) | StmtKind::Clear(_) => {
                unreachable!("rejected by check_compilable")
            }
        }
    }

    fn display(&mut self, name: &str) {
        if let Some(v) = self.d.table.var_id(name) {
            let op = match self.var_loc(v) {
                VarLoc::F(r) => Operand::F(r),
                VarLoc::C(r) => Operand::C(r),
                VarLoc::Slot(s) => Operand::Slot(s),
            };
            self.emit(Inst::Gen {
                op: GenOp::Display(name.to_owned()),
                dsts: vec![],
                args: vec![op],
            });
        }
    }

    fn assign(&mut self, lhs: &LValue, v: RVal) {
        match lhs {
            LValue::Var { name, .. } => {
                let var = self.d.table.var_id(name).expect("interned");
                match self.var_loc(var) {
                    VarLoc::F(r) => {
                        let s = self.to_f(v);
                        self.emit(Inst::FMov { d: r, s });
                    }
                    VarLoc::C(r) => {
                        let s = self.to_c(v);
                        self.emit(Inst::CMov { d: r, s });
                    }
                    VarLoc::Slot(slot) => match v {
                        RVal::F(s) => self.emit(Inst::FToSlot { slot, s }),
                        RVal::FB(s) => self.emit(Inst::FToSlotBool { slot, s }),
                        RVal::C(s) => self.emit(Inst::CToSlot { slot, s }),
                        RVal::Slot(s) => {
                            if s != slot {
                                // `x = y` between variables shares the
                                // buffer (CoW clone); a temporary is
                                // dead after this and is moved instead.
                                if self.is_temp_slot(s) {
                                    self.emit(Inst::SlotTake { d: slot, s });
                                } else {
                                    self.emit(Inst::SlotMov { d: slot, s });
                                }
                            }
                        }
                    },
                }
            }
            LValue::Index { name, args, id, .. } => {
                let var = self.d.table.var_id(name).expect("interned");
                let VarLoc::Slot(arr) = self.var_loc(var) else {
                    // A scalar-classified variable can never be the target
                    // of an indexed store (classification forces Slot),
                    // but stay safe.
                    let tmp = self.fresh_slot();
                    let rhs = self.to_operand(v);
                    self.emit(Inst::Gen {
                        op: GenOp::IndexSet {
                            oversize: self.opts.oversize,
                        },
                        dsts: vec![],
                        args: vec![Operand::Slot(tmp), rhs],
                    });
                    return;
                };
                let base_t = self.ann.base_ty(*id);
                // Fast path: scalar real store with scalar subscripts.
                let all_scalar_subs = !self.opts.mcc_mode
                    && args.len() <= 2
                    && args.iter().all(|a| {
                        !matches!(a.kind, ExprKind::Colon)
                            && self.ann.ty(a.id).is_scalar()
                            && self.ann.ty(a.id).intrinsic.le(&Intrinsic::Real)
                    });
                // A logical RHS takes the generic store path: storing a
                // logical into a logical array keeps the array logical,
                // which the real-scalar fast path cannot express.
                let v_kind_f = matches!(v, RVal::F(_));
                if all_scalar_subs && v_kind_f && base_t.intrinsic.le(&Intrinsic::Real) {
                    let idx: Vec<Reg> = args
                        .iter()
                        .enumerate()
                        .map(|(k, a)| {
                            let ev = self.expr(a, Some((arr, end_dim(k, args.len()))));
                            self.to_f(ev)
                        })
                        .collect();
                    let checked = !store_provable(&base_t, args, self.ann);
                    let val = self.to_f(v);
                    self.emit(Inst::AStoreF {
                        arr,
                        i: idx[0],
                        j: idx.get(1).copied(),
                        v: val,
                        checked,
                        oversize: self.opts.oversize,
                    });
                    return;
                }
                // Complex scalar store.
                if all_scalar_subs
                    && matches!(v, RVal::C(_))
                    && base_t.intrinsic.le(&Intrinsic::Complex)
                {
                    let idx: Vec<Reg> = args
                        .iter()
                        .enumerate()
                        .map(|(k, a)| {
                            let ev = self.expr(a, Some((arr, end_dim(k, args.len()))));
                            self.to_f(ev)
                        })
                        .collect();
                    let val = self.to_c(v);
                    self.emit(Inst::AStoreC {
                        arr,
                        i: idx[0],
                        j: idx.get(1).copied(),
                        v: val,
                        checked: true,
                        oversize: self.opts.oversize,
                    });
                    return;
                }
                // Generic indexed store.
                let mut gen_args = vec![Operand::Slot(arr)];
                for (k, a) in args.iter().enumerate() {
                    if matches!(a.kind, ExprKind::Colon) {
                        gen_args.push(Operand::Colon);
                    } else {
                        let ev = self.expr(a, Some((arr, end_dim(k, args.len()))));
                        gen_args.push(self.to_operand(ev));
                    }
                }
                let rhs = self.to_operand(v);
                gen_args.push(rhs);
                self.emit(Inst::Gen {
                    op: GenOp::IndexSet {
                        oversize: self.opts.oversize,
                    },
                    dsts: vec![],
                    args: gen_args,
                });
            }
        }
    }

    /// `v = <small elementwise expr>` straight into `v`'s own buffer —
    /// the paper's pre-allocated temporaries, statement-level form. Safe
    /// because elementwise outputs depend only on same-index inputs.
    fn try_assign_unrolled(&mut self, lhs: &LValue, rhs: &Expr) -> bool {
        if self.opts.mcc_mode || !self.opts.unroll_small_vectors {
            return false;
        }
        let LValue::Var { name, .. } = lhs else {
            return false;
        };
        let Some(var) = self.d.table.var_id(name) else {
            return false;
        };
        let VarLoc::Slot(slot) = self.var_loc(var) else {
            return false;
        };
        let ExprKind::Binary { op, lhs: a, rhs: b } = &rhs.kind else {
            return false;
        };
        let t = self.ann.ty(rhs.id);
        let (lt, rt) = (self.ann.ty(a.id), self.ann.ty(b.id));
        let scalar_side = lt.is_scalar() || rt.is_scalar();
        if !(op.is_elementwise() || scalar_side) {
            return false;
        }
        self.try_unrolled_elementwise(*op, a, b, &t, Some(slot))
            .is_some()
    }

    /// Direct-form counted loop: the loop variable is the counter.
    fn direct_counted_loop(
        &mut self,
        kreg: Reg,
        step_v: f64,
        start: &Expr,
        stop: &Expr,
        body: &[Stmt],
    ) {
        let a0 = self.expr(start, None);
        let a = self.to_f(a0);
        let b0 = self.expr(stop, None);
        let b = self.to_f(b0);
        // Keep the bound in a dedicated register so the header's compare
        // survives whatever the body does.
        let bound = self.fresh_f();
        self.emit(Inst::FMov { d: bound, s: b });
        let step = self.fconst(step_v);
        self.emit(Inst::FMov { d: kreg, s: a });

        let preheader = self.new_block();
        self.seal(Terminator::Jump(preheader));
        let header = self.new_block();
        self.switch_to(preheader);
        self.seal(Terminator::Jump(header));
        let exit = self.new_block();
        let latch = self.new_block();
        let body_start = self.func.blocks.len() as u32;

        self.switch_to(header);
        let c = self.fresh_f();
        self.emit(Inst::FCmp {
            op: if step_v > 0.0 { CmpOp::Le } else { CmpOp::Ge },
            d: c,
            a: kreg,
            b: bound,
        });
        let body_bb = self.new_block();
        self.seal(Terminator::Branch {
            cond: c,
            then_bb: body_bb,
            else_bb: exit,
        });
        self.switch_to(body_bb);
        self.loop_stack.push((latch, exit));
        self.block(body);
        self.loop_stack.pop();
        self.seal(Terminator::Jump(latch));
        self.switch_to(latch);
        self.emit(Inst::FBin {
            op: FBinOp::Add,
            d: kreg,
            a: kreg,
            b: step,
        });
        self.seal(Terminator::Jump(header));
        let body_end = self.func.blocks.len() as u32;
        let mut blocks = vec![header, latch];
        blocks.extend((body_start..body_end).map(BlockId));
        self.func.loops.push(LoopInfo {
            preheader,
            header,
            blocks,
        });
        self.switch_to(exit);
    }

    fn for_stmt(&mut self, var: &str, var_id: NodeId, iter: &Expr, body: &[Stmt]) {
        let var_vid = self.d.table.var_id(var).expect("interned");
        let elem_t = self.ann.ty(var_id);

        // Counted-loop fast path: `for k = a:s:b` with scalar bounds and a
        // register-class loop variable.
        if let ExprKind::Range { start, step, stop } = &iter.kind {
            let bounds_scalar = self.ann.ty(start.id).is_scalar()
                && self.ann.ty(stop.id).is_scalar()
                && step.as_ref().is_none_or(|s| self.ann.ty(s.id).is_scalar());
            if bounds_scalar && !self.opts.mcc_mode {
                // Direct-form loop: when the step is a known integer
                // constant and the body never writes the loop variable,
                // the variable itself is the counter (`k = a; …; k += s`)
                // — an exact iteration (integer increments don't drift)
                // with three fewer instructions per trip.
                let static_step: Option<f64> = match step {
                    None => Some(1.0),
                    Some(st) => match st.kind {
                        ExprKind::Number {
                            value,
                            imaginary: false,
                        } if value.fract() == 0.0 && value != 0.0 => Some(value),
                        ExprKind::Unary {
                            op: UnOp::Neg,
                            ref operand,
                        } => match operand.kind {
                            ExprKind::Number {
                                value,
                                imaginary: false,
                            } if value.fract() == 0.0 && value != 0.0 => Some(-value),
                            _ => None,
                        },
                        _ => None,
                    },
                };
                if let (Some(step_v), VarLoc::F(kreg)) = (static_step, self.var_loc(var_vid)) {
                    if !assigns_var(body, var) {
                        self.direct_counted_loop(kreg, step_v, start, stop, body);
                        return;
                    }
                }
                let a0 = self.expr(start, None);
                let a = self.to_f(a0);
                let s = match step {
                    Some(st) => {
                        let sv = self.expr(st, None);
                        self.to_f(sv)
                    }
                    None => self.fconst(1.0),
                };
                let b0 = self.expr(stop, None);
                let b = self.to_f(b0);
                // n = floor((b - a)/s + 1e-10) + 1 (clamped below by the
                // loop condition).
                let diff = self.fresh_f();
                self.emit(Inst::FBin {
                    op: FBinOp::Sub,
                    d: diff,
                    a: b,
                    b: a,
                });
                let quot = self.fresh_f();
                self.emit(Inst::FBin {
                    op: FBinOp::Div,
                    d: quot,
                    a: diff,
                    b: s,
                });
                let epsr = self.fconst(1e-10);
                let quot2 = self.fresh_f();
                self.emit(Inst::FBin {
                    op: FBinOp::Add,
                    d: quot2,
                    a: quot,
                    b: epsr,
                });
                let fl = self.fresh_f();
                self.emit(Inst::FUn {
                    op: FUnOp::Floor,
                    d: fl,
                    s: quot2,
                });
                let one = self.fconst(1.0);
                let n = self.fresh_f();
                self.emit(Inst::FBin {
                    op: FBinOp::Add,
                    d: n,
                    a: fl,
                    b: one,
                });
                let i = self.fresh_f();
                let zero = self.fconst(0.0);
                self.emit(Inst::FMov { d: i, s: zero });

                let preheader = self.new_block();
                self.seal(Terminator::Jump(preheader));
                let header = self.new_block();
                self.switch_to(preheader);
                self.seal(Terminator::Jump(header));
                let exit = self.new_block();
                let latch = self.new_block();
                let body_start = self.func.blocks.len() as u32;

                self.switch_to(header);
                let c = self.fresh_f();
                self.emit(Inst::FCmp {
                    op: CmpOp::Lt,
                    d: c,
                    a: i,
                    b: n,
                });
                let body_bb = self.new_block();
                self.seal(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.switch_to(body_bb);
                // k = a + i*s
                let scaled = self.fresh_f();
                self.emit(Inst::FBin {
                    op: FBinOp::Mul,
                    d: scaled,
                    a: i,
                    b: s,
                });
                let k = self.fresh_f();
                self.emit(Inst::FBin {
                    op: FBinOp::Add,
                    d: k,
                    a,
                    b: scaled,
                });
                match self.var_loc(var_vid) {
                    VarLoc::F(r) => self.emit(Inst::FMov { d: r, s: k }),
                    VarLoc::C(r) => {
                        let zero = self.fconst(0.0);
                        self.emit(Inst::CMake {
                            d: r,
                            re: k,
                            im: zero,
                        });
                    }
                    VarLoc::Slot(slot) => self.emit(Inst::FToSlot { slot, s: k }),
                }
                self.loop_stack.push((latch, exit));
                self.block(body);
                self.loop_stack.pop();
                self.seal(Terminator::Jump(latch));
                self.switch_to(latch);
                let one2 = self.fconst(1.0);
                self.emit(Inst::FBin {
                    op: FBinOp::Add,
                    d: i,
                    a: i,
                    b: one2,
                });
                self.seal(Terminator::Jump(header));
                let body_end = self.func.blocks.len() as u32;
                let mut blocks = vec![header, latch];
                blocks.extend((body_start..body_end).map(BlockId));
                self.func.loops.push(LoopInfo {
                    preheader,
                    header,
                    blocks,
                });
                self.switch_to(exit);
                return;
            }
        }

        // Generic path: iterate over the columns of the evaluated space.
        let space_v = self.expr(iter, None);
        let space = self.to_slot(space_v);
        let ncols = self.fresh_f();
        self.emit(Inst::ExtentF {
            d: ncols,
            arr: space,
            dim: 2,
        });
        let nrows = self.fresh_f();
        self.emit(Inst::ExtentF {
            d: nrows,
            arr: space,
            dim: 1,
        });
        let i = self.fconst(1.0);

        let preheader = self.new_block();
        self.seal(Terminator::Jump(preheader));
        let header = self.new_block();
        self.switch_to(preheader);
        self.seal(Terminator::Jump(header));
        let exit = self.new_block();
        let latch = self.new_block();
        let body_start = self.func.blocks.len() as u32;

        self.switch_to(header);
        let c = self.fresh_f();
        self.emit(Inst::FCmp {
            op: CmpOp::Le,
            d: c,
            a: i,
            b: ncols,
        });
        let body_bb = self.new_block();
        self.seal(Terminator::Branch {
            cond: c,
            then_bb: body_bb,
            else_bb: exit,
        });
        self.switch_to(body_bb);
        // Element: row vectors bind scalars; matrices bind columns.
        if kind_of(&elem_t) == Kind::F {
            let d = self.fresh_f();
            self.emit(Inst::ALoadF {
                d,
                arr: space,
                i,
                j: None,
                checked: true,
            });
            match self.var_loc(var_vid) {
                VarLoc::F(r) => self.emit(Inst::FMov { d: r, s: d }),
                VarLoc::C(r) => {
                    let zero = self.fconst(0.0);
                    self.emit(Inst::CMake {
                        d: r,
                        re: d,
                        im: zero,
                    });
                }
                VarLoc::Slot(slot) => self.emit(Inst::FToSlot { slot, s: d }),
            }
        } else {
            let dst = match self.var_loc(var_vid) {
                VarLoc::Slot(s) => s,
                _ => self.fresh_slot(),
            };
            self.emit(Inst::Gen {
                op: GenOp::IndexGet,
                dsts: vec![dst],
                args: vec![Operand::Slot(space), Operand::Colon, Operand::F(i)],
            });
            match self.var_loc(var_vid) {
                VarLoc::Slot(_) => {}
                VarLoc::F(r) => self.emit(Inst::SlotToF { d: r, slot: dst }),
                VarLoc::C(r) => self.emit(Inst::SlotToC { d: r, slot: dst }),
            }
        }
        self.loop_stack.push((latch, exit));
        self.block(body);
        self.loop_stack.pop();
        self.seal(Terminator::Jump(latch));
        self.switch_to(latch);
        let one = self.fconst(1.0);
        self.emit(Inst::FBin {
            op: FBinOp::Add,
            d: i,
            a: i,
            b: one,
        });
        self.seal(Terminator::Jump(header));
        let body_end = self.func.blocks.len() as u32;
        let mut blocks = vec![header, latch];
        blocks.extend((body_start..body_end).map(BlockId));
        self.func.loops.push(LoopInfo {
            preheader,
            header,
            blocks,
        });
        self.switch_to(exit);
    }

    // ---- expressions ----

    /// Statement-position expression: may produce no value (zero-output
    /// call).
    fn expr_stmt_value(&mut self, e: &Expr) -> Option<RVal> {
        if let ExprKind::Apply { callee, args } = &e.kind {
            let kind = self.d.table.kind(e.id);
            if matches!(
                kind,
                SymbolKind::Builtin(_) | SymbolKind::UserFunction | SymbolKind::Unknown
            ) {
                let argv: Vec<Operand> = args
                    .iter()
                    .map(|a| {
                        let v = self.expr(a, None);
                        self.to_operand(v)
                    })
                    .collect();
                let op = match kind {
                    SymbolKind::Builtin(b) => GenOp::CallBuiltin(b),
                    _ => GenOp::CallUser(callee.clone()),
                };
                // Builtins like disp/fprintf/error yield nothing.
                let void = matches!(
                    kind,
                    SymbolKind::Builtin(Builtin::Disp | Builtin::Fprintf | Builtin::Error)
                );
                let dsts = if void {
                    vec![]
                } else {
                    vec![self.fresh_slot()]
                };
                self.emit(Inst::Gen {
                    op,
                    dsts: dsts.clone(),
                    args: argv,
                });
                return dsts.first().map(|s| RVal::Slot(*s));
            }
        }
        Some(self.expr(e, None))
    }

    /// Generate code for an expression. `end_ctx` carries the array and
    /// dimension `end` refers to inside subscripts.
    fn expr(&mut self, e: &Expr, end_ctx: Option<(Slot, u8)>) -> RVal {
        let t = self.ann.ty(e.id);
        match &e.kind {
            ExprKind::Number { value, imaginary } => {
                if *imaginary {
                    let d = self.fresh_c();
                    self.emit(Inst::CConst {
                        d,
                        re: 0.0,
                        im: *value,
                    });
                    RVal::C(d)
                } else if self.opts.mcc_mode {
                    let r = self.fconst(*value);
                    RVal::Slot(self.to_slot(RVal::F(r)))
                } else {
                    RVal::F(self.fconst(*value))
                }
            }
            ExprKind::Str(s) => {
                let slot = self.fresh_slot();
                // Unary `+` is the identity: a cheap way to box a literal.
                self.emit(Inst::Gen {
                    op: GenOp::Unary("+"),
                    dsts: vec![slot],
                    args: vec![Operand::Str(s.clone())],
                });
                RVal::Slot(slot)
            }
            ExprKind::Ident(name) => self.ident(e.id, name),
            ExprKind::Apply { callee, args } => self.apply(e.id, callee, args, &t),
            ExprKind::Range { start, step, stop } => {
                let mut gen_args = Vec::new();
                let sv = self.expr(start, end_ctx);
                gen_args.push(self.to_operand(sv));
                if let Some(st) = step {
                    let stv = self.expr(st, end_ctx);
                    gen_args.push(self.to_operand(stv));
                }
                let ev = self.expr(stop, end_ctx);
                gen_args.push(self.to_operand(ev));
                let dst = self.fresh_slot();
                self.emit(Inst::Gen {
                    op: GenOp::Range,
                    dsts: vec![dst],
                    args: gen_args,
                });
                RVal::Slot(dst)
            }
            ExprKind::Colon => {
                // Only reachable through malformed input; boxes a marker
                // error at runtime.
                let slot = self.fresh_slot();
                self.emit(Inst::ErrUndefined(":".to_owned()));
                RVal::Slot(slot)
            }
            ExprKind::End => match end_ctx {
                Some((arr, dim)) => {
                    let d = self.fresh_f();
                    self.emit(Inst::ExtentF { d, arr, dim });
                    RVal::F(d)
                }
                None => {
                    self.emit(Inst::ErrUndefined("end".to_owned()));
                    RVal::F(self.fconst(0.0))
                }
            },
            ExprKind::Unary { op, operand } => {
                let ov = self.expr(operand, end_ctx);
                let ot = self.ann.ty(operand.id);
                match (op, kind_of(&t), ov) {
                    (UnOp::Plus, _, v) => v,
                    (UnOp::Neg, Kind::F, v) if kind_of(&ot) == Kind::F => {
                        let s = self.to_f(v);
                        let d = self.fresh_f();
                        self.emit(Inst::FUn {
                            op: FUnOp::Neg,
                            d,
                            s,
                        });
                        RVal::F(d)
                    }
                    (UnOp::Neg, Kind::C, v) if kind_of(&ot) != Kind::Slot => {
                        let s = self.to_c(v);
                        let d = self.fresh_c();
                        self.emit(Inst::CUn {
                            op: CUnOp::Neg,
                            d,
                            s,
                        });
                        RVal::C(d)
                    }
                    (UnOp::Not, Kind::F, v) if kind_of(&ot) == Kind::F => {
                        let s = self.to_f(v);
                        let d = self.fresh_f();
                        self.emit(Inst::FUn {
                            op: FUnOp::Not,
                            d,
                            s,
                        });
                        RVal::FB(d)
                    }
                    (op, _, v) => {
                        let a = self.to_operand(v);
                        let dst = self.fresh_slot();
                        self.emit(Inst::Gen {
                            op: GenOp::Unary(match op {
                                UnOp::Neg => "-",
                                UnOp::Not => "~",
                                UnOp::Plus => "+",
                            }),
                            dsts: vec![dst],
                            args: vec![a],
                        });
                        RVal::Slot(dst)
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, &t, end_ctx),
            ExprKind::Matrix(rows) => self.matrix_literal(rows, &t),
            ExprKind::Transpose { operand, conjugate } => {
                let ot = self.ann.ty(operand.id);
                let ov = self.expr(operand, end_ctx);
                match kind_of(&ot) {
                    Kind::F => ov, // transposing a real scalar is a no-op
                    Kind::C => {
                        if *conjugate {
                            let s = self.to_c(ov);
                            let d = self.fresh_c();
                            self.emit(Inst::CUn {
                                op: CUnOp::Conj,
                                d,
                                s,
                            });
                            RVal::C(d)
                        } else {
                            ov
                        }
                    }
                    Kind::Slot => {
                        let a = self.to_operand(ov);
                        let dst = self.fresh_slot();
                        self.emit(Inst::Gen {
                            op: GenOp::Transpose(*conjugate),
                            dsts: vec![dst],
                            args: vec![a],
                        });
                        RVal::Slot(dst)
                    }
                }
            }
        }
    }

    fn ident(&mut self, id: NodeId, name: &str) -> RVal {
        match self.d.table.kind(id) {
            SymbolKind::Variable(v) => match self.var_loc(v) {
                VarLoc::F(r) => RVal::F(r),
                VarLoc::C(r) => RVal::C(r),
                VarLoc::Slot(s) => RVal::Slot(s),
            },
            SymbolKind::Builtin(b) if !self.opts.mcc_mode => match b {
                Builtin::Pi => RVal::F(self.fconst(std::f64::consts::PI)),
                Builtin::Eps => RVal::F(self.fconst(f64::EPSILON)),
                Builtin::Inf => RVal::F(self.fconst(f64::INFINITY)),
                Builtin::NaN => RVal::F(self.fconst(f64::NAN)),
                Builtin::ImagUnitI | Builtin::ImagUnitJ => {
                    let d = self.fresh_c();
                    self.emit(Inst::CConst {
                        d,
                        re: 0.0,
                        im: 1.0,
                    });
                    RVal::C(d)
                }
                other => {
                    let dst = self.fresh_slot();
                    self.emit(Inst::Gen {
                        op: GenOp::CallBuiltin(other),
                        dsts: vec![dst],
                        args: vec![],
                    });
                    RVal::Slot(dst)
                }
            },
            SymbolKind::Builtin(b) => {
                let dst = self.fresh_slot();
                self.emit(Inst::Gen {
                    op: GenOp::CallBuiltin(b),
                    dsts: vec![dst],
                    args: vec![],
                });
                RVal::Slot(dst)
            }
            SymbolKind::UserFunction => {
                let dst = self.fresh_slot();
                self.emit(Inst::Gen {
                    op: GenOp::CallUser(name.to_owned()),
                    dsts: vec![dst],
                    args: vec![],
                });
                RVal::Slot(dst)
            }
            SymbolKind::Ambiguous(v) => {
                let arg = match self.var_loc(v) {
                    VarLoc::Slot(s) => Operand::Slot(s),
                    VarLoc::F(r) => Operand::F(r),
                    VarLoc::C(r) => Operand::C(r),
                };
                let dst = self.fresh_slot();
                self.emit(Inst::Gen {
                    op: GenOp::ResolveAmbiguous(name.to_owned()),
                    dsts: vec![dst],
                    args: vec![arg],
                });
                RVal::Slot(dst)
            }
            SymbolKind::Unknown => {
                self.emit(Inst::ErrUndefined(name.to_owned()));
                RVal::F(self.fconst(0.0))
            }
        }
    }

    fn apply(&mut self, id: NodeId, callee: &str, args: &[Expr], t: &Type) -> RVal {
        match self.d.table.kind(id) {
            SymbolKind::Variable(v) => {
                let base_t = self.ann.base_ty(id);
                let VarLoc::Slot(arr) = self.var_loc(v) else {
                    // Scalar variable "indexed" (e.g. x(1)): load it.
                    return match self.var_loc(v) {
                        VarLoc::F(r) => RVal::F(r),
                        VarLoc::C(r) => RVal::C(r),
                        VarLoc::Slot(_) => unreachable!(),
                    };
                };
                // Scalar-subscript fast path.
                let all_scalar_subs = !self.opts.mcc_mode
                    && !args.is_empty()
                    && args.len() <= 2
                    && args.iter().all(|a| {
                        !matches!(a.kind, ExprKind::Colon)
                            && self.ann.ty(a.id).is_scalar()
                            && self.ann.ty(a.id).intrinsic.le(&Intrinsic::Real)
                    });
                if all_scalar_subs && base_t.intrinsic.le(&Intrinsic::Real) {
                    let idx: Vec<Reg> = args
                        .iter()
                        .enumerate()
                        .map(|(k, a)| {
                            let ev = self.expr(a, Some((arr, end_dim(k, args.len()))));
                            self.to_f(ev)
                        })
                        .collect();
                    let checked = !load_provable(&base_t, args, self.ann);
                    let d = self.fresh_f();
                    self.emit(Inst::ALoadF {
                        d,
                        arr,
                        i: idx[0],
                        j: idx.get(1).copied(),
                        checked,
                    });
                    // An element of a logical array is itself logical.
                    return if base_t.intrinsic == Intrinsic::Bool {
                        RVal::FB(d)
                    } else {
                        RVal::F(d)
                    };
                }
                if all_scalar_subs
                    && base_t.intrinsic.le(&Intrinsic::Complex)
                    && base_t.intrinsic != Intrinsic::Bottom
                {
                    let idx: Vec<Reg> = args
                        .iter()
                        .enumerate()
                        .map(|(k, a)| {
                            let ev = self.expr(a, Some((arr, end_dim(k, args.len()))));
                            self.to_f(ev)
                        })
                        .collect();
                    let checked = !load_provable(&base_t, args, self.ann);
                    let d = self.fresh_c();
                    self.emit(Inst::ALoadC {
                        d,
                        arr,
                        i: idx[0],
                        j: idx.get(1).copied(),
                        checked,
                    });
                    return RVal::C(d);
                }
                // Generic indexing.
                let mut gen_args = vec![Operand::Slot(arr)];
                for (k, a) in args.iter().enumerate() {
                    if matches!(a.kind, ExprKind::Colon) {
                        gen_args.push(Operand::Colon);
                    } else {
                        let ev = self.expr(a, Some((arr, end_dim(k, args.len()))));
                        gen_args.push(self.to_operand(ev));
                    }
                }
                let dst = self.fresh_slot();
                self.emit(Inst::Gen {
                    op: GenOp::IndexGet,
                    dsts: vec![dst],
                    args: gen_args,
                });
                RVal::Slot(dst)
            }
            SymbolKind::Builtin(b) => self.builtin_call(b, args, t),
            SymbolKind::UserFunction | SymbolKind::Unknown => {
                let argv: Vec<Operand> = args
                    .iter()
                    .map(|a| {
                        let v = self.expr(a, None);
                        self.to_operand(v)
                    })
                    .collect();
                let dst = self.fresh_slot();
                self.emit(Inst::Gen {
                    op: GenOp::CallUser(callee.to_owned()),
                    dsts: vec![dst],
                    args: argv,
                });
                RVal::Slot(dst)
            }
            SymbolKind::Ambiguous(v) => {
                // Runtime decides: variable indexing vs call. Compile the
                // conservative generic form through ResolveAmbiguous of
                // the base, then IndexGet.
                let base = match self.var_loc(v) {
                    VarLoc::Slot(s) => Operand::Slot(s),
                    VarLoc::F(r) => Operand::F(r),
                    VarLoc::C(r) => Operand::C(r),
                };
                let resolved = self.fresh_slot();
                self.emit(Inst::Gen {
                    op: GenOp::ResolveAmbiguous(callee.to_owned()),
                    dsts: vec![resolved],
                    args: vec![base],
                });
                let mut gen_args = vec![Operand::Slot(resolved)];
                for a in args {
                    if matches!(a.kind, ExprKind::Colon) {
                        gen_args.push(Operand::Colon);
                    } else {
                        let ev = self.expr(a, None);
                        gen_args.push(self.to_operand(ev));
                    }
                }
                let dst = self.fresh_slot();
                self.emit(Inst::Gen {
                    op: GenOp::IndexGet,
                    dsts: vec![dst],
                    args: gen_args,
                });
                RVal::Slot(dst)
            }
        }
    }

    fn builtin_call(&mut self, b: Builtin, args: &[Expr], t: &Type) -> RVal {
        // Inlined scalar math (paper: "MaJIC inlines scalar arithmetic
        // and logical operations, elementary math functions …").
        if !self.opts.mcc_mode && kind_of(t) == Kind::F && args.len() == 1 {
            let at = self.ann.ty(args[0].id);
            if kind_of(&at) == Kind::F {
                let unop = match b {
                    Builtin::Abs => Some(FUnOp::Abs),
                    Builtin::Sqrt => Some(FUnOp::Sqrt),
                    Builtin::Sin => Some(FUnOp::Sin),
                    Builtin::Cos => Some(FUnOp::Cos),
                    Builtin::Tan => Some(FUnOp::Tan),
                    Builtin::Asin => Some(FUnOp::Asin),
                    Builtin::Acos => Some(FUnOp::Acos),
                    Builtin::Atan => Some(FUnOp::Atan),
                    Builtin::Exp => Some(FUnOp::Exp),
                    Builtin::Log => Some(FUnOp::Log),
                    Builtin::Log10 => Some(FUnOp::Log10),
                    Builtin::Floor => Some(FUnOp::Floor),
                    Builtin::Ceil => Some(FUnOp::Ceil),
                    Builtin::Round => Some(FUnOp::Round),
                    Builtin::Fix => Some(FUnOp::Fix),
                    Builtin::Sign => Some(FUnOp::Sign),
                    Builtin::Real | Builtin::Conj => None, // identity on reals
                    _ => None,
                };
                if let Some(op) = unop {
                    let av = self.expr(&args[0], None);
                    let s = self.to_f(av);
                    let d = self.fresh_f();
                    self.emit(Inst::FUn { op, d, s });
                    return RVal::F(d);
                }
                if matches!(b, Builtin::Real | Builtin::Conj) {
                    return self.expr(&args[0], None);
                }
            }
            // Complex scalar argument with real result: abs / real / imag
            // / angle.
            if kind_of(&at) == Kind::C {
                match b {
                    Builtin::Abs => {
                        let av = self.expr(&args[0], None);
                        let s = self.to_c(av);
                        let d = self.fresh_f();
                        self.emit(Inst::CAbs { d, s });
                        return RVal::F(d);
                    }
                    Builtin::Real | Builtin::Imag => {
                        let av = self.expr(&args[0], None);
                        let s = self.to_c(av);
                        let d = self.fresh_f();
                        self.emit(Inst::CPart {
                            d,
                            s,
                            imag: b == Builtin::Imag,
                        });
                        return RVal::F(d);
                    }
                    _ => {}
                }
            }
        }
        // Scalar binary builtins.
        if !self.opts.mcc_mode && kind_of(t) == Kind::F && args.len() == 2 {
            let k0 = kind_of(&self.ann.ty(args[0].id));
            let k1 = kind_of(&self.ann.ty(args[1].id));
            if k0 == Kind::F && k1 == Kind::F {
                let binop = match b {
                    Builtin::Mod => Some(FBinOp::Mod),
                    Builtin::Rem => Some(FBinOp::Rem),
                    Builtin::Atan2 => Some(FBinOp::Atan2),
                    Builtin::Min => Some(FBinOp::Min),
                    Builtin::Max => Some(FBinOp::Max),
                    _ => None,
                };
                if let Some(op) = binop {
                    let av = self.expr(&args[0], None);
                    let a = self.to_f(av);
                    let bv = self.expr(&args[1], None);
                    let bb = self.to_f(bv);
                    let d = self.fresh_f();
                    self.emit(Inst::FBin { op, d, a, b: bb });
                    return RVal::F(d);
                }
            }
        }
        // Complex-scalar math — only for arguments that are themselves
        // complex. A *real* argument whose result is inferred complex
        // (sqrt/log of a maybe-negative range) must go through the
        // generic builtin: the runtime decides real-vs-complex from the
        // actual value (`sqrt(NaN)` is the real NaN, `sqrt(4)` is real
        // even when the range admits negatives), and a C register
        // commits to the complex class statically.
        if !self.opts.mcc_mode && kind_of(t) == Kind::C && args.len() == 1 {
            let at = self.ann.ty(args[0].id);
            if kind_of(&at) == Kind::C {
                let cop = match b {
                    Builtin::Sqrt => Some(CUnOp::Sqrt),
                    Builtin::Exp => Some(CUnOp::Exp),
                    Builtin::Log => Some(CUnOp::Log),
                    Builtin::Conj => Some(CUnOp::Conj),
                    Builtin::Sin => Some(CUnOp::Sin),
                    Builtin::Cos => Some(CUnOp::Cos),
                    _ => None,
                };
                if let Some(op) = cop {
                    let av = self.expr(&args[0], None);
                    let s = self.to_c(av);
                    let d = self.fresh_c();
                    self.emit(Inst::CUn { op, d, s });
                    return RVal::C(d);
                }
            }
        }
        // Pre-allocated creation with constant dims (paper: "small
        // temporary arrays of known sizes are pre-allocated").
        if !self.opts.mcc_mode && b == Builtin::Zeros {
            if let Some(shape) = t.exact_shape() {
                if let (Some(r), Some(c)) = (shape.rows.finite(), shape.cols.finite()) {
                    // Only when the arguments are side-effect-free scalars
                    // (they are, if the shape is exact).
                    let dst = self.fresh_slot();
                    self.emit(Inst::Gen {
                        op: GenOp::AllocReal {
                            rows: r as u32,
                            cols: c as u32,
                        },
                        dsts: vec![dst],
                        args: vec![],
                    });
                    return RVal::Slot(dst);
                }
            }
        }
        // Generic builtin call.
        let argv: Vec<Operand> = args
            .iter()
            .map(|a| {
                let v = self.expr(a, None);
                self.to_operand(v)
            })
            .collect();
        let dst = self.fresh_slot();
        self.emit(Inst::Gen {
            op: GenOp::CallBuiltin(b),
            dsts: vec![dst],
            args: argv,
        });
        RVal::Slot(dst)
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        t: &Type,
        end_ctx: Option<(Slot, u8)>,
    ) -> RVal {
        // Short-circuit logicals need control flow.
        if matches!(op, BinOp::ShortAnd | BinOp::ShortOr) {
            return self.short_circuit(op, lhs, rhs, end_ctx);
        }
        let lt = self.ann.ty(lhs.id);
        let rt = self.ann.ty(rhs.id);
        let (lk, rk) = (kind_of(&lt), kind_of(&rt));

        if !self.opts.mcc_mode {
            // dgemv fusion (paper: "expressions like a*X+b*C*Y are
            // transformed into a single call to the BLAS routine dgemv").
            if op == BinOp::Add && self.opts.gemv_fusion {
                if let Some(r) = self.try_gemv(lhs, rhs) {
                    return r;
                }
            }

            // Inlined real-scalar arithmetic: the paper's "most important
            // performance optimization".
            if lk == Kind::F && rk == Kind::F && kind_of(t) == Kind::F {
                let lv = self.expr(lhs, end_ctx);
                let a = self.to_f(lv);
                let rv = self.expr(rhs, end_ctx);
                let b = self.to_f(rv);
                let d = self.fresh_f();
                let inst = match op {
                    BinOp::Add => Inst::FBin {
                        op: FBinOp::Add,
                        d,
                        a,
                        b,
                    },
                    BinOp::Sub => Inst::FBin {
                        op: FBinOp::Sub,
                        d,
                        a,
                        b,
                    },
                    BinOp::Mul | BinOp::ElemMul => Inst::FBin {
                        op: FBinOp::Mul,
                        d,
                        a,
                        b,
                    },
                    BinOp::Div | BinOp::ElemDiv => Inst::FBin {
                        op: FBinOp::Div,
                        d,
                        a,
                        b,
                    },
                    BinOp::LeftDiv | BinOp::ElemLeftDiv => Inst::FBin {
                        op: FBinOp::Div,
                        d,
                        a: b,
                        b: a,
                    },
                    BinOp::Pow | BinOp::ElemPow => Inst::FBin {
                        op: FBinOp::Pow,
                        d,
                        a,
                        b,
                    },
                    BinOp::Lt => Inst::FCmp {
                        op: CmpOp::Lt,
                        d,
                        a,
                        b,
                    },
                    BinOp::Le => Inst::FCmp {
                        op: CmpOp::Le,
                        d,
                        a,
                        b,
                    },
                    BinOp::Gt => Inst::FCmp {
                        op: CmpOp::Gt,
                        d,
                        a,
                        b,
                    },
                    BinOp::Ge => Inst::FCmp {
                        op: CmpOp::Ge,
                        d,
                        a,
                        b,
                    },
                    BinOp::Eq => Inst::FCmp {
                        op: CmpOp::Eq,
                        d,
                        a,
                        b,
                    },
                    BinOp::Ne => Inst::FCmp {
                        op: CmpOp::Ne,
                        d,
                        a,
                        b,
                    },
                    BinOp::And | BinOp::Or => {
                        // (a ≠ 0) op (b ≠ 0) in plain arithmetic.
                        let zero = self.fconst(0.0);
                        let ta = self.fresh_f();
                        self.emit(Inst::FCmp {
                            op: CmpOp::Ne,
                            d: ta,
                            a,
                            b: zero,
                        });
                        let tb = self.fresh_f();
                        self.emit(Inst::FCmp {
                            op: CmpOp::Ne,
                            d: tb,
                            a: b,
                            b: zero,
                        });
                        if op == BinOp::And {
                            Inst::FBin {
                                op: FBinOp::Mul,
                                d,
                                a: ta,
                                b: tb,
                            }
                        } else {
                            Inst::FBin {
                                op: FBinOp::Max,
                                d,
                                a: ta,
                                b: tb,
                            }
                        }
                    }
                    BinOp::ShortAnd | BinOp::ShortOr => unreachable!(),
                };
                self.emit(inst);
                // Comparisons and logical operators produce the logical
                // class; track that so boxing preserves it.
                return if op.is_relational() || matches!(op, BinOp::And | BinOp::Or) {
                    RVal::FB(d)
                } else {
                    RVal::F(d)
                };
            }

            // Complex-scalar arithmetic.
            let both_scalar = matches!(lk, Kind::F | Kind::C) && matches!(rk, Kind::F | Kind::C);
            if both_scalar && kind_of(t) == Kind::C {
                let cop = match op {
                    BinOp::Add => Some(CBinOp::Add),
                    BinOp::Sub => Some(CBinOp::Sub),
                    BinOp::Mul | BinOp::ElemMul => Some(CBinOp::Mul),
                    BinOp::Div | BinOp::ElemDiv => Some(CBinOp::Div),
                    BinOp::Pow | BinOp::ElemPow => Some(CBinOp::Pow),
                    _ => None,
                };
                if let Some(cop) = cop {
                    let lv = self.expr(lhs, end_ctx);
                    let a = self.to_c(lv);
                    let rv = self.expr(rhs, end_ctx);
                    let b = self.to_c(rv);
                    let d = self.fresh_c();
                    self.emit(Inst::CBin { op: cop, d, a, b });
                    return RVal::C(d);
                }
            }
            // Relational on complex scalars: compare real parts.
            if both_scalar && op.is_relational() {
                let lv = self.expr(lhs, end_ctx);
                let a = self.to_f(lv);
                let rv = self.expr(rhs, end_ctx);
                let b = self.to_f(rv);
                let d = self.fresh_f();
                let cop = match op {
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    BinOp::Ge => CmpOp::Ge,
                    BinOp::Eq => CmpOp::Eq,
                    BinOp::Ne => CmpOp::Ne,
                    _ => unreachable!(),
                };
                self.emit(Inst::FCmp { op: cop, d, a, b });
                return RVal::FB(d);
            }

            // Small-vector unrolling (paper: "elementary vector
            // operations … are completely unrolled when exact array
            // shapes are known … very effective on small (up to 3×3)
            // matrices").
            // Scalar·vector `*` and `/` are elementwise in effect, so
            // they qualify too when one side is scalar.
            let scalar_side = lt.is_scalar() || rt.is_scalar();
            if self.opts.unroll_small_vectors && (op.is_elementwise() || scalar_side) {
                if let Some(r) = self.try_unrolled_elementwise(op, lhs, rhs, t, None) {
                    return r;
                }
            }
        }

        // Generic fallback (paper: "the implicit default rule for any
        // operator is that the numeric operands are complex matrices").
        let lv = self.expr(lhs, end_ctx);
        let a = self.to_operand(lv);
        let rv = self.expr(rhs, end_ctx);
        let b = self.to_operand(rv);
        let dst = self.fresh_slot();
        self.emit(Inst::Gen {
            op: GenOp::Binary(binop_name(op)),
            dsts: vec![dst],
            args: vec![a, b],
        });
        RVal::Slot(dst)
    }

    fn short_circuit(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        end_ctx: Option<(Slot, u8)>,
    ) -> RVal {
        let lt = self.ann.ty(lhs.id);
        let lv = self.expr(lhs, end_ctx);
        let lc = self.truth(lv, &lt);
        let result = self.fresh_f();
        self.emit(Inst::FMov { d: result, s: lc });
        // As with `if` lowering, the merge block is created only after
        // the rhs arm so block ids stay consistent with execution order
        // (the rhs may itself create blocks); the entry branch is sealed
        // once the merge id is known.
        let entry = self.cur;
        let rhs_bb = self.new_block();
        self.switch_to(rhs_bb);
        let rt = self.ann.ty(rhs.id);
        let rv = self.expr(rhs, end_ctx);
        let rc = self.truth(rv, &rt);
        self.emit(Inst::FMov { d: result, s: rc });
        let rhs_end = self.cur;
        let merge = self.new_block();
        let (then_bb, else_bb) = if op == BinOp::ShortAnd {
            (rhs_bb, merge)
        } else {
            (merge, rhs_bb)
        };
        self.switch_to(entry);
        self.seal(Terminator::Branch {
            cond: lc,
            then_bb,
            else_bb,
        });
        self.switch_to(rhs_end);
        self.seal(Terminator::Jump(merge));
        self.switch_to(merge);
        // `&&`/`||` always yield a logical scalar.
        RVal::FB(result)
    }

    /// Detect `a*X + b*(C*Y)` shapes (and simpler variants) and emit a
    /// fused dgemv.
    fn try_gemv(&mut self, lhs: &Expr, rhs: &Expr) -> Option<RVal> {
        let l = decompose_gemv_term(self, lhs)?;
        let r = decompose_gemv_term(self, rhs)?;
        // One side must be the matrix-vector product, the other the plain
        // vector.
        let (mv, v) = match (&l.mat, &r.mat, &l.vec, &r.vec) {
            (Some(_), None, None, Some(_)) => (&l, &r),
            (None, Some(_), Some(_), None) => (&r, &l),
            _ => return None,
        };
        let (c_e, y_e) = mv.mat.expect("checked");
        let x_e = v.vec.expect("checked");

        let alpha = match mv.coeff {
            Some(e) => {
                let av = self.expr(e, None);
                self.to_operand(av)
            }
            None => Operand::F(self.fconst(1.0)),
        };
        let a_slot = {
            let v = self.expr(c_e, None);
            let s = self.to_slot(v);
            Operand::Slot(s)
        };
        let y_slot = {
            let v = self.expr(y_e, None);
            let s = self.to_slot(v);
            Operand::Slot(s)
        };
        let beta = match v.coeff {
            Some(e) => {
                let bv = self.expr(e, None);
                self.to_operand(bv)
            }
            None => Operand::F(self.fconst(1.0)),
        };
        let x_slot = {
            let vv = self.expr(x_e, None);
            let s = self.to_slot(vv);
            Operand::Slot(s)
        };
        let dst = self.fresh_slot();
        self.emit(Inst::Gen {
            op: GenOp::Gemv,
            dsts: vec![dst],
            args: vec![alpha, a_slot, y_slot, beta, x_slot],
        });
        Some(RVal::Slot(dst))
    }

    /// Unroll `lhs op rhs` elementwise when both sides have the same
    /// exact small shape (or one is scalar) and everything is real.
    fn try_unrolled_elementwise(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        t: &Type,
        target: Option<Slot>,
    ) -> Option<RVal> {
        const MAX_UNROLL: u64 = 9;
        let shape = t.exact_shape()?;
        let n = shape.numel()?;
        if n == 0 || n > MAX_UNROLL || !t.intrinsic.le(&Intrinsic::Real) {
            return None;
        }
        let lt = self.ann.ty(lhs.id);
        let rt = self.ann.ty(rhs.id);
        if !lt.intrinsic.le(&Intrinsic::Real) || !rt.intrinsic.le(&Intrinsic::Real) {
            return None;
        }
        let fop = match op {
            BinOp::Add => FBinOp::Add,
            BinOp::Sub => FBinOp::Sub,
            BinOp::ElemMul => FBinOp::Mul,
            BinOp::ElemDiv => FBinOp::Div,
            BinOp::ElemPow => FBinOp::Pow,
            // Matrix `*` / `/` / `\` degenerate to elementwise when one
            // operand is scalar (`dt * v`, `v / d`); anything else (true
            // matrix products) must not unroll here.
            BinOp::Mul if lt.is_scalar() || rt.is_scalar() => FBinOp::Mul,
            BinOp::Div if rt.is_scalar() => FBinOp::Div,
            BinOp::ElemLeftDiv => {
                return self.try_unrolled_elementwise(BinOp::ElemDiv, rhs, lhs, t, target);
            }
            BinOp::LeftDiv if lt.is_scalar() => {
                return self.try_unrolled_elementwise(BinOp::Div, rhs, lhs, t, target);
            }
            _ => return None,
        };
        // Shapes must be exact: scalar or equal to the result.
        let side_ok = |st: &Type| st.is_scalar() || st.exact_shape().is_some_and(|s| s == shape);
        if !side_ok(&lt) || !side_ok(&rt) {
            return None;
        }
        let lv = self.expr(lhs, None);
        let rv = self.expr(rhs, None);
        enum Side {
            Scalar(Reg),
            Arr(Slot),
        }
        let prep = |g: &mut Gen<'_>, v: RVal, st: &Type| -> Side {
            if st.is_scalar() {
                Side::Scalar(g.to_f(v))
            } else {
                Side::Arr(g.to_slot(v))
            }
        };
        let ls = prep(self, lv, &lt);
        let rs = prep(self, rv, &rt);
        let (rows, cols) = (
            shape.rows.finite().expect("finite"),
            shape.cols.finite().expect("finite"),
        );
        // With a target, reuse its buffer like the paper's static
        // temporaries; elementwise in-place update is safe because each
        // output element depends only on the same-index inputs. Without
        // one, the temporary is allocated once in the entry block (the
        // `static tmp2[3]` of Figure 3) and overwritten per execution.
        let dst = match target {
            Some(slot) => {
                self.emit(Inst::Gen {
                    op: GenOp::EnsureReal {
                        rows: rows as u32,
                        cols: cols as u32,
                    },
                    dsts: vec![slot],
                    args: vec![],
                });
                slot
            }
            None => {
                let slot = self.fresh_slot();
                self.persistent_slots.push(slot);
                self.func.blocks[0].insts.push(Inst::Gen {
                    op: GenOp::AllocReal {
                        rows: rows as u32,
                        cols: cols as u32,
                    },
                    dsts: vec![slot],
                    args: vec![],
                });
                slot
            }
        };
        for lin in 0..n as u32 {
            let a = match &ls {
                Side::Scalar(r) => *r,
                Side::Arr(s) => {
                    let d = self.fresh_f();
                    self.emit(Inst::ALoadConstF { d, arr: *s, lin });
                    d
                }
            };
            let b = match &rs {
                Side::Scalar(r) => *r,
                Side::Arr(s) => {
                    let d = self.fresh_f();
                    self.emit(Inst::ALoadConstF { d, arr: *s, lin });
                    d
                }
            };
            let d = self.fresh_f();
            self.emit(Inst::FBin { op: fop, d, a, b });
            self.emit(Inst::AStoreConstF {
                arr: dst,
                lin,
                v: d,
            });
        }
        Some(RVal::Slot(dst))
    }

    fn matrix_literal(&mut self, rows: &[Vec<Expr>], t: &Type) -> RVal {
        // Unrolled build for small all-real-scalar literals (also covers
        // the pre-allocated temporaries rule).
        if !self.opts.mcc_mode {
            let nrows = rows.len();
            let ncols = rows.first().map_or(0, Vec::len);
            let all_scalars = nrows > 0
                && ncols > 0
                && rows.iter().all(|r| r.len() == ncols)
                && rows.iter().flatten().all(|e| {
                    let et = self.ann.ty(e.id);
                    kind_of(&et) == Kind::F
                });
            if all_scalars && nrows * ncols <= 16 {
                let dst = self.fresh_slot();
                self.persistent_slots.push(dst);
                // Pre-allocated in the entry block; every element is
                // stored below on each execution of the literal.
                self.func.blocks[0].insts.push(Inst::Gen {
                    op: GenOp::AllocReal {
                        rows: nrows as u32,
                        cols: ncols as u32,
                    },
                    dsts: vec![dst],
                    args: vec![],
                });
                for (ri, row) in rows.iter().enumerate() {
                    for (ci, e) in row.iter().enumerate() {
                        let v = self.expr(e, None);
                        let r = self.to_f(v);
                        let lin = (ci * nrows + ri) as u32;
                        self.emit(Inst::AStoreConstF {
                            arr: dst,
                            lin,
                            v: r,
                        });
                    }
                }
                return RVal::Slot(dst);
            }
        }
        let _ = t;
        // Generic concatenation.
        let mut args = Vec::new();
        let mut counts = Vec::with_capacity(rows.len());
        for row in rows {
            counts.push(row.len() as u32);
            for e in row {
                let v = self.expr(e, None);
                args.push(self.to_operand(v));
            }
        }
        let dst = self.fresh_slot();
        self.emit(Inst::Gen {
            op: GenOp::BuildMatrix { rows: counts },
            dsts: vec![dst],
            args,
        });
        RVal::Slot(dst)
    }
}

/// One side of a candidate dgemv fusion: an optional scalar coefficient
/// times either a matrix–vector product or a plain column vector.
struct GemvTerm<'e> {
    coeff: Option<&'e Expr>,
    mat: Option<(&'e Expr, &'e Expr)>,
    vec: Option<&'e Expr>,
}

fn decompose_gemv_term<'e>(g: &Gen<'_>, e: &'e Expr) -> Option<GemvTerm<'e>> {
    let is_scalar = |x: &Expr| g.ann.ty(x.id).is_scalar();
    let is_col_vec = |x: &Expr| {
        let t = g.ann.ty(x.id);
        !t.is_scalar() && t.max_shape.cols == Dim::Finite(1) && t.intrinsic.le(&Intrinsic::Real)
    };
    let is_mat = |x: &Expr| {
        let t = g.ann.ty(x.id);
        !t.is_scalar() && t.intrinsic.le(&Intrinsic::Real)
    };
    match &e.kind {
        ExprKind::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
        } => {
            if is_scalar(lhs) && is_mat(rhs) {
                // a * (C*Y) or a * X
                if let ExprKind::Binary {
                    op: BinOp::Mul,
                    lhs: c,
                    rhs: y,
                } = &rhs.kind
                {
                    if is_mat(c) && is_col_vec(y) {
                        return Some(GemvTerm {
                            coeff: Some(lhs),
                            mat: Some((c, y)),
                            vec: None,
                        });
                    }
                }
                if is_col_vec(rhs) {
                    return Some(GemvTerm {
                        coeff: Some(lhs),
                        mat: None,
                        vec: Some(rhs),
                    });
                }
            }
            if is_mat(lhs) && is_col_vec(rhs) {
                return Some(GemvTerm {
                    coeff: None,
                    mat: Some((lhs, rhs)),
                    vec: None,
                });
            }
            None
        }
        _ if is_col_vec(e) => Some(GemvTerm {
            coeff: None,
            mat: None,
            vec: Some(e),
        }),
        _ => None,
    }
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::LeftDiv => "\\",
        BinOp::Pow => "^",
        BinOp::ElemMul => ".*",
        BinOp::ElemDiv => "./",
        BinOp::ElemLeftDiv => ".\\",
        BinOp::ElemPow => ".^",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "~=",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::ShortAnd | BinOp::ShortOr => unreachable!("lowered as control flow"),
    }
}

/// Does any statement assign the named variable (including as a `for`
/// variable or indexed target)?
fn assigns_var(stmts: &[Stmt], name: &str) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Assign { lhs, .. } => lhs.name() == name,
        StmtKind::MultiAssign { lhs, .. } => lhs.iter().any(|l| l.name() == name),
        StmtKind::For { var, body, .. } => var == name || assigns_var(body, name),
        StmtKind::While { body, .. } => assigns_var(body, name),
        StmtKind::If {
            branches,
            else_body,
        } => {
            branches.iter().any(|(_, b)| assigns_var(b, name))
                || else_body.as_ref().is_some_and(|b| assigns_var(b, name))
        }
        _ => false,
    })
}

/// Which extent `end` refers to in subscript `k` of `n`: numel for a
/// single subscript, rows/cols otherwise.
fn end_dim(k: usize, n: usize) -> u8 {
    if n == 1 {
        0
    } else if k == 0 {
        1
    } else {
        2
    }
}

/// Can this load's subscript checks be removed? (paper §2.4)
fn load_provable(base: &Type, args: &[Expr], ann: &Annotations) -> bool {
    let min = base.min_shape;
    match args.len() {
        1 => {
            let Some(numel) = min
                .rows
                .finite()
                .and_then(|r| min.cols.finite().map(|c| r * c))
            else {
                return false;
            };
            let it = ann.ty(args[0].id);
            it.intrinsic.le(&Intrinsic::Int) && it.range.within(1.0, numel as f64)
        }
        2 => {
            let (Some(rows), Some(cols)) = (min.rows.finite(), min.cols.finite()) else {
                return false;
            };
            let rt = ann.ty(args[0].id);
            let ct = ann.ty(args[1].id);
            rt.intrinsic.le(&Intrinsic::Int)
                && rt.range.within(1.0, rows as f64)
                && ct.intrinsic.le(&Intrinsic::Int)
                && ct.range.within(1.0, cols as f64)
        }
        _ => false,
    }
}

/// Can this store skip the growth check? Same condition as loads: the
/// indices provably stay inside the *guaranteed* extent.
fn store_provable(base: &Type, args: &[Expr], ann: &Annotations) -> bool {
    load_provable(base, args, ann)
}

/// Gather assignment-site types and forced-slot evidence per variable.
fn collect_var_evidence(
    stmts: &[Stmt],
    d: &DisambiguatedFunction,
    ann: &Annotations,
    types: &mut [Vec<Type>],
    forced_slot: &mut [bool],
) {
    fn force(name: &str, d: &DisambiguatedFunction, forced_slot: &mut [bool]) {
        if let Some(v) = d.table.var_id(name) {
            forced_slot[v.index()] = true;
        }
    }
    fn note(
        name: &str,
        id: NodeId,
        d: &DisambiguatedFunction,
        ann: &Annotations,
        types: &mut [Vec<Type>],
    ) {
        if let Some(v) = d.table.var_id(name) {
            types[v.index()].push(ann.ty(id));
        }
    }
    for s in stmts {
        match &s.kind {
            StmtKind::Assign { lhs, rhs, .. } => {
                match lhs {
                    LValue::Var { name, id, .. } => note(name, *id, d, ann, types),
                    LValue::Index { name, .. } => force(name, d, forced_slot),
                }
                force_apply_bases(rhs, d, forced_slot);
            }
            StmtKind::MultiAssign { lhs, args, .. } => {
                for lv in lhs {
                    match lv {
                        LValue::Var { name, id, .. } => note(name, *id, d, ann, types),
                        LValue::Index { name, .. } => force(name, d, forced_slot),
                    }
                }
                for a in args {
                    force_apply_bases(a, d, forced_slot);
                }
            }
            StmtKind::Expr { expr, .. } => force_apply_bases(expr, d, forced_slot),
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (c, b) in branches {
                    force_apply_bases(c, d, forced_slot);
                    collect_var_evidence(b, d, ann, types, forced_slot);
                }
                if let Some(b) = else_body {
                    collect_var_evidence(b, d, ann, types, forced_slot);
                }
            }
            StmtKind::While { cond, body } => {
                force_apply_bases(cond, d, forced_slot);
                collect_var_evidence(body, d, ann, types, forced_slot);
            }
            StmtKind::For {
                var,
                var_id,
                iter,
                body,
            } => {
                note(var, *var_id, d, ann, types);
                force_apply_bases(iter, d, forced_slot);
                collect_var_evidence(body, d, ann, types, forced_slot);
            }
            _ => {}
        }
    }
    // Ambiguous symbols must be observable as "undefined" at runtime.
    for kind in d.table.symbols.values() {
        if let SymbolKind::Ambiguous(v) = kind {
            forced_slot[v.index()] = true;
        }
    }
}

/// Any variable used as an indexing base must live in a slot.
fn force_apply_bases(e: &Expr, d: &DisambiguatedFunction, forced_slot: &mut [bool]) {
    e.walk(&mut |e| {
        if let ExprKind::Apply { .. } = &e.kind {
            match d.table.kind(e.id) {
                SymbolKind::Variable(v) | SymbolKind::Ambiguous(v) => {
                    forced_slot[v.index()] = true;
                }
                _ => {}
            }
        }
    });
}
