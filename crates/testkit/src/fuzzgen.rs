//! Grammar-based MATLAB program generation and shrinking for the
//! differential fuzzer.
//!
//! This module is deliberately dependency-free: it produces programs as
//! a small structured AST ([`Program`]) rendered to MATLAB source text,
//! plus entry-point arguments as plain data ([`ArgVal`]). The fuzz
//! harness (`crates/fuzz`) converts these into engine values and runs
//! them through the cross-mode oracle (`majic::diff`); keeping the
//! generator independent of the engine means a generator bug can never
//! mask an engine bug, and the shrinker can manipulate programs
//! structurally instead of slicing text.
//!
//! # Termination by construction
//!
//! Generated programs always terminate:
//!
//! * `for` ranges start from small literals and end at either a small
//!   literal or `min(<expr>, <small literal>)`, so the trip count is
//!   bounded even when `<expr>` turns out huge, `NaN`, or infinite;
//! * every `while` loop carries a decrementing guard counter
//!   (`g = k; while (g > 0) & cond; g = g - 1; …`);
//! * the call graph is a DAG — `f0` may call `f1`/`f2`, never itself.
//!
//! Infinity is also excluded from the entry-argument pool: a literal
//! infinite `for` bound is the one known semantic gap between the
//! interpreter (which materializes the iteration space and fails on
//! allocation) and compiled counted loops (which would run forever).
//! `NaN` arguments *are* generated — both paths agree on an empty
//! iteration.

use crate::Rng;
use std::fmt;

/// Which production set [`generate_with`] draws from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Grammar {
    /// The original general-purpose grammar.
    #[default]
    Default,
    /// Aliasing-heavy mode: biases generation toward the patterns that
    /// stress copy-on-write snapshot isolation — `x = y` binds followed
    /// by mutation of either alias, self-referential updates
    /// `a(i) = a(j)`, growth-through-store on an aliased array, calls
    /// passing the same variable to several formals, and callees that
    /// write to their formals. Programs stay terminating by the same
    /// construction rules as the default grammar.
    Aliasing,
}

/// An entry-point argument, engine-agnostic.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgVal {
    /// A real scalar.
    Scalar(f64),
    /// A real matrix, data in column-major order.
    Matrix {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// `rows * cols` elements, column-major.
        data: Vec<f64>,
    },
}

/// A generated expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal (rendered so that `NaN` and `-0.0` survive parsing).
    Num(f64),
    /// A variable reference.
    Var(String),
    /// A binary operation; the operator is kept as source text.
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// A call — builtin or generated user function.
    Call(String, Vec<Expr>),
    /// An indexing read `v(subs…)`.
    Index(String, Vec<Expr>),
    /// A colon range `a : b` or `a : s : b`.
    Range(Box<Expr>, Option<Box<Expr>>, Box<Expr>),
    /// A matrix literal `[a b; c d]` (row-major rows of scalars).
    MatLit(Vec<Vec<Expr>>),
}

/// A generated statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `v = e;`
    Assign(String, Expr),
    /// `v(subs…) = e;` — exercises growth and the write-path guards.
    IndexAssign(String, Vec<Expr>, Expr),
    /// `if c … else … end` (else block may be empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for v = from : step : to … end`.
    For {
        /// Loop variable.
        var: String,
        /// Start bound.
        from: Expr,
        /// Optional step.
        step: Option<Expr>,
        /// End bound (clamped by construction).
        to: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// A guarded while loop; renders as
    /// `g = init; while (g > 0) & cond; g = g - 1; … end`.
    While {
        /// Guard-counter variable.
        guard: String,
        /// Initial guard value (maximum iterations).
        init: u32,
        /// The generated condition.
        cond: Expr,
        /// Body (guard decrement is emitted automatically).
        body: Vec<Stmt>,
    },
}

/// One generated function.
#[derive(Clone, Debug, PartialEq)]
pub struct Func {
    /// Function name (`f0` is the entry).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Return variable (always assigned by the final statement).
    pub ret: String,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A complete generated case: functions plus entry arguments.
/// `funcs[0]` is the entry point; calls only ever go from lower to
/// higher indices (the DAG property).
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The functions, entry first.
    pub funcs: Vec<Func>,
    /// Actual arguments for the entry function.
    pub args: Vec<ArgVal>,
}

impl Program {
    /// Name of the entry function.
    pub fn entry(&self) -> &str {
        &self.funcs[0].name
    }

    /// Render the MATLAB source defining every function.
    pub fn source(&self) -> String {
        let mut s = String::new();
        for f in &self.funcs {
            s.push_str(&f.to_string());
        }
        s
    }

    /// Render the self-contained corpus form: header comments recording
    /// the entry point and arguments, followed by the source. The `%`
    /// headers are ordinary MATLAB comments, so the whole file is also
    /// valid source.
    pub fn render_corpus(&self) -> String {
        let mut s = String::new();
        s.push_str("% majic differential-fuzzer reproducer\n");
        s.push_str(&format!("% entry: {}\n", self.entry()));
        for a in &self.args {
            match a {
                ArgVal::Scalar(v) => s.push_str(&format!("% arg: scalar {}\n", fmt_f64(*v))),
                ArgVal::Matrix { rows, cols, data } => {
                    let elems: Vec<String> = data.iter().map(|v| fmt_f64(*v)).collect();
                    s.push_str(&format!(
                        "% arg: matrix {rows}x{cols} {}\n",
                        elems.join(" ")
                    ));
                }
            }
        }
        s.push_str(&self.source());
        s
    }
}

/// `f64` to text such that `text.parse::<f64>()` round-trips exactly
/// (`{:?}` keeps full precision; `NaN` parses back as NaN).
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Entry point and arguments recovered from a corpus file's headers.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusHeader {
    /// Entry function name.
    pub entry: String,
    /// Entry arguments.
    pub args: Vec<ArgVal>,
}

/// Parse the `% entry:` / `% arg:` headers of a corpus file. The source
/// is the file itself (the headers are MATLAB comments).
///
/// # Errors
///
/// Returns a message when the `% entry:` header is missing or an
/// `% arg:` line is malformed.
pub fn parse_corpus(text: &str) -> Result<CorpusHeader, String> {
    let mut entry = None;
    let mut args = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("% entry:") {
            entry = Some(rest.trim().to_owned());
        } else if let Some(rest) = line.strip_prefix("% arg:") {
            args.push(parse_arg(rest.trim())?);
        }
    }
    Ok(CorpusHeader {
        entry: entry.ok_or("missing '% entry:' header")?,
        args,
    })
}

fn parse_arg(spec: &str) -> Result<ArgVal, String> {
    let mut it = spec.split_whitespace();
    match it.next() {
        Some("scalar") => {
            let v = it.next().ok_or("scalar arg missing value")?;
            Ok(ArgVal::Scalar(
                v.parse().map_err(|e| format!("bad scalar {v:?}: {e}"))?,
            ))
        }
        Some("matrix") => {
            let dims = it.next().ok_or("matrix arg missing dims")?;
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| format!("bad matrix dims {dims:?}"))?;
            let rows: usize = r.parse().map_err(|e| format!("bad rows {r:?}: {e}"))?;
            let cols: usize = c.parse().map_err(|e| format!("bad cols {c:?}: {e}"))?;
            let data: Result<Vec<f64>, String> = it
                .map(|v| v.parse().map_err(|e| format!("bad element {v:?}: {e}")))
                .collect();
            let data = data?;
            if data.len() != rows * cols {
                return Err(format!(
                    "matrix {rows}x{cols} needs {} elements, got {}",
                    rows * cols,
                    data.len()
                ));
            }
            Ok(ArgVal::Matrix { rows, cols, data })
        }
        other => Err(format!("unknown arg kind {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(v) => {
                if v.is_nan() {
                    // A computed NaN: survives any parser and is
                    // mode-agnostic (0/0 is NaN in every engine path).
                    write!(f, "(0/0)")
                } else if *v < 0.0 || (*v == 0.0 && v.is_sign_negative()) {
                    write!(f, "({})", fmt_f64(*v))
                } else {
                    write!(f, "{}", fmt_f64(*v))
                }
            }
            Expr::Var(n) => f.write_str(n),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Call(name, args) | Expr::Index(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Range(a, None, b) => write!(f, "({a} : {b})"),
            Expr::Range(a, Some(s), b) => write!(f, "({a} : {s} : {b})"),
            Expr::MatLit(rows) => {
                f.write_str("[")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            f.write_str(" ")?;
                        }
                        write!(f, "{e}")?;
                    }
                }
                f.write_str("]")
            }
        }
    }
}

fn write_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    for s in stmts {
        s.write(f, indent)?;
    }
    Ok(())
}

impl Stmt {
    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Stmt::Assign(v, e) => writeln!(f, "{pad}{v} = {e};"),
            Stmt::IndexAssign(v, subs, e) => {
                write!(f, "{pad}{v}(")?;
                for (i, s) in subs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{s}")?;
                }
                writeln!(f, ") = {e};")
            }
            Stmt::If(c, then, els) => {
                writeln!(f, "{pad}if {c}")?;
                write_block(f, then, indent + 1)?;
                if !els.is_empty() {
                    writeln!(f, "{pad}else")?;
                    write_block(f, els, indent + 1)?;
                }
                writeln!(f, "{pad}end")
            }
            Stmt::For {
                var,
                from,
                step,
                to,
                body,
            } => {
                match step {
                    Some(s) => writeln!(f, "{pad}for {var} = {from} : {s} : {to}")?,
                    None => writeln!(f, "{pad}for {var} = {from} : {to}")?,
                }
                write_block(f, body, indent + 1)?;
                writeln!(f, "{pad}end")
            }
            Stmt::While {
                guard,
                init,
                cond,
                body,
            } => {
                writeln!(f, "{pad}{guard} = {init};")?;
                writeln!(f, "{pad}while ({guard} > 0) & ({cond})")?;
                writeln!(f, "{}{guard} = {guard} - 1;", "  ".repeat(indent + 1))?;
                write_block(f, body, indent + 1)?;
                writeln!(f, "{pad}end")
            }
        }
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "function {} = {}({})",
            self.ret,
            self.name,
            self.params.join(", ")
        )?;
        write_block(f, &self.body, 0)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

/// Scalar literal pool for entry arguments: no infinities (see module
/// docs), NaN and signed zero very much included.
const ARG_POOL: [f64; 12] = [
    0.0,
    1.0,
    2.0,
    3.0,
    7.0,
    -1.0,
    -2.5,
    0.5,
    1e6,
    1e-3,
    f64::NAN,
    -0.0,
];

/// Scalar literal pool for expression leaves.
const LIT_POOL: [f64; 10] = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, -1.0, -2.0, 0.5, 10.0];

/// Builtins the generator calls with one general argument.
const UNARY_BUILTINS: [&str; 6] = ["abs", "floor", "sqrt", "sum", "length", "numel"];

/// Creation builtins — the functions the speculator keys its shape
/// hints on (paper §2.5), so generated programs exercise exactly the
/// code speculative compilation guesses about.
const CREATION_BUILTINS: [&str; 4] = ["zeros", "ones", "rand", "eye"];

struct Gen {
    rng: Rng,
    /// Remaining statement budget for the whole program.
    budget: u32,
    /// Fresh-name counters (loop vars / guards).
    loops: u32,
    /// Active production set. The default path draws exactly the RNG
    /// sequence it always did; aliasing-only draws happen behind the
    /// mode check, so default-mode programs are unchanged per seed.
    grammar: Grammar,
}

/// Per-function generation scope.
struct Scope {
    /// Variables known to hold *scalars* (usable in bounds/subscripts).
    scalars: Vec<String>,
    /// All assigned variables (usable anywhere).
    vars: Vec<String>,
    /// Names of callable functions (higher DAG rank only) with arity.
    callees: Vec<(String, usize)>,
    /// Live loop-control variables (`while` guards, `for` induction
    /// vars) that statements in the loop body must never store to: a
    /// guard store breaks the decrementing-counter termination
    /// guarantee, and a `for`-var store is reset by the interpreter on
    /// the next iteration but not by a compiled counted loop.
    protected: Vec<String>,
    /// Variables that have participated in an `x = y` alias bind
    /// (either side) — the aliasing grammar's preferred mutation
    /// targets.
    aliases: Vec<String>,
}

impl Scope {
    fn mark(&mut self, name: &str, scalar: bool) {
        if !self.vars.iter().any(|v| v == name) {
            self.vars.push(name.to_owned());
        }
        let present = self.scalars.iter().position(|v| v == name);
        match (scalar, present) {
            (true, None) => self.scalars.push(name.to_owned()),
            (false, Some(i)) => {
                self.scalars.remove(i);
            }
            _ => {}
        }
    }
}

impl Gen {
    /// A small positive literal.
    fn small_lit(&mut self) -> Expr {
        Expr::Num(*self.rng.choose(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
    }

    /// A "tame" scalar expression: guaranteed scalar shape, values kept
    /// small enough for loop bounds and subscripts. Depth-limited.
    fn tame(&mut self, sc: &Scope, depth: u32) -> Expr {
        let var_w = if sc.scalars.is_empty() { 0 } else { 4 };
        let w: Vec<u32> = if depth == 0 {
            vec![3, 2, var_w]
        } else {
            vec![3, 2, var_w, 2, 2, 1]
        };
        match self.rng.weighted(&w) {
            0 => Expr::Num(*self.rng.choose(&LIT_POOL)),
            1 => self.small_lit(),
            2 => Expr::Var(self.rng.choose(&sc.scalars).clone()),
            3 => Expr::Bin(
                ["+", "-", "*"][self.rng.below(3)],
                Box::new(self.tame(sc, depth - 1)),
                Box::new(self.tame(sc, depth - 1)),
            ),
            4 => Expr::Call("abs".into(), vec![self.tame(sc, depth - 1)]),
            _ => Expr::Call("floor".into(), vec![self.tame(sc, depth - 1)]),
        }
    }

    /// A subscript expression: positive small integers most of the
    /// time (growth stays modest), occasionally adventurous.
    fn subscript(&mut self, sc: &Scope) -> Expr {
        match self.rng.weighted(&[6, 2, 2]) {
            0 => self.small_lit(),
            1 if !sc.scalars.is_empty() => Expr::Var(self.rng.choose(&sc.scalars).clone()),
            _ => Expr::Call(
                "abs".into(),
                vec![Expr::Call("floor".into(), vec![self.tame(sc, 1)])],
            ),
        }
    }

    /// A general expression (any shape, any value). Depth-limited.
    fn expr(&mut self, sc: &Scope, depth: u32) -> Expr {
        if depth == 0 {
            return match self.rng.weighted(&[3, 4]) {
                0 => Expr::Num(*self.rng.choose(&LIT_POOL)),
                _ if !sc.vars.is_empty() => Expr::Var(self.rng.choose(&sc.vars).clone()),
                _ => Expr::Num(*self.rng.choose(&LIT_POOL)),
            };
        }
        match self.rng.weighted(&[4, 4, 6, 2, 3, 2, 2, 2, 2, 1]) {
            0 => Expr::Num(*self.rng.choose(&LIT_POOL)),
            1 if !sc.vars.is_empty() => Expr::Var(self.rng.choose(&sc.vars).clone()),
            1 => Expr::Num(*self.rng.choose(&LIT_POOL)),
            2 => {
                let op = *self.rng.choose(&[
                    "+", "-", ".*", "./", ".^", "*", "<", "<=", ">", ">=", "==", "~=", "&",
                ]);
                Expr::Bin(
                    op,
                    Box::new(self.expr(sc, depth - 1)),
                    Box::new(self.expr(sc, depth - 1)),
                )
            }
            3 => Expr::Neg(Box::new(self.expr(sc, depth - 1))),
            4 => {
                let name = *self.rng.choose(&UNARY_BUILTINS);
                Expr::Call(name.into(), vec![self.expr(sc, depth - 1)])
            }
            5 => {
                // Creation builtin with small literal dims.
                let name = *self.rng.choose(&CREATION_BUILTINS);
                let dims = if self.rng.coin() {
                    vec![self.small_lit()]
                } else {
                    vec![self.small_lit(), self.small_lit()]
                };
                Expr::Call(name.into(), dims)
            }
            6 if !sc.vars.is_empty() => {
                let v = self.rng.choose(&sc.vars).clone();
                if self.rng.coin() {
                    Expr::Call("size".into(), vec![Expr::Var(v)])
                } else {
                    let subs = if self.rng.coin() {
                        vec![self.subscript(sc)]
                    } else {
                        vec![self.subscript(sc), self.subscript(sc)]
                    };
                    Expr::Index(v, subs)
                }
            }
            6 => Expr::Num(*self.rng.choose(&LIT_POOL)),
            7 => {
                let a = self.tame(sc, 1);
                let b = self.tame(sc, 1);
                let step = if self.rng.coin() {
                    None
                } else {
                    Some(Box::new(Expr::Num(
                        *self.rng.choose(&[0.5, 1.0, 2.0, -1.0]),
                    )))
                };
                Expr::Range(Box::new(a), step, Box::new(b))
            }
            8 => {
                let rows = 1 + self.rng.below(2);
                let cols = 1 + self.rng.below(3);
                let rows: Vec<Vec<Expr>> = (0..rows)
                    .map(|_| (0..cols).map(|_| self.tame(sc, 1)).collect())
                    .collect();
                Expr::MatLit(rows)
            }
            _ if !sc.callees.is_empty() => {
                let (name, arity) = self.rng.choose(&sc.callees).clone();
                let args = (0..arity).map(|_| self.expr(sc, depth - 1)).collect();
                Expr::Call(name, args)
            }
            _ => Expr::Num(*self.rng.choose(&LIT_POOL)),
        }
    }

    /// A loop end bound: a small literal, or `min(<tame>, <literal>)`
    /// so the trip count stays finite whatever `<tame>` evaluates to.
    fn loop_to(&mut self, sc: &Scope) -> Expr {
        if self.rng.coin() {
            self.small_lit()
        } else {
            let lit = self.small_lit();
            Expr::Call("min".into(), vec![self.tame(sc, 1), lit])
        }
    }

    /// A boolean-ish condition over tame scalars.
    fn cond(&mut self, sc: &Scope) -> Expr {
        let op = *self.rng.choose(&["<", "<=", ">", ">=", "==", "~="]);
        Expr::Bin(op, Box::new(self.tame(sc, 1)), Box::new(self.tame(sc, 1)))
    }

    /// One statement from the aliasing production set. Every target is
    /// filtered against `protected`, so the termination guarantees are
    /// untouched; subscripts stay small, so growth stays modest.
    fn aliasing_stmt(&mut self, sc: &mut Scope) -> Stmt {
        let storable: Vec<String> = sc
            .vars
            .iter()
            .filter(|v| !sc.protected.contains(v))
            .cloned()
            .collect();
        let aliased: Vec<String> = storable
            .iter()
            .filter(|v| sc.aliases.contains(v))
            .cloned()
            .collect();
        let w = [
            3,
            if aliased.is_empty() { 0 } else { 4 },
            if storable.is_empty() { 0 } else { 2 },
            if storable.is_empty() { 0 } else { 2 },
            if sc.callees.is_empty() || sc.vars.is_empty() {
                0
            } else {
                2
            },
        ];
        match self.rng.weighted(&w) {
            0 => {
                // Alias bind `aN = y`: the canonical CoW share. Both
                // sides become preferred mutation targets.
                let src = self.rng.choose(&sc.vars).clone();
                let name = format!("a{}", self.rng.below(3));
                for n in [&src, &name] {
                    if !sc.aliases.contains(n) {
                        sc.aliases.push(n.clone());
                    }
                }
                sc.mark(&name, false);
                Stmt::Assign(name, Expr::Var(src))
            }
            1 => {
                // Mutate one side of a live alias pair: the other side
                // must observe the pre-store snapshot.
                let name = self.rng.choose(&aliased).clone();
                sc.mark(&name, false);
                let subs = vec![self.subscript(sc)];
                Stmt::IndexAssign(name, subs, self.tame(sc, 2))
            }
            2 => {
                // Self-referential update `a(i) = a(j)`: the rhs reads
                // the array being stored to.
                let name = self.rng.choose(&storable).clone();
                sc.mark(&name, false);
                let i = self.subscript(sc);
                let j = if self.rng.coin() {
                    Expr::Num(1.0)
                } else {
                    self.subscript(sc)
                };
                Stmt::IndexAssign(name.clone(), vec![i], Expr::Index(name, vec![j]))
            }
            3 => {
                // Growth-through-store, preferably on an aliased array:
                // a subscript past the small extents every other
                // production produces, so the store relocates (or bumps
                // into oversizing slack) while an alias watches.
                let pool = if aliased.is_empty() {
                    &storable
                } else {
                    &aliased
                };
                let name = self.rng.choose(pool).clone();
                sc.mark(&name, false);
                let sub = Expr::Num(*self.rng.choose(&[7.0, 8.0, 9.0, 12.0]));
                Stmt::IndexAssign(name, vec![sub], self.tame(sc, 2))
            }
            _ => {
                // The same actual bound to every formal: callee-side
                // stores to one formal must not leak into the other.
                let (f, arity) = self.rng.choose(&sc.callees).clone();
                let x = self.rng.choose(&sc.vars).clone();
                let name = format!("v{}", self.rng.below(4));
                sc.mark(&name, false);
                Stmt::Assign(name, Expr::Call(f, vec![Expr::Var(x); arity]))
            }
        }
    }

    fn stmt(&mut self, sc: &mut Scope, nesting: u32) -> Stmt {
        self.budget = self.budget.saturating_sub(1);
        if self.grammar == Grammar::Aliasing && !sc.vars.is_empty() && self.rng.below(3) == 0 {
            return self.aliasing_stmt(sc);
        }
        let structural = u32::from(nesting < 2 && self.budget > 3);
        match self
            .rng
            .weighted(&[6, 3, 3 * structural, 3 * structural, 2 * structural])
        {
            0 => {
                let name = format!("v{}", self.rng.below(4));
                // Scalar-certain assignments keep the tame pool fed.
                if self.rng.coin() {
                    let e = self.tame(sc, 2);
                    sc.mark(&name, true);
                    Stmt::Assign(name, e)
                } else {
                    let e = self.expr(sc, 3);
                    sc.mark(&name, false);
                    Stmt::Assign(name, e)
                }
            }
            1 => {
                let storable: Vec<&String> = sc
                    .vars
                    .iter()
                    .filter(|v| !sc.protected.contains(v))
                    .collect();
                let name = if storable.is_empty() || self.rng.coin() {
                    let n = format!("m{}", self.rng.below(2));
                    sc.mark(&n, false);
                    n
                } else {
                    let n = (*self.rng.choose(&storable)).clone();
                    sc.mark(&n, false);
                    n
                };
                let subs = if self.rng.coin() {
                    vec![self.subscript(sc)]
                } else {
                    vec![self.subscript(sc), self.subscript(sc)]
                };
                Stmt::IndexAssign(name, subs, self.tame(sc, 2))
            }
            2 => {
                let c = self.cond(sc);
                let tlen = 1 + self.rng.below(2);
                let then = self.block(sc, nesting + 1, tlen);
                let els = if self.rng.coin() {
                    self.block(sc, nesting + 1, 1)
                } else {
                    Vec::new()
                };
                Stmt::If(c, then, els)
            }
            3 => {
                let var = format!("k{}", self.loops);
                self.loops += 1;
                sc.mark(&var, true);
                let from = Expr::Num(*self.rng.choose(&[1.0, 1.0, 1.0, 2.0, -2.0]));
                let to = self.loop_to(sc);
                let step = if self.rng.coin() {
                    None
                } else {
                    Some(Expr::Num(*self.rng.choose(&[1.0, 2.0, 0.5])))
                };
                let blen = 1 + self.rng.below(2);
                sc.protected.push(var.clone());
                let body = self.block(sc, nesting + 1, blen);
                sc.protected.pop();
                Stmt::For {
                    var,
                    from,
                    step,
                    to,
                    body,
                }
            }
            _ => {
                let guard = format!("g{}", self.loops);
                self.loops += 1;
                sc.mark(&guard, true);
                let cond = self.cond(sc);
                let blen = 1 + self.rng.below(2);
                sc.protected.push(guard.clone());
                let body = self.block(sc, nesting + 1, blen);
                sc.protected.pop();
                Stmt::While {
                    guard,
                    init: 3 + self.rng.below(5) as u32,
                    cond,
                    body,
                }
            }
        }
    }

    fn block(&mut self, sc: &mut Scope, nesting: u32, len: usize) -> Vec<Stmt> {
        (0..len).map(|_| self.stmt(sc, nesting)).collect()
    }
}

/// Generate one random program from `seed` with the default grammar.
/// Same seed, same program.
pub fn generate(seed: u64) -> Program {
    generate_with(seed, Grammar::Default)
}

/// Generate one random program from `seed` under `grammar`. Same seed
/// and grammar, same program; the default grammar produces exactly what
/// [`generate`] always has.
pub fn generate_with(seed: u64, grammar: Grammar) -> Program {
    let mut g = Gen {
        rng: Rng::new(seed),
        budget: 14,
        loops: 0,
        grammar,
    };
    // Decide the call-graph shape first: every function knows the
    // signatures of the strictly-later functions it may call.
    let nfuncs = 1 + g.rng.below(3);
    let arities: Vec<usize> = (0..nfuncs).map(|_| 1 + g.rng.below(2)).collect();

    let mut funcs = Vec::with_capacity(nfuncs);
    for i in 0..nfuncs {
        let params: Vec<String> = (0..arities[i]).map(|p| format!("p{p}")).collect();
        let callees: Vec<(String, usize)> = (i + 1..nfuncs)
            .map(|j| (format!("f{j}"), arities[j]))
            .collect();
        let mut sc = Scope {
            // Parameters may be matrices: available generally, not tame.
            scalars: Vec::new(),
            vars: params.clone(),
            callees,
            protected: Vec::new(),
            aliases: Vec::new(),
        };
        let len = if i == 0 {
            2 + g.rng.below(4)
        } else {
            1 + g.rng.below(3)
        };
        let mut body = g.block(&mut sc, 0, len);
        if grammar == Grammar::Aliasing && i > 0 && g.rng.coin() {
            // A callee that writes its formal before anything else: the
            // caller's actual must keep its pre-call value (call-by-value
            // under shared buffers). Always legal: a linear store into a
            // scalar or row grows it, a store into a matrix with
            // subscript ≤ its extent writes in place, and a linear-growth
            // error is itself a cross-mode test point.
            let sub = g.small_lit();
            let rhs = g.small_lit();
            body.insert(0, Stmt::IndexAssign(params[0].clone(), vec![sub], rhs));
        }
        // The return value is always defined, whatever the body did.
        body.push(Stmt::Assign("r".into(), g.expr(&sc, 3)));
        funcs.push(Func {
            name: format!("f{i}"),
            params,
            ret: "r".into(),
            body,
        });
    }

    // Aliasing mode leans on matrix arguments: sharing a scalar buffer
    // is legal but uninteresting.
    let arg_weights: [u32; 2] = match grammar {
        Grammar::Default => [3, 1],
        Grammar::Aliasing => [1, 3],
    };
    let args = (0..arities[0])
        .map(|_| {
            if g.rng.weighted(&arg_weights) == 0 {
                ArgVal::Scalar(*g.rng.choose(&ARG_POOL))
            } else {
                let rows = 1 + g.rng.below(3);
                let cols = 1 + g.rng.below(3);
                let data = (0..rows * cols).map(|_| *g.rng.choose(&ARG_POOL)).collect();
                ArgVal::Matrix { rows, cols, data }
            }
        })
        .collect();

    Program { funcs, args }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedily shrink `p` while `pred` keeps returning `true` (i.e. the
/// failure still reproduces). At most `max_evals` predicate calls are
/// spent; the smallest accepted program is returned.
///
/// The candidate order prefers coarse cuts (drop whole functions, drop
/// statements, hoist loop/if bodies) before fine-grained expression
/// simplification, so the typical reproducer collapses in a handful of
/// rounds.
pub fn shrink(p: &Program, mut pred: impl FnMut(&Program) -> bool, max_evals: usize) -> Program {
    let mut best = p.clone();
    let mut evals = 0;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if evals >= max_evals {
                return best;
            }
            evals += 1;
            if pred(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // 1. Drop whole non-entry functions.
    for i in 1..p.funcs.len() {
        let mut q = p.clone();
        q.funcs.remove(i);
        out.push(q);
    }
    // 2. Statement-level shrinks per function.
    for (fi, f) in p.funcs.iter().enumerate() {
        for body in block_variants(&f.body) {
            let mut q = p.clone();
            q.funcs[fi].body = body;
            out.push(q);
        }
    }
    // 3. Argument simplification (entry arity is preserved).
    for (ai, a) in p.args.iter().enumerate() {
        for repl in arg_variants(a) {
            let mut q = p.clone();
            q.args[ai] = repl;
            out.push(q);
        }
    }
    out
}

fn arg_variants(a: &ArgVal) -> Vec<ArgVal> {
    let mut out = Vec::new();
    match a {
        ArgVal::Scalar(v) => {
            for cand in [0.0f64, 1.0] {
                if v.to_bits() != cand.to_bits() {
                    out.push(ArgVal::Scalar(cand));
                }
            }
        }
        ArgVal::Matrix { data, .. } => {
            out.push(ArgVal::Scalar(data.first().copied().unwrap_or(0.0)));
            out.push(ArgVal::Scalar(0.0));
        }
    }
    out
}

/// All one-step shrinks of a statement list: drop a statement, hoist a
/// nested block, shrink inside a statement.
fn block_variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        // Drop statement i.
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
        // Replace statement i with each of its one-step shrinks.
        for s in stmt_variants(&stmts[i]) {
            let mut v = stmts.to_vec();
            v[i] = s;
            out.push(v);
        }
        // Hoist nested bodies in place of the structured statement.
        for body in hoisted(&stmts[i]) {
            let mut v = stmts.to_vec();
            v.splice(i..=i, body);
            out.push(v);
        }
    }
    out
}

/// Bodies a structured statement can be replaced by.
fn hoisted(s: &Stmt) -> Vec<Vec<Stmt>> {
    match s {
        Stmt::If(_, then, els) => {
            let mut v = vec![then.clone()];
            if !els.is_empty() {
                v.push(els.clone());
            }
            v
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } => vec![body.clone()],
        _ => Vec::new(),
    }
}

/// One-step shrinks *within* a statement (expressions and nested
/// blocks).
fn stmt_variants(s: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match s {
        Stmt::Assign(v, e) => {
            for e2 in expr_variants(e) {
                out.push(Stmt::Assign(v.clone(), e2));
            }
        }
        Stmt::IndexAssign(v, subs, e) => {
            for e2 in expr_variants(e) {
                out.push(Stmt::IndexAssign(v.clone(), subs.clone(), e2));
            }
            for (i, sub) in subs.iter().enumerate() {
                for s2 in expr_variants(sub) {
                    let mut subs2 = subs.clone();
                    subs2[i] = s2;
                    out.push(Stmt::IndexAssign(v.clone(), subs2, e.clone()));
                }
            }
            if subs.len() > 1 {
                out.push(Stmt::IndexAssign(
                    v.clone(),
                    vec![subs[0].clone()],
                    e.clone(),
                ));
            }
            // An indexed store often shrinks to a plain store.
            out.push(Stmt::Assign(v.clone(), e.clone()));
        }
        Stmt::If(c, then, els) => {
            for c2 in expr_variants(c) {
                out.push(Stmt::If(c2, then.clone(), els.clone()));
            }
            for t2 in block_variants(then) {
                out.push(Stmt::If(c.clone(), t2, els.clone()));
            }
            for e2 in block_variants(els) {
                out.push(Stmt::If(c.clone(), then.clone(), e2));
            }
        }
        Stmt::For {
            var,
            from,
            step,
            to,
            body,
        } => {
            for f2 in expr_variants(from) {
                out.push(Stmt::For {
                    var: var.clone(),
                    from: f2,
                    step: step.clone(),
                    to: to.clone(),
                    body: body.clone(),
                });
            }
            for t2 in expr_variants(to) {
                out.push(Stmt::For {
                    var: var.clone(),
                    from: from.clone(),
                    step: step.clone(),
                    to: t2,
                    body: body.clone(),
                });
            }
            if step.is_some() {
                out.push(Stmt::For {
                    var: var.clone(),
                    from: from.clone(),
                    step: None,
                    to: to.clone(),
                    body: body.clone(),
                });
            }
            for b2 in block_variants(body) {
                out.push(Stmt::For {
                    var: var.clone(),
                    from: from.clone(),
                    step: step.clone(),
                    to: to.clone(),
                    body: b2,
                });
            }
        }
        Stmt::While {
            guard,
            init,
            cond,
            body,
        } => {
            for c2 in expr_variants(cond) {
                out.push(Stmt::While {
                    guard: guard.clone(),
                    init: *init,
                    cond: c2,
                    body: body.clone(),
                });
            }
            for b2 in block_variants(body) {
                out.push(Stmt::While {
                    guard: guard.clone(),
                    init: *init,
                    cond: cond.clone(),
                    body: b2,
                });
            }
            if *init > 1 {
                out.push(Stmt::While {
                    guard: guard.clone(),
                    init: 1,
                    cond: cond.clone(),
                    body: body.clone(),
                });
            }
        }
    }
    out
}

/// One-step shrinks of an expression: constants, direct subexpressions,
/// and recursive shrinks of each child.
fn expr_variants(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    for cand in [0.0f64, 1.0] {
        if !matches!(e, Expr::Num(v) if v.to_bits() == cand.to_bits()) {
            out.push(Expr::Num(cand));
        }
    }
    match e {
        Expr::Num(_) | Expr::Var(_) => {}
        Expr::Bin(op, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            for a2 in expr_variants(a) {
                out.push(Expr::Bin(op, Box::new(a2), b.clone()));
            }
            for b2 in expr_variants(b) {
                out.push(Expr::Bin(op, a.clone(), Box::new(b2)));
            }
        }
        Expr::Neg(a) => {
            out.push((**a).clone());
            for a2 in expr_variants(a) {
                out.push(Expr::Neg(Box::new(a2)));
            }
        }
        Expr::Call(name, args) | Expr::Index(name, args) => {
            let rebuild = |args2: Vec<Expr>| match e {
                Expr::Call(..) => Expr::Call(name.clone(), args2),
                _ => Expr::Index(name.clone(), args2),
            };
            for a in args {
                out.push(a.clone());
            }
            for (i, a) in args.iter().enumerate() {
                for a2 in expr_variants(a) {
                    let mut args2 = args.clone();
                    args2[i] = a2;
                    out.push(rebuild(args2));
                }
            }
        }
        Expr::Range(a, s, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            if s.is_some() {
                out.push(Expr::Range(a.clone(), None, b.clone()));
            }
            for a2 in expr_variants(a) {
                out.push(Expr::Range(Box::new(a2), s.clone(), b.clone()));
            }
            for b2 in expr_variants(b) {
                out.push(Expr::Range(a.clone(), s.clone(), Box::new(b2)));
            }
        }
        Expr::MatLit(rows) => {
            if let Some(first) = rows.first().and_then(|r| r.first()) {
                out.push(first.clone());
            }
            for (i, row) in rows.iter().enumerate() {
                for (j, el) in row.iter().enumerate() {
                    for e2 in expr_variants(el) {
                        let mut rows2 = rows.clone();
                        rows2[i][j] = e2;
                        out.push(Expr::MatLit(rows2));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a, b);
        assert_eq!(a.render_corpus(), b.render_corpus());
        // Different seeds almost surely differ.
        assert_ne!(generate(1).render_corpus(), generate(2).render_corpus());
    }

    #[test]
    fn every_generated_source_ends_with_return_assignment() {
        for seed in 0..200 {
            let p = generate(seed);
            for f in &p.funcs {
                assert!(
                    matches!(f.body.last(), Some(Stmt::Assign(v, _)) if v == "r"),
                    "seed {seed}: function {} does not end with r = …",
                    f.name
                );
            }
            assert!(!p.args.is_empty());
        }
    }

    #[test]
    fn aliasing_grammar_is_deterministic_and_leaves_default_alone() {
        assert_eq!(
            generate_with(42, Grammar::Aliasing),
            generate_with(42, Grammar::Aliasing)
        );
        // `generate` is the default grammar, unchanged by the new mode.
        assert_eq!(generate(42), generate_with(42, Grammar::Default));
    }

    #[test]
    fn aliasing_grammar_emits_the_cow_stress_patterns() {
        fn walk(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::If(_, a, b) => {
                        walk(a, f);
                        walk(b, f);
                    }
                    Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, f),
                    _ => {}
                }
            }
        }
        let (mut binds, mut self_refs, mut growths, mut dup_calls) = (0u32, 0u32, 0u32, 0u32);
        for seed in 0..300 {
            let p = generate_with(seed, Grammar::Aliasing);
            for func in &p.funcs {
                // The termination invariant must survive the new mode.
                assert!(
                    matches!(func.body.last(), Some(Stmt::Assign(v, _)) if v == "r"),
                    "seed {seed}: {} does not end with r = …",
                    func.name
                );
                walk(&func.body, &mut |s| match s {
                    Stmt::Assign(name, Expr::Var(_)) if name.starts_with('a') => binds += 1,
                    Stmt::Assign(_, Expr::Call(_, args))
                        if args.len() > 1 && args.windows(2).all(|w| w[0] == w[1]) =>
                    {
                        dup_calls += 1;
                    }
                    Stmt::IndexAssign(name, _, Expr::Index(rhs, _)) if name == rhs => {
                        self_refs += 1;
                    }
                    Stmt::IndexAssign(_, subs, _) if matches!(subs.as_slice(), [Expr::Num(v)] if *v >= 7.0) =>
                    {
                        growths += 1;
                    }
                    _ => {}
                });
            }
        }
        assert!(binds > 50, "alias binds are rare: {binds}");
        assert!(
            self_refs > 20,
            "self-referential updates are rare: {self_refs}"
        );
        assert!(growths > 20, "growth-through-store is rare: {growths}");
        assert!(
            dup_calls > 5,
            "duplicated-actual calls are rare: {dup_calls}"
        );
    }

    #[test]
    fn corpus_round_trips() {
        for seed in 0..50 {
            let p = generate(seed);
            let text = p.render_corpus();
            let h = parse_corpus(&text).unwrap();
            assert_eq!(h.entry, p.entry());
            assert_eq!(h.args.len(), p.args.len());
            for (a, b) in h.args.iter().zip(&p.args) {
                match (a, b) {
                    (ArgVal::Scalar(x), ArgVal::Scalar(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    (
                        ArgVal::Matrix { rows, cols, data },
                        ArgVal::Matrix {
                            rows: r2,
                            cols: c2,
                            data: d2,
                        },
                    ) => {
                        assert_eq!((rows, cols), (r2, c2));
                        assert_eq!(data.len(), d2.len());
                        for (x, y) in data.iter().zip(d2) {
                            assert_eq!(x.to_bits(), y.to_bits());
                        }
                    }
                    other => panic!("arg kind changed in round trip: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn shrinker_minimizes_against_a_syntactic_predicate() {
        // Find a generated program whose source contains `.^`, then
        // shrink while preserving that property: the result should be
        // drastically smaller but still contain the operator.
        let (_, p) = (0..500u64)
            .map(|s| (s, generate(s)))
            .find(|(_, p)| p.source().contains(".^"))
            .expect("some seed generates .^");
        let small = shrink(&p, |q| q.source().contains(".^"), 20_000);
        assert!(small.source().contains(".^"));
        assert!(
            small.source().len() <= p.source().len(),
            "shrinking must never grow the program"
        );
        // The shrunk program is tiny: every droppable statement and
        // function is gone (the entry function always survives, plus
        // at most the one statement carrying the `.^`).
        assert!(small.funcs.len() <= 2, "{}", small.source());
        let stmts: usize = small.funcs.iter().map(|f| f.body.len()).sum();
        assert!(stmts <= 2, "{} statements left:\n{}", stmts, small.source());
    }

    #[test]
    fn shrinker_respects_eval_budget() {
        let p = generate(7);
        let mut evals = 0;
        let _ = shrink(
            &p,
            |_| {
                evals += 1;
                false
            },
            10,
        );
        assert!(evals <= 10);
    }
}
