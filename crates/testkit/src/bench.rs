//! Minimal wall-clock micro-benchmark harness (criterion replacement
//! for offline builds). Bench targets declare `harness = false` and call
//! [`bench()`] from `main`.
//!
//! Methodology mirrors the repo-wide "best of N" convention (paper
//! §3.2): each benchmark is warmed up, then timed in batches sized to a
//! target duration, and the best batch average is reported.

use std::time::{Duration, Instant};

/// Target wall-clock time per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(80);
/// Measured batches per benchmark (best one wins).
const BATCHES: usize = 3;

/// Time one closure and print a criterion-style line:
/// `group/name  …  1234 ns/iter (best of 3 batches)`.
pub fn bench(name: &str, mut body: impl FnMut()) {
    // Warm-up + batch sizing: grow the iteration count until one batch
    // takes long enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            body();
        }
        let took = t0.elapsed();
        if took >= BATCH_TARGET || iters >= 1 << 20 {
            break;
        }
        let grow = if took.is_zero() {
            16
        } else {
            (BATCH_TARGET.as_nanos() / took.as_nanos().max(1) + 1) as u64
        };
        iters = (iters * grow.clamp(2, 16)).min(1 << 20);
    }
    let mut best = Duration::MAX;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..iters {
            body();
        }
        let took = t0.elapsed();
        if took < best {
            best = took;
        }
    }
    let per_iter = best.as_nanos() as f64 / iters as f64;
    crate::outln!(
        "{name:<40} {} ({iters} iters/batch, best of {BATCHES})",
        fmt_ns(per_iter)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns/iter")
    }
}

/// Print a group header, criterion-`benchmark_group` style.
pub fn group(name: &str) {
    crate::outln!("\n== {name} ==");
}
